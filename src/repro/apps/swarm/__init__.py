"""The five Swarm-suite benchmarks the paper did **not** port to Fractal
(Sec. 6.4): bfs, sssp, astar, des, and nocsim.

"We did not find opportunities to exploit nested parallelism in the five
Swarm benchmarks not presented here ... These benchmarks already use
fine-grain tasks and scale well to 256 cores." — reproducing that claim
requires the benchmarks themselves: each is a timestamp-ordered fine-grain
task program (variant ``"swarm"``), checked against a serial oracle, and
`benchmarks/bench_swarm_suite.py` verifies they scale without any nesting.
"""

from . import astar, bfs, des, nocsim, sssp

__all__ = ["astar", "bfs", "des", "nocsim", "sssp"]
