"""Tests for zooming (paper Sec. 4.3) at the engine level."""

import pytest

from repro import Ordering, Simulator, SystemConfig
from repro.errors import VTBudgetExceeded


def deep_sim(n_cores=4, vt_bits=64, zooming=True, **overrides):
    cfg = SystemConfig.with_cores(n_cores, vt_bits=vt_bits,
                                  enable_zooming=zooming,
                                  conflict_mode="precise", **overrides)
    return Simulator(cfg)


class TestZoomIn:
    def test_deep_nesting_completes(self):
        sim = deep_sim(vt_bits=64)  # two unordered levels fit
        depths = sim.array("depths", 8 * 8)

        def node(ctx, depth):
            depths.set(ctx, depth * 8, 1)
            if depth < 5:
                ctx.create_subdomain(Ordering.UNORDERED)
                ctx.enqueue_sub(node, depth + 1)

        sim.enqueue_root(node, 0)
        stats = sim.run(max_cycles=10_000_000)
        sim.audit()
        assert all(depths.peek(d * 8) == 1 for d in range(6))
        assert stats.zoom_ins > 0
        assert stats.zoom_ins == stats.zoom_outs

    def test_sibling_work_spilled_and_resumed(self):
        """Tasks of the base domain are parked during a zoom-in and run
        after the zoom-out (paper Fig. 13: D and E)."""
        sim = deep_sim(vt_bits=64)
        ran = sim.array("ran", 8 * 8)

        def sibling(ctx, i):
            ran.set(ctx, i * 8, 1)
            ctx.compute(50)

        def deep(ctx, depth):
            if depth < 4:
                ctx.create_subdomain(Ordering.UNORDERED)
                ctx.enqueue_sub(deep, depth + 1)

        sim.enqueue_root(deep, 1)
        for i in range(6):
            sim.enqueue_root(sibling, i)
        stats = sim.run(max_cycles=10_000_000)
        sim.audit()
        assert all(ran.peek(i * 8) == 1 for i in range(6))
        assert stats.zoom_ins > 0

    def test_ordered_base_timestamp_restored(self):
        """Zooming out of an ordered base domain restores timestamps from
        the arbiter's stack; ordering across the zoom must hold."""
        cfg = SystemConfig.with_cores(4, vt_bits=96, enable_zooming=True,
                                      conflict_mode="precise")
        sim = Simulator(cfg, root_ordering=Ordering.ORDERED_32)
        log = sim.array("log", 8)
        pos = sim.cell("pos", 0)

        def mark(ctx, tag):
            p = pos.get(ctx)
            log.set(ctx, p, tag)
            pos.set(ctx, p + 1)

        def deep(ctx, depth, tag):
            if depth == 0:
                mark(ctx, tag)
                return
            ctx.create_subdomain(Ordering.UNORDERED)
            ctx.enqueue_sub(deep, depth - 1, tag)

        sim.enqueue_root(deep, 3, "first", ts=1)
        sim.enqueue_root(mark, "second", ts=2)
        stats = sim.run(max_cycles=10_000_000)
        sim.audit()
        marks = [v for v in log.snapshot() if v != 0]
        assert marks == ["first", "second"]
        assert stats.zoom_ins > 0

    def test_zooming_disabled_raises(self):
        sim = deep_sim(vt_bits=64, zooming=False)
        failures = []

        def node(ctx, depth):
            if depth < 3:
                ctx.create_subdomain(Ordering.UNORDERED)
                try:
                    ctx.enqueue_sub(node, depth + 1)
                except VTBudgetExceeded as e:
                    failures.append(e)

        sim.enqueue_root(node, 0)
        sim.run(max_cycles=1_000_000)
        assert failures


class TestEnqueueSuperAcrossZoom:
    def test_super_enqueue_triggers_zoom_out(self):
        """A base-domain task enqueuing to its (parked) superdomain forces
        a zoom-out (paper Sec. 4.3)."""
        sim = deep_sim(vt_bits=64)
        log = sim.array("log", 4 * 8)

        def delegated(ctx):
            log.set(ctx, 3 * 8, 1)

        def inner(ctx, depth):
            if depth < 3:
                ctx.create_subdomain(Ordering.UNORDERED)
                ctx.enqueue_sub(inner, depth + 1)
            else:
                # at depth 3 the hardware has zoomed at least once, so our
                # superdomain lives on the zoom stack
                ctx.enqueue_super(delegated)

        sim.enqueue_root(inner, 1)
        stats = sim.run(max_cycles=10_000_000)
        sim.audit()
        assert log.peek(3 * 8) == 1
        assert stats.zoom_ins > 0
        assert stats.zoom_outs == stats.zoom_ins


class TestWrapAround:
    def test_long_run_compacts_tiebreakers(self):
        """A tiny tiebreaker width forces wrap-around compaction walks;
        execution must stay correct."""
        cfg = SystemConfig.with_cores(4, tiebreaker_bits=14,
                                      conflict_mode="precise")
        sim = Simulator(cfg)
        cell = sim.cell("c", 0)

        def chain(ctx, remaining):
            cell.add(ctx, 1)
            ctx.compute(400)
            if remaining:
                ctx.enqueue(chain, remaining - 1)

        sim.enqueue_root(chain, 60)
        stats = sim.run(max_cycles=10_000_000)
        sim.audit()
        assert cell.peek() == 61
        assert stats.tiebreaker_wraparounds > 0
