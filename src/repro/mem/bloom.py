"""H3 Bloom-filter signatures (paper Table 2: 2 Kbit, 8-way, H3 hashing).

Swarm/Fractal track each task's read and write sets in per-task Bloom
signatures. Membership tests can return false positives, which cause
spurious aborts — the dominant cost for coarse-grain ("flat") tasks whose
sets overflow the filters (paper Sec. 6.1, Fig. 14).

:class:`H3HashFamily` implements the classic H3 universal hash family of
Carter & Wegman: each hash function is a matrix of random words; the hash
of a key is the XOR of the rows selected by the key's set bits.
:class:`BloomSignature` is a real bit-accurate signature used both directly
(unit tests, small runs) and as the occupancy source for the simulator's
sampled false-positive model (see :mod:`repro.mem.conflicts`).
"""

from __future__ import annotations

import random
from typing import Iterable, List

from ..errors import MemoryError_

_KEY_BITS = 48  # supported key width (word addresses comfortably fit)


class H3HashFamily:
    """A family of ``k`` H3 hash functions onto ``[0, m)`` (m a power of 2).

    In a banked (w-way) Bloom filter each function indexes its own bank of
    ``m / k`` bits; we expose :meth:`indices` returning one global bit index
    per bank, matching that layout.
    """

    def __init__(self, k: int, m_bits: int, seed: int = 0):
        if m_bits & (m_bits - 1) or m_bits <= 0:
            raise MemoryError_("Bloom size must be a power of two")
        if m_bits % k:
            raise MemoryError_("Bloom size must divide evenly into banks")
        self.k = k
        self.m_bits = m_bits
        self.bank_bits = m_bits // k
        if self.bank_bits & (self.bank_bits - 1):
            raise MemoryError_("bank size must be a power of two")
        self._bank_mask = self.bank_bits - 1
        rng = random.Random(seed ^ 0x5DEECE66D)
        # One matrix per function: _KEY_BITS random words of bank-index width.
        self._matrices: List[List[int]] = [
            [rng.getrandbits(32) & self._bank_mask for _ in range(_KEY_BITS)]
            for _ in range(k)
        ]
        # The hash of a key is a pure function of the (fixed) matrices, and
        # workloads probe the same cache lines millions of times; memoizing
        # per key turns the per-bit XOR walk into one dict lookup. The cache
        # is bounded by the number of distinct lines the run touches.
        self._index_cache: dict = {}

    def indices(self, key: int) -> List[int]:
        """Global bit indices (one per bank) for ``key``."""
        out = self._index_cache.get(key)
        if out is not None:
            return out
        masked = key & ((1 << _KEY_BITS) - 1)
        out = []
        for fn, matrix in enumerate(self._matrices):
            h = 0
            bits = masked
            i = 0
            while bits:
                if bits & 1:
                    h ^= matrix[i]
                bits >>= 1
                i += 1
            out.append(fn * self.bank_bits + h)
        self._index_cache[key] = out
        return out


class BloomSignature:
    """A bit-accurate, banked Bloom signature over cache-line addresses."""

    __slots__ = ("family", "_bits", "_inserted", "_popcount", "_rate_cache")

    def __init__(self, family: H3HashFamily):
        self.family = family
        self._bits = 0
        self._inserted = 0
        self._popcount = 0
        self._rate_cache = (0, 0.0)

    def insert(self, key: int) -> bool:
        """Set this key's bit in every bank; True when any bit was new."""
        changed = False
        for idx in self.family.indices(key):
            mask = 1 << idx
            if not self._bits & mask:
                self._bits |= mask
                self._popcount += 1
                changed = True
        self._inserted += 1
        return changed

    def maybe_contains(self, key: int) -> bool:
        """True when all banks hit. Never a false negative."""
        bits = self._bits
        return all(bits >> idx & 1 for idx in self.family.indices(key))

    def update(self, keys: Iterable[int]) -> None:
        """Insert every key."""
        for key in keys:
            self.insert(key)

    def clear(self) -> None:
        """Reset the signature to empty."""
        self._bits = 0
        self._inserted = 0
        self._popcount = 0
        self._rate_cache = (0, 0.0)

    @property
    def inserted(self) -> int:
        """Number of insert operations performed."""
        return self._inserted

    @property
    def popcount(self) -> int:
        """Number of set bits across all banks."""
        return self._popcount

    @property
    def fill(self) -> float:
        """Mean per-bank fill fraction."""
        return self._popcount / self.family.m_bits

    def false_positive_rate(self) -> float:
        """Probability a random never-inserted key hits all ``k`` banks.

        With banked filters, each bank is probed once; a bank of ``b`` bits
        holding ``p_i`` set bits hits with probability ``p_i / b``. We use
        the mean fill as ``p_i / b`` for every bank, which is exact in
        expectation and accurate for H3's near-uniform spreading.
        """
        pc = self._popcount
        cached_pc, cached_rate = self._rate_cache
        if pc == cached_pc:
            return cached_rate
        rate = (pc / self.family.m_bits) ** self.family.k
        self._rate_cache = (pc, rate)
        return rate
