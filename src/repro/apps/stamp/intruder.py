"""STAMP intruder: network intrusion detection.

Packets (fragments of per-flow payloads) arrive shuffled. Each capture
transaction files a fragment into the shared flow table and decrements the
flow's remaining-fragment counter; the transaction that completes a flow
reassembles the payload and runs the signature detector over it, recording
a verdict.

In STAMP the packet stream and reassembly queue are *software* queues; the
TM variant models exactly that (a queue pop inside every capture
transaction), and loses scalability to queue-head conflicts — the Fig. 17
"+HWQueues" step is what rescues intruder.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ...errors import AppError
from ...vt import Ordering
from .common import drive_workload, require_stamp_variant

ATTACK_MARKER = "ATTACK"
_CHARS = "abcdefghijklmnopqrstuvwxyz"


@dataclass
class IntruderInput:
    packets: List[Tuple[int, int, str]]    # (flow, fragment index, payload)
    n_flows: int
    frags_per_flow: int
    attacks: List[bool]                    # ground truth per flow


def make_input(n_flows: int = 24, frags_per_flow: int = 4,
               frag_len: int = 8, attack_fraction: float = 0.3,
               seed: int = 10) -> IntruderInput:
    rng = random.Random(seed)
    packets = []
    attacks = []
    for f in range(n_flows):
        payload = "".join(rng.choice(_CHARS)
                          for _ in range(frag_len * frags_per_flow))
        is_attack = rng.random() < attack_fraction
        if is_attack:
            pos = rng.randrange(len(payload) - len(ATTACK_MARKER))
            payload = (payload[:pos] + ATTACK_MARKER
                       + payload[pos + len(ATTACK_MARKER):])
        attacks.append(is_attack)
        for k in range(frags_per_flow):
            packets.append((f, k, payload[k * frag_len:(k + 1) * frag_len]))
    rng.shuffle(packets)
    return IntruderInput(packets, n_flows, frags_per_flow, attacks)


def build(host, inp: IntruderInput, variant: str = "fractal") -> Dict:
    require_stamp_variant(variant)
    frags = host.dict("intr.frags", capacity=len(inp.packets) + 1)
    remaining = host.array("intr.remaining", inp.n_flows * 8,
                           init=_spread([inp.frags_per_flow] * inp.n_flows))
    verdict = host.array("intr.verdict", inp.n_flows * 8, fill=-1)

    def detect(ctx, flow):
        parts = [frags.get(ctx, (flow, k))
                 for k in range(inp.frags_per_flow)]
        payload = "".join(parts)
        ctx.compute(6 * len(payload))
        verdict.set(ctx, flow * 8, 1 if ATTACK_MARKER in payload else 0)

    def capture(ctx, pid):
        flow, k, payload = inp.packets[pid]
        frags.put(ctx, (flow, k), payload)
        left = remaining.get(ctx, flow * 8) - 1
        remaining.set(ctx, flow * 8, left)
        ctx.compute(25)
        if left == 0:
            ctx.enqueue(detect, flow, hint=flow, label="detect")

    drive_workload(host, len(inp.packets), capture, variant,
                   hint_fn=lambda pid: inp.packets[pid][0], label="capture")
    return {"verdict": verdict, "input": inp}


def root_ordering(variant: str) -> Ordering:
    return Ordering.UNORDERED


def _spread(values, scale: int = 8):
    out = []
    for v in values:
        out.append(v)
        out.extend([0] * (scale - 1))
    return out


def check(handles: Dict, inp: IntruderInput) -> None:
    for f in range(inp.n_flows):
        got = handles["verdict"].peek(f * 8)
        want = 1 if inp.attacks[f] else 0
        if got != want:
            raise AppError(f"flow {f}: verdict {got}, expected {want}")
