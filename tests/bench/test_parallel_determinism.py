"""Parallel sweeps must be indistinguishable from serial ones.

Same seed, same specs: ``sweep_cores(..., jobs=4)`` has to produce the
same RunStats digests *and* the same rendered table text as ``jobs=1``,
for more than one application — the determinism contract behind every
farm-produced figure.
"""

import pytest

from repro.apps import mis, msf
from repro.bench.harness import sweep_cores
from repro.bench.report import speedup_table
from repro.farm import stable_digest

CORES = (1, 4)


def digests(runs):
    return [stable_digest(r.stats.to_dict()) for r in runs]


@pytest.mark.parametrize("app,variants,input_kwargs", [
    (mis, ("flat", "fractal"), dict(scale=5, seed=1)),
    (msf, ("fractal",), dict(scale=5, seed=3)),
], ids=["mis", "msf"])
def test_parallel_sweep_matches_serial(app, variants, input_kwargs):
    inp = app.make_input(**input_kwargs)
    serial = sweep_cores(app, inp, variants, CORES)
    parallel = sweep_cores(app, app.make_input(**input_kwargs),
                           variants, CORES, jobs=4)
    assert digests(serial) == digests(parallel)
    # the rendered artifact must be byte-identical, not just "equal stats"
    table_s = speedup_table(serial, baseline_variant=variants[0])
    table_p = speedup_table(parallel, baseline_variant=variants[0])
    assert table_s == table_p
    assert (len(serial) == len(parallel)
            == len(variants) * len(CORES))
