"""Hot-path profiling: frontier-scan and conflict-probe counters.

The simulator core keeps raw (non-registry) counters on its hot-path
structures — the GVT frontier and per-queue stripped indexes count heap
entries examined per minimum query, the speculative memory counts
candidate owners examined per conflict check, and the Bloom model counts
live tasks walked per false-positive sample. They are plain ints bumped
inline, deliberately **outside** the metrics registry so vanilla runs
export byte-identical metrics to older versions (the same discipline as
the resilience counters); ``repro profile`` gathers them after a run,
folds them into the registry, and renders the report below.

The counters double as the regression surface for CI's perf-smoke job:
scan/probe work per event is a deterministic property of the run, so a
pinned ceiling catches an accidental return to linear scanning even on a
noisy machine where wall-clock alone could not.
"""

from __future__ import annotations

from typing import Dict, Optional

#: JSON schema tag for exported profiles
PROFILE_SCHEMA = "repro.hot-path-profile/1"


def collect_profile(sim, wall_s: Optional[float] = None) -> Dict:
    """Gather hot-path counters from a finished simulator into one doc."""
    frontier = sim._frontier
    dyn = frontier._dyn
    queue_scans = 0
    queue_queries = 0
    for tile in sim.tiles:
        idx = tile.unit._stripped_idx
        queue_scans += idx.scan_steps
        queue_queries += idx.queries
    mem = sim.memory
    accesses = mem.n_loads + mem.n_stores
    gvt_queries = frontier.queries
    gvt_scans = frontier.scan_steps + dyn.scan_steps
    conflict_probes = getattr(sim.conflicts, "probe_steps", 0)
    doc = {
        "schema": PROFILE_SCHEMA,
        "name": sim.stats.name,
        "n_cores": sim.stats.n_cores,
        "makespan": sim.now,
        "events": sim._event_seq,
        "gvt": {
            "queries": gvt_queries,
            "scan_steps": gvt_scans,
            "mean_scan_len": gvt_scans / gvt_queries if gvt_queries else 0.0,
        },
        "queues": {
            "queries": queue_queries,
            "scan_steps": queue_scans,
            "mean_scan_len": (queue_scans / queue_queries
                              if queue_queries else 0.0),
        },
        "memory": {
            "accesses": accesses,
            "probe_steps": mem.probe_steps,
            "mean_probe_len": mem.probe_steps / accesses if accesses else 0.0,
            "true_conflicts": mem.n_true_conflicts,
        },
        "conflict_model": {
            "model": getattr(sim.conflicts, "name", "?"),
            "probe_steps": conflict_probes,
            "false_positives": getattr(sim.conflicts, "false_positives", 0),
        },
        "tiebreaker_wraparounds": sim.alloc.wraparounds,
    }
    if wall_s is not None:
        doc["wall_s"] = wall_s
    return doc


def fold_into_registry(metrics, profile: Dict) -> None:
    """Export the profile counters through the metrics registry.

    Called only by ``repro profile`` — vanilla runs must not see these
    names, so metric exports stay byte-identical when profiling is off.
    """
    metrics.counter("profile_gvt_queries").value = \
        profile["gvt"]["queries"]
    metrics.counter("profile_gvt_scan_steps").value = \
        profile["gvt"]["scan_steps"]
    metrics.counter("profile_queue_scan_steps").value = \
        profile["queues"]["scan_steps"]
    metrics.counter("profile_mem_probe_steps").value = \
        profile["memory"]["probe_steps"]
    metrics.counter("profile_conflict_probe_steps").value = \
        profile["conflict_model"]["probe_steps"]


def format_profile(profile: Dict) -> str:
    """Human-readable hot-path report."""
    g, q, m, c = (profile["gvt"], profile["queues"], profile["memory"],
                  profile["conflict_model"])
    lines = [
        f"hot-path profile: {profile['name']} "
        f"@ {profile['n_cores']} cores "
        f"({profile['makespan']:,} cycles, {profile['events']:,} events)",
        "",
        f"  GVT frontier     {g['queries']:>12,} queries   "
        f"{g['scan_steps']:>12,} heap entries examined   "
        f"(mean {g['mean_scan_len']:.2f}/query)",
        f"  queue indexes    {q['queries']:>12,} queries   "
        f"{q['scan_steps']:>12,} heap entries examined   "
        f"(mean {q['mean_scan_len']:.2f}/query)",
        f"  conflict checks  {m['accesses']:>12,} accesses  "
        f"{m['probe_steps']:>12,} candidate owners probed "
        f"(mean {m['mean_probe_len']:.2f}/access)",
        f"  {c['model']:<6} sampling   "
        f"{c['probe_steps']:>12,} live tasks walked   "
        f"{c['false_positives']:>12,} false positives",
        f"  true conflicts   {m['true_conflicts']:>12,}    "
        f"tiebreaker wraparounds {profile['tiebreaker_wraparounds']}",
    ]
    if "wall_s" in profile:
        lines.append(f"  wall clock       {profile['wall_s']:>12.3f} s")
    return "\n".join(lines)
