"""STAMP bayes: Bayesian network structure learning.

The learner evaluates edge-insertion decisions on a network over V
variables. Evaluating a decision requires many probability-estimate
queries (STAMP answers them from an ADTree; here a shared memoizing query
cache over precomputed pairwise co-occurrence counts plays that role — see
DESIGN.md substitutions), then the decision is applied to the shared
network structure and per-variable log-likelihood words.

- TM/hwq: one transaction per decision, reading the network row, running
  *all* queries, and applying — long transactions with large footprints
  that serialize on the network and the cache (the paper's bayes barely
  scales flat, Fig. 14).
- fractal: the decision task runs its queries as an unordered subdomain
  (one fine task per query; a join counter fires the apply continuation),
  matching Table 4's "unord -> unord" nesting.

Edges are restricted to i < j, so the learned structure is acyclic by
construction. Checked invariants: the network is exactly the set of
logged applied decisions, and per-variable likelihood words equal the sum
of applied gains (conservation).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ...errors import AppError
from ...vt import Ordering
from .common import drive_workload, require_stamp_variant
from ..common import splitmix


@dataclass
class BayesInput:
    n_vars: int
    decisions: List[Tuple[int, int]]       # proposed edges (i < j)
    gains: Dict[Tuple[int, int], int]      # static data-derived gain
    queries_per_decision: int
    threshold: int


def make_input(n_vars: int = 10, n_decisions: int = 40,
               queries_per_decision: int = 6, n_records: int = 256,
               seed: int = 12) -> BayesInput:
    rng = random.Random(seed)
    # synthesize records from a random ground-truth DAG, then derive
    # pairwise agreement counts -> integer gains
    truth = {(i, j): rng.random() < 0.25
             for i in range(n_vars) for j in range(i + 1, n_vars)}
    records = []
    for _ in range(n_records):
        row = [rng.randint(0, 1) for _ in range(n_vars)]
        for (i, j), linked in truth.items():
            if linked and rng.random() < 0.7:
                row[j] = row[i]
        records.append(row)
    gains = {}
    for i in range(n_vars):
        for j in range(i + 1, n_vars):
            agree = sum(1 for r in records if r[i] == r[j])
            gains[(i, j)] = abs(2 * agree - n_records)
    pairs = list(gains)
    decisions = [pairs[rng.randrange(len(pairs))] for _ in range(n_decisions)]
    threshold = n_records // 3
    return BayesInput(n_vars, decisions, gains, queries_per_decision,
                      threshold)


def build(host, inp: BayesInput, variant: str = "fractal") -> Dict:
    require_stamp_variant(variant)
    V = inp.n_vars
    adj = host.array("bayes.adj", V * V)            # 1 = edge present
    ll = host.array("bayes.ll", V * 8)              # per-var likelihood
    cache = host.dict("bayes.cache", capacity=4096)
    applied = host.dict("bayes.applied", capacity=len(inp.decisions) + 1)
    Q = inp.queries_per_decision
    # per-decision scratch: Q query-result slots, one cache line each so
    # parallel queries of one decision never false-share
    scratch = host.array("bayes.scratch", len(inp.decisions) * Q * 8)

    def run_query(ctx, did, q):
        """One probability query: memoized in the shared cache."""
        i, j = inp.decisions[did]
        key = (i, j, splitmix(did * 131 + q) % 8)
        hit = cache.get(ctx, key)
        if hit is None:
            ctx.compute(120)                       # walk the count tables
            hit = inp.gains[(i, j)] + (q % 3)
            cache.put(ctx, key, hit)
        else:
            ctx.compute(15)
        return hit

    def apply_decision(ctx, did):
        i, j = inp.decisions[did]
        score = sum(scratch.get(ctx, (did * Q + q) * 8) for q in range(Q))
        if adj.get(ctx, i * V + j) == 0 and score // Q >= inp.threshold:
            adj.set(ctx, i * V + j, 1)
            ll.add(ctx, j * 8, score // Q)
            applied.put(ctx, did, score // Q)

    def decide_flat(ctx, did):
        i, j = inp.decisions[did]
        # read the candidate parents' rows (the network footprint)
        for k in range(V):
            adj.get(ctx, i * V + k)
            adj.get(ctx, k * V + j)
        for q in range(Q):
            scratch.set(ctx, (did * Q + q) * 8, run_query(ctx, did, q))
        apply_decision(ctx, did)

    def query_task(ctx, did, q):
        scratch.set(ctx, (did * Q + q) * 8, run_query(ctx, did, q))

    def decide_fractal(ctx, did):
        # Queries are mutually unordered (all at ts 0); the apply
        # continuation is sequenced after them at ts 1 — the standard
        # lowering of "unordered loop + continuation".
        i, j = inp.decisions[did]
        for k in range(V):
            adj.get(ctx, i * V + k)
            adj.get(ctx, k * V + j)
        ctx.create_subdomain(Ordering.ORDERED_32)
        for q in range(Q):
            ctx.enqueue_sub(query_task, did, q, ts=0,
                            hint=(did * 7 + q) % 64, label="query")
        ctx.enqueue_sub(apply_decision, did, ts=1, hint=did, label="apply")

    fn = decide_fractal if variant == "fractal" else decide_flat
    drive_workload(host, len(inp.decisions), fn, variant,
                   hint_fn=lambda did: inp.decisions[did][0], label="decide")
    return {"adj": adj, "ll": ll, "applied": applied, "input": inp}


def root_ordering(variant: str) -> Ordering:
    return Ordering.UNORDERED


def check(handles: Dict, inp: BayesInput) -> int:
    V = inp.n_vars
    adj = handles["adj"]
    applied = dict(handles["applied"].items_nonspec())
    # network == applied log
    edges = {(i, j) for i in range(V) for j in range(V)
             if adj.peek(i * V + j) == 1}
    logged = {inp.decisions[did] for did in applied}
    if edges != logged:
        raise AppError(f"network edges {edges} != applied log {logged}")
    for (i, j) in edges:
        if not i < j:
            raise AppError(f"edge ({i},{j}) breaks the i<j DAG restriction")
    # likelihood conservation: ll[j] is the sum of gains applied onto j
    for j in range(V):
        want = sum(gain for did, gain in applied.items()
                   if inp.decisions[did][1] == j)
        got = handles["ll"].peek(j * 8)
        if got != want:
            raise AppError(f"ll[{j}] = {got}, expected {want}")
    return len(edges)
