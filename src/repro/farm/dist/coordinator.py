"""The distributed-farm coordinator: shard leases, heartbeats,
exactly-once results.

One :class:`Coordinator` owns any number of *sweeps* (ordered job
lists). Each sweep is cut into *fragments* by the deterministic blake2b
shard of every job's content address, so fragment membership is a pure
function of the job — no matter how many agents show up or die. Agents
pull work by acquiring a time-bounded *lease* on one fragment, renew it
with heartbeats, and deliver results per fragment.

Fault model (the chaos harness exercises every arrow):

- an agent is SIGKILL'd mid-fragment → its heartbeats stop → the lease's
  TTL lapses → the reaper requeues the fragment with a bumped epoch →
  another agent re-executes it;
- heartbeats are dropped/delayed (network fault) while the agent is
  still alive → same expiry path; when the zombie later delivers, every
  already-recorded job is *suppressed as a duplicate* — content
  addressing guarantees the re-executed fragment reconciled to the very
  same digests, so suppression loses nothing;
- results are recorded **exactly once** per job: the first delivery
  wins, is written through the :class:`~repro.farm.cache.ResultCache`'s
  atomic content-addressed file (re-writes reconcile to identical
  bytes), and every later delivery only increments
  ``dist.duplicates_suppressed`` (with a stats-equality cross-check —
  a mismatch would be a determinism bug and is counted separately).

The upshot: a sweep's result table is byte-identical to a serial run no
matter which agents died along the way — the distributed analogue of
the simulator's speculative-but-deterministic commit order.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ...errors import ConfigError
from ...telemetry import (AgentLostEvent, AgentRegisteredEvent,
                          DuplicateResultEvent, EventBus, FragmentDoneEvent,
                          FragmentRequeuedEvent, LeaseExpiredEvent,
                          LeaseGrantedEvent, MetricsRegistry)
from ..cache import ResultCache
from ..job import JobSpec, stable_digest
from ..shard import shard_index
from ..validate import validate_jobspec
from ...serve.httpbase import JsonHttpServer, Request, run_loop_in_thread
from . import journal as wal
from . import wire

# fragment states
PENDING = "pending"
LEASED = "leased"
DONE = "done"


def _lease_number(lease_id: str) -> int:
    """The N in ``lease-N`` (0 for foreign ids) — keeps the lease
    counter monotonic across a journal replay."""
    try:
        return int(lease_id.rsplit("-", 1)[-1])
    except ValueError:
        return 0


class DistError(Exception):
    """Coordinator-level request failure (maps to an HTTP status)."""

    status = 500


class UnknownAgentError(DistError):
    status = 410            # Gone: the agent must re-register

    def __init__(self, agent_id: str) -> None:
        super().__init__(f"unknown agent {agent_id!r}; re-register")


class UnknownSweepError(DistError):
    status = 404

    def __init__(self, sweep_id: str) -> None:
        super().__init__(f"unknown sweep id {sweep_id!r}")


@dataclass
class CoordinatorConfig:
    """Everything one coordinator instance needs."""

    host: str = "127.0.0.1"
    port: int = 8178
    #: seconds an un-renewed lease stays valid
    lease_ttl_s: float = 6.0
    #: how often agents should heartbeat (sent to them at register)
    heartbeat_interval_s: float = 1.5
    #: default fragment count per sweep (0 = one fragment per job)
    fragments: int = 8
    #: content-addressed result cache; None disables it
    cache_dir: Optional[str] = "benchmarks/results/.cache"
    #: missed heartbeats (x lease_ttl_s) before an agent is declared lost
    agent_ttl_factor: float = 2.0
    #: reaper wake-up period
    reap_interval_s: float = 0.5
    #: write-ahead journal directory; None = in-memory only (PR 7 mode).
    #: Restarting on the same directory resumes every in-flight sweep.
    journal_dir: Optional[str] = None
    #: fsync journal batches (turn off only in tests)
    journal_fsync: bool = True
    #: compact the journal into a snapshot every N appended records
    journal_snapshot_every: int = 2048
    #: shared-secret for the wire ("" = open). Clients send it as
    #: ``X-Repro-Token``; every endpoint 401s without it.
    auth_token: str = ""

    def __post_init__(self) -> None:
        if self.lease_ttl_s <= 0:
            raise ConfigError("lease_ttl_s must be > 0")
        if self.heartbeat_interval_s <= 0:
            raise ConfigError("heartbeat_interval_s must be > 0")
        if self.heartbeat_interval_s >= self.lease_ttl_s:
            raise ConfigError("heartbeat_interval_s must be < lease_ttl_s "
                              "(a healthy agent must renew in time)")
        if self.fragments < 0:
            raise ConfigError("fragments must be >= 0")
        if self.journal_snapshot_every < 1:
            raise ConfigError("journal_snapshot_every must be >= 1")


class Lease:
    """One agent's live claim on one fragment."""

    __slots__ = ("id", "agent", "sweep", "fragment", "epoch", "granted",
                 "deadline")

    def __init__(self, lease_id: str, agent: str, sweep: str,
                 fragment: int, epoch: int, now: float,
                 ttl: float) -> None:
        self.id = lease_id
        self.agent = agent
        self.sweep = sweep
        self.fragment = fragment
        self.epoch = epoch
        self.granted = now
        self.deadline = now + ttl


class Fragment:
    """One shard of a sweep's jobs — the unit of leasing and requeue."""

    __slots__ = ("id", "indices", "state", "epoch", "lease", "attempts")

    def __init__(self, fragment_id: int, indices: List[int]) -> None:
        self.id = fragment_id
        self.indices = indices          # job indices, input order
        self.state = PENDING
        self.epoch = 0
        self.lease: Optional[Lease] = None
        self.attempts = 0               # times leased

    def to_doc(self) -> dict:
        return {"id": self.id, "n_jobs": len(self.indices),
                "state": self.state, "epoch": self.epoch,
                "attempts": self.attempts,
                "agent": self.lease.agent if self.lease else None}


class AgentRecord:
    """One registered worker agent."""

    def __init__(self, agent_id: str, capacity: int, now: float) -> None:
        self.id = agent_id
        self.capacity = capacity
        self.registered = now
        self.last_seen = now
        self.n_heartbeats = 0
        self.n_delivered = 0
        self.leases: Dict[str, Lease] = {}

    def to_doc(self) -> dict:
        return {"id": self.id, "capacity": self.capacity,
                "heartbeats": self.n_heartbeats,
                "delivered": self.n_delivered,
                "leases": sorted(self.leases)}


class SweepState:
    """One submitted sweep: ordered jobs, fragments, recorded results."""

    def __init__(self, sweep_id: str, docs: List[dict],
                 specs: List[JobSpec], n_fragments: int,
                 label: str) -> None:
        self.id = sweep_id
        self.label = label
        self.docs = docs
        self.specs = specs
        self.n_fragments = n_fragments
        self.created = time.time()
        #: one record per job index, None until recorded (exactly once)
        self.records: List[Optional[dict]] = [None] * len(specs)
        self.n_recorded = 0
        self.n_failed = 0
        # fragment membership is digest-sharded: a pure function of each
        # job's content address, independent of the rest of the sweep
        by_fragment: Dict[int, List[int]] = {}
        for i, spec in enumerate(specs):
            fid = shard_index(spec.digest(), n_fragments)
            by_fragment.setdefault(fid, []).append(i)
        self.fragments: Dict[int, Fragment] = {
            fid: Fragment(fid, indices)
            for fid, indices in sorted(by_fragment.items())}

    @property
    def complete(self) -> bool:
        return self.n_recorded == len(self.specs)

    def fragment_recorded(self, frag: Fragment) -> bool:
        return all(self.records[i] is not None for i in frag.indices)

    def to_doc(self) -> dict:
        states = {PENDING: 0, LEASED: 0, DONE: 0}
        for f in self.fragments.values():
            states[f.state] += 1
        return {"id": self.id, "label": self.label,
                "n_jobs": len(self.specs),
                "recorded": self.n_recorded, "failed": self.n_failed,
                "complete": self.complete,
                "fragments": {"total": len(self.fragments), **states}}


class Coordinator:
    """Transport-independent coordinator core (see module docs).

    Thread-safe; the HTTP layer and the reaper thread call into it under
    one lock. ``clock`` is injectable so lease-expiry tests never sleep.
    """

    def __init__(self, config: CoordinatorConfig, *,
                 cache: Optional[ResultCache] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.config = config
        self._clock = clock
        if cache is not None:
            self.cache: Optional[ResultCache] = cache
        elif config.cache_dir:
            self.cache = ResultCache(config.cache_dir)
        else:
            self.cache = None
        self.registry = MetricsRegistry()
        self.bus = EventBus()
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._sweeps: Dict[str, SweepState] = {}
        self._agents: Dict[str, AgentRecord] = {}
        self._leases: Dict[str, Lease] = {}
        self._n_agents_ever = 0
        self._n_leases_ever = 0
        self._draining = False
        self._reaper: Optional[threading.Thread] = None
        self._reaper_stop = threading.Event()
        self.t0 = time.monotonic()
        self._journal: Optional[wal.JournalWriter] = None
        self._replaying = False
        #: how the last startup recovered (surfaced in /metrics and
        #: ``repro profile --dist``)
        self.recovery: Dict = {
            "recovered": False, "replayed_records": 0,
            "snapshot_seq": 0, "snapshot_age_s": None,
            "truncated_tail": False, "resumed_sweeps": 0,
            "leases_restored": 0, "leases_discarded": 0,
            "cache_refills": 0,
        }
        if config.journal_dir:
            self._open_journal(config.journal_dir)

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Start the lease/agent reaper thread (idempotent)."""
        with self._lock:
            if self._reaper is not None:
                return
            self._reaper_stop.clear()
            t = threading.Thread(target=self._reap_loop,
                                 name="dist-reaper", daemon=True)
            self._reaper = t
        t.start()

    def stop(self) -> None:
        """Stop granting leases, stop the reaper, close the journal."""
        with self._lock:
            self._draining = True
            reaper = self._reaper
            self._reaper = None
        self._reaper_stop.set()
        if reaper is not None:
            reaper.join(timeout=5.0)
        with self._lock:
            if self._journal is not None:
                self._journal.close()

    def _reap_loop(self) -> None:
        while not self._reaper_stop.wait(self.config.reap_interval_s):
            self.reap()

    # -- helpers -------------------------------------------------------
    def _now_ms(self) -> int:
        return int((time.monotonic() - self.t0) * 1000)

    def _emit(self, event) -> None:
        if self.bus:
            self.bus.emit(event)

    # -- journal & recovery --------------------------------------------
    def _japp(self, kind: str, **doc) -> None:
        """Append one write-ahead record (no-op without a journal or
        while replaying one)."""
        if self._journal is not None and not self._replaying \
                and not self._journal.closed:
            self._journal.append(kind, doc)

    def _jsync(self) -> None:
        """Make the current batch of appends durable; compact when the
        WAL has grown past the snapshot threshold. Caller holds the
        lock (state must be consistent for the snapshot)."""
        j = self._journal
        if j is None or self._replaying or j.closed:
            return
        j.sync()
        if j.n_since_snapshot >= self.config.journal_snapshot_every:
            j.write_snapshot(self._journal_state())

    def _journal_state(self) -> dict:
        """The full coordinator state as a JSON-safe snapshot document.
        Caller holds the lock."""
        sweeps = []
        for s in self._sweeps.values():
            sweeps.append({
                "id": s.id, "label": s.label, "jobs": s.docs,
                "n_fragments": s.n_fragments,
                "records": list(s.records),
                "fragments": [{
                    "id": f.id, "state": f.state, "epoch": f.epoch,
                    "attempts": f.attempts,
                    "lease": (None if f.lease is None else
                              {"id": f.lease.id, "agent": f.lease.agent,
                               "epoch": f.lease.epoch}),
                } for f in s.fragments.values()],
            })
        return {
            "n_agents_ever": self._n_agents_ever,
            "n_leases_ever": self._n_leases_ever,
            "agents": [{"id": a.id, "capacity": a.capacity}
                       for a in self._agents.values()],
            "sweeps": sweeps,
        }

    def _open_journal(self, root: str) -> None:
        """Replay what survived in ``root`` and continue journaling to
        it. Called once from ``__init__``."""
        writer, replay = wal.resume(root,
                                    fsync=self.config.journal_fsync)
        self._journal = writer
        if replay.empty:
            return
        with self._cond:
            self._replaying = True
            try:
                self._restore(replay)
            finally:
                self._replaying = False
            self.recovery.update(
                recovered=True,
                replayed_records=len(replay.records),
                snapshot_seq=replay.snapshot_seq,
                snapshot_age_s=(
                    None if replay.snapshot is None else
                    round(max(0.0, time.time() - replay.snapshot["t"]),
                          3)),
                truncated_tail=replay.truncated_tail,
                resumed_sweeps=sum(1 for s in self._sweeps.values()
                                   if not s.complete),
                # leases live at the end of replay (grants the WAL later
                # expires or completes don't count as restored)
                leases_restored=len(self._leases),
            )
            # cache-warm refill: results that landed in the ResultCache
            # (ours pre-crash, or another host's) are recorded up front
            # so their fragments never get leased again
            self._refill_from_cache()
            self._jsync()
            self.registry.inc("dist.recoveries")
            self._update_gauges()
            self._cond.notify_all()

    def _build_sweep(self, sweep_id: str, docs: List[dict],
                     n_fragments: int, label: str) -> SweepState:
        specs = [validate_jobspec(job, source=f"journal jobs[{i}]")
                 for i, job in enumerate(docs)]
        sweep = SweepState(sweep_id, docs, specs, n_fragments, label)
        self._sweeps[sweep_id] = sweep
        return sweep

    def _restore_lease(self, sweep: SweepState, frag: Fragment,
                       lease_id: str, agent_id: str, epoch: int,
                       now: float) -> None:
        """Re-create a live lease with a fresh TTL (the reconnect grace
        window); a lease whose agent is gone is discarded and its
        fragment requeued with a bumped epoch."""
        agent = self._agents.get(agent_id)
        if agent is None:
            frag.state = PENDING
            frag.epoch = epoch + 1
            frag.lease = None
            self.recovery["leases_discarded"] += 1
            return
        lease = Lease(lease_id, agent_id, sweep.id, frag.id, epoch, now,
                      self.config.lease_ttl_s)
        frag.state = LEASED
        frag.lease = lease
        agent.leases[lease_id] = lease
        self._leases[lease_id] = lease

    def _restore(self, replay: wal.JournalReplay) -> None:
        """Rebuild sweeps/fragments/leases from snapshot + WAL tail.
        Caller holds the lock with ``_replaying`` set."""
        now = self._clock()
        snap = replay.snapshot["state"] if replay.snapshot else None
        if snap:
            self._n_agents_ever = int(snap.get("n_agents_ever", 0))
            self._n_leases_ever = int(snap.get("n_leases_ever", 0))
            for a in snap.get("agents", ()):
                self._agents[a["id"]] = AgentRecord(
                    a["id"], a["capacity"], now)
            for s in snap.get("sweeps", ()):
                sweep = self._build_sweep(s["id"], s["jobs"],
                                          s["n_fragments"], s["label"])
                for rec in s["records"]:
                    if rec is None:
                        continue
                    sweep.records[rec["index"]] = rec
                    sweep.n_recorded += 1
                    if rec.get("error") is not None:
                        sweep.n_failed += 1
                for f in s["fragments"]:
                    frag = sweep.fragments[f["id"]]
                    frag.state = f["state"]
                    frag.epoch = f["epoch"]
                    frag.attempts = f["attempts"]
                    if f["lease"] is not None:
                        self._restore_lease(sweep, frag,
                                            f["lease"]["id"],
                                            f["lease"]["agent"],
                                            f["lease"]["epoch"], now)
                    elif frag.state == LEASED:
                        frag.state = PENDING
        for rec in replay.records:
            self._apply_journal(rec, now)
        # normalize: DONE is derived from the exactly-once ledger, and
        # any lease that could not be restored falls back to PENDING
        # with a bumped epoch (so zombie deliveries stay distinguishable)
        for sweep in self._sweeps.values():
            for frag in sweep.fragments.values():
                if sweep.fragment_recorded(frag):
                    self._drop_fragment_lease(frag)
                    frag.state = DONE
                elif frag.state == DONE:
                    frag.state = PENDING
                elif frag.state == LEASED and frag.lease is None:
                    frag.state = PENDING
                    frag.epoch += 1

    def _drop_fragment_lease(self, frag: Fragment) -> None:
        lease = frag.lease
        if lease is None:
            return
        frag.lease = None
        self._leases.pop(lease.id, None)
        agent = self._agents.get(lease.agent)
        if agent is not None:
            agent.leases.pop(lease.id, None)

    def _apply_journal(self, rec: dict, now: float) -> None:
        """Apply one WAL record to in-memory state. Records are a valid
        history prefix (replay stops at the first bad frame), so each
        handler mirrors the live mutation it journals."""
        kind = rec["kind"]
        if kind == "sweep":
            if rec["id"] not in self._sweeps:
                self._build_sweep(rec["id"], rec["jobs"],
                                  rec["n_fragments"], rec["label"])
        elif kind == "register":
            self._n_agents_ever += 1
            self._agents[rec["agent"]] = AgentRecord(
                rec["agent"], rec["capacity"], now)
        elif kind == "agent_lost":
            agent = self._agents.pop(rec["agent"], None)
            if agent is not None:
                for lease in list(agent.leases.values()):
                    self._leases.pop(lease.id, None)
                    sweep = self._sweeps.get(lease.sweep)
                    frag = (sweep.fragments.get(lease.fragment)
                            if sweep is not None else None)
                    if frag is not None and frag.lease is lease:
                        # normalization will requeue it (epoch bump)
                        frag.lease = None
        elif kind == "lease":
            self._n_leases_ever = max(self._n_leases_ever,
                                      _lease_number(rec["lease"]))
            sweep = self._sweeps.get(rec["sweep"])
            frag = (sweep.fragments.get(rec["fragment"])
                    if sweep is not None else None)
            if frag is not None:
                self._drop_fragment_lease(frag)
                frag.attempts += 1
                frag.epoch = rec["epoch"]
                self._restore_lease(sweep, frag, rec["lease"],
                                    rec["agent"], rec["epoch"], now)
        elif kind == "expire":
            lease = self._leases.pop(rec["lease"], None)
            if lease is not None:
                agent = self._agents.get(lease.agent)
                if agent is not None:
                    agent.leases.pop(lease.id, None)
                sweep = self._sweeps.get(lease.sweep)
                frag = (sweep.fragments.get(lease.fragment)
                        if sweep is not None else None)
                if frag is not None and frag.lease is lease:
                    frag.lease = None
                    if rec["requeued"]:
                        frag.state = PENDING
                        frag.epoch = rec["epoch"]
                    else:
                        frag.state = DONE
        elif kind == "record":
            sweep = self._sweeps.get(rec["sweep"])
            if sweep is None:
                return
            r = rec["record"]
            if sweep.records[r["index"]] is None:
                sweep.records[r["index"]] = r
                sweep.n_recorded += 1
                if r.get("error") is not None:
                    sweep.n_failed += 1

    def _refill_from_cache(self) -> None:
        """Record every unrecorded job whose digest is already in the
        ResultCache; fragments that become fully recorded go DONE
        without ever being leased. Caller holds the lock."""
        if self.cache is None:
            return
        for sweep in self._sweeps.values():
            if sweep.complete:
                continue
            for i, spec in enumerate(sweep.specs):
                if sweep.records[i] is not None:
                    continue
                stats = self.cache.get(spec.digest())
                if stats is not None:
                    self._record(sweep, i, spec.digest(),
                                 stats.to_dict(), None, 0, 0,
                                 agent="cache", cached=True)
                    self.recovery["cache_refills"] += 1
            for frag in sweep.fragments.values():
                if frag.state != DONE and sweep.fragment_recorded(frag):
                    self._drop_fragment_lease(frag)
                    frag.state = DONE

    # -- sweeps --------------------------------------------------------
    def submit_sweep(self, doc: dict) -> dict:
        """Admit one sweep (idempotent: same jobs -> same sweep id).

        Validates every job document through the shared
        :func:`~repro.farm.validate.validate_jobspec`, pre-fills results
        from the cache, and cuts the rest into digest-sharded fragments.
        """
        msg = wire.check_submit_sweep(doc)
        specs = [validate_jobspec(job, source=f"jobs[{i}]")
                 for i, job in enumerate(msg["jobs"])]
        n_fragments = msg["fragments"] or self.config.fragments
        if n_fragments <= 0:
            n_fragments = len(specs)
        n_fragments = min(n_fragments, len(specs))
        sweep_id = stable_digest({
            "sweep": [s.digest() for s in specs],
            "fragments": n_fragments})
        with self._cond:
            sweep = self._sweeps.get(sweep_id)
            if sweep is not None:
                return {"id": sweep_id, "outcome": "known",
                        **sweep.to_doc()}
            sweep = SweepState(sweep_id, msg["jobs"], specs, n_fragments,
                               msg["label"])
            self._sweeps[sweep_id] = sweep
            self.registry.inc("dist.sweeps_submitted")
            self._japp("sweep", id=sweep_id, jobs=msg["jobs"],
                       n_fragments=n_fragments, label=msg["label"])
            # cache pre-fill: cached digests are recorded up front, so
            # fragments that are fully warm never get leased at all
            if self.cache is not None:
                for i, spec in enumerate(specs):
                    stats = self.cache.get(spec.digest())
                    if stats is not None:
                        self._record(sweep, i, spec.digest(),
                                     stats.to_dict(), None, 0, 0,
                                     agent="cache", cached=True)
            for frag in sweep.fragments.values():
                if sweep.fragment_recorded(frag):
                    frag.state = DONE
            # durable before the 202: a crash after the ack replays the
            # sweep instead of losing it
            self._jsync()
            self._cond.notify_all()
            return {"id": sweep_id, "outcome": "queued", **sweep.to_doc()}

    def sweep(self, sweep_id: str) -> SweepState:
        with self._lock:
            sweep = self._sweeps.get(sweep_id)
            if sweep is None:
                raise UnknownSweepError(sweep_id)
            return sweep

    def sweep_status(self, sweep_id: str) -> dict:
        with self._lock:
            return self.sweep(sweep_id).to_doc()

    def sweep_results(self, sweep_id: str) -> dict:
        """Every recorded result, in input order (None while pending)."""
        with self._lock:
            sweep = self.sweep(sweep_id)
            return {"id": sweep.id, "complete": sweep.complete,
                    "n_jobs": len(sweep.specs),
                    "results": list(sweep.records)}

    def fragment_status(self, sweep_id: str, fragment_id: int) -> dict:
        """One fragment's liveness — what a reconnecting agent checks
        before re-delivering work it finished across a restart."""
        with self._lock:
            sweep = self.sweep(sweep_id)
            frag = sweep.fragments.get(fragment_id)
            if frag is None:
                raise UnknownSweepError(f"{sweep_id}#{fragment_id}")
            return {"sweep": sweep_id, "fragment": frag.id,
                    "state": frag.state, "epoch": frag.epoch,
                    "recorded": sweep.fragment_recorded(frag)}

    def wait_complete(self, sweep_id: str,
                      timeout: Optional[float] = None) -> bool:
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not self.sweep(sweep_id).complete:
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(0.2 if remaining is None
                                else min(0.2, remaining))
            return True

    # -- agents --------------------------------------------------------
    def register_agent(self, doc: dict) -> dict:
        msg = wire.check_register(doc)
        with self._lock:
            now = self._clock()
            self._n_agents_ever += 1
            agent_id = msg["agent"] or f"agent-{self._n_agents_ever}"
            if agent_id in self._agents:
                agent_id = f"{agent_id}-{self._n_agents_ever}"
            self._agents[agent_id] = AgentRecord(agent_id,
                                                 msg["capacity"], now)
            self._japp("register", agent=agent_id,
                       capacity=msg["capacity"])
            self._jsync()
            self.registry.inc("dist.agents_registered")
            self.registry.gauge("dist.agents_alive").set(len(self._agents))
            self._emit(AgentRegisteredEvent(
                t=self._now_ms(), agent=agent_id,
                capacity=msg["capacity"]))
            return {"agent": agent_id,
                    "lease_ttl_s": self.config.lease_ttl_s,
                    "heartbeat_interval_s":
                        self.config.heartbeat_interval_s}

    def _agent(self, agent_id: str) -> AgentRecord:
        agent = self._agents.get(agent_id)
        if agent is None:
            raise UnknownAgentError(agent_id)
        return agent

    def heartbeat(self, agent_id: str, doc: dict) -> dict:
        """Renew the agent's liveness and every lease it still holds.

        Lease ids the coordinator no longer honors come back in
        ``expired`` so the agent knows its work may be re-executed
        elsewhere (it should still deliver — duplicates are suppressed,
        and its delivery may well win the race).
        """
        msg = wire.check_heartbeat(doc)
        with self._lock:
            agent = self._agent(agent_id)     # 410 -> re-register
            now = self._clock()
            agent.last_seen = now
            agent.n_heartbeats += 1
            self.registry.inc("dist.heartbeats")
            expired = []
            for lease_id in msg["leases"]:
                lease = agent.leases.get(lease_id)
                if lease is None or self._leases.get(lease_id) is not lease:
                    expired.append(lease_id)
                else:
                    lease.deadline = now + self.config.lease_ttl_s
            return {"ok": True, "expired": expired}

    # -- leases --------------------------------------------------------
    def acquire(self, agent_id: str, doc: dict) -> dict:
        """Grant up to ``max_fragments`` pending fragments to the agent.

        Invariant (tested): a fragment is granted only from PENDING, so
        at any instant at most one live lease covers it — re-sharding
        after agent loss can never split one fragment across two leases.
        """
        msg = wire.check_acquire(doc)
        with self._lock:
            agent = self._agent(agent_id)
            now = self._clock()
            agent.last_seen = now
            if self._draining:
                return {"leases": [], "idle": True, "draining": True}
            granted = []
            for sweep in self._sweeps.values():
                if len(granted) >= msg["max_fragments"]:
                    break
                if sweep.complete:
                    continue
                for frag in sweep.fragments.values():
                    if len(granted) >= msg["max_fragments"]:
                        break
                    if frag.state != PENDING:
                        continue
                    assert frag.lease is None, \
                        "PENDING fragment with a live lease"
                    self._n_leases_ever += 1
                    lease = Lease(f"lease-{self._n_leases_ever}",
                                  agent_id, sweep.id, frag.id,
                                  frag.epoch, now,
                                  self.config.lease_ttl_s)
                    frag.state = LEASED
                    frag.lease = lease
                    frag.attempts += 1
                    agent.leases[lease.id] = lease
                    self._leases[lease.id] = lease
                    self._japp("lease", lease=lease.id, agent=agent_id,
                               sweep=sweep.id, fragment=frag.id,
                               epoch=frag.epoch)
                    self.registry.inc("dist.leases_granted")
                    self._emit(LeaseGrantedEvent(
                        t=self._now_ms(), agent=agent_id, lease=lease.id,
                        fragment=frag.id, epoch=frag.epoch,
                        n_jobs=len(frag.indices)))
                    jobs = [{"index": i, "spec": sweep.docs[i]}
                            for i in frag.indices
                            if sweep.records[i] is None]
                    granted.append(wire.lease_doc(
                        lease.id, sweep.id, frag.id, frag.epoch, jobs))
            if granted:
                # durable before the grant leaves: a restarted
                # coordinator honors every lease an agent is holding
                self._jsync()
            self._update_gauges()
            # idle means "the cluster's work is finished", not "nothing
            # submitted yet" — an --exit-when-idle agent that starts
            # before the first sweep must wait for it
            idle = (not granted and bool(self._sweeps)
                    and all(s.complete for s in self._sweeps.values()))
            return {"leases": granted, "idle": idle, "draining": False}

    def release(self, lease_id: str) -> None:
        """Drop a lease without requeueing (its fragment completed)."""
        with self._lock:
            lease = self._leases.pop(lease_id, None)
            if lease is None:
                return
            agent = self._agents.get(lease.agent)
            if agent is not None:
                agent.leases.pop(lease_id, None)
            self._japp("expire", lease=lease_id, sweep=lease.sweep,
                       fragment=lease.fragment, reason="released",
                       requeued=False, epoch=lease.epoch)
            self._jsync()
            self._update_gauges()

    def _expire_lease(self, lease: Lease, reason: str) -> None:
        # caller holds the lock
        self._leases.pop(lease.id, None)
        agent = self._agents.get(lease.agent)
        if agent is not None:
            agent.leases.pop(lease.id, None)
        sweep = self._sweeps.get(lease.sweep)
        frag = (sweep.fragments.get(lease.fragment)
                if sweep is not None else None)
        requeued = False
        if frag is not None and frag.lease is lease:
            frag.lease = None
            now = self._clock()
            self.registry.inc("dist.leases_expired", reason=reason)
            self._emit(LeaseExpiredEvent(
                t=self._now_ms(), agent=lease.agent, lease=lease.id,
                fragment=frag.id, epoch=lease.epoch,
                age_ms=int((now - lease.granted) * 1000)))
            if sweep.fragment_recorded(frag):
                frag.state = DONE
            else:
                # back to the queue with a bumped epoch: the next grant
                # is distinguishable from the zombie's, and exactly-once
                # recording makes the re-execution safe
                frag.state = PENDING
                frag.epoch += 1
                requeued = True
                self.registry.inc("dist.fragments_requeued",
                                  reason=reason)
                self._emit(FragmentRequeuedEvent(
                    t=self._now_ms(), fragment=frag.id, epoch=frag.epoch,
                    n_jobs=len(frag.indices), reason=reason))
        self._japp("expire", lease=lease.id, sweep=lease.sweep,
                   fragment=lease.fragment, reason=reason,
                   requeued=requeued,
                   epoch=frag.epoch if frag is not None else lease.epoch)

    def reap(self) -> int:
        """Expire overdue leases and lost agents; returns expiries."""
        with self._cond:
            now = self._clock()
            n = 0
            for lease in [l for l in self._leases.values()
                          if l.deadline < now]:
                self._expire_lease(lease, "lease_expired")
                n += 1
            agent_ttl = (self.config.lease_ttl_s
                         * self.config.agent_ttl_factor)
            n_lost = 0
            for agent in [a for a in self._agents.values()
                          if now - a.last_seen > agent_ttl]:
                n_lost += 1
                leases = list(agent.leases.values())
                for lease in leases:
                    self._expire_lease(lease, "agent_lost")
                    n += 1
                del self._agents[agent.id]
                self._japp("agent_lost", agent=agent.id)
                self.registry.inc("dist.agents_lost")
                self._emit(AgentLostEvent(t=self._now_ms(),
                                          agent=agent.id,
                                          n_leases=len(leases)))
            if n or n_lost:
                self._jsync()
                self._update_gauges()
                self._cond.notify_all()
            return n

    def _update_gauges(self) -> None:
        self.registry.gauge("dist.agents_alive").set(len(self._agents))
        self.registry.gauge("dist.leases_live").set(len(self._leases))
        self.registry.gauge("dist.fragments_pending").set(sum(
            1 for s in self._sweeps.values()
            for f in s.fragments.values() if f.state == PENDING))

    # -- results -------------------------------------------------------
    def deliver(self, lease_id: str, doc: dict) -> dict:
        """Record one fragment's results — each job exactly once.

        Deliveries are honored even from expired or unknown leases (the
        zombie case): the results are provably identical — same content
        address, same deterministic simulator — so the first to arrive
        wins and the rest are suppressed, never double-counted.
        """
        msg = wire.check_deliver(doc)
        with self._cond:
            sweep = self._sweeps.get(msg["sweep"])
            if sweep is None:
                raise UnknownSweepError(msg["sweep"])
            frag = sweep.fragments.get(msg["fragment"])
            if frag is None:
                raise UnknownSweepError(
                    f"{msg['sweep']}#{msg['fragment']}")
            agent = self._agents.get(msg["agent"])
            if agent is not None:
                agent.last_seen = self._clock()
                agent.n_delivered += len(msg["results"])
            accepted = duplicates = 0
            for r in msg["results"]:
                idx = r["index"]
                if not 0 <= idx < len(sweep.specs):
                    raise wire.WireError(f"deliver: bad job index {idx}")
                expect = sweep.specs[idx].digest()
                if r["digest"] != expect:
                    raise wire.WireError(
                        f"deliver: digest mismatch at index {idx}: "
                        f"got {r['digest'][:12]}, leased {expect[:12]}")
                if sweep.records[idx] is None:
                    self._record(sweep, idx, r["digest"], r["stats"],
                                 r["error"], r["wall_ms"], r["attempts"],
                                 agent=msg["agent"], epoch=msg["epoch"])
                    accepted += 1
                else:
                    duplicates += 1
                    match = (sweep.records[idx].get("stats")
                             == r["stats"])
                    self.registry.inc("dist.duplicates_suppressed")
                    if not match:
                        self.registry.inc("dist.result_mismatch")
                    self._emit(DuplicateResultEvent(
                        t=self._now_ms(), digest=r["digest"],
                        fragment=frag.id, agent=msg["agent"],
                        match=match))
            fragment_done = sweep.fragment_recorded(frag)
            if fragment_done and frag.state != DONE:
                frag.state = DONE
                lease = frag.lease
                if lease is not None:
                    frag.lease = None
                    self._leases.pop(lease.id, None)
                    if agent is not None:
                        agent.leases.pop(lease.id, None)
                    self._japp("expire", lease=lease.id,
                               sweep=sweep.id, fragment=frag.id,
                               reason="delivered", requeued=False,
                               epoch=frag.epoch)
                self.registry.inc("dist.fragments_done")
                self._emit(FragmentDoneEvent(
                    t=self._now_ms(), fragment=frag.id,
                    epoch=msg["epoch"], agent=msg["agent"],
                    n_jobs=len(frag.indices)))
            # durable before the ack: an acknowledged delivery is never
            # re-recorded by a restarted coordinator (exactly once)
            self._jsync()
            self._update_gauges()
            self._cond.notify_all()
            return {"accepted": accepted, "duplicates": duplicates,
                    "fragment_done": fragment_done,
                    "sweep_complete": sweep.complete}

    def _record(self, sweep: SweepState, idx: int, digest: str,
                stats: Optional[dict], error: Optional[str],
                wall_ms: int, attempts: int, *, agent: str,
                epoch: int = 0, cached: bool = False) -> None:
        # caller holds the lock; records[idx] is None (checked by caller
        # for deliveries, structurally true at submit pre-fill)
        spec = sweep.specs[idx]
        sweep.records[idx] = {
            "index": idx, "digest": digest, "label": spec.display,
            "app": spec.app, "variant": spec.variant,
            "n_cores": spec.resolved_config().n_cores,
            "stats": stats, "error": error, "wall_ms": wall_ms,
            "attempts": attempts, "agent": agent, "epoch": epoch,
            "cached": cached,
        }
        sweep.n_recorded += 1
        self._japp("record", sweep=sweep.id, record=sweep.records[idx])
        if error is not None:
            sweep.n_failed += 1
            self.registry.inc("dist.results_recorded", status="failed")
        else:
            self.registry.inc("dist.results_recorded",
                              status="cached" if cached else "done")
            if (self.cache is not None and not cached and stats is not None
                    and stats.get("failure") is None):
                # atomic write-then-rename; a concurrent writer of the
                # same digest reconciles to byte-identical content
                from ...core.stats import RunStats
                self.cache.put(spec, RunStats.from_dict(stats),
                               wall_s=wall_ms / 1000.0)

    # -- introspection -------------------------------------------------
    def healthy(self) -> dict:
        with self._lock:
            pending = sum(1 for s in self._sweeps.values()
                          for f in s.fragments.values()
                          if f.state == PENDING)
            leased = sum(1 for s in self._sweeps.values()
                         for f in s.fragments.values()
                         if f.state == LEASED)
            return {"ok": True,
                    "state": "draining" if self._draining else "serving",
                    "uptime_s": round(time.monotonic() - self.t0, 3),
                    "agents": len(self._agents),
                    "leases": len(self._leases),
                    "sweeps": len(self._sweeps),
                    "recovered": self.recovery["recovered"],
                    "fragments": {"pending": pending, "leased": leased}}

    def summary(self) -> dict:
        with self._lock:
            return {
                "uptime_s": round(time.monotonic() - self.t0, 3),
                "draining": self._draining,
                "agents": {a.id: a.to_doc()
                           for a in sorted(self._agents.values(),
                                           key=lambda a: a.id)},
                "sweeps": {s.id: s.to_doc()
                           for s in self._sweeps.values()},
                "cache": self.cache.stats() if self.cache else None,
                "recovery": dict(self.recovery),
                "auth_required": bool(self.config.auth_token),
                "journal": (self._journal.stats()
                            if self._journal is not None else None),
            }

    def metrics_snapshot(self) -> dict:
        with self._lock:
            return self.registry.snapshot()


# -- HTTP front --------------------------------------------------------
class CoordinatorServer(JsonHttpServer):
    """The coordinator's JSON-over-HTTP front (see module docs).

    Routes::

        POST /v1/sweeps                     submit a sweep (idempotent)
        GET  /v1/sweeps/{id}                sweep status
        GET  /v1/sweeps/{id}/results        recorded results, input order
        GET  /v1/sweeps/{id}/fragments/{f}  one fragment's state + epoch
        POST /v1/agents/register            join; returns id + ttls
        POST /v1/agents/{id}/heartbeat      renew leases
        POST /v1/agents/{id}/leases         acquire fragments
        POST /v1/leases/{lease}/results     deliver fragment results
        GET  /healthz                       coordinator state
        GET  /metrics                       dist.* counters + summary

    With ``config.auth_token`` set, every route (healthz included)
    requires a matching ``X-Repro-Token`` header and 401s otherwise.
    """

    SCHEMA = wire.DIST_SCHEMA

    def __init__(self, coordinator: Coordinator,
                 config: CoordinatorConfig) -> None:
        super().__init__(config.host, config.port,
                         auth_token=config.auth_token)
        self.coordinator = coordinator
        self.config = config

    def _on_auth_reject(self, req: Request) -> None:
        self.coordinator.registry.inc("dist.auth_reject")

    async def start(self) -> None:
        await super().start()
        self.coordinator.start()

    def _translate_error(self, exc: Exception):
        if isinstance(exc, wire.WireError):
            return 400, {"error": str(exc), "source": "wire"}, None
        if isinstance(exc, DistError):
            return exc.status, {"error": str(exc)}, None
        from ..validate import SpecValidationError
        if isinstance(exc, SpecValidationError):
            return 400, {"error": str(exc.what), "source": "spec",
                         "errors": exc.errors}, None
        return None

    async def _blocking(self, fn, *args):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, fn, *args)

    async def _dispatch(self, req: Request, writer) -> bool:
        c = self.coordinator
        m, path = req.method, req.path.rstrip("/") or "/"
        if path == "/healthz" and m == "GET":
            self._send(writer, 200, c.healthy())
        elif path == "/metrics" and m == "GET":
            self._send(writer, 200, {
                "schema": "repro.dist-metrics/1",
                "dist": c.summary(),
                "metrics": c.metrics_snapshot()})
        elif path == "/v1/sweeps" and m == "POST":
            doc = await self._blocking(c.submit_sweep, req.json())
            self._send(writer, 202 if doc["outcome"] == "queued" else 200,
                       doc)
        elif path.startswith("/v1/sweeps/") and m == "GET":
            rest = path[len("/v1/sweeps/"):]
            sweep_id, _, sub = rest.partition("/")
            if sub == "":
                self._send(writer, 200, c.sweep_status(sweep_id))
            elif sub == "results":
                self._send(writer, 200,
                           await self._blocking(c.sweep_results, sweep_id))
            elif sub.startswith("fragments/"):
                try:
                    fid = int(sub[len("fragments/"):])
                except ValueError:
                    return await self._not_found(req, writer)
                self._send(writer, 200, c.fragment_status(sweep_id, fid))
            else:
                return await self._not_found(req, writer)
        elif path == "/v1/agents/register" and m == "POST":
            self._send(writer, 200, c.register_agent(req.json()))
        elif path.startswith("/v1/agents/") and m == "POST":
            rest = path[len("/v1/agents/"):]
            agent_id, _, sub = rest.partition("/")
            if sub == "heartbeat":
                self._send(writer, 200, c.heartbeat(agent_id, req.json()))
            elif sub == "leases":
                self._send(writer, 200,
                           await self._blocking(c.acquire, agent_id,
                                                req.json()))
            else:
                return await self._not_found(req, writer)
        elif path.startswith("/v1/leases/") and m == "POST":
            rest = path[len("/v1/leases/"):]
            lease_id, _, sub = rest.partition("/")
            if sub != "results":
                return await self._not_found(req, writer)
            self._send(writer, 200,
                       await self._blocking(c.deliver, lease_id,
                                            req.json()))
        else:
            return await self._not_found(req, writer)
        await writer.drain()
        return True


class CoordinatorHandle:
    """A coordinator server on a background thread (tests, benchmarks,
    and ``repro sweep --dist`` local clusters)."""

    def __init__(self, coordinator: Coordinator,
                 server: CoordinatorServer, loop, thread) -> None:
        self.coordinator = coordinator
        self.server = server
        self.loop = loop
        self.thread = thread

    @property
    def url(self) -> str:
        return f"http://{self.server.config.host}:{self.server.port}"

    def stop(self) -> None:
        fut = asyncio.run_coroutine_threadsafe(self.server.close(),
                                               self.loop)
        fut.result(timeout=10)
        self.coordinator.stop()
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)


def start_coordinator_in_thread(
        config: CoordinatorConfig, *,
        coordinator: Optional[Coordinator] = None) -> CoordinatorHandle:
    """Start a coordinator on a daemon thread; returns once listening.

    ``config.port`` may be 0 to pick a free port (see ``handle.url``).
    """
    coord = coordinator or Coordinator(config)
    server = CoordinatorServer(coord, config)
    loop, thread = run_loop_in_thread(server, name="dist-coordinator")
    return CoordinatorHandle(coord, server, loop, thread)


async def _amain(config: CoordinatorConfig) -> int:
    coordinator = Coordinator(config)
    server = CoordinatorServer(coordinator, config)
    await server.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:      # pragma: no cover (non-unix)
            pass
    rec = coordinator.recovery
    print(f"[coordinator] listening on http://{config.host}:{server.port} "
          f"(lease ttl {config.lease_ttl_s}s, heartbeat "
          f"{config.heartbeat_interval_s}s, cache="
          f"{config.cache_dir or 'off'}, journal="
          f"{config.journal_dir or 'off'}, auth="
          f"{'required' if config.auth_token else 'off'})",
          file=sys.stderr, flush=True)
    if rec["recovered"]:
        print(f"[coordinator] recovered from journal: "
              f"{rec['replayed_records']} records replayed "
              f"(snapshot seq {rec['snapshot_seq']}), "
              f"{rec['resumed_sweeps']} sweeps resumed, "
              f"{rec['leases_restored']} leases restored, "
              f"{rec['leases_discarded']} discarded, "
              f"{rec['cache_refills']} cache refills"
              + (", torn tail truncated" if rec["truncated_tail"]
                 else ""),
              file=sys.stderr, flush=True)
    await stop.wait()
    print("[coordinator] signal received; shutting down",
          file=sys.stderr, flush=True)
    await server.close()
    coordinator.stop()
    with coordinator._lock:
        incomplete = sum(1 for s in coordinator._sweeps.values()
                         if not s.complete)
    return 0 if incomplete == 0 else 3


def coordinator_forever(config: CoordinatorConfig) -> int:
    """Run until SIGTERM/SIGINT; exit 0 when every sweep completed,
    3 when shut down with incomplete sweeps."""
    try:
        return asyncio.run(_amain(config))
    except KeyboardInterrupt:            # pragma: no cover
        return 0


def _json_default(obj):                  # pragma: no cover - debug aid
    return repr(obj)


if __name__ == "__main__":               # pragma: no cover - debug aid
    cfg = CoordinatorConfig(port=0)
    handle = start_coordinator_in_thread(cfg)
    print(json.dumps({"url": handle.url}))
    try:
        while True:
            time.sleep(1)
    except KeyboardInterrupt:
        handle.stop()
