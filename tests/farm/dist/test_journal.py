"""Journal unit + property tests: framing, torn tails, compaction.

The property that matters (hypothesis): truncate the WAL at *any* byte
— a record boundary, mid-frame, mid-checksum — and replay yields a
prefix of the true record history, never an exception and never a
record that was not appended. That is exactly the crash-during-write
contract the coordinator's recovery leans on.
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.farm.dist.journal import (JOURNAL_SCHEMA, SNAPSHOT_NAME,
                                     WAL_NAME, JournalError, JournalWriter,
                                     frame_record, parse_frame,
                                     read_journal, resume)


def wal_path(root):
    return os.path.join(str(root), WAL_NAME)


def records_of(n):
    return [{"kind": "record", "doc": {"i": i, "payload": "x" * (i % 7)}}
            for i in range(n)]


def write_records(root, recs, *, fsync=False):
    writer = JournalWriter(str(root), fsync=fsync)
    for r in recs:
        writer.append(r["kind"], r["doc"])
    writer.close()
    return writer


class TestFraming:
    def test_round_trip(self):
        payload = json.dumps({"seq": 3, "kind": "lease",
                              "lease": "lease-1"}).encode()
        assert parse_frame(frame_record(payload)) == {
            "seq": 3, "kind": "lease", "lease": "lease-1"}

    def test_missing_newline_is_torn(self):
        framed = frame_record(b'{"seq": 1, "kind": "sweep"}')
        with pytest.raises(JournalError, match="torn"):
            parse_frame(framed[:-1])

    def test_length_mismatch_detected(self):
        framed = frame_record(b'{"seq": 1, "kind": "sweep"}')
        torn = framed[:-8] + b"\n"          # lost bytes, kept newline
        with pytest.raises(JournalError, match="length mismatch"):
            parse_frame(torn)

    def test_checksum_mismatch_detected(self):
        framed = bytearray(frame_record(b'{"seq": 1, "kind": "sweep"}'))
        framed[-3] ^= 0xFF                  # flip a payload byte
        with pytest.raises(JournalError, match="checksum"):
            parse_frame(bytes(framed))

    def test_payload_must_carry_seq_and_kind(self):
        with pytest.raises(JournalError, match="seq/kind"):
            parse_frame(frame_record(b'{"seq": 1}'))
        with pytest.raises(JournalError, match="not JSON"):
            parse_frame(frame_record(b"nope"))


class TestWriterReplay:
    def test_appended_records_replay_in_order(self, tmp_path):
        write_records(tmp_path, records_of(5))
        replay = read_journal(str(tmp_path))
        assert [r["i"] for r in replay.records] == list(range(5))
        assert [r["seq"] for r in replay.records] == [1, 2, 3, 4, 5]
        assert not replay.truncated_tail
        assert replay.next_seq == 5

    def test_snapshot_covers_and_resets_the_wal(self, tmp_path):
        writer = JournalWriter(str(tmp_path), fsync=False)
        for r in records_of(3):
            writer.append(r["kind"], r["doc"])
        writer.write_snapshot({"marker": "compacted"})
        writer.append("record", {"i": 99})
        writer.close()
        replay = read_journal(str(tmp_path))
        assert replay.snapshot["state"] == {"marker": "compacted"}
        assert replay.snapshot_seq == 3
        # only the post-snapshot tail replays
        assert [r["i"] for r in replay.records] == [99]
        assert replay.next_seq == 4

    def test_stale_wal_records_below_snapshot_are_skipped(self, tmp_path):
        # a crash between snapshot rename and WAL reset leaves covered
        # records in the WAL; replay must count and skip them
        write_records(tmp_path, records_of(3))
        snap = {"schema": JOURNAL_SCHEMA, "seq": 2, "t": 0.0,
                "state": {}}
        with open(os.path.join(str(tmp_path), SNAPSHOT_NAME), "w") as fh:
            json.dump(snap, fh)
        replay = read_journal(str(tmp_path))
        assert replay.n_covered == 2
        assert [r["i"] for r in replay.records] == [2]

    def test_corrupt_snapshot_raises(self, tmp_path):
        with open(os.path.join(str(tmp_path), SNAPSHOT_NAME), "w") as fh:
            fh.write('{"truncated')
        with pytest.raises(JournalError, match="corrupt snapshot"):
            read_journal(str(tmp_path))

    def test_resume_continues_the_seq(self, tmp_path):
        write_records(tmp_path, records_of(4))
        writer, replay = resume(str(tmp_path), fsync=False)
        assert not replay.truncated_tail
        assert writer.append("record", {"i": 4}) == 5
        writer.close()
        again = read_journal(str(tmp_path))
        assert [r["seq"] for r in again.records] == [1, 2, 3, 4, 5]


class TestTornTail:
    def test_torn_final_record_is_truncated_and_recovered(self, tmp_path):
        write_records(tmp_path, records_of(3))
        good_size = os.path.getsize(wal_path(tmp_path))
        with open(wal_path(tmp_path), "ab") as fh:
            # a crash mid-append: half a frame, no newline
            fh.write(frame_record(b'{"seq": 4, "kind": "record"}')[:-9])
        writer, replay = resume(str(tmp_path), fsync=False)
        assert replay.truncated_tail
        assert [r["seq"] for r in replay.records] == [1, 2, 3]
        # the torn bytes are gone and the writer appends cleanly after
        assert os.path.getsize(wal_path(tmp_path)) == good_size
        writer.append("record", {"i": 3})
        writer.close()
        healed = read_journal(str(tmp_path))
        assert not healed.truncated_tail
        assert [r["seq"] for r in healed.records] == [1, 2, 3, 4]

    def test_garbage_tail_keeps_the_prefix(self, tmp_path):
        write_records(tmp_path, records_of(2))
        with open(wal_path(tmp_path), "ab") as fh:
            fh.write(b"not a frame at all\n")
            fh.write(frame_record(b'{"seq": 9, "kind": "record"}'))
        replay = read_journal(str(tmp_path))
        # replay stops at the first bad line: the seq-9 record after the
        # garbage is NOT trusted (prefix consistency, not salvage)
        assert replay.truncated_tail
        assert [r["seq"] for r in replay.records] == [1, 2]

    def test_non_monotonic_seq_stops_replay(self, tmp_path):
        with open(wal_path(tmp_path), "wb") as fh:
            fh.write(frame_record(b'{"seq": 1, "kind": "record"}'))
            fh.write(frame_record(b'{"seq": 3, "kind": "record"}'))
            fh.write(frame_record(b'{"seq": 2, "kind": "record"}'))
        replay = read_journal(str(tmp_path))
        assert replay.truncated_tail
        assert [r["seq"] for r in replay.records] == [1, 3]


class TestTruncationProperty:
    @settings(max_examples=60, deadline=None)
    @given(n=st.integers(min_value=0, max_value=12),
           cut=st.integers(min_value=0, max_value=2000))
    def test_any_truncation_point_replays_a_prefix(self, tmp_path_factory,
                                                   n, cut):
        root = str(tmp_path_factory.mktemp("wal"))
        write_records(root, records_of(n))
        path = os.path.join(root, WAL_NAME)
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(min(cut, size))
        replay = read_journal(root)          # must never raise
        seqs = [r["seq"] for r in replay.records]
        # a contiguous prefix of the true history, nothing invented
        assert seqs == list(range(1, len(seqs) + 1))
        assert len(seqs) <= n
        # anything short of the full log is flagged unless the cut
        # landed exactly on a record boundary
        if min(cut, size) == size:
            assert not replay.truncated_tail
        # and recovery from the truncated journal is always possible:
        writer, again = resume(root, fsync=False)
        seq = writer.append("record", {"i": "post"})
        writer.close()
        assert seq == len(seqs) + 1
        healed = read_journal(root)
        assert [r["seq"] for r in healed.records] \
            == list(range(1, len(seqs) + 2))
        assert not healed.truncated_tail
