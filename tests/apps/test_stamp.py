"""Tests for the eight STAMP ports (paper Sec. 6.4, Fig. 17)."""

import pytest

from repro.apps import (
    bayes,
    genome,
    intruder,
    kmeans,
    labyrinth,
    ssca2,
    vacation,
    yada,
)

ALL_STAMP = [ssca2, vacation, kmeans, genome, intruder, labyrinth, bayes,
             yada]


@pytest.mark.parametrize("app", ALL_STAMP,
                         ids=[a.__name__.rsplit(".", 1)[-1]
                              for a in ALL_STAMP])
@pytest.mark.parametrize("variant", ["tm", "hwq", "fractal"])
def test_variant_correct(app, variant, run_checked):
    inp = app.make_input()
    run_checked(app, inp, variant, n_cores=16)


@pytest.mark.parametrize("app", [ssca2, vacation, kmeans, genome, intruder],
                         ids=["ssca2", "vacation", "kmeans", "genome",
                              "intruder"])
def test_serial_reference(app, run_serial_checked):
    run_serial_checked(app, app.make_input(), "hwq")


class TestSoftwareQueueTax:
    """The TM variants must lose time to work-queue serialization."""

    @pytest.mark.parametrize("app", [ssca2, vacation, intruder],
                             ids=["ssca2", "vacation", "intruder"])
    def test_tm_slower_than_hwq(self, app, run_checked):
        inp = app.make_input()
        tm = run_checked(app, inp, "tm", n_cores=16)
        hwq = run_checked(app, inp, "hwq", n_cores=16)
        assert tm.makespan > hwq.makespan


class TestNestingBenefit:
    """labyrinth and bayes gain from Fractal nesting (Fig. 14/17)."""

    def test_labyrinth_fractal_beats_flat(self, run_checked):
        inp = labyrinth.make_input()
        flat = run_checked(labyrinth, inp, "hwq", n_cores=16)
        frac = run_checked(labyrinth, inp, "fractal", n_cores=16)
        assert frac.makespan < flat.makespan

    def test_bayes_fractal_beats_flat(self, run_checked):
        inp = bayes.make_input()
        flat = run_checked(bayes, inp, "hwq", n_cores=16)
        frac = run_checked(bayes, inp, "fractal", n_cores=16)
        assert frac.makespan < flat.makespan


class TestAppSpecifics:
    def test_kmeans_matches_integer_oracle(self, run_checked):
        inp = kmeans.make_input(n_points=48, k=3, iterations=2)
        run = run_checked(kmeans, inp, "hwq")
        want_centroids, _ = kmeans.reference(inp)
        for c in range(inp.k):
            assert tuple(run.handles["centroid"].peek(c * 8)) \
                == want_centroids[c]

    def test_genome_rebuilds_the_genome(self, run_checked):
        inp = genome.make_input(genome_len=100, segment_len=10)
        run_checked(genome, inp, "fractal")

    def test_genome_hints_stable_across_hash_seeds(self):
        # Regression: the spatial hints used hash() on segment strings,
        # which is salted per process (PYTHONHASHSEED) — the hint-to-tile
        # mapping, and with it abort counts and makespans, differed on
        # every run of the same seed.
        import os
        import subprocess
        import sys

        snippet = (
            "from repro.apps import genome\n"
            "class _Cell:\n"
            "    def __getattr__(self, name):\n"
            "        return lambda *a, **k: None\n"
            "class _Host:\n"
            "    def __init__(self):\n"
            "        self.hints = []\n"
            "    def dict(self, name, capacity):\n"
            "        return _Cell()\n"
            "    def array(self, name, size):\n"
            "        return _Cell()\n"
            "    def enqueue_root(self, fn, *a, ts=None, hint=None, label=None):\n"
            "        self.hints.append(hint)\n"
            "host = _Host()\n"
            "genome.build(host, genome.make_input(), variant='fractal')\n"
            "print(host.hints)\n"
        )
        outs = []
        for hash_seed in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            proc = subprocess.run([sys.executable, "-c", snippet], env=env,
                                  capture_output=True, text=True, check=True)
            outs.append(proc.stdout)
        assert outs[0] == outs[1]

    def test_intruder_finds_all_attacks(self, run_checked):
        inp = intruder.make_input(n_flows=12, attack_fraction=0.5)
        run = run_checked(intruder, inp, "hwq")
        found = sum(run.handles["verdict"].peek(f * 8)
                    for f in range(inp.n_flows))
        assert found == sum(inp.attacks)

    def test_labyrinth_routes_most_paths(self, run_checked):
        inp = labyrinth.make_input(n_paths=6)
        run = run_checked(labyrinth, inp, "fractal")
        assert labyrinth.check(run.handles, inp) >= 4

    def test_yada_clears_bad_triangles(self, run_checked):
        inp = yada.make_input(n_points=40)
        assert inp.bad, "fixture must contain bad triangles"
        run = run_checked(yada, inp, "hwq")
        assert yada.check(run.handles, inp) >= 1

    def test_bayes_learns_edges(self, run_checked):
        inp = bayes.make_input()
        run = run_checked(bayes, inp, "fractal")
        assert bayes.check(run.handles, inp) > 0

    def test_vacation_books_resources(self, run_checked):
        inp = vacation.make_input(n_txns=32, manage_fraction=0.0)
        run = run_checked(vacation, inp, "hwq")
        assert run.handles["bookings"].len_nonspec() > 0

    def test_ssca2_empty_graph(self, run_checked):
        inp = ssca2.make_input(n_nodes=8, n_edges=8)
        run_checked(ssca2, inp, "hwq")
