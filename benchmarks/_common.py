"""Shared benchmark infrastructure.

Each ``bench_*.py`` regenerates one paper table/figure:

- under ``pytest benchmarks/ --benchmark-only`` it runs a scaled-down
  version of the experiment once per benchmark entry and prints the
  paper-style table (visible with ``-s``; always written to
  ``benchmarks/results/``),
- run directly (``python benchmarks/bench_figXX_*.py``) it executes the
  full sweep.

Set ``REPRO_BENCH_CORES=1,4,16,64,256`` to override the core-count sweep.

Result cache (:mod:`repro.farm`): when ``REPRO_BENCH_CACHE`` is set to a
truthy value (``run_all.py`` does this by default), :func:`run_once`
content-addresses every run and serves repeats from
``benchmarks/results/.cache`` (``REPRO_BENCH_CACHE_DIR`` overrides the
location). Cached runs return identical stats but no live simulator, so
benches that inspect ``run.handles``/``run.sim`` must pass ``live=True``.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Iterable, List, Optional

from repro.bench.harness import AppRun, run_app
from repro.config import SystemConfig

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"

#: default sweep — big enough to show the paper's shapes, small enough
#: for a Python-resident simulator
DEFAULT_CORES = (1, 4, 16, 64)
QUICK_CORES = (1, 16)

#: run_once cache counters for the current process (one bench module)
_CACHE_STATS = {"hits": 0, "misses": 0}
_CACHE = None


def _result_cache():
    """The process-wide ResultCache, or None when caching is off."""
    global _CACHE
    if os.environ.get("REPRO_BENCH_CACHE", "") in ("", "0"):
        return None
    if _CACHE is None:
        from repro.farm import ResultCache
        root = os.environ.get("REPRO_BENCH_CACHE_DIR") or (RESULTS_DIR
                                                           / ".cache")
        _CACHE = ResultCache(root)
    return _CACHE


def cache_stats() -> dict:
    """Hit/miss counts of :func:`run_once` since the last reset."""
    return dict(_CACHE_STATS)


def reset_cache_stats() -> None:
    """Zero the :func:`run_once` cache counters (run_all does this per
    bench module)."""
    _CACHE_STATS["hits"] = 0
    _CACHE_STATS["misses"] = 0


def core_counts(quick: bool = False) -> List[int]:
    env = os.environ.get("REPRO_BENCH_CORES")
    if env:
        return [int(x) for x in env.split(",")]
    return list(QUICK_CORES if quick else DEFAULT_CORES)


def config_for(n_cores: int, *, conflict_mode: str = "bloom",
               use_hints: bool = True, **overrides) -> SystemConfig:
    return SystemConfig.with_cores(n_cores, conflict_mode=conflict_mode,
                                   use_hints=use_hints, **overrides)


def run_once(app, inp, variant: str, n_cores: int, *,
             conflict_mode: str = "bloom", use_hints: bool = True,
             check: bool = True, max_cycles: Optional[int] = None,
             live: bool = False, config: Optional[SystemConfig] = None,
             **build_options) -> AppRun:
    """One simulation run, served from the result cache when enabled.

    ``config`` overrides the default :func:`config_for` construction for
    benches with custom configurations (zooming VT budgets, flattening).
    ``live=True`` bypasses the cache entirely (no lookup, no store) for
    benches that need the in-process simulator afterwards (timelines,
    zoom handles).
    """
    cfg = config or config_for(n_cores, conflict_mode=conflict_mode,
                               use_hints=use_hints)
    cache = None if live else _result_cache()
    if cache is None:
        return run_app(app, inp, variant=variant, n_cores=n_cores,
                       config=cfg, check=check, max_cycles=max_cycles,
                       **build_options)

    from repro.farm import JobSpec
    spec = JobSpec(app=app.__name__, variant=variant, n_cores=n_cores,
                   config=cfg, input_obj=inp, check=check,
                   max_cycles=max_cycles,
                   build_options=dict(build_options))
    stats = cache.get(spec.digest())
    if stats is not None:
        _CACHE_STATS["hits"] += 1
        return AppRun(app=app.__name__, variant=variant,
                      n_cores=cfg.n_cores, stats=stats, handles={},
                      cached=True)
    _CACHE_STATS["misses"] += 1
    run = run_app(app, inp, variant=variant, n_cores=n_cores, config=cfg,
                  check=check, max_cycles=max_cycles, **build_options)
    if run.stats.completed:
        cache.put(spec, run.stats)
    return run


def emit(name: str, text: str,
         runs: Optional[Iterable[AppRun]] = None) -> None:
    """Print a result table and persist it under benchmarks/results/.

    When ``runs`` is given, the structured stats are also written to
    ``results/{name}.json`` (one ``RunStats.to_dict()`` per run), so
    downstream consumers (collect_experiments.py) can rebuild tables from
    data instead of scraping the text.
    """
    print(f"\n===== {name} =====")
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if runs is not None:
        doc = {"schema": "repro.bench-runs/1",
               "runs": [{"app": r.app.rsplit(".", 1)[-1],
                         "variant": r.variant,
                         "n_cores": r.n_cores,
                         "stats": r.stats.to_dict()} for r in runs]}
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(doc, indent=2) + "\n")


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark (simulations are
    deterministic; repetition only burns time)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
