"""A tiny app module (repro.apps convention) for farm tests.

Fast deterministic simulation plus controllable failure modes, driven by
a scratch directory shipped in the input (so the behaviour survives the
trip through worker processes):

- ``fail_times=N``: the first N ``build`` calls raise RuntimeError — the
  farm's retry path. Attempts are counted with marker files in
  ``scratch`` because each attempt may land in a different process.
- ``crash_times=N``: the first N ``build`` calls ``os._exit`` the whole
  process — the worker-crash/pool-rebuild path. Never use inline.
"""

from __future__ import annotations

import os
import pathlib
from dataclasses import dataclass
from typing import Dict, Optional

from repro.vt import Ordering


@dataclass
class FakeInput:
    n_tasks: int = 8
    work_cycles: int = 100
    fail_times: int = 0
    crash_times: int = 0
    scratch: Optional[str] = None


def make_input(n_tasks: int = 8, work_cycles: int = 100,
               fail_times: int = 0, crash_times: int = 0,
               scratch: Optional[str] = None) -> FakeInput:
    return FakeInput(n_tasks, work_cycles, fail_times, crash_times, scratch)


def _attempt_number(scratch: str, kind: str) -> int:
    """Count this call via a marker file; returns 1 for the first call."""
    root = pathlib.Path(scratch)
    root.mkdir(parents=True, exist_ok=True)
    n = len(list(root.glob(f"{kind}-*"))) + 1
    (root / f"{kind}-{n}-{os.getpid()}").touch()
    return n


def build(host, inp: FakeInput, variant: str = "fractal") -> Dict:
    if inp.scratch:
        if inp.crash_times and (_attempt_number(inp.scratch, "crash")
                                <= inp.crash_times):
            os._exit(3)
        if inp.fail_times and (_attempt_number(inp.scratch, "fail")
                               <= inp.fail_times):
            raise RuntimeError("transient fake-app failure")
    done = host.array("fake.done", inp.n_tasks * 8)

    def task(ctx, i):
        ctx.compute(inp.work_cycles)
        done.set(ctx, i * 8, 1)

    for i in range(inp.n_tasks):
        host.enqueue_root(task, i, label="fake")
    return {"done": done, "input": inp}


def root_ordering(variant: str) -> Ordering:
    return Ordering.UNORDERED


def check(handles: Dict, inp: FakeInput) -> int:
    done = handles["done"]
    for i in range(inp.n_tasks):
        if done.peek(i * 8) != 1:
            raise AssertionError(f"task {i} never ran")
    return inp.n_tasks
