"""Typed, timestamped simulation events (the telemetry wire format).

Every observable state transition of a run — enqueues, dispatches,
finishes, aborts (with cause), squashes, conflicts (with addresses and
VTs), commits, spills, zooms, tiebreaker wraparounds, GVT ticks — is one
:class:`Event` subclass. Producers construct events only when the run's
:class:`repro.telemetry.bus.EventBus` has subscribers, so a disabled bus
costs one truthiness check per site.

Each event serializes to a flat JSON-safe dict (``to_dict``) whose
``kind`` field selects the class; :data:`EVENT_SCHEMA` maps every kind to
its required field names and is what the JSONL validator and the CI smoke
job check against.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import ClassVar, Dict, List, Optional, Tuple, Type


@dataclass
class Event:
    """Base event: ``t`` is the simulated cycle of the occurrence."""

    KIND: ClassVar[str] = "event"

    t: int

    def to_dict(self) -> dict:
        d = {"kind": self.KIND}
        for f in fields(self):
            d[f.name] = getattr(self, f.name)
        return d

    @property
    def kind(self) -> str:
        return self.KIND


@dataclass
class EnqueueEvent(Event):
    """A task entered a tile's task queue (creation or re-enqueue)."""

    KIND: ClassVar[str] = "enqueue"

    tid: int
    label: str
    tile: int
    depth: int
    parent: Optional[int]


@dataclass
class DispatchEvent(Event):
    """A core started executing one attempt of a task."""

    KIND: ClassVar[str] = "dispatch"

    tid: int
    label: str
    core: int
    tile: int
    attempt: int


@dataclass
class FinishEvent(Event):
    """An attempt ran to completion (now awaiting commit)."""

    KIND: ClassVar[str] = "finish"

    tid: int
    core: int
    cycles: int


@dataclass
class CommitEvent(Event):
    """The GVT frontier committed a finished task."""

    KIND: ClassVar[str] = "commit"

    tid: int
    label: str
    core: int
    start: int
    duration: int
    depth: int


@dataclass
class AbortEvent(Event):
    """A speculative attempt was rolled back.

    ``executed`` is the wasted work in cycles; ``parked`` marks zoom parks
    (attempt rolled back to wait for a zoom — not a counted abort);
    ``cascade``/``hop`` place the event inside one abort cascade
    (``hop`` = distance from the cascade's seed victims, -1 = no cascade).
    """

    KIND: ClassVar[str] = "abort"

    tid: int
    label: str
    core: int
    start: int
    executed: int
    reason: str
    parked: bool
    cascade: int
    hop: int


@dataclass
class SquashEvent(Event):
    """A task was discarded because its parent aborted (no re-execution)."""

    KIND: ClassVar[str] = "squash"

    tid: int
    label: str
    reason: str
    cascade: int
    hop: int


@dataclass
class ConflictEvent(Event):
    """A memory conflict: the access that triggered an abort decision.

    ``line`` is the conflicting cache line; ``cause`` is one of
    ``read-write`` / ``write`` / ``premature-access`` / ``false-positive``;
    ``tid``/``vt``/``core`` describe the accessor, the ``victim*`` lists
    the tasks chosen to die (VT order decides).
    """

    KIND: ClassVar[str] = "conflict"

    line: int
    cause: str
    tid: int
    vt: str
    core: Optional[int]
    victims: List[int]
    victim_vts: List[str]
    victim_cores: List[Optional[int]]


@dataclass
class SpillEvent(Event):
    """A coalescer stored tasks to memory or a splitter restored them."""

    KIND: ClassVar[str] = "spill"

    tile: int
    op: str              # "coalescer" | "splitter"
    n_tasks: int
    duration: int


@dataclass
class ZoomEvent(Event):
    """A zoom-in/out completed; ``depth`` is the new zoom-stack depth."""

    KIND: ClassVar[str] = "zoom"

    direction: str       # "in" | "out"
    depth: int
    n_spilled: int


@dataclass
class WraparoundEvent(Event):
    """The tiebreaker allocator wrapped and compacted all live VTs."""

    KIND: ClassVar[str] = "wraparound"

    n_live: int


@dataclass
class GvtTickEvent(Event):
    """One GVT arbiter update (every ``commit_interval`` cycles)."""

    KIND: ClassVar[str] = "gvt_tick"

    n_live: int
    n_finished: int
    commits: int


@dataclass
class DivertEvent(Event):
    """The hint scheduler load-balanced a task away from its home tile."""

    KIND: ClassVar[str] = "divert"

    hint: int
    home: int
    tile: int


@dataclass
class FaultInjectedEvent(Event):
    """The fault injector fired at one of its sites (see repro.faults)."""

    KIND: ClassVar[str] = "fault_injected"

    site: str            # "task_exception" | "conflict" | "slow_task"
    tid: int
    label: str
    attempt: int
    detail: str


@dataclass
class RetryBackoffEvent(Event):
    """An aborted attempt was requeued with an exponential-backoff delay."""

    KIND: ClassVar[str] = "retry_backoff"

    tid: int
    label: str
    attempt: int
    delay: int
    reason: str


@dataclass
class LivelockThrottleEvent(Event):
    """The livelock detector changed the dispatch throttle.

    ``action`` is ``"throttle"`` (one task per tile from now on) or
    ``"release"`` (normal dispatch restored); the rates describe the
    sliding window that drove the decision.
    """

    KIND: ClassVar[str] = "livelock_throttle"

    action: str
    abort_rate: float
    window_aborts: int
    window_commits: int


@dataclass
class SafeModeEnterEvent(Event):
    """Abort-storm escalation: execution is now fully serialized."""

    KIND: ClassVar[str] = "safe_mode_enter"

    abort_rate: float
    n_live: int
    cause: str           # "livelock" | "queue_overflow"


@dataclass
class SafeModeExitEvent(Event):
    """Safe mode released after the required serialized commits."""

    KIND: ClassVar[str] = "safe_mode_exit"

    commits: int
    cycles: int          # cycles spent serialized


@dataclass
class QueuePressureEvent(Event):
    """A task queue exceeded its hard capacity and degradation kicked in.

    ``action`` is ``"emergency_spill"``, ``"safe_mode"`` or ``"fail"``.
    """

    KIND: ClassVar[str] = "queue_pressure"

    tile: int
    pending: int
    capacity: int
    action: str


@dataclass
class WatchdogEvent(Event):
    """The resilience watchdog stopped the run (partial stats returned)."""

    KIND: ClassVar[str] = "watchdog_fire"

    limit_kind: str      # "max_cycles" | "wall_clock"
    limit: float
    n_live: int


# --- farm events (repro.farm) -----------------------------------------
# For these, ``t`` is milliseconds since the farm started (wall clock),
# not a simulated cycle — farm events describe the experiment harness,
# not the simulated machine.


@dataclass
class JobStartEvent(Event):
    """The farm submitted one attempt of a job to a worker."""

    KIND: ClassVar[str] = "job_start"

    digest: str
    app: str
    variant: str
    n_cores: int
    attempt: int


@dataclass
class JobDoneEvent(Event):
    """A job finished (or exhausted its retries); ``error`` is "" on
    success."""

    KIND: ClassVar[str] = "job_done"

    digest: str
    ok: bool
    cached: bool
    wall_ms: int
    error: str


@dataclass
class CacheHitEvent(Event):
    """A job was satisfied from the result cache without executing."""

    KIND: ClassVar[str] = "cache_hit"

    digest: str
    app: str
    variant: str
    n_cores: int


@dataclass
class WorkerCrashEvent(Event):
    """A farm worker process died; its in-flight jobs were requeued."""

    KIND: ClassVar[str] = "worker_crash"

    n_inflight: int
    detail: str


# --- serve events (repro.serve) ---------------------------------------
# ``t`` is milliseconds since the server started (wall clock), like the
# farm events: these describe the service, not the simulated machine.


@dataclass
class JobQueuedEvent(Event):
    """A submission was admitted into a tenant's queue."""

    KIND: ClassVar[str] = "job_queued"

    digest: str
    tenant: str
    queue_depth: int


@dataclass
class JobCoalescedEvent(Event):
    """A submission matched an in-flight (or completed) job and was
    answered by it instead of executing again."""

    KIND: ClassVar[str] = "job_coalesced"

    digest: str
    tenant: str
    n_submitted: int


@dataclass
class AdmissionRejectEvent(Event):
    """A submission was rejected at admission (429).

    ``reason`` is ``"rate"`` (token bucket empty) or ``"queue"`` (tenant
    queue quota full); ``retry_after`` is the suggested backoff in
    seconds (the Retry-After header value).
    """

    KIND: ClassVar[str] = "admission_reject"

    tenant: str
    reason: str
    retry_after: float


@dataclass
class ServeDrainEvent(Event):
    """The server started (or finished) its graceful drain.

    ``phase`` is ``"begin"`` / ``"done"``; ``n_pending`` counts jobs
    still queued or running at that moment.
    """

    KIND: ClassVar[str] = "serve_drain"

    phase: str
    n_pending: int


# --- dist events (repro.farm.dist) ------------------------------------
# ``t`` is milliseconds since the coordinator started (wall clock).


@dataclass
class AgentRegisteredEvent(Event):
    """A worker agent joined the coordinator."""

    KIND: ClassVar[str] = "agent_registered"

    agent: str
    capacity: int


@dataclass
class AgentLostEvent(Event):
    """An agent missed enough heartbeats to be declared dead; its live
    leases were expired."""

    KIND: ClassVar[str] = "agent_lost"

    agent: str
    n_leases: int


@dataclass
class LeaseGrantedEvent(Event):
    """The coordinator leased one fragment to an agent."""

    KIND: ClassVar[str] = "lease_granted"

    agent: str
    lease: str
    fragment: int
    epoch: int
    n_jobs: int


@dataclass
class LeaseExpiredEvent(Event):
    """A lease's heartbeat TTL lapsed; its fragment goes back to the
    pending queue with a bumped epoch."""

    KIND: ClassVar[str] = "lease_expired"

    agent: str
    lease: str
    fragment: int
    epoch: int
    age_ms: int


@dataclass
class FragmentRequeuedEvent(Event):
    """A fragment lost its lease and was requeued for re-execution."""

    KIND: ClassVar[str] = "fragment_requeued"

    fragment: int
    epoch: int
    n_jobs: int
    reason: str          # "lease_expired" | "agent_lost" | "released"


@dataclass
class FragmentDoneEvent(Event):
    """Every job of a fragment has a recorded result."""

    KIND: ClassVar[str] = "fragment_done"

    fragment: int
    epoch: int
    agent: str
    n_jobs: int


@dataclass
class DuplicateResultEvent(Event):
    """A delivery carried a result that was already recorded; it was
    suppressed (never double-counted). ``match`` is False when the
    duplicate's stats differed from the recorded ones — a determinism
    violation that the chaos harness asserts never happens."""

    KIND: ClassVar[str] = "duplicate_result"

    digest: str
    fragment: int
    agent: str
    match: bool


# --- speculative-for events (repro.specfor) ---------------------------


@dataclass
class SpecForRoundEvent(Event):
    """One reserve→check→commit round of a :mod:`repro.specfor` engine.

    Emitted by the round controller via the deferred ``ctx.emit`` path,
    so ``t`` is the cycle the controller *committed* (aborted attempts
    never publish). ``size`` = iterations active this round (``fresh``
    of them newly injected); each is then ``committed`` (commit step
    succeeded), ``filtered`` (reserve step declared it done without a
    commit), or ``carried`` into the next round after losing a
    reservation. ``done``/``total`` track overall progress and ``stage``
    is the livelock ladder rung (0 full rounds, 1 halved, 2 serialized).
    """

    KIND: ClassVar[str] = "specfor_round"

    engine: str
    round: int
    size: int
    fresh: int
    committed: int
    filtered: int
    carried: int
    done: int
    total: int
    stage: int

    def fold_metrics(self, metrics) -> None:
        """Commit-time counter folds (see ``TaskContext.emit``)."""
        metrics.inc("specfor_rounds", engine=self.engine)
        if self.committed:
            metrics.inc("specfor_commits", self.committed,
                        engine=self.engine)
        if self.carried:
            metrics.inc("specfor_reserve_failures", self.carried,
                        engine=self.engine)


#: every concrete event class, keyed by its wire ``kind``
EVENT_TYPES: Dict[str, Type[Event]] = {
    cls.KIND: cls
    for cls in (EnqueueEvent, DispatchEvent, FinishEvent, CommitEvent,
                AbortEvent, SquashEvent, ConflictEvent, SpillEvent,
                ZoomEvent, WraparoundEvent, GvtTickEvent, DivertEvent,
                FaultInjectedEvent, RetryBackoffEvent,
                LivelockThrottleEvent, SafeModeEnterEvent,
                SafeModeExitEvent, QueuePressureEvent, WatchdogEvent,
                JobStartEvent, JobDoneEvent, CacheHitEvent,
                WorkerCrashEvent, JobQueuedEvent, JobCoalescedEvent,
                AdmissionRejectEvent, ServeDrainEvent,
                AgentRegisteredEvent, AgentLostEvent, LeaseGrantedEvent,
                LeaseExpiredEvent, FragmentRequeuedEvent,
                FragmentDoneEvent, DuplicateResultEvent,
                SpecForRoundEvent)
}

#: kind -> required field names (the JSONL schema)
EVENT_SCHEMA: Dict[str, Tuple[str, ...]] = {
    kind: tuple(f.name for f in fields(cls))
    for kind, cls in EVENT_TYPES.items()
}


def event_from_dict(d: dict) -> Event:
    """Rebuild a typed event from its ``to_dict`` form (JSONL import)."""
    try:
        cls = EVENT_TYPES[d["kind"]]
    except KeyError:
        raise ValueError(f"unknown event kind {d.get('kind')!r}")
    return cls(**{name: d[name] for name in EVENT_SCHEMA[d["kind"]]})
