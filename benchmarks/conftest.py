"""Make the shared bench helpers importable regardless of invocation dir."""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
