"""Tests for Fractal domain semantics: ordering, atomicity, composition
(paper Sec. 3)."""

import pytest

from repro import Ordering, Simulator, SystemConfig
from repro.errors import DomainError, TimestampError


class TestOrderedRootDomain:
    def test_timestamp_order_respected(self, make_sim):
        sim = make_sim(8, root_ordering=Ordering.ORDERED_32)
        log = sim.array("log", 16)
        pos = sim.cell("pos", 0)

        def t(ctx, i):
            p = pos.get(ctx)
            log.set(ctx, p, i)
            pos.set(ctx, p + 1)

        # enqueue out of order; they must appear to run in timestamp order
        for i in reversed(range(10)):
            sim.enqueue_root(t, i, ts=i)
        sim.run()
        assert log.snapshot()[:10] == list(range(10))
        sim.audit()

    def test_ordered_root_requires_ts(self, make_sim):
        sim = make_sim(root_ordering=Ordering.ORDERED_32)
        with pytest.raises(TimestampError):
            sim.enqueue_root(lambda ctx: None)

    def test_unordered_root_rejects_ts(self, make_sim):
        sim = make_sim()
        with pytest.raises(TimestampError):
            sim.enqueue_root(lambda ctx: None, ts=1)

    def test_child_ts_must_not_precede_parent(self, make_sim):
        sim = make_sim(root_ordering=Ordering.ORDERED_32)
        errors = []

        def child(ctx):
            pass

        def parent(ctx):
            try:
                ctx.enqueue(child, ts=ctx.timestamp - 1)
            except DomainError as e:
                errors.append(str(e))

        sim.enqueue_root(parent, ts=5)
        sim.run()
        assert errors and "precedes" in errors[0]

    def test_same_ts_children_respect_parent_order(self, make_sim):
        sim = make_sim(8, root_ordering=Ordering.ORDERED_32)
        log = sim.array("log", 8)
        pos = sim.cell("pos", 0)

        def leaf(ctx, tag):
            p = pos.get(ctx)
            log.set(ctx, p, tag)
            pos.set(ctx, p + 1)

        def parent(ctx, tag):
            leaf(ctx, tag)
            ctx.enqueue(leaf, tag + 100, ts=ctx.timestamp)

        sim.enqueue_root(parent, 1, ts=1)
        sim.run()
        snap = log.snapshot()
        assert snap.index(1) < snap.index(101)  # child after parent


class TestSubdomains:
    def test_create_subdomain_once(self, make_sim):
        sim = make_sim()
        errors = []

        def t(ctx):
            ctx.create_subdomain(Ordering.UNORDERED)
            try:
                ctx.create_subdomain(Ordering.UNORDERED)
            except DomainError as e:
                errors.append(str(e))

        sim.enqueue_root(t)
        sim.run()
        assert errors and "exactly once" in errors[0]

    def test_enqueue_sub_requires_create(self, make_sim):
        sim = make_sim()
        errors = []

        def t(ctx):
            try:
                ctx.enqueue_sub(lambda c: None)
            except DomainError as e:
                errors.append(str(e))

        sim.enqueue_root(t)
        sim.run()
        assert errors

    def test_root_has_no_superdomain(self, make_sim):
        sim = make_sim()
        errors = []

        def t(ctx):
            try:
                ctx.enqueue_super(lambda c: None)
            except DomainError as e:
                errors.append(str(e))

        sim.enqueue_root(t)
        sim.run()
        assert errors and "superdomain" in errors[0]

    def test_ordered_subdomain_runs_in_ts_order(self, make_sim):
        sim = make_sim(8)
        log = sim.array("log", 8)
        pos = sim.cell("pos", 0)

        def step(ctx, i):
            p = pos.get(ctx)
            log.set(ctx, p, i)
            pos.set(ctx, p + 1)

        def txn(ctx):
            ctx.create_subdomain(Ordering.ORDERED_32)
            for i in reversed(range(5)):
                ctx.enqueue_sub(step, i, ts=i)

        sim.enqueue_root(txn)
        sim.run()
        assert log.snapshot()[:5] == [0, 1, 2, 3, 4]

    def test_enqueue_super_delegation(self, make_sim):
        """A subdomain task can delegate future same-level work upward
        (paper Fig. 7: K enqueues L into B's subdomain)."""
        sim = make_sim(4)
        log = sim.array("log", 8)
        pos = sim.cell("pos", 0)

        def mark(ctx, tag):
            p = pos.get(ctx)
            log.set(ctx, p, tag)
            pos.set(ctx, p + 1)

        def inner(ctx):
            mark(ctx, "inner")
            ctx.enqueue_super(mark, "delegated", ts=9)

        def mid(ctx):
            mark(ctx, "mid")
            ctx.create_subdomain(Ordering.UNORDERED)
            ctx.enqueue_sub(inner)

        def top(ctx):
            ctx.create_subdomain(Ordering.ORDERED_32)
            ctx.enqueue_sub(mid, ts=1)

        sim.enqueue_root(top)
        sim.run()
        snap = [v for v in log.snapshot() if v != 0]
        assert snap == ["mid", "inner", "delegated"]


class TestDomainAtomicity:
    def test_subdomain_atomic_with_creator(self, make_sim):
        """Tasks outside a domain must never observe its partial effects:
        with two transactions each writing a two-element record via
        subdomain tasks, every reader sees a consistent record."""
        sim = make_sim(16)
        rec = sim.array("rec", 16)  # two words, line-aligned padding
        bad = sim.cell("bad", 0)

        def write_half(ctx, idx, value):
            rec.set(ctx, idx, value)

        def txn(ctx, value):
            ctx.create_subdomain(Ordering.UNORDERED)
            ctx.enqueue_sub(write_half, 0, value)
            ctx.enqueue_sub(write_half, 8, value)

        def check(ctx):
            a = rec.get(ctx, 0)
            b = rec.get(ctx, 8)
            if a != b:
                bad.add(ctx, 1)

        for v in range(1, 6):
            sim.enqueue_root(txn, v)
            sim.enqueue_root(check)
        sim.run()
        assert bad.peek() == 0
        assert rec.peek(0) == rec.peek(8)
        sim.audit()

    def test_nested_two_levels_atomic(self, make_sim):
        sim = make_sim(8)
        rec = sim.array("rec", 24)
        bad = sim.cell("bad", 0)

        def leaf(ctx, idx, v):
            rec.set(ctx, idx, v)

        def mid(ctx, base, v):
            ctx.create_subdomain(Ordering.UNORDERED)
            ctx.enqueue_sub(leaf, base, v)
            ctx.enqueue_sub(leaf, base + 8, v)

        def txn(ctx, v):
            ctx.create_subdomain(Ordering.UNORDERED)
            ctx.enqueue_sub(mid, 0, v)

        def check(ctx):
            if rec.get(ctx, 0) != rec.get(ctx, 8):
                bad.add(ctx, 1)

        for v in (1, 2, 3):
            sim.enqueue_root(txn, v)
            sim.enqueue_root(check)
        stats = sim.run()
        assert bad.peek() == 0
        assert stats.max_depth == 3
        sim.audit()
