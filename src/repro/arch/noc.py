"""K x K mesh network-on-chip latency model (paper Table 2).

X-Y dimension-ordered routing: 1 cycle per hop going straight, 2 cycles on
the (single) turn, as in Tile64. Only latency is modeled — the simulator
operates at task granularity, where NoC *bandwidth* is never the bottleneck
for the studied workloads.
"""

from __future__ import annotations

from ..errors import ConfigError


class MeshNoC:
    """Latency oracle for a K x K tile mesh."""

    def __init__(self, mesh_dim: int, hop_straight: int = 1, hop_turn: int = 2):
        if mesh_dim < 1:
            raise ConfigError("mesh_dim must be >= 1")
        self.mesh_dim = mesh_dim
        self.hop_straight = hop_straight
        self.hop_turn = hop_turn
        # Precompute the (small) tile-to-tile latency table.
        n = mesh_dim * mesh_dim
        self._lat = [[self._compute(a, b) for b in range(n)] for a in range(n)]

    def coords(self, tile: int):
        """(row, column) of a tile id."""
        return divmod(tile, self.mesh_dim)

    def _compute(self, a: int, b: int) -> int:
        ay, ax = self.coords(a)
        by, bx = self.coords(b)
        dx, dy = abs(ax - bx), abs(ay - by)
        if dx == 0 and dy == 0:
            return 0
        lat = (dx + dy) * self.hop_straight
        if dx and dy:  # X-Y routing makes exactly one turn
            lat += self.hop_turn - self.hop_straight
        return lat

    def latency(self, src_tile: int, dst_tile: int) -> int:
        """One-way latency in cycles."""
        return self._lat[src_tile][dst_tile]

    def round_trip(self, src_tile: int, dst_tile: int) -> int:
        return 2 * self._lat[src_tile][dst_tile]

    @property
    def mean_latency(self) -> float:
        """Average one-way latency over all tile pairs."""
        n = self.mesh_dim * self.mesh_dim
        return sum(sum(row) for row in self._lat) / (n * n)
