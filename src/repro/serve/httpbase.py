"""Shared asyncio HTTP/1.1 plumbing (stdlib only).

Both JSON services in the tree — the multi-tenant simulation service
(:mod:`repro.serve.http`) and the distributed-farm coordinator
(:mod:`repro.farm.dist.coordinator`) — speak the same deliberately
minimal dialect: no TLS, no chunked request bodies, JSON in / JSON out,
SSE where streaming is needed. This module owns everything that is not
route logic:

- :class:`JsonHttpServer` — the listener, the per-connection
  request/response loop, body-size limits, keep-alive handling, and the
  error-to-status translation scaffold. Subclasses implement
  :meth:`JsonHttpServer._dispatch` (the route table) and may override
  :meth:`JsonHttpServer._translate_error` for service-specific exception
  families.
- :func:`run_loop_in_thread` — the "server on a daemon thread" pattern
  used by tests, benchmarks and in-process deployments.
"""

from __future__ import annotations

import asyncio
import hmac
import json
import threading
from typing import Optional
from urllib.parse import urlsplit

from ..errors import ConfigError

#: largest accepted request body (specs and result batches are small;
#: this is generous)
MAX_BODY = 8 * 1024 * 1024

#: header carrying the shared-secret wire token (see ``auth_token``)
TOKEN_HEADER = "X-Repro-Token"

_REASONS = {200: "OK", 202: "Accepted", 204: "No Content",
            400: "Bad Request", 401: "Unauthorized", 404: "Not Found",
            405: "Method Not Allowed", 409: "Conflict", 410: "Gone",
            413: "Payload Too Large", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable"}


class Request:
    """One parsed HTTP request (method, split target, headers, body)."""

    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(self, method: str, path: str, query: str, headers: dict,
                 body: bytes) -> None:
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body

    @property
    def api_key(self) -> str:
        return self.headers.get("x-api-key", "")

    def json(self) -> dict:
        if not self.body:
            raise ValueError("empty request body")
        doc = json.loads(self.body.decode("utf-8"))
        if not isinstance(doc, dict):
            raise ValueError("request body must be a JSON object")
        return doc


class JsonHttpServer:
    """One listening JSON-over-HTTP server; subclasses own the routes.

    ``SCHEMA`` (when set) is stamped into every JSON response body as its
    ``schema`` field, so clients can sanity-check what they are talking
    to without a separate version endpoint.

    ``auth_token`` (when non-empty) gates **every** route behind a
    shared-secret ``X-Repro-Token`` header, compared in constant time;
    a missing or wrong token gets a 401 before any dispatch runs.
    """

    #: wire-format tag injected into every response body (None = none)
    SCHEMA: Optional[str] = None

    def __init__(self, host: str, port: int, *,
                 auth_token: str = "") -> None:
        self.host = host
        self.configured_port = port
        self.auth_token = auth_token
        self.port: Optional[int] = None
        self._server: Optional[asyncio.base_events.Server] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._client, self.host, self.configured_port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        """Stop accepting new connections."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling -------------------------------------------
    async def _client(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                req = await self._read_request(reader, writer)
                if req is None:
                    break
                keep = await self._route(req, writer)
                if not keep:
                    break
        except (asyncio.IncompleteReadError, ConnectionError,
                asyncio.TimeoutError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader, writer) -> Optional[Request]:
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            return None
        try:
            method, target, _version = line.decode("latin-1").split()
        except ValueError:
            self._send(writer, 400, {"error": "malformed request line"})
            return None
        headers = {}
        while True:
            h = await reader.readline()
            if h in (b"\r\n", b"\n", b""):
                break
            name, _, value = h.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length") or 0)
        if length > MAX_BODY:
            self._send(writer, 413, {"error": "request body too large"})
            return None
        body = await reader.readexactly(length) if length else b""
        parts = urlsplit(target)
        return Request(method.upper(), parts.path, parts.query, headers,
                       body)

    # -- responses -----------------------------------------------------
    def _send(self, writer, status: int, doc: dict, *,
              headers: Optional[dict] = None,
              keep_alive: bool = True) -> None:
        if self.SCHEMA is not None:
            doc = {"schema": self.SCHEMA, **doc}
        body = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
        head = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                "Content-Type: application/json",
                f"Content-Length: {len(body)}",
                f"Connection: {'keep-alive' if keep_alive else 'close'}"]
        for k, v in (headers or {}).items():
            head.append(f"{k}: {v}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
                     + body)

    # -- routing scaffold ----------------------------------------------
    def _authorized(self, req: Request) -> bool:
        if not self.auth_token:
            return True
        presented = req.headers.get(TOKEN_HEADER.lower(), "")
        return hmac.compare_digest(presented, self.auth_token)

    def _on_auth_reject(self, req: Request) -> None:
        """Hook for subclasses (counters, logging)."""

    async def _route(self, req: Request, writer) -> bool:
        if not self._authorized(req):
            self._on_auth_reject(req)
            self._send(writer, 401,
                       {"error": f"missing or invalid {TOKEN_HEADER} "
                                 "header"})
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                return False
            return True
        try:
            return await self._dispatch(req, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            raise
        except Exception as exc:
            translated = self._translate_error(exc)
            if translated is None:
                if isinstance(exc, (ValueError, json.JSONDecodeError)):
                    translated = (400, {"error": f"bad request: {exc}"},
                                  None)
                else:
                    translated = (500,
                                  {"error": f"{type(exc).__name__}: {exc}"},
                                  None)
            status, doc, headers = translated
            self._send(writer, status, doc, headers=headers)
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            return False
        return True

    def _translate_error(self, exc: Exception):
        """Map a service exception to ``(status, doc, headers)`` or None.

        Returning None falls back to the generic 400 (malformed JSON /
        ValueError) and 500 handling in :meth:`_route`.
        """
        return None

    async def _dispatch(self, req: Request, writer) -> bool:
        """Handle one request; return False to close the connection."""
        raise NotImplementedError

    async def _not_found(self, req: Request, writer) -> bool:
        self._send(writer, 404,
                   {"error": f"no route {req.method} {req.path}"},
                   keep_alive=False)
        await writer.drain()
        return False


def run_loop_in_thread(server: JsonHttpServer, *, name: str):
    """Start ``server`` on a fresh event loop on a daemon thread.

    Returns ``(loop, thread)`` once the listener is bound
    (``server.port`` is then set); raises
    :class:`~repro.errors.ConfigError` if the bind fails or startup takes
    more than 10 seconds. Stop the loop with
    ``loop.call_soon_threadsafe(loop.stop)`` after closing the server,
    then join the thread.
    """
    holder: dict = {}
    started = threading.Event()

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except OSError as exc:
            holder["error"] = ConfigError(
                f"cannot bind {server.host}:{server.configured_port}: {exc}")
            started.set()
            loop.close()
            return
        holder["loop"] = loop
        started.set()
        try:
            loop.run_forever()
        finally:
            for task in asyncio.all_tasks(loop):
                task.cancel()
            loop.run_until_complete(asyncio.sleep(0))
            loop.close()

    thread = threading.Thread(target=run, name=name, daemon=True)
    thread.start()
    if not started.wait(timeout=10):
        raise ConfigError("server failed to start within 10s")
    if "error" in holder:
        raise holder["error"]
    return holder["loop"], thread
