"""Tests for the exception hierarchy and the host allocation API."""

import pytest

from repro import SerialExecutor, Simulator, SystemConfig
from repro import errors
from repro.errors import FractalError, MemoryError_


class TestErrorHierarchy:
    def test_all_library_errors_derive_from_fractal_error(self):
        for name in ("ConfigError", "VTError", "VTBudgetExceeded",
                     "DomainError", "TimestampError", "MemoryError_",
                     "QueueError", "SimulationError",
                     "SerializabilityViolation", "AppError"):
            cls = getattr(errors, name)
            assert issubclass(cls, FractalError), name

    def test_specializations(self):
        assert issubclass(errors.VTBudgetExceeded, errors.VTError)
        assert issubclass(errors.TimestampError, errors.DomainError)
        assert issubclass(errors.SerializabilityViolation,
                          errors.SimulationError)

    def test_memory_error_does_not_shadow_builtin(self):
        assert errors.MemoryError_ is not MemoryError


@pytest.mark.parametrize("host_factory", [
    lambda: Simulator(SystemConfig.with_cores(4)),
    SerialExecutor,
], ids=["simulator", "serial"])
class TestAllocAPI:
    def test_cell_with_init(self, host_factory):
        host = host_factory()
        cell = host.cell("c", 42)
        assert cell.peek() == 42

    def test_array_with_init_iterable(self, host_factory):
        host = host_factory()
        arr = host.array("a", 4, init=(i * i for i in range(4)))
        assert arr.snapshot() == [0, 1, 4, 9]

    def test_array_with_fill(self, host_factory):
        host = host_factory()
        arr = host.array("a", 3, fill=-1)
        assert arr.snapshot() == [-1, -1, -1]

    def test_dict_and_queue(self, host_factory):
        host = host_factory()
        d = host.dict("d", capacity=4)
        q = host.queue("q", capacity=4)
        assert d.len_nonspec() == 0
        assert q.size_nonspec() == 0

    def test_duplicate_names_rejected(self, host_factory):
        host = host_factory()
        host.cell("x", 0)
        with pytest.raises(MemoryError_):
            host.cell("x", 0)

    def test_regions_do_not_overlap(self, host_factory):
        host = host_factory()
        a = host.array("a", 10)
        b = host.array("b", 10)
        assert (a.region.base + a.region.size <= b.region.base
                or b.region.base + b.region.size <= a.region.base)
