"""Livelock throttling, safe mode, queue-overflow ladder, and watchdog."""

import json

import pytest

from repro import Simulator, SystemConfig
from repro.errors import QueueError
from repro.faults import FaultPlan, ResiliencePolicy
from repro.faults.crashdump import validate_crash_bundle

from .conftest import build_counter_sim, expected_counter


class TestSafeMode:
    def test_abort_storm_enters_and_exits_safe_mode(self, event_log):
        # a bounded injection budget lets the storm subside, so the run
        # must demonstrably *leave* safe mode too, not just enter it
        plan = FaultPlan(seed=1, conflict_rate=0.6, max_injections=200)
        policy = ResiliencePolicy(backoff_base=0, livelock_window=4,
                                  throttle_threshold=0.5,
                                  safe_mode_threshold=0.8,
                                  safe_mode_commits=4, exit_threshold=0.3)
        sim = build_counter_sim(200, 4,
                                sim_kwargs=dict(faults=plan,
                                                resilience=policy))
        sim.bus.subscribe(event_log)
        stats = sim.run()
        assert stats.tasks_committed == 200
        assert sim.memory.peek(0) == expected_counter(200)
        enters = event_log.of("safe_mode_enter")
        exits = event_log.of("safe_mode_exit")
        assert enters and exits
        assert stats.safe_mode_entries == len(enters)
        assert all(e.cause == "livelock" for e in enters)
        assert all(e.commits >= policy.safe_mode_commits for e in exits)
        sim.audit()

    def test_throttle_fires_below_safe_threshold(self, event_log):
        plan = FaultPlan(seed=4, conflict_rate=0.5, max_injections=120)
        policy = ResiliencePolicy(backoff_base=0, livelock_window=4,
                                  throttle_threshold=0.4,
                                  safe_mode_threshold=1.0,
                                  exit_threshold=0.2)
        sim = build_counter_sim(120, 4,
                                sim_kwargs=dict(faults=plan,
                                                resilience=policy))
        sim.bus.subscribe(event_log)
        stats = sim.run()
        assert stats.tasks_committed == 120
        throttles = event_log.of("livelock_throttle")
        assert any(e.action == "throttle" for e in throttles)
        assert any(e.action == "release" for e in throttles)
        for e in throttles:
            if e.action == "throttle":
                assert e.abort_rate >= policy.throttle_threshold


class TestQueueOverflow:
    def test_emergency_spill_relieves_pressure(self, event_log):
        # one tile, tiny queue, plenty of spillable root tasks: the
        # ladder's first rung (synchronous coalesce) must be enough
        sim = build_counter_sim(
            60, 4,
            sim_kwargs=dict(resilience=ResiliencePolicy(livelock_window=0)),
            config_overrides=dict(task_queue_per_core=4))
        sim.bus.subscribe(event_log)
        stats = sim.run()
        assert stats.tasks_committed == 60
        assert sim.memory.peek(0) == expected_counter(60)
        spills = event_log.of("queue_pressure")
        assert spills and all(e.action == "emergency_spill" for e in spills)
        assert stats.tasks_spilled > 0

    def test_unspillable_overflow_escalates_to_queue_error(self, event_log):
        # children of a still-RUNNING parent cannot be spilled (they
        # would not survive its abort), so a single fan-out task blows
        # straight through the ladder: spill finds no victims, safe mode
        # cannot shed load mid-body, and the hard cap fires
        def noop(ctx):
            pass

        def fanout(ctx):
            for _ in range(200):
                ctx.enqueue(noop)

        cfg = SystemConfig.with_cores(4, conflict_mode="precise",
                                      task_queue_per_core=4)
        policy = ResiliencePolicy(queue_fail_factor=2.0, livelock_window=0)
        sim = Simulator(cfg, resilience=policy)
        sim.bus.subscribe(event_log)
        sim.enqueue_root(fanout)
        with pytest.raises(QueueError):
            sim.run()
        actions = [e.action for e in event_log.of("queue_pressure")]
        assert "safe_mode" in actions
        assert actions[-1] == "fail"
        assert event_log.of("safe_mode_enter")[0].cause == "queue_overflow"


def _slow_task(ctx, i):
    ctx.compute(10_000)
    v = ctx.load(i + 1)
    ctx.store(i + 1, v + 1)


class TestWatchdog:
    def test_max_cycles_returns_partial_stats(self, tmp_path, event_log):
        cfg = SystemConfig.with_cores(4, conflict_mode="precise")
        sim = Simulator(cfg, resilience=ResiliencePolicy(max_cycles=5_000),
                        crash_dump_dir=str(tmp_path))
        sim.bus.subscribe(event_log)
        for i in range(40):
            sim.enqueue_root(_slow_task, i)
        stats = sim.run()                      # returns — must not raise
        assert not stats.completed
        failure = stats.failure
        assert failure["reason"] == "watchdog:max_cycles"
        assert failure["limit_kind"] == "max_cycles"
        assert failure["limit"] == 5_000
        assert failure["cycle"] > 5_000
        assert failure["n_live"] > 0
        assert 0 < len(failure["live_sample"]) <= 8
        assert {"tid", "label", "state", "vt"} <= set(
            failure["live_sample"][0])
        fires = event_log.of("watchdog_fire")
        assert len(fires) == 1
        assert fires[0].limit_kind == "max_cycles"
        # the crash bundle landed next to the partial stats and validates
        assert sim.crash_bundle_path is not None
        doc = json.loads(open(sim.crash_bundle_path).read())
        validate_crash_bundle(doc)
        assert doc["reason"] == "watchdog"

    def test_wall_clock_limit_fires(self):
        cfg = SystemConfig.with_cores(2, conflict_mode="precise")
        sim = Simulator(cfg, resilience=ResiliencePolicy(
            max_wall_seconds=1e-9))
        for i in range(20):
            sim.enqueue_root(_slow_task, i)
        stats = sim.run()
        assert not stats.completed
        assert stats.failure["reason"] == "watchdog:max_wall_seconds"

    def test_partial_stats_still_summarize(self):
        cfg = SystemConfig.with_cores(2, conflict_mode="precise")
        sim = Simulator(cfg, resilience=ResiliencePolicy(max_cycles=3_000))
        for i in range(20):
            sim.enqueue_root(_slow_task, i)
        stats = sim.run()
        text = stats.summary()
        assert "PARTIAL RUN" in text
        assert "watchdog:max_cycles" in text
