"""Run statistics: cycle breakdowns and counters (paper Figs. 14b/15b).

The paper classifies every core cycle as one of:

- **committed** — running tasks that ultimately commit,
- **aborted** — running tasks that are later aborted (plus rollback),
- **spill** — coalescer/splitter work moving tasks to/from memory,
- **stall** — cores stalled on a full task or commit queue,
- **empty** — cores stalled for lack of tasks.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, Optional


@dataclass
class CycleBreakdown:
    """Per-category core-cycle totals over a whole run."""

    committed: int = 0
    aborted: int = 0
    spill: int = 0
    stall: int = 0
    empty: int = 0

    @property
    def total(self) -> int:
        """All core cycles: n_cores x makespan."""
        return self.committed + self.aborted + self.spill + self.stall + self.empty

    def to_dict(self) -> Dict[str, int]:
        """JSON-safe category totals."""
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Dict[str, int]) -> "CycleBreakdown":
        """Inverse of :meth:`to_dict` (unknown keys ignored)."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in d.items() if k in known})

    def fractions(self) -> Dict[str, float]:
        """Per-category shares of total core cycles (Figs. 14b/15b bars)."""
        total = self.total or 1
        return {
            "committed": self.committed / total,
            "aborted": self.aborted / total,
            "spill": self.spill / total,
            "stall": self.stall / total,
            "empty": self.empty / total,
        }

    def __str__(self) -> str:
        f = self.fractions()
        return ("commit {committed:6.1%}  abort {aborted:6.1%}  "
                "spill {spill:6.1%}  stall {stall:6.1%}  "
                "empty {empty:6.1%}".format(**f))


@dataclass
class RunStats:
    """Everything a benchmark reports about one simulation."""

    name: str = "run"
    n_cores: int = 1
    makespan: int = 0                     # cycles from start to last commit
    breakdown: CycleBreakdown = field(default_factory=CycleBreakdown)

    tasks_committed: int = 0
    tasks_aborted: int = 0                # aborted attempts (re-executed)
    tasks_squashed: int = 0               # discarded child tasks
    tasks_spilled: int = 0
    enqueues: int = 0
    domains_created: int = 0
    domains_flattened: int = 0
    max_depth: int = 1

    true_conflicts: int = 0
    false_positive_conflicts: int = 0

    # resilience / fault injection (repro.faults); all zero when off
    faults_injected: int = 0
    exec_fault_retries: int = 0           # attempts retried after exceptions
    backoff_requeues: int = 0             # requeues delayed by backoff
    safe_mode_entries: int = 0
    zoom_ins: int = 0
    zoom_outs: int = 0
    tiebreaker_wraparounds: int = 0
    gvt_ticks: int = 0

    cache: Dict[str, int] = field(default_factory=dict)

    #: set when the run ended early (watchdog fire): a JSON-safe report
    #: with the limit hit and the work left; None for completed runs
    failure: Optional[Dict[str, Any]] = None

    @property
    def completed(self) -> bool:
        """True when the run drained every task (no failure report)."""
        return self.failure is None

    @property
    def committed_cycles(self) -> int:
        """Cycles spent on ultimately-committed work."""
        return self.breakdown.committed

    @property
    def avg_task_length(self) -> float:
        """Mean committed-task length in cycles (paper Table 4)."""
        if not self.tasks_committed:
            return 0.0
        return self.breakdown.committed / self.tasks_committed

    @property
    def abort_ratio(self) -> float:
        """Aborted attempts / all attempts."""
        attempts = self.tasks_committed + self.tasks_aborted
        return self.tasks_aborted / attempts if attempts else 0.0

    def to_dict(self) -> dict:
        """JSON round-trip export (nested :class:`CycleBreakdown` included).

        The machine-readable form benchmarks persist instead of scraping
        report text; ``from_dict(to_dict(s)) == s`` field-for-field.
        """
        d = asdict(self)
        d["breakdown"] = self.breakdown.to_dict()
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "RunStats":
        """Rebuild a :class:`RunStats` from its :meth:`to_dict` form."""
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in d.items() if k in known}
        kwargs["breakdown"] = CycleBreakdown.from_dict(d.get("breakdown", {}))
        kwargs["cache"] = dict(d.get("cache", {}))
        return cls(**kwargs)

    def speedup_over(self, baseline: "RunStats") -> float:
        """Speedup of this run relative to ``baseline`` (same work)."""
        if self.makespan == 0:
            return float("inf")
        return baseline.makespan / self.makespan

    def summary(self) -> str:
        """Multi-line human-readable run report."""
        lines = [
            f"{self.name}: {self.n_cores} cores, makespan {self.makespan:,} cycles",
            f"  tasks: {self.tasks_committed:,} committed, "
            f"{self.tasks_aborted:,} aborted attempts, "
            f"{self.tasks_squashed:,} squashed, {self.tasks_spilled:,} spilled",
            f"  avg committed task length: {self.avg_task_length:,.0f} cycles",
            f"  cycles: {self.breakdown}",
            f"  conflicts: {self.true_conflicts:,} true, "
            f"{self.false_positive_conflicts:,} false positive",
        ]
        if self.zoom_ins or self.zoom_outs:
            lines.append(f"  zooming: {self.zoom_ins} in / {self.zoom_outs} out")
        if self.tiebreaker_wraparounds:
            lines.append(f"  tiebreaker wraparounds: {self.tiebreaker_wraparounds}")
        if self.faults_injected or self.safe_mode_entries:
            lines.append(
                f"  resilience: {self.faults_injected} faults injected, "
                f"{self.exec_fault_retries} exception retries, "
                f"{self.backoff_requeues} backoff requeues, "
                f"{self.safe_mode_entries} safe-mode entries")
        if self.failure is not None:
            lines.append(
                f"  PARTIAL RUN — {self.failure.get('reason', 'failure')}: "
                f"{self.failure.get('n_live', '?')} tasks left live")
        return "\n".join(lines)
