"""The event stream and the final RunStats must tell the same story.

Runs real applications with an :class:`EventRecorder` on the bus and
cross-checks every statistic that is derivable from events against the
registry-rebuilt :class:`RunStats` — on an abort-heavy run (mis) and a
zooming run (zoomtree).
"""

import pytest

from repro.apps import mis, zoomtree
from repro.bench.harness import run_app
from repro.config import SystemConfig
from repro.telemetry import EventBus, EventRecorder


def _recorded_run(app, inp, variant, n_cores, **kwargs):
    bus = EventBus()
    rec = bus.subscribe(EventRecorder())
    run = run_app(app, inp, variant=variant, n_cores=n_cores,
                  telemetry=bus, **kwargs)
    return run, rec


def assert_consistent(run, rec):
    stats = run.stats
    bd = stats.breakdown

    commits = rec.of("commit")
    assert len(commits) == stats.tasks_committed
    assert sum(e.duration for e in commits) == bd.committed

    aborts = rec.of("abort")
    real = [e for e in aborts if not e.parked]
    assert len(real) == stats.tasks_aborted
    assert sum(e.executed for e in aborts) == bd.aborted

    assert len(rec.of("squash")) == stats.tasks_squashed
    assert len(rec.of("enqueue")) == stats.enqueues

    spills = rec.of("spill")
    assert sum(e.duration for e in spills) == bd.spill
    assert sum(e.n_tasks for e in spills
               if e.op == "coalescer") == stats.tasks_spilled

    zooms = rec.of("zoom")
    assert len([e for e in zooms if e.direction == "in"]) == stats.zoom_ins
    assert len([e for e in zooms if e.direction == "out"]) == stats.zoom_outs

    assert len(rec.of("gvt_tick")) == stats.gvt_ticks
    assert len(rec.of("wraparound")) == stats.tiebreaker_wraparounds

    depths = [e.depth for e in rec.of("enqueue")]
    assert max(depths, default=1) == stats.max_depth

    # every event's timestamp lies within the run
    assert all(0 <= e.t <= stats.makespan for e in rec)


class TestMisConsistency:
    """mis at small scale aborts heavily (true read-write conflicts)."""

    def test_events_match_stats(self):
        inp = mis.make_input(scale=6, edge_factor=5)
        run, rec = _recorded_run(mis, inp, "fractal", 4)
        assert run.stats.tasks_aborted > 0, "fixture must exercise aborts"
        assert rec.of("conflict"), "aborts must come with conflict events"
        assert_consistent(run, rec)

    def test_conflict_events_reference_live_tids(self):
        inp = mis.make_input(scale=6, edge_factor=5)
        run, rec = _recorded_run(mis, inp, "fractal", 4)
        tids = {e.tid for e in rec.of("enqueue")}
        for e in rec.of("conflict"):
            assert e.victims, "a conflict event names at least one victim"
            assert set(e.victims) <= tids
            assert len(e.victims) == len(e.victim_vts) == len(e.victim_cores)


class TestZoomtreeConsistency:
    """zoomtree with a tight VT budget exercises zoom-in/zoom-out."""

    def test_events_match_stats(self):
        inp = zoomtree.make_input(fanout=2, depth=5)
        cfg = SystemConfig.with_cores(
            4, vt_bits=zoomtree.vt_bits_for_depth(2), conflict_mode="precise")
        run, rec = _recorded_run(zoomtree, inp, "fractal", 4, config=cfg,
                                 max_cycles=80_000_000)
        assert run.stats.zoom_ins > 0, "fixture must exercise zooming"
        assert_consistent(run, rec)

    def test_zoom_events_carry_stack_depth(self):
        inp = zoomtree.make_input(fanout=2, depth=5)
        cfg = SystemConfig.with_cores(
            4, vt_bits=zoomtree.vt_bits_for_depth(2), conflict_mode="precise")
        run, rec = _recorded_run(zoomtree, inp, "fractal", 4, config=cfg,
                                 max_cycles=80_000_000)
        depth = 0
        for e in rec.of("zoom"):
            depth += 1 if e.direction == "in" else -1
            assert e.depth == depth
        assert depth == 0, "every zoom-in must be undone by run end"


class TestDisabledBusIsInert:
    def test_no_bus_means_no_subscribers_and_same_stats(self):
        inp = mis.make_input(scale=6, edge_factor=5)
        plain = run_app(mis, inp, variant="fractal", n_cores=4)
        observed, rec = _recorded_run(mis, inp, "fractal", 4)
        assert not plain.sim.bus.enabled
        assert len(rec) > 0
        # observation must not perturb the simulation
        assert plain.stats.to_dict() == observed.stats.to_dict()
