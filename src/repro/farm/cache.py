"""The content-addressed result cache.

Results live one file per digest under ``<root>/<digest[:2]>/<digest>.json``
holding the job's canonical spec, its ``RunStats.to_dict()``, and the
*code-version fingerprint* of the ``repro`` source tree at write time. A
lookup whose stored fingerprint differs from the running code's is
*stale* and treated as a miss, so editing any simulator source
automatically invalidates every cached result — no manual bookkeeping.

The cache stores pure data (never pickles), so entries survive Python
upgrades and are safe to commit or ship between machines.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
import time
from typing import Optional, Union

from ..core.stats import RunStats
from .job import JobSpec

#: cache entry wire format; bump on incompatible layout changes
CACHE_SCHEMA = "repro.farm-result/1"

_FINGERPRINT_CACHE: dict = {}


def code_fingerprint(root: Union[str, pathlib.Path, None] = None) -> str:
    """Digest of every ``*.py`` file of the running ``repro`` package.

    Cached per path per process. ``REPRO_FARM_FINGERPRINT`` overrides the
    computed value (used by tests to simulate code drift).
    """
    env = os.environ.get("REPRO_FARM_FINGERPRINT")
    if env:
        return env
    if root is None:
        import repro
        root = pathlib.Path(repro.__file__).resolve().parent
    root = pathlib.Path(root)
    key = str(root)
    got = _FINGERPRINT_CACHE.get(key)
    if got is not None:
        return got
    h = hashlib.sha256()
    for p in sorted(root.rglob("*.py")):
        h.update(str(p.relative_to(root)).encode())
        h.update(b"\0")
        h.update(hashlib.sha256(p.read_bytes()).digest())
    _FINGERPRINT_CACHE[key] = out = h.hexdigest()
    return out


class ResultCache:
    """Digest-keyed store of :class:`~repro.core.stats.RunStats`.

    ``get``/``put`` count hits, misses, stale entries, and writes;
    :meth:`stats` exposes the counters for farm summaries and the CI
    cache-effectiveness assertion.
    """

    def __init__(self, root: Union[str, pathlib.Path],
                 fingerprint: Optional[str] = None):
        self.root = pathlib.Path(root)
        self.fingerprint = fingerprint or code_fingerprint()
        self.hits = 0
        self.misses = 0
        self.stale = 0
        self.puts = 0

    def _path(self, digest: str) -> pathlib.Path:
        return self.root / digest[:2] / f"{digest}.json"

    # ------------------------------------------------------------------
    def get_entry(self, digest: str) -> Optional[dict]:
        """The raw stored document for ``digest``, fingerprint-checked."""
        path = self._path(digest)
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (doc.get("schema") != CACHE_SCHEMA
                or doc.get("fingerprint") != self.fingerprint):
            # A stale entry is also a miss: the caller must execute the
            # job. Keeping the invariant hits + misses == lookups means
            # hit-rate assertions (CI) cannot be skewed by code drift.
            self.stale += 1
            self.misses += 1
            return None
        self.hits += 1
        return doc

    def get(self, digest: str) -> Optional[RunStats]:
        """Cached stats for ``digest``, or None on miss/staleness."""
        doc = self.get_entry(digest)
        if doc is None:
            return None
        return RunStats.from_dict(doc["stats"])

    def put(self, spec: JobSpec, stats: RunStats,
            wall_s: float = 0.0) -> pathlib.Path:
        """Store one result; atomic (write-then-rename) per entry."""
        digest = spec.digest()
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "schema": CACHE_SCHEMA,
            "digest": digest,
            "fingerprint": self.fingerprint,
            "created": time.time(),
            "wall_s": wall_s,
            "spec": spec.canonical(),
            "stats": stats.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(doc, f, indent=2)
                f.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.puts += 1
        return path

    def contains(self, digest: str) -> bool:
        """True when a *fresh* entry exists (does not touch counters)."""
        path = self._path(digest)
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError):
            return False
        return (doc.get("schema") == CACHE_SCHEMA
                and doc.get("fingerprint") == self.fingerprint)

    # ------------------------------------------------------------------
    def entries(self) -> int:
        """Number of stored result files (fresh or stale)."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        n = 0
        if self.root.is_dir():
            for p in self.root.glob("*/*.json"):
                p.unlink(missing_ok=True)
                n += 1
            for d in self.root.iterdir():
                if d.is_dir():
                    try:
                        d.rmdir()
                    except OSError:
                        pass
        return n

    def stats(self) -> dict:
        """Counter snapshot: hits/misses/stale/puts plus entry count."""
        return {"hits": self.hits, "misses": self.misses,
                "stale": self.stale, "puts": self.puts,
                "entries": self.entries()}
