"""Dispatch-time tiebreakers (paper Sec. 4.1 Fig. 9, Sec. 4.4).

A tiebreaker is the concatenation of the dispatch cycle and the dispatching
tile id. It orders same-timestamp tasks sensibly (older first) and orders
children after parents (a child is always dispatched at a later cycle than
its parent). Fractal uses 32-bit tiebreakers for VT compactness, so they
wrap around every few tens of milliseconds; :class:`TiebreakerAllocator`
implements the paper's compaction walk: subtract half the range with
saturation from every live tiebreaker, then keep allocating from the
half-range point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import VTError


@dataclass(frozen=True, order=True)
class Tiebreaker:
    """An allocated tiebreaker value.

    ``raw`` is the packed (cycle || tile) integer actually compared in
    hardware; ``cycle`` and ``tile`` are kept for introspection and traces.
    Ordering compares ``raw`` only (dataclass field order puts it first).
    """

    raw: int
    cycle: int = 0
    tile: int = 0

    def __repr__(self) -> str:  # matches the paper's "cycle:tile" notation
        return f"{self.cycle}:{self.tile}"


#: Sentinel lower-bound used for tasks that have not been dispatched yet
#: (the paper's "unset tiebreaker" dash in Fig. 12). Compares below any
#: real tiebreaker allocated at or after the same cycle.
def lower_bound(cycle: int, tile_bits: int) -> Tiebreaker:
    return Tiebreaker(raw=cycle << tile_bits, cycle=cycle, tile=0)


class TiebreakerAllocator:
    """Allocates (cycle || tile) tiebreakers within a fixed bit width.

    Parameters
    ----------
    width:
        Total tiebreaker width in bits (32 in the paper).
    tile_bits:
        Bits reserved for the tile id (low-order bits).

    Cycles are stored relative to an internal epoch base. When the relative
    cycle no longer fits, :meth:`alloc` raises :class:`WrapAround`; the
    simulator then calls :meth:`compact` with a callback that rewrites every
    live tiebreaker (paper Sec. 4.4) and retries.
    """

    def __init__(self, width: int = 32, tile_bits: int = 8):
        if tile_bits >= width:
            raise VTError(f"tile_bits={tile_bits} must be < width={width}")
        self.width = width
        self.tile_bits = tile_bits
        self.cycle_bits = width - tile_bits
        self.max_rel_cycle = (1 << self.cycle_bits) - 1
        self.half_raw = 1 << (width - 1)
        self._epoch_base = 0
        #: number of compaction walks performed (exposed for stats/tests)
        self.wraparounds = 0
        # lower_bound is pure per (epoch base, cycle) and the simulator
        # asks for the *current* cycle's bound millions of times per run;
        # one cached entry covers almost all of them. compact() clears it.
        self._lb_cycle = -1
        self._lb_cached: Optional[Tiebreaker] = None

    # ------------------------------------------------------------------
    def rel_cycle(self, cycle: int) -> int:
        """Cycle relative to the current epoch (>= 1 for real allocations)."""
        rel = cycle - self._epoch_base + 1  # +1 keeps 0 free as a lower bound
        if rel < 1:
            raise VTError(
                f"cycle {cycle} precedes epoch base {self._epoch_base}")
        return rel

    def would_wrap(self, cycle: int) -> bool:
        """True when allocating at ``cycle`` would overflow the epoch."""
        return self.rel_cycle(cycle) > self.max_rel_cycle

    def alloc(self, cycle: int, tile: int) -> Tiebreaker:
        """Allocate the tiebreaker for a dispatch at ``cycle`` on ``tile``.

        Raises :class:`WrapAround` when the relative cycle overflows; the
        caller must run :meth:`compact` and retry.
        """
        if not (0 <= tile < (1 << self.tile_bits)):
            raise VTError(f"tile {tile} does not fit in {self.tile_bits} bits")
        rel = self.rel_cycle(cycle)
        if rel > self.max_rel_cycle:
            raise WrapAround(cycle)
        raw = (rel << self.tile_bits) | tile
        return Tiebreaker(raw=raw, cycle=cycle, tile=tile)

    def lower_bound(self, cycle: int) -> Tiebreaker:
        """Conservative tiebreaker lower bound for a not-yet-dispatched task
        enqueued at ``cycle``. Sorts before any tiebreaker allocated at or
        after ``cycle`` and after any allocated strictly before it."""
        if cycle == self._lb_cycle:
            return self._lb_cached
        rel = min(self.rel_cycle(cycle), self.max_rel_cycle)
        tb = Tiebreaker(raw=rel << self.tile_bits, cycle=cycle, tile=0)
        self._lb_cycle = cycle
        self._lb_cached = tb
        return tb

    # ------------------------------------------------------------------
    def compacted(self, tb: Tiebreaker) -> Tiebreaker:
        """The value ``tb`` takes after one compaction walk: subtract half
        the raw range, saturating at zero (paper Sec. 4.4 step 1)."""
        new_raw = max(tb.raw - self.half_raw, 0)
        half_cycles = self.half_raw >> self.tile_bits
        return Tiebreaker(raw=new_raw,
                          cycle=max(tb.cycle - half_cycles, 0),
                          tile=tb.tile if new_raw else 0)

    def compact(self, now_cycle: int) -> None:
        """Advance the epoch base by half the cycle range.

        The simulator is responsible for walking every live fractal VT with
        :meth:`compacted` *before* calling this, and for aborting any task
        whose final tiebreaker saturated to zero and is not the earliest
        unfinished task (paper Sec. 4.4 step 2).
        """
        half_cycles = self.half_raw >> self.tile_bits
        self._epoch_base += half_cycles
        self._lb_cycle = -1  # epoch moved: cached bound is no longer valid
        self._lb_cached = None
        self.wraparounds += 1
        if self.would_wrap(now_cycle):
            # One walk did not create room: the run outlived 1.5x the cycle
            # range within a single epoch, so walk again.
            raise WrapAround(now_cycle)


class WrapAround(VTError):
    """Raised by :meth:`TiebreakerAllocator.alloc` when tiebreakers must be
    compacted before any further allocation."""

    def __init__(self, cycle: int):
        super().__init__(f"tiebreaker wrap-around at cycle {cycle}")
        self.cycle = cycle
