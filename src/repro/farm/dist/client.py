"""HTTP client for the dist coordinator (agents, drivers, and tests).

A thin :class:`~repro.serve.client.HttpJsonClient` wrapper around the
``repro.farm-dist/1`` routes. The optional ``transport_fault`` hook is
the chaos-injection point: it is called with ``(method, path)`` before
every request and may delay the call or raise
:class:`~repro.faults.chaos.ChaosDrop` to simulate a lost message — the
agent treats a dropped heartbeat exactly like a network partition would
look from the coordinator's side (silence, then lease expiry).
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional

from ...serve.client import HttpJsonClient, RateLimited, ServeAPIError
from . import wire

__all__ = ["DistClient", "AgentGone", "RateLimited", "ServeAPIError"]


class AgentGone(ServeAPIError):
    """The coordinator no longer knows this agent (HTTP 410): its
    registration was reaped after missed heartbeats. Re-register."""


class DistClient(HttpJsonClient):
    """Client for one coordinator endpoint.

    ``token`` is the shared wire secret (``X-Repro-Token``). The default
    ``None`` falls back to the ``REPRO_DIST_TOKEN`` environment variable
    — the same place the coordinator CLI reads its own — so agents and
    drivers in a tokened cluster need no per-call plumbing. Pass an
    explicit ``""`` to send no token (e.g. to probe that a coordinator
    really rejects anonymous requests).
    """

    def __init__(self, base_url: str, *,
                 token: Optional[str] = None,
                 transport_fault: Optional[Callable[[str, str], None]]
                 = None, **kwargs) -> None:
        if token is None:
            token = os.environ.get(wire.TOKEN_ENV, "")
        super().__init__(base_url, token=token, **kwargs)
        self.transport_fault = transport_fault

    def _checked(self, method: str, path: str, body=None) -> dict:
        if self.transport_fault is not None:
            self.transport_fault(method, path)
        try:
            return super()._checked(method, path, body)
        except ServeAPIError as exc:
            if exc.status == 410:
                raise AgentGone(exc.status, exc.doc) from None
            raise

    # -- introspection -------------------------------------------------
    def healthz(self) -> dict:
        return self._checked("GET", "/healthz")

    def metrics(self) -> dict:
        return self._checked("GET", "/metrics")

    # -- sweeps --------------------------------------------------------
    def submit_sweep(self, jobs: List[dict], *, fragments: int = 0,
                     label: str = "") -> dict:
        return self._checked("POST", "/v1/sweeps",
                             {"jobs": jobs, "fragments": fragments,
                              "label": label})

    def sweep_status(self, sweep_id: str) -> dict:
        return self._checked("GET", f"/v1/sweeps/{sweep_id}")

    def sweep_results(self, sweep_id: str) -> dict:
        return self._checked("GET", f"/v1/sweeps/{sweep_id}/results")

    def fragment_status(self, sweep_id: str, fragment: int) -> dict:
        """One fragment's ``{state, epoch, recorded}`` — the reconcile
        probe a reconnecting agent uses to decide deliver vs. discard."""
        return self._checked(
            "GET", f"/v1/sweeps/{sweep_id}/fragments/{fragment}")

    # -- agent protocol ------------------------------------------------
    def register(self, *, agent: str = "", capacity: int = 1,
                 pid: int = 0, host: str = "") -> dict:
        return self._checked("POST", "/v1/agents/register",
                             {"agent": agent, "capacity": capacity,
                              "pid": pid, "host": host})

    def heartbeat(self, agent_id: str, leases: List[str]) -> dict:
        return self._checked("POST", f"/v1/agents/{agent_id}/heartbeat",
                             {"leases": leases})

    def acquire(self, agent_id: str, *, max_fragments: int = 1) -> dict:
        return self._checked("POST", f"/v1/agents/{agent_id}/leases",
                             {"max_fragments": max_fragments})

    def deliver(self, lease_id: str, doc: dict) -> dict:
        return self._checked("POST", f"/v1/leases/{lease_id}/results",
                             doc)

    # -- helpers -------------------------------------------------------
    def wait_ready(self, timeout: float = 10.0) -> dict:
        """Poll ``/healthz`` until the coordinator answers.

        A 401 is re-raised immediately: the coordinator is up but our
        token is wrong, and no amount of waiting will fix that.
        """
        import time
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.healthz()
            except ServeAPIError as exc:
                if exc.status == 401:
                    raise
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.05)
            except (ConnectionError, OSError):
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.05)
