"""H3 Bloom-filter signatures (paper Table 2: 2 Kbit, 8-way, H3 hashing).

Swarm/Fractal track each task's read and write sets in per-task Bloom
signatures. Membership tests can return false positives, which cause
spurious aborts — the dominant cost for coarse-grain ("flat") tasks whose
sets overflow the filters (paper Sec. 6.1, Fig. 14).

:class:`H3HashFamily` implements the classic H3 universal hash family of
Carter & Wegman: each hash function is a matrix of random words; the hash
of a key is the XOR of the rows selected by the key's set bits. Rather
than walking key bits one at a time, the family precomputes byte-sliced
tabulation tables (six 256-entry partial-XOR tables per function for
48-bit keys), so a hash is six table lookups and XORs — and whole key
*arrays* hash in a handful of numpy gathers (:meth:`indices_array`).

:class:`BloomSignature` is a real bit-accurate signature used both
directly (unit tests, small runs) and as the occupancy source for the
simulator's sampled false-positive model (see :mod:`repro.mem.conflicts`).
Inserts and probes go through per-key *masks* (one big int with all k
bits set), so an insert is two big-int ops and a popcount delta instead
of k per-bit updates.

:class:`SignatureBank` holds many signatures as rows of one numpy bitmap
(struct-of-arrays): ``probe_rows`` answers "which of these live tasks'
signatures hit this key?" in one vectorized pass, replacing the
per-task-pair Python probe loop of exact conflict detection.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Tuple

import numpy as np

from ..errors import MemoryError_

_KEY_BITS = 48  # supported key width (word addresses comfortably fit)
_KEY_BYTES = _KEY_BITS // 8
_KEY_MASK = (1 << _KEY_BITS) - 1

#: distinct keys memoized per family before the memo resets. Workloads
#: probe the same cache lines millions of times, so the memo is the fast
#: path; the bound keeps a long-lived family (shared across runs) from
#: growing without limit.
_MAX_CACHED_KEYS = 1 << 16


class H3HashFamily:
    """A family of ``k`` H3 hash functions onto ``[0, m)`` (m a power of 2).

    In a banked (w-way) Bloom filter each function indexes its own bank of
    ``m / k`` bits; we expose :meth:`indices` returning one global bit index
    per bank, matching that layout.
    """

    def __init__(self, k: int, m_bits: int, seed: int = 0):
        if m_bits & (m_bits - 1) or m_bits <= 0:
            raise MemoryError_("Bloom size must be a power of two")
        if m_bits % k:
            raise MemoryError_("Bloom size must divide evenly into banks")
        self.k = k
        self.m_bits = m_bits
        self.bank_bits = m_bits // k
        if self.bank_bits & (self.bank_bits - 1):
            raise MemoryError_("bank size must be a power of two")
        self._bank_mask = self.bank_bits - 1
        rng = random.Random(seed ^ 0x5DEECE66D)
        # One matrix per function: _KEY_BITS random words of bank-index width.
        self._matrices: List[List[int]] = [
            [rng.getrandbits(32) & self._bank_mask for _ in range(_KEY_BITS)]
            for _ in range(k)
        ]
        # Byte-sliced tabulation: tables[fn][b][v] is the XOR of matrix rows
        # 8b..8b+7 selected by the bits of byte value v. A key's hash under
        # fn is then the XOR of _KEY_BYTES lookups, one per key byte.
        mats = np.array(self._matrices, dtype=np.uint32)            # (k, 48)
        sel = ((np.arange(256)[:, None] >> np.arange(8)) & 1) == 1  # (256, 8)
        tables = np.zeros((k, _KEY_BYTES, 256), dtype=np.uint32)
        for b in range(_KEY_BYTES):
            rows = mats[:, 8 * b: 8 * b + 8]                        # (k, 8)
            contrib = np.where(sel[None, :, :], rows[:, None, :], np.uint32(0))
            tables[:, b, :] = np.bitwise_xor.reduce(contrib, axis=2)
        self._tables = tables
        self._tables_py = tables.tolist()  # plain nested lists: scalar path
        self._bank_offsets = (np.arange(k, dtype=np.int64) * self.bank_bits)
        # key → [indices tuple, mask int, (word idx, word mask) or None].
        # Bounded (see _MAX_CACHED_KEYS); values are immutable or private.
        self._key_cache: dict = {}

    # ------------------------------------------------------------------
    def _cache_entry(self, key: int) -> list:
        entry = self._key_cache.get(key)
        if entry is not None:
            return entry
        if len(self._key_cache) >= _MAX_CACHED_KEYS:
            self._key_cache.clear()
        masked = key & _KEY_MASK
        kbytes = [(masked >> (8 * b)) & 0xFF for b in range(_KEY_BYTES)]
        out = []
        mask = 0
        for fn, table in enumerate(self._tables_py):
            h = 0
            for b in range(_KEY_BYTES):
                h ^= table[b][kbytes[b]]
            idx = fn * self.bank_bits + h
            out.append(idx)
            mask |= 1 << idx
        entry = [tuple(out), mask, None]
        self._key_cache[key] = entry
        return entry

    def indices(self, key: int) -> Tuple[int, ...]:
        """Global bit indices (one per bank) for ``key``.

        Returns an immutable tuple: callers share the memoized value, so a
        mutable return could be corrupted in place and poison every later
        probe of the same key (a real bug in the list-returning version).
        """
        return self._cache_entry(key)[0]

    def mask(self, key: int) -> int:
        """All ``k`` of the key's bits as one ``m_bits``-wide int mask."""
        return self._cache_entry(key)[1]

    def word_masks(self, key: int):
        """The key's bits grouped per 64-bit word: ``(word_idx, word_mask)``
        numpy arrays with duplicate words merged (for :class:`SignatureBank`
        rows, where two indices in one word must OR in a single update)."""
        entry = self._cache_entry(key)
        wm = entry[2]
        if wm is None:
            agg: dict = {}
            for idx in entry[0]:
                w = idx >> 6
                agg[w] = agg.get(w, 0) | (1 << (idx & 63))
            wm = (np.fromiter(agg.keys(), dtype=np.intp, count=len(agg)),
                  np.fromiter(agg.values(), dtype=np.uint64, count=len(agg)))
            entry[2] = wm
        return wm

    def indices_array(self, keys) -> np.ndarray:
        """Vectorized :meth:`indices` over a key array → ``(n, k)`` int64."""
        masked = np.asarray(keys, dtype=np.int64) & _KEY_MASK
        h = np.zeros((self.k, masked.shape[0]), dtype=np.uint32)
        for b in range(_KEY_BYTES):
            kbytes = ((masked >> (8 * b)) & 0xFF).astype(np.intp)
            h ^= self._tables[:, b, kbytes]
        return h.T.astype(np.int64) + self._bank_offsets[None, :]


class BloomSignature:
    """A bit-accurate, banked Bloom signature over cache-line addresses."""

    __slots__ = ("family", "_bits", "_inserted", "_popcount", "_rate_cache")

    def __init__(self, family: H3HashFamily):
        self.family = family
        self._bits = 0
        self._inserted = 0
        self._popcount = 0
        self._rate_cache = (0, 0.0)

    def insert(self, key: int) -> bool:
        """Set this key's bit in every bank; True when any bit was new."""
        self._inserted += 1
        bits = self._bits
        new = bits | self.family.mask(key)
        if new == bits:
            return False
        self._popcount += (new ^ bits).bit_count()
        self._bits = new
        return True

    def maybe_contains(self, key: int) -> bool:
        """True when all banks hit. Never a false negative."""
        mask = self.family.mask(key)
        return self._bits & mask == mask

    def update(self, keys: Iterable[int]) -> None:
        """Insert every key."""
        for key in keys:
            self.insert(key)

    def insert_many(self, keys) -> int:
        """Batched :meth:`insert` over a key array; returns new-bit count."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return 0
        self._inserted += int(keys.size)
        idx = self.family.indices_array(keys).ravel()
        bitmap = np.zeros(self.family.m_bits, dtype=np.uint8)
        bitmap[idx] = 1
        mask = int.from_bytes(
            np.packbits(bitmap, bitorder="little").tobytes(), "little")
        bits = self._bits
        new = bits | mask
        added = (new ^ bits).bit_count()
        if added:
            self._popcount += added
            self._bits = new
        return added

    def contains_many(self, keys) -> np.ndarray:
        """Batched :meth:`maybe_contains` → bool array."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return np.zeros(0, dtype=bool)
        n_words = (self.family.m_bits + 63) // 64
        words = np.frombuffer(
            self._bits.to_bytes(n_words * 8, "little"), dtype=np.uint64)
        idx = self.family.indices_array(keys)            # (n, k)
        hit = (words[idx >> 6] >> (idx & 63).astype(np.uint64)) & 1
        return hit.all(axis=1)

    def clear(self) -> None:
        """Reset the signature to empty."""
        self._bits = 0
        self._inserted = 0
        self._popcount = 0
        self._rate_cache = (0, 0.0)

    @property
    def inserted(self) -> int:
        """Number of insert operations performed."""
        return self._inserted

    @property
    def popcount(self) -> int:
        """Number of set bits across all banks."""
        return self._popcount

    @property
    def fill(self) -> float:
        """Mean per-bank fill fraction."""
        return self._popcount / self.family.m_bits

    def false_positive_rate(self) -> float:
        """Probability a random never-inserted key hits all ``k`` banks.

        With banked filters, each bank is probed once; a bank of ``b`` bits
        holding ``p_i`` set bits hits with probability ``p_i / b``. We use
        the mean fill as ``p_i / b`` for every bank, which is exact in
        expectation and accurate for H3's near-uniform spreading.
        """
        pc = self._popcount
        cached_pc, cached_rate = self._rate_cache
        if pc == cached_pc:
            return cached_rate
        rate = (pc / self.family.m_bits) ** self.family.k
        self._rate_cache = (pc, rate)
        return rate


class SignatureBank:
    """Many Bloom signatures as rows of one numpy bitmap (struct-of-arrays).

    Rows are acquired/released as tasks register/unregister; the payoff is
    :meth:`probe_rows`, which answers "which of these rows contain this
    key?" for the whole live set in a handful of vectorized ops — the
    operation exact conflict detection performs on every access.
    """

    def __init__(self, family: H3HashFamily, capacity: int = 64):
        if capacity <= 0:
            raise MemoryError_("bank capacity must be positive")
        self.family = family
        self.words_per_row = (family.m_bits + 63) // 64
        self._words = np.zeros((capacity, self.words_per_row), dtype=np.uint64)
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        self.capacity = capacity
        #: bitmap-level update/probe operations (profiling)
        self.bitmap_ops = 0

    def acquire(self) -> int:
        """Claim an empty row (growing the bank geometrically when full)."""
        if not self._free:
            old = self.capacity
            self.capacity = old * 2
            grown = np.zeros((self.capacity, self.words_per_row),
                             dtype=np.uint64)
            grown[:old] = self._words
            self._words = grown
            self._free = list(range(self.capacity - 1, old - 1, -1))
        return self._free.pop()

    def release(self, row: int) -> None:
        """Return a row to the pool, cleared."""
        self._words[row] = 0
        self._free.append(row)

    def clear(self, row: int) -> None:
        self._words[row] = 0

    def insert(self, row: int, key: int) -> bool:
        """Set the key's bits in ``row``; True when any bit was new."""
        widx, wmask = self.family.word_masks(key)
        self.bitmap_ops += 1
        r = self._words[row]
        before = r[widx]
        after = before | wmask
        if (after == before).all():
            return False
        r[widx] = after
        return True

    def insert_many(self, row: int, keys) -> None:
        """Batched insert of a key array into one row."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return
        idx = self.family.indices_array(keys).ravel()
        self.bitmap_ops += 1
        np.bitwise_or.at(self._words[row], idx >> 6,
                         np.uint64(1) << (idx & 63).astype(np.uint64))

    def probe(self, row: int, key: int) -> bool:
        """True when all the key's bits are set in ``row``."""
        widx, wmask = self.family.word_masks(key)
        self.bitmap_ops += 1
        return bool(((self._words[row, widx] & wmask) == wmask).all())

    def probe_rows(self, key: int, rows) -> np.ndarray:
        """Vectorized probe of many rows → bool array (aligned to ``rows``)."""
        widx, wmask = self.family.word_masks(key)
        self.bitmap_ops += 1
        rows = np.asarray(rows, dtype=np.intp)
        sub = self._words[rows[:, None], widx[None, :]]
        return ((sub & wmask) == wmask).all(axis=1)

    def popcount(self, row: int) -> int:
        """Set bits in ``row`` (computed on demand)."""
        return int(np.bitwise_count(self._words[row]).sum())

    def fill(self, row: int) -> float:
        """Fill fraction of ``row``."""
        return self.popcount(row) / self.family.m_bits

    def false_positive_rate(self, row: int) -> float:
        """Same mean-fill model as :meth:`BloomSignature.false_positive_rate`."""
        return (self.popcount(row) / self.family.m_bits) ** self.family.k
