"""Per-tile task units: task queues and commit queues (paper Sec. 4.1).

The task queue holds pending (not yet dispatched) task descriptors ordered
by fractal VT; the commit queue holds the speculative state of finished
tasks awaiting commit. Together they form a task-level reorder buffer.

The pending queue is a lazy-deletion binary heap: squashes, spills and VT
rewrites (zooming, tiebreaker compaction) invalidate entries in place via a
per-enqueue token, and :meth:`rebuild` re-keys everything after a global VT
rewrite.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from ..errors import SimulationError
from .frontier import StrippedIndex


class TaskUnit:
    """Task queue + commit queue of one tile."""

    def __init__(self, tile_id: int, task_queue_cap: int, commit_queue_cap: int):
        self.tile_id = tile_id
        self.task_queue_cap = task_queue_cap
        self.commit_queue_cap = commit_queue_cap
        self._heap: List[Tuple[tuple, int, int, object]] = []  # (key, seq, token, task)
        # Mirror of the live entries keyed on stripped VT prefixes, so the
        # scheduler's "earliest pending under the stripped transform" query
        # stops scanning the whole queue. Shares the queue_token discipline:
        # every enqueue/remove/pop bump invalidates both structures at once.
        self._stripped_idx = StrippedIndex("queue_token")
        self._seq = 0
        #: exact number of live pending tasks in this queue
        self.pending_count = 0
        #: finished tasks holding commit-queue entries
        self.commit_occupancy = 0
        #: tasks that finished but found the commit queue full (stall)
        self.finish_stalled: List[object] = []
        # stats
        self.peak_pending = 0
        self.peak_commit = 0

    # ------------------------------------------------------------------
    # pending (task queue)
    # ------------------------------------------------------------------
    def enqueue(self, task) -> None:
        """Queue a pending task (its ``vt`` must be set to its lower bound)."""
        task.queue_tile = self.tile_id
        task.queue_token += 1
        self._seq += 1
        heapq.heappush(self._heap,
                       (task.order_key(), self._seq, task.queue_token, task))
        self._stripped_idx.push(task)
        self.pending_count += 1
        if self.pending_count > self.peak_pending:
            self.peak_pending = self.pending_count

    def remove(self, task) -> None:
        """Lazily remove a pending task (squash or spill)."""
        task.queue_token += 1  # invalidates the heap entry
        self.pending_count -= 1
        if self.pending_count < 0:
            raise SimulationError("task queue pending_count underflow")

    def pop_best(self) -> Optional[object]:
        """Dequeue the lowest-VT live pending task, skipping stale entries."""
        heap = self._heap
        while heap:
            key, seq, token, task = heap[0]
            if token != task.queue_token:
                heapq.heappop(heap)
                continue
            heapq.heappop(heap)
            task.queue_token += 1
            self.pending_count -= 1
            return task
        return None

    def peek_min_key(self) -> Optional[tuple]:
        """Lowest live pending VT key (for GVT), or None when empty."""
        heap = self._heap
        while heap:
            key, seq, token, task = heap[0]
            if token != task.queue_token:
                heapq.heappop(heap)
                continue
            return key
        return None

    def peek_min_stripped(self, now_lb_raw: int) -> Optional[tuple]:
        """Lowest live pending key under the stripped transform with
        ``now_lb_raw`` as the dynamic final tiebreaker, or None when empty.
        Equals ``min(stripped(t.order_key()) for t in live_pending())``."""
        return self._stripped_idx.min_candidate(now_lb_raw)

    def live_pending(self) -> List[object]:
        """All live pending tasks (O(queue); used by spills and rebuilds)."""
        seen = set()
        out = []
        for key, seq, token, task in self._heap:
            if token == task.queue_token and id(task) not in seen:
                seen.add(id(task))
                out.append(task)
        return out

    def rebuild(self) -> None:
        """Re-key every live entry after a global VT rewrite."""
        tasks = self.live_pending()
        self._heap.clear()
        self._stripped_idx.clear()
        self.pending_count = 0
        for task in tasks:
            self.enqueue(task)

    @property
    def fill_fraction(self) -> float:
        """Occupied fraction of the task queue (spill trigger input)."""
        return self.pending_count / self.task_queue_cap

    def snapshot(self) -> dict:
        """JSON-safe queue state for crash bundles (repro.faults)."""
        return {
            "tile": self.tile_id,
            "pending": self.pending_count,
            "task_queue_cap": self.task_queue_cap,
            "commit_occupancy": self.commit_occupancy,
            "commit_queue_cap": self.commit_queue_cap,
            "finish_stalled": [getattr(t, "tid", -1)
                               for t in self.finish_stalled],
            "peak_pending": self.peak_pending,
            "peak_commit": self.peak_commit,
        }

    # ------------------------------------------------------------------
    # commit queue
    # ------------------------------------------------------------------
    def commit_queue_full(self) -> bool:
        """True when no commit-queue entry is free."""
        return self.commit_occupancy >= self.commit_queue_cap

    def acquire_commit_entry(self) -> bool:
        """Reserve a commit-queue entry; False when full."""
        if self.commit_queue_full():
            return False
        self.commit_occupancy += 1
        if self.commit_occupancy > self.peak_commit:
            self.peak_commit = self.commit_occupancy
        return True

    def release_commit_entry(self) -> None:
        """Free a commit-queue entry (commit or abort of a finished task)."""
        self.commit_occupancy -= 1
        if self.commit_occupancy < 0:
            raise SimulationError("commit queue occupancy underflow")

    def __repr__(self) -> str:
        return (f"TaskUnit(tile={self.tile_id}, pending={self.pending_count}, "
                f"commitq={self.commit_occupancy}/{self.commit_queue_cap})")
