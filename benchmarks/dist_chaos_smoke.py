#!/usr/bin/env python
"""CI chaos smoke for the distributed farm (``repro.farm.dist``).

Real OS processes, real faults, byte-level acceptance:

1. start ``python -m repro coordinator --port 0`` and parse the bound
   port from its stderr banner;
2. start a *victim* ``repro agent`` whose transport chaos
   (``REPRO_DIST_CHAOS``) drops every heartbeat and delays every
   delivery past any lease TTL — then SIGKILL it mid-fragment, once
   the coordinator has granted it a lease;
3. drive ``repro sweep --dist`` as a subprocess while this happens and
   start a healthy ``repro agent --exit-when-idle`` to pick up the
   pieces;
4. assert the sweep completes, the rendered table + chart bytes are
   identical to a serial in-process run of the same specs, at least
   one lease expired and its fragment was requeued, and the
   exactly-once ledger shows every result recorded once with zero
   mismatched (duplicate) writes;
5. SIGTERM the coordinator and assert it drains and exits 0.

Then the **coordinator-kill phase** (the PR-8 acceptance): a fresh
coordinator with a write-ahead journal and a required wire token is
SIGKILLed mid-sweep; the agent and the sweep driver ride out the
outage; a second coordinator started on the same port and journal
directory replays the journal and finishes the sweep. Asserts the
output is still byte-identical to the serial run, the journal's
exactly-once ledger holds (every job recorded once, across both
coordinator processes), the agent reconnected unaided, anonymous
requests 401, and ``repro profile --dist`` renders the recovery block.

Exit code 0 if every step holds, 1 otherwise. Stdlib + repro only.
"""

import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.harness import AppRun                        # noqa: E402
from repro.bench.plots import speedup_chart                   # noqa: E402
from repro.bench.report import speedup_table                  # noqa: E402
from repro.farm import Farm, validate_jobspec                 # noqa: E402
from repro.farm.dist import (TOKEN_ENV, DistClient,           # noqa: E402
                             read_journal)
from repro.faults.chaos import CHAOS_ENV, wait_until          # noqa: E402
from repro.serve.client import ServeAPIError                  # noqa: E402

APP = "zoomtree"
VARIANT = "fractal"
CORES = (1, 2, 4)

#: phase-B wire secret: every process gets it via the env, the
#: anonymous probe deliberately doesn't
TOKEN = "smoke-token-123"

BANNER = re.compile(r"listening on http://([\d.]+):(\d+)")

# The victim never manages a heartbeat (a partition, indistinguishable
# from a SIGKILL to the coordinator) and can never deliver in time.
VICTIM_CHAOS = {"partition": {"heartbeat": [1, 100000]},
                "delay_ms": {"deliver": 120000}}


def fail(msg):
    print(f"dist-chaos-smoke: FAIL: {msg}", file=sys.stderr)
    return 1


def wait_for_banner(proc, timeout=30.0):
    """Read the coordinator's stderr until the listening banner appears."""
    deadline = time.monotonic() + timeout
    lines = []
    while time.monotonic() < deadline:
        line = proc.stderr.readline()
        if not line:
            if proc.poll() is not None:
                break
            continue
        lines.append(line)
        m = BANNER.search(line)
        if m:
            return f"http://{m.group(1)}:{m.group(2)}", lines
    raise RuntimeError(f"no listening banner; stderr so far: {lines!r}")


def child_env(**extra):
    return {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src"), **extra}


def start_agent(url, name, **extra_env):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "agent", url, "--id", name,
         "--max-fragments", "1", "--exit-when-idle"],
        cwd=REPO_ROOT, stderr=subprocess.DEVNULL,
        env=child_env(**extra_env))


def counter(metrics_doc, name):
    return sum(c["value"] for c in metrics_doc["metrics"]["counters"]
               if c["name"] == name)


def serial_rendering():
    """The ground truth: the same grid run serially, rendered the same
    way ``repro sweep --dist`` renders it."""
    specs = [validate_jobspec({"app": APP, "variant": VARIANT,
                               "n_cores": n, "input": {}})
             for n in CORES]
    runs = [AppRun(app=APP, variant=VARIANT, n_cores=r.n_cores,
                   stats=r.stats, handles={}, cached=True)
            for r in Farm(jobs=1).run(specs)]
    table = speedup_table(runs, baseline_variant=VARIANT,
                          baseline_cores=CORES[0])
    chart = speedup_chart(runs, baseline_variant=VARIANT,
                          baseline_cores=CORES[0])
    return f"{table}\n\n{chart}\n"


def main():
    summary_path = pathlib.Path(tempfile.mkdtemp(
        prefix="dist-chaos-")) / "summary.json"
    coord = subprocess.Popen(
        [sys.executable, "-m", "repro", "coordinator", "--port", "0",
         "--lease-ttl", "2", "--heartbeat-interval", "0.5",
         "--fragments", "2", "--no-cache"],
        cwd=REPO_ROOT, stderr=subprocess.PIPE, text=True,
        env=child_env())
    victim = healthy = sweep = None
    try:
        url, _ = wait_for_banner(coord)
        print(f"coordinator up at {url}", flush=True)

        victim = start_agent(url, "victim",
                             **{CHAOS_ENV: json.dumps(VICTIM_CHAOS)})
        sweep = subprocess.Popen(
            [sys.executable, "-m", "repro", "sweep", APP,
             "--dist", url, "--variants", VARIANT,
             "--cores", ",".join(str(n) for n in CORES),
             "--dist-timeout", "240",
             "--summary-out", str(summary_path)],
            cwd=REPO_ROOT, stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, text=True, env=child_env())

        with DistClient(url, timeout=10.0) as client:
            client.wait_ready(timeout=30)
            # SIGKILL the victim mid-fragment: only once the coordinator
            # has actually granted it a lease (it is the only agent, so
            # any granted lease is its)
            if not wait_until(
                    lambda: counter(client.metrics(),
                                    "dist.leases_granted") >= 1,
                    timeout_s=60):
                return fail("victim never acquired a lease")
            os.kill(victim.pid, signal.SIGKILL)
            victim.wait(timeout=30)
            if victim.returncode != -signal.SIGKILL:
                return fail(f"victim exit {victim.returncode}, "
                            f"expected -SIGKILL")
            print("victim SIGKILLed mid-fragment", flush=True)

            healthy = start_agent(url, "healthy")
            out, _ = sweep.communicate(timeout=240)
            if sweep.returncode != 0:
                return fail(f"dist sweep exited {sweep.returncode}")
            metrics = client.metrics()

        expected = serial_rendering()
        if out != expected:
            return fail("dist table differs from serial run:\n"
                        f"--- dist ---\n{out}--- serial ---\n{expected}")
        print("table pass: dist rendering byte-identical to serial run",
              flush=True)

        requeued = counter(metrics, "dist.fragments_requeued")
        expired = counter(metrics, "dist.leases_expired")
        if requeued < 1 or expired < 1:
            return fail(f"no recovery happened: requeued={requeued} "
                        f"expired={expired}")
        recorded = counter(metrics, "dist.results_recorded")
        mismatched = counter(metrics, "dist.result_mismatch")
        if recorded != len(CORES):
            return fail(f"results recorded {recorded} != {len(CORES)}")
        if mismatched != 0:
            return fail(f"{mismatched} mismatched duplicate writes")
        print(f"chaos pass: {expired} lease(s) expired, {requeued} "
              f"fragment(s) requeued, {recorded} results recorded "
              f"exactly once", flush=True)

        summary = json.loads(summary_path.read_text())
        if summary["requeues"] < 1:
            return fail(f"sweep summary saw no requeues: {summary}")
        if "healthy" not in summary["agents"]:
            return fail(f"healthy agent recorded nothing: {summary}")

        if healthy.wait(timeout=60) != 0:
            return fail(f"healthy agent exit {healthy.returncode}")
        coord.send_signal(signal.SIGTERM)
        rc = coord.wait(timeout=60)
        if rc != 0:
            return fail(f"coordinator exit {rc}, expected clean drain")
        print("drain pass: healthy agent idle-exited, coordinator "
              "SIGTERM -> 0", flush=True)

        rc = coordinator_kill_phase(expected)
        if rc:
            return rc
        print("dist-chaos-smoke: OK", flush=True)
        return 0
    finally:
        for proc in (sweep, victim, healthy, coord):
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


def start_coordinator(port, journal_dir):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "coordinator",
         "--port", str(port), "--lease-ttl", "2",
         "--heartbeat-interval", "0.5", "--fragments", "3", "--no-cache",
         "--journal-dir", journal_dir],
        cwd=REPO_ROOT, stderr=subprocess.PIPE, text=True,
        env=child_env(**{TOKEN_ENV: TOKEN}))


def journal_record_ledger(journal_dir):
    """Every recorded (sweep, index) in the journal, with counts —
    snapshot state and WAL tail combined (compaction moves records from
    one to the other, it must never duplicate or drop them)."""
    replay = read_journal(journal_dir)
    counts = {}
    if replay.snapshot is not None:
        for s in replay.snapshot["state"]["sweeps"]:
            for rec in s["records"]:
                if rec is not None:
                    key = (s["id"], rec["index"])
                    counts[key] = counts.get(key, 0) + 1
    for rec in replay.records:
        if rec["kind"] == "record":
            key = (rec["sweep"], rec["record"]["index"])
            counts[key] = counts.get(key, 0) + 1
    return counts


def coordinator_kill_phase(expected):
    """SIGKILL the coordinator mid-sweep; restart it from its journal."""
    print("--- coordinator-kill phase (journal + auth) ---", flush=True)
    journal_dir = tempfile.mkdtemp(prefix="dist-chaos-journal-")
    coord1 = start_coordinator(0, journal_dir)
    coord2 = survivor = sweep = None
    try:
        url, _ = wait_for_banner(coord1)
        port = int(url.rsplit(":", 1)[1])
        print(f"journaling coordinator up at {url}", flush=True)

        survivor = start_agent(url, "survivor", **{TOKEN_ENV: TOKEN})
        sweep = subprocess.Popen(
            [sys.executable, "-m", "repro", "sweep", APP,
             "--dist", url, "--variants", VARIANT,
             "--cores", ",".join(str(n) for n in CORES),
             "--dist-timeout", "240"],
            cwd=REPO_ROOT, stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, text=True,
            env=child_env(**{TOKEN_ENV: TOKEN}))

        with DistClient(url, timeout=10.0, token=TOKEN) as client:
            client.wait_ready(timeout=30)
            # kill only once at least one result is durably journaled
            # (and, with 3 single-job fragments, more are still to come)
            if not wait_until(
                    lambda: counter(client.metrics(),
                                    "dist.results_recorded") >= 1,
                    timeout_s=120):
                return fail("no result recorded before the kill window")
        os.kill(coord1.pid, signal.SIGKILL)
        coord1.wait(timeout=30)
        if coord1.returncode != -signal.SIGKILL:
            return fail(f"coordinator exit {coord1.returncode}, "
                        f"expected -SIGKILL")
        print("coordinator SIGKILLed mid-sweep", flush=True)
        if survivor.poll() is not None:
            return fail("survivor agent died with the coordinator")

        coord2 = start_coordinator(port, journal_dir)
        url2, _ = wait_for_banner(coord2)
        if url2 != url:
            return fail(f"restart bound {url2}, expected {url}")
        with DistClient(url2, timeout=10.0, token=TOKEN) as client:
            health = client.wait_ready(timeout=30)
            if not health.get("recovered"):
                return fail(f"restart did not recover: {health}")

            # the wire requires the token: an anonymous probe 401s
            try:
                with DistClient(url2, timeout=10.0, token="") as anon:
                    anon.healthz()
                return fail("anonymous healthz was not rejected")
            except ServeAPIError as exc:
                if exc.status != 401:
                    return fail(f"anonymous healthz got {exc.status}, "
                                f"expected 401")

            out, _ = sweep.communicate(timeout=240)
            if sweep.returncode != 0:
                return fail(f"dist sweep exited {sweep.returncode} "
                            f"across the coordinator restart")
            metrics = client.metrics()

        if out != expected:
            return fail("post-recovery table differs from serial run:\n"
                        f"--- dist ---\n{out}--- serial ---\n{expected}")
        print("recovery pass: sweep completed across the restart, "
              "byte-identical to serial run", flush=True)

        recovery = metrics["dist"]["recovery"]
        if not recovery.get("recovered"):
            return fail(f"metrics claim no recovery: {recovery}")
        if recovery.get("replayed_records", 0) < 1 \
                and recovery.get("snapshot_seq", 0) < 1:
            return fail(f"nothing replayed: {recovery}")
        if counter(metrics, "dist.auth_reject") < 1:
            return fail("the anonymous probe was not counted")
        if counter(metrics, "dist.result_mismatch") != 0:
            return fail("mismatched duplicate writes after recovery")

        ledger = journal_record_ledger(journal_dir)
        dupes = {k: n for k, n in ledger.items() if n != 1}
        if dupes:
            return fail(f"journal recorded jobs more than once: {dupes}")
        if len(ledger) != len(CORES):
            return fail(f"journal ledger has {len(ledger)} records, "
                        f"expected {len(CORES)}")
        print(f"journal pass: {recovery['replayed_records']} record(s) "
              f"replayed, {len(ledger)} job(s) recorded exactly once "
              f"across both coordinator processes", flush=True)

        profile = subprocess.run(
            [sys.executable, "-m", "repro", "profile",
             "--dist", url2, "--token", TOKEN],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=60,
            env=child_env())
        if profile.returncode != 0:
            return fail(f"profile --dist exited {profile.returncode}: "
                        f"{profile.stderr}")
        if "journal records replayed" not in profile.stdout \
                or "wire auth" not in profile.stdout:
            return fail("profile --dist shows no recovery block:\n"
                        f"{profile.stdout}")
        print("profile pass: recovery + auth block rendered", flush=True)

        if survivor.wait(timeout=60) != 0:
            return fail(f"survivor agent exit {survivor.returncode}")
        coord2.send_signal(signal.SIGTERM)
        rc = coord2.wait(timeout=60)
        if rc != 0:
            return fail(f"restarted coordinator exit {rc}, "
                        f"expected clean drain")
        print("kill pass: survivor reconnected and idle-exited, "
              "restarted coordinator SIGTERM -> 0", flush=True)
        return 0
    finally:
        for proc in (sweep, survivor, coord1, coord2):
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
