"""Miscellaneous behaviour tests: audit switches, traces, high-level
misuse, and representation helpers."""

import pytest

from repro import Ordering, Simulator, SystemConfig, forall
from repro.errors import DomainError, SimulationError


def make_sim(**kw):
    kw.setdefault("conflict_mode", "precise")
    enable_audit = kw.pop("enable_audit", True)
    enable_trace = kw.pop("enable_trace", False)
    return Simulator(SystemConfig.with_cores(4, **kw),
                     enable_audit=enable_audit, enable_trace=enable_trace)


class TestAuditSwitch:
    def test_audit_disabled_refuses_audit_call(self):
        sim = make_sim(enable_audit=False)
        sim.enqueue_root(lambda ctx: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.audit()

    def test_audit_disabled_keeps_no_commit_log(self):
        sim = make_sim(enable_audit=False)
        for _ in range(5):
            sim.enqueue_root(lambda ctx: None)
        sim.run()
        assert sim.commit_log == []


class TestTraceSwitch:
    def test_trace_records_committed_and_aborted(self):
        sim = make_sim(enable_trace=True)
        cell = sim.cell("c", 0)

        def t(ctx):
            cell.add(ctx, 1)
            ctx.compute(50)

        for _ in range(12):
            sim.enqueue_root(t)
        stats = sim.run(max_cycles=10_000_000)
        outcomes = {s.outcome for s in sim.trace.segments}
        assert "committed" in outcomes
        if stats.tasks_aborted:
            assert "aborted" in outcomes

    def test_trace_disabled_by_default(self):
        sim = make_sim()
        assert sim.trace is None


class TestHighLevelMisuse:
    def test_two_foralls_in_one_task_rejected(self):
        sim = make_sim()
        errors = []

        def t(ctx):
            forall(ctx, range(2), lambda c, i: None)
            try:
                forall(ctx, range(2), lambda c, i: None)
            except DomainError as e:
                errors.append(e)

        sim.enqueue_root(t)
        sim.run()
        assert errors

    def test_forall_over_empty_iterable(self):
        sim = make_sim()
        sim.enqueue_root(lambda ctx: forall(ctx, [], lambda c, i: None))
        stats = sim.run()
        assert stats.tasks_committed == 1


class TestReprsAndSummaries:
    def test_task_repr_shows_state_and_vt(self):
        sim = make_sim()
        task = sim.enqueue_root(lambda ctx: None, label="mytask")
        assert "mytask" in repr(task)
        assert "pending" in repr(task)
        sim.run()
        assert "committed" in repr(task)

    def test_domain_repr(self):
        from repro.core.domain import Domain
        root = Domain(Ordering.UNORDERED)
        assert "root" in repr(root)

    def test_core_and_tile_repr(self):
        sim = make_sim()
        assert "Core0" in repr(sim.cores[0])
        assert "Tile0" in repr(sim.tiles[0])

    def test_summary_mentions_zooming_only_when_used(self):
        sim = make_sim()
        sim.enqueue_root(lambda ctx: None)
        stats = sim.run()
        assert "zooming" not in stats.summary()


class TestMaxCyclesGuard:
    def test_guard_raises_with_live_tasks(self):
        sim = make_sim()

        def chain(ctx, n):
            ctx.compute(1000)
            ctx.enqueue(chain, n + 1)  # unbounded

        sim.enqueue_root(chain, 0)
        with pytest.raises(SimulationError):
            sim.run(max_cycles=50_000)
