"""Maximum flow via push-relabel with global relabeling (paper Secs. 2.1,
6.1; adapted from prsn [8]; input: rmf-wide networks).

Push-relabel maintains per-node heights and excesses. Active nodes (excess
> 0) push flow downhill along residual edges, relabeling (raising their
height) when stuck. The *global relabeling* heuristic periodically
recomputes heights as exact BFS distances to the sink in the residual
graph, which is essential for performance but, as one huge atomic task,
serializes everything it touches (Fig. 1a).

Variants:

- ``flat`` — unordered active-node tasks plus a single monolithic
  global-relabel task that performs the whole backward BFS atomically:
  a giant read/write footprint that conflicts with every concurrent push
  (and overflows Bloom signatures, Fig. 14).
- ``fractal`` — maxflow-fractal: the global-relabel task opens an
  *ordered* subdomain and runs the BFS as per-node wavefront tasks
  (timestamp = BFS level, Fig. 2). The relabel remains atomic relative to
  active-node tasks, but is internally parallel and each task's footprint
  is tiny.

Heights only ever increase (global relabel takes ``max`` with the BFS
distance), preserving the push-relabel invariants.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import AppError
from ..graphs import Graph, rmf_wide
from ..vt import Ordering
from .common import VARIANTS_FLAT_FRACTAL, require_variant


class MaxflowInput:
    """Residual-graph arrays precomputed from a capacity graph."""

    def __init__(self, g: Graph, source: int, sink: int):
        self.graph = g
        self.source = source
        self.sink = sink
        self.n = g.n
        # Edge list with paired residuals: edge 2k = forward, 2k+1 = back.
        self.eu: List[int] = []
        self.ev: List[int] = []
        self.cap0: List[int] = []
        self.adj: List[List[Tuple[int, int]]] = [[] for _ in range(g.n)]
        for (u, v) in g.edges():
            c = int(g.weight(u, v))
            e = len(self.cap0)
            self.eu += [u, v]
            self.ev += [v, u]
            self.cap0 += [c, 0]
            self.adj[u].append((v, e))
            self.adj[v].append((u, e + 1))

    @property
    def m(self) -> int:
        return len(self.cap0)


def make_input(b: int = 4, layers: int = 4, seed: int = 4) -> MaxflowInput:
    """An rmf-wide network (paper: 65 K nodes; toy default 64 nodes)."""
    g, s, t = rmf_wide(b, layers, seed=seed)
    return MaxflowInput(g, s, t)


def build(host, inp: MaxflowInput, variant: str = "fractal",
          global_relabel: bool = True,
          relabel_period: Optional[int] = None) -> Dict:
    require_variant(variant, VARIANTS_FLAT_FRACTAL)
    n, s, t = inp.n, inp.source, inp.sink
    # Global relabeling fires roughly every 2n units of push/relabel work
    # (the classic heuristic period); counters are sharded 16 ways.
    period = relabel_period if relabel_period is not None else 2 * n
    shard_threshold = max(period // 16, 2)
    # Hot per-node/per-edge state gets one cache line per entry: at toy
    # input scales, packing nodes 8-per-line makes *every* task falsely
    # share lines with every other, which the paper's 65 K-node inputs do
    # not suffer proportionally. One line per node restores realistic
    # conflict density. Helpers below hide the stride.
    height_a = host.array("mf.height", n * 8,
                          init=_spread((n if v == s else (0 if v == t else 1))
                                       for v in range(n)))
    excess_a = host.array("mf.excess", n * 8)
    cap_a = host.array("mf.cap", (inp.m // 2) * 8, init=_spread_pairs(inp.cap0))
    # Sharded global-relabel trigger counters (one cache line per shard):
    # a single shared counter would serialize every discharge through one
    # word, which real implementations avoid with distributed counters.
    n_shards = 16
    work = host.array("mf.work", n_shards * 8)
    gr_active = host.cell("mf.gr_active", 0)
    gr_epoch = host.cell("mf.gr_epoch", 0)
    gr_mark_a = host.array("mf.gr_mark", n * 8, fill=-1)
    adj = [tuple(a) for a in inp.adj]

    class _Strided:
        """View of a line-spread array with logical indices."""

        __slots__ = ("arr", "scale")

        def __init__(self, arr, scale=8):
            self.arr = arr
            self.scale = scale

        def get(self, ctx, i):
            return self.arr.get(ctx, i * self.scale)

        def set(self, ctx, i, v):
            self.arr.set(ctx, i * self.scale, v)

    class _PairStrided(_Strided):
        """Residual-edge capacities: one line per edge pair (eid, eid^1)."""

        def get(self, ctx, eid):
            return self.arr.get(ctx, (eid >> 1) * 8 + (eid & 1))

        def set(self, ctx, eid, v):
            self.arr.set(ctx, (eid >> 1) * 8 + (eid & 1), v)

    height = _Strided(height_a)
    excess = _Strided(excess_a)
    gr_mark = _Strided(gr_mark_a)
    cap = _PairStrided(cap_a)

    # ---------------- active-node (push/relabel) tasks -----------------
    def discharge(ctx, v):
        e = excess.get(ctx, v)
        if e <= 0 or v in (s, t):
            return
        h = height.get(ctx, v)
        pushed_any = False
        for (ngh, eid) in adj[v]:
            if e <= 0:
                break
            c = cap.get(ctx, eid)
            if c <= 0 or h != height.get(ctx, ngh) + 1:
                continue
            delta = min(e, c)
            cap.set(ctx, eid, c - delta)
            rev = eid ^ 1
            cap.set(ctx, rev, cap.get(ctx, rev) + delta)
            e -= delta
            old = excess.get(ctx, ngh)
            excess.set(ctx, ngh, old + delta)
            pushed_any = True
            if old == 0 and ngh not in (s, t):
                ctx.enqueue(discharge, ngh, hint=ngh, label="active")
        excess.set(ctx, v, e)
        if e > 0:
            # relabel: rise to 1 + min residual-neighbour height
            best = None
            for (ngh, eid) in adj[v]:
                if cap.get(ctx, eid) > 0:
                    hn = height.get(ctx, ngh)
                    if best is None or hn < best:
                        best = hn
            if best is not None:
                height.set(ctx, v, best + 1)
                ctx.enqueue(discharge, v, hint=v, label="active")
        if global_relabel and (pushed_any or e > 0):
            slot = (v % 16) * 8
            w = work.add(ctx, slot, 1)
            if w >= shard_threshold and gr_active.get(ctx) == 0:
                gr_active.set(ctx, 1)
                work.set(ctx, slot, 0)
                ctx.enqueue(relabel_fn[0], hint=t, label="global_relabel")

    # ---------------- global relabel: flat (one giant task) --------------
    def global_relabel_flat(ctx):
        dist = {t: 0}
        frontier = [t]
        while frontier:
            nxt = []
            for v in frontier:
                for (w_, eid) in adj[v]:
                    # residual edge w_ -> v exists if cap(w_ -> v) > 0;
                    # that is the paired edge of (v -> w_).
                    if w_ not in dist and cap.get(ctx, eid ^ 1) > 0:
                        dist[w_] = dist[v] + 1
                        nxt.append(w_)
            frontier = nxt
        for v, d in dist.items():
            if v not in (s, t) and d > height.get(ctx, v):
                height.set(ctx, v, d)
                if excess.get(ctx, v) > 0:
                    ctx.enqueue(discharge, v, hint=v, label="active")
        gr_active.set(ctx, 0)

    # ---------------- global relabel: fractal (ordered BFS) --------------
    def bfs_visit(ctx, v, level, epoch):
        # Swarm-style BFS: no neighbour pre-checks (reading a sibling's
        # visited mark while it runs is a guaranteed conflict); duplicate
        # visits detect themselves on their own node's mark and bail.
        if gr_mark.get(ctx, v) == epoch:
            return
        gr_mark.set(ctx, v, epoch)
        if v not in (s, t) and level > height.get(ctx, v):
            height.set(ctx, v, level)
            if excess.get(ctx, v) > 0:
                ctx.enqueue_super(discharge, v, hint=v, label="active")
        for (w_, eid) in adj[v]:
            if cap.get(ctx, eid ^ 1) > 0:
                ctx.enqueue(bfs_visit, w_, level + 1, epoch,
                            ts=level + 1, hint=w_, label="bfs")

    def gr_done(ctx):
        gr_active.set(ctx, 0)

    def global_relabel_fractal(ctx):
        epoch = gr_epoch.add(ctx, 1)
        ctx.create_subdomain(Ordering.ORDERED_32)
        ctx.enqueue_sub(bfs_visit, t, 0, epoch, ts=0, hint=t, label="bfs")
        ctx.enqueue_sub(gr_done, ts=inp.n + 1, label="gr_done")

    relabel_fn = [global_relabel_flat if variant == "flat"
                  else global_relabel_fractal]

    # ---------------- initialization: saturate source edges -------------
    def init_source(ctx):
        for (ngh, eid) in adj[s]:
            c = cap.get(ctx, eid)
            if c > 0:
                cap.set(ctx, eid, 0)
                rev = eid ^ 1
                cap.set(ctx, rev, cap.get(ctx, rev) + c)
                excess.set(ctx, ngh, excess.get(ctx, ngh) + c)
                if ngh not in (s, t):
                    ctx.enqueue(discharge, ngh, hint=ngh, label="active")

    host.enqueue_root(init_source, label="init")
    return {"excess": excess_a, "height": height_a, "cap": cap_a,
            "input": inp}


def root_ordering(variant: str) -> Ordering:
    return Ordering.UNORDERED


def _spread(values, scale: int = 8):
    """Lay logical values out one per cache line."""
    out = []
    for v in values:
        out.append(v)
        out.extend([0] * (scale - 1))
    return out


def _spread_pairs(cap0):
    """Lay residual capacity pairs out one pair per cache line."""
    out = []
    for k in range(0, len(cap0), 2):
        out.extend([cap0[k], cap0[k + 1], 0, 0, 0, 0, 0, 0])
    return out


def reference_maxflow(inp: MaxflowInput) -> int:
    """networkx oracle for the flow value."""
    import networkx as nx

    gx = nx.DiGraph()
    gx.add_nodes_from(range(inp.n))
    for k in range(0, inp.m, 2):
        u, v, c = inp.eu[k], inp.ev[k], inp.cap0[k]
        if gx.has_edge(u, v):
            gx[u][v]["capacity"] += c
        else:
            gx.add_edge(u, v, capacity=c)
    value, _ = nx.maximum_flow(gx, inp.source, inp.sink)
    return value


def check(handles: Dict, inp: MaxflowInput) -> int:
    """Flow value at the sink must match the networkx oracle; capacities
    must be conserved per edge pair."""
    flow = handles["excess"].peek(inp.sink * 8)
    want = reference_maxflow(inp)
    if flow != want:
        raise AppError(f"max flow {flow} != oracle {want}")
    cap = handles["cap"]
    for k in range(0, inp.m, 2):
        fwd = cap.peek((k >> 1) * 8)
        bwd = cap.peek((k >> 1) * 8 + 1)
        if fwd + bwd != inp.cap0[k] + inp.cap0[k + 1]:
            raise AppError(f"capacity not conserved on edge pair {k}")
        if fwd < 0 or bwd < 0:
            raise AppError(f"negative residual on edge pair {k}")
    # no excess may remain stranded anywhere but source and sink
    excess = handles["excess"]
    for v in range(inp.n):
        if v not in (inp.source, inp.sink) and excess.peek(v * 8) != 0:
            raise AppError(f"node {v} retains excess {excess.peek(v * 8)}")
    return flow
