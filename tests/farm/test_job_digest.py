"""Canonicalization and content-address tests (repro.farm.job)."""

import dataclasses
import math

import pytest

from repro.apps import zoomtree
from repro.config import SystemConfig
from repro.farm import JobSpec, canonical, canonical_json, stable_digest


def spec(**overrides):
    base = dict(app="repro.apps.zoomtree", variant="fractal", n_cores=4,
                input_kwargs={"fanout": 2, "depth": 3})
    base.update(overrides)
    return JobSpec(**base)


class TestCanonical:
    def test_dict_key_order_irrelevant(self):
        a = {"x": 1, "y": [2, 3], "z": {"a": 1, "b": 2}}
        b = {"z": {"b": 2, "a": 1}, "y": [2, 3], "x": 1}
        assert canonical_json(a) == canonical_json(b)

    def test_tuple_and_list_agree(self):
        assert canonical((1, 2, (3, 4))) == canonical([1, 2, [3, 4]])

    def test_sets_are_ordered(self):
        assert canonical({3, 1, 2}) == canonical({2, 3, 1})

    def test_tuple_dict_keys(self):
        # Graph weight maps key by (u, v) tuples
        a = {(0, 1): 5, (1, 2): 7}
        b = {(1, 2): 7, (0, 1): 5}
        assert canonical_json(a) == canonical_json(b)

    def test_non_finite_floats(self):
        for val in (float("inf"), float("-inf"), float("nan")):
            out = canonical(val)
            assert isinstance(out, str)
        assert canonical(float("nan")) == canonical(float("nan"))
        assert canonical(1.5) == 1.5
        assert math.isinf(float("inf"))  # sanity

    def test_bytes(self):
        assert canonical(b"\x00\xff") == canonical(b"\x00\xff")
        assert canonical(b"a") != canonical(b"b")

    def test_dataclass_expansion(self):
        inp = zoomtree.make_input(fanout=2, depth=3)
        again = zoomtree.make_input(fanout=2, depth=3)
        assert inp is not again
        assert canonical_json(inp) == canonical_json(again)

    def test_opaque_fallback_is_stable(self):
        # objects with no structural form degrade to a pickle digest
        out = canonical(frozenset)
        assert canonical(frozenset) == out

    def test_stable_digest_is_hex(self):
        d = stable_digest({"a": 1})
        assert len(d) == 64 and int(d, 16) >= 0


class TestJobDigest:
    def test_rebuilt_input_same_digest(self):
        a = spec(input_obj=zoomtree.make_input(fanout=2, depth=3),
                 input_kwargs=None)
        b = spec(input_obj=zoomtree.make_input(fanout=2, depth=3),
                 input_kwargs=None)
        assert a.digest() == b.digest()

    def test_digest_cached_on_spec(self):
        s = spec()
        assert s.digest() is s.digest()

    @pytest.mark.parametrize("change", [
        dict(n_cores=8),
        dict(variant="flat"),
        dict(input_kwargs={"fanout": 2, "depth": 4}),
        dict(check=False),
        dict(max_cycles=1000),
        dict(build_options={"flattenable": True}),
        dict(config=SystemConfig.with_cores(4, conflict_mode="precise")),
    ])
    def test_digest_sensitivity(self, change):
        assert spec().digest() != spec(**change).digest()

    def test_label_does_not_change_digest(self):
        # label is presentation, not semantics
        assert spec().digest() == spec(label="pretty name").digest()

    def test_resilience_changes_digest(self):
        from repro.faults import ResiliencePolicy
        timed = spec(resilience=ResiliencePolicy(max_wall_seconds=1.0))
        assert spec().digest() != timed.digest()

    def test_canonical_roundtrips_through_json(self):
        import json
        s = spec(config=SystemConfig.with_cores(4))
        doc = s.canonical()
        assert json.loads(json.dumps(doc, sort_keys=True)) == doc
