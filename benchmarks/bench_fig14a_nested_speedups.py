"""Fig. 14a: flat vs fractal speedups under Bloom-filter and precise
conflict detection, for the three nesting-limited apps (maxflow,
labyrinth, bayes).

Paper: flat versions scale to at most 4.9x (Bloom) because their huge
read/write sets overflow the 2 Kbit signatures; precise detection helps
flat only partially (parallelism is still missing); fractal versions
scale to 88x-322x and perform the same under both detection schemes.

Expected shape here: fractal >> flat at the top core count for every app,
and |fractal(bloom) - fractal(precise)| small while flat(precise) >=
flat(bloom).
"""

from _common import core_counts, emit, once, run_once
from repro.apps import bayes, labyrinth, maxflow
from repro.bench.report import format_table

APPS = [
    ("maxflow", maxflow, dict(b=4, layers=4), ("flat", "fractal")),
    ("labyrinth", labyrinth, dict(x=10, y=10, z=2, n_paths=12),
     ("hwq", "fractal")),
    ("bayes", bayes, dict(n_decisions=48), ("hwq", "fractal")),
]


def sweep(cores, apps=APPS, tag=""):
    rows = []
    results = {}
    for name, app, params, (flat_v, frac_v) in apps:
        inp = app.make_input(**params)
        base = None
        for v in (flat_v, frac_v):
            for mode in ("bloom", "precise"):
                for n in cores:
                    run = run_once(app, inp, v, n, conflict_mode=mode)
                    results[(name, v, mode, n)] = run
                    if base is None:
                        base = run.makespan
        for n in cores:
            rows.append([
                name, f"{n}c",
                f"{base / results[(name, flat_v, 'bloom', n)].makespan:.2f}x",
                f"{base / results[(name, flat_v, 'precise', n)].makespan:.2f}x",
                f"{base / results[(name, frac_v, 'bloom', n)].makespan:.2f}x",
                f"{base / results[(name, frac_v, 'precise', n)].makespan:.2f}x",
            ])
    emit(f"fig14a_nested_speedups{tag}",
         format_table(["app", "cores", "flat/bloom", "flat/precise",
                       "fractal/bloom", "fractal/precise"], rows))
    return results


def bench_fig14a_maxflow(benchmark):
    cores = core_counts(quick=True)
    results = once(benchmark, lambda: sweep(cores, apps=APPS[:1], tag="_maxflow"))
    top = max(cores)
    assert (results[("maxflow", "fractal", "bloom", top)].makespan
            < results[("maxflow", "flat", "bloom", top)].makespan)


def bench_fig14a_labyrinth(benchmark):
    cores = core_counts(quick=True)
    results = once(benchmark, lambda: sweep(cores, apps=APPS[1:2], tag="_labyrinth"))
    top = max(cores)
    assert (results[("labyrinth", "fractal", "bloom", top)].makespan
            < results[("labyrinth", "hwq", "bloom", top)].makespan)


def bench_fig14a_bayes(benchmark):
    cores = core_counts(quick=True)
    results = once(benchmark, lambda: sweep(cores, apps=APPS[2:], tag="_bayes"))
    top = max(cores)
    assert (results[("bayes", "fractal", "bloom", top)].makespan
            < results[("bayes", "hwq", "bloom", top)].makespan)


if __name__ == "__main__":
    sweep(core_counts())
