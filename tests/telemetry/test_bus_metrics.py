"""Unit tests for the event bus and metrics registry."""

import pytest

from repro.telemetry import (
    Counter,
    EventBus,
    EventRecorder,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.events import CommitEvent, FinishEvent


def _commit(t=10, tid=1):
    return CommitEvent(t, tid, "task", core=0, start=0, duration=10, depth=1)


class TestEventBus:
    def test_empty_bus_is_falsy(self):
        bus = EventBus()
        assert not bus
        assert not bus.enabled

    def test_bus_with_subscriber_is_truthy(self):
        bus = EventBus()
        bus.subscribe(lambda e: None)
        assert bus
        assert bus.enabled

    def test_emit_delivers_in_subscription_order(self):
        bus = EventBus()
        order = []
        bus.subscribe(lambda e: order.append("a"))
        bus.subscribe(lambda e: order.append("b"))
        bus.emit(_commit())
        assert order == ["a", "b"]

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        fn = bus.subscribe(seen.append)
        bus.unsubscribe(fn)
        assert not bus
        bus.unsubscribe(fn)  # no-op when absent
        bus.emit(_commit())
        assert seen == []

    def test_recorder_collects_and_filters(self):
        bus = EventBus()
        rec = bus.subscribe(EventRecorder())
        only_commits = bus.subscribe(EventRecorder(kinds=("commit",)))
        bus.emit(_commit(tid=1))
        bus.emit(FinishEvent(5, 2, 0, 5))
        assert len(rec) == 2
        assert len(only_commits) == 1
        assert [e.tid for e in rec.of("commit")] == [1]
        assert [e.KIND for e in rec] == ["commit", "finish"]


class TestMetrics:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge_set_and_track_max(self):
        g = Gauge()
        g.set(3)
        g.track_max(7)
        g.track_max(2)
        assert g.value == 7

    def test_histogram_buckets_mean(self):
        h = Histogram(bounds=(10, 100))
        for v in (5, 50, 500):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == 555
        assert snap["mean"] == pytest.approx(185.0)
        assert snap["buckets"] == {"le_10": 1, "le_100": 1, "inf": 1}

    def test_registry_get_or_create_identity(self):
        m = MetricsRegistry()
        a = m.counter("cycles", core=0, category="committed")
        b = m.counter("cycles", category="committed", core=0)
        assert a is b  # label order does not matter

    def test_total_with_label_match(self):
        m = MetricsRegistry()
        m.inc("cycles", 10, category="committed", core=0)
        m.inc("cycles", 20, category="committed", core=1)
        m.inc("cycles", 5, category="aborted", core=0)
        assert m.total("cycles", category="committed") == 30
        assert m.total("cycles", core=0) == 15
        assert m.total("cycles") == 35
        assert m.total("missing") == 0

    def test_counters_named(self):
        m = MetricsRegistry()
        m.inc("tasks", 2, outcome="committed", depth=1)
        rows = m.counters_named("tasks")
        assert len(rows) == 1
        labels, counter = rows[0]
        assert labels == {"outcome": "committed", "depth": 1}
        assert counter.value == 2

    def test_snapshot_shape(self):
        m = MetricsRegistry()
        m.inc("enqueues", tile=0)
        m.gauge("max_depth").set(3)
        m.histogram("lengths").observe(12)
        snap = m.snapshot()
        assert snap["counters"] == [
            {"name": "enqueues", "labels": {"tile": 0}, "value": 1}]
        assert snap["gauges"][0]["value"] == 3
        assert snap["histograms"][0]["value"]["count"] == 1
