"""Jobs: canonical descriptions of one simulation run, and their digests.

A :class:`JobSpec` captures everything that determines a run's outcome —
app, input, variant, core count, full :class:`~repro.config.SystemConfig`,
fault plan, resilience policy, build options — as a *canonical* JSON-safe
dict (:meth:`JobSpec.canonical`) hashed into a stable content address
(:meth:`JobSpec.digest`). Two specs with the same digest produce
byte-identical :class:`~repro.core.stats.RunStats`, which is what lets the
:class:`~repro.farm.cache.ResultCache` skip re-execution and the
:class:`~repro.farm.farm.Farm` fan jobs out across worker processes while
keeping sweep tables byte-identical to serial runs.

Canonicalization (:func:`canonical`) is structural: containers are
ordered, dataclasses and ``to_dict``-bearing objects are expanded
field-by-field, sets are sorted by their canonical JSON, and anything
opaque falls back to a pickle digest. It never depends on ``id()``,
``repr`` addresses, or dict insertion order.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
import math
import pickle
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..config import SystemConfig
from ..core.stats import RunStats
from ..errors import ConfigError

#: canonical-form version; bump to invalidate every existing digest
JOB_SCHEMA = "repro.farm-job/1"

_MAX_DEPTH = 32


def _pickle_digest(obj: Any) -> Dict[str, str]:
    """Last-resort content key for objects with no structural form."""
    payload = pickle.dumps(obj, protocol=4)
    return {"__pickle_sha256__": hashlib.sha256(payload).hexdigest()}


def canonical(obj: Any, _depth: int = 0) -> Any:
    """Reduce ``obj`` to a deterministic JSON-safe structure.

    Handles primitives, containers (dicts sorted by stringified key,
    sets sorted by canonical JSON), dataclasses, objects exposing
    ``to_dict()``, and plain ``__dict__`` objects (private attributes
    skipped). Anything else — or anything nested deeper than the cycle
    guard allows — degrades to a pickle digest.
    """
    if _depth > _MAX_DEPTH:
        return _pickle_digest(obj)
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj if math.isfinite(obj) else repr(obj)
    if isinstance(obj, bytes):
        return {"__bytes__": obj.hex()}
    if isinstance(obj, (list, tuple)):
        return [canonical(v, _depth + 1) for v in obj]
    if isinstance(obj, dict):
        items = []
        for k, v in obj.items():
            key = k if isinstance(k, str) else canonical_json(k)
            items.append((key, canonical(v, _depth + 1)))
        items.sort(key=lambda kv: kv[0])
        return {k: v for k, v in items}
    if isinstance(obj, (set, frozenset)):
        return {"__set__": sorted(canonical_json(v) for v in obj)}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out = {"__dataclass__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            out[f.name] = canonical(getattr(obj, f.name), _depth + 1)
        return out
    to_dict = getattr(obj, "to_dict", None)
    if callable(to_dict):
        return {"__class__": type(obj).__name__,
                "state": canonical(to_dict(), _depth + 1)}
    attrs = getattr(obj, "__dict__", None)
    if attrs is not None:
        public = {k: v for k, v in attrs.items() if not k.startswith("_")}
        return {"__class__": type(obj).__qualname__,
                "attrs": canonical(public, _depth + 1)}
    return _pickle_digest(obj)


def canonical_json(obj: Any) -> str:
    """The canonical form of ``obj`` as compact, key-sorted JSON."""
    return json.dumps(canonical(obj), sort_keys=True,
                      separators=(",", ":"), ensure_ascii=True)


def stable_digest(obj: Any) -> str:
    """SHA-256 hex digest of the canonical JSON of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode()).hexdigest()


@dataclass
class JobSpec:
    """One simulation run, content-addressable and shippable to a worker.

    Either ``input_obj`` (a picklable, already-built input) or
    ``input_kwargs`` (arguments for the app module's ``make_input``,
    built worker-side) describes the input; ``input_key`` optionally
    overrides the cache key when neither canonicalizes cheaply.
    ``config`` wins over ``n_cores`` when both are given.
    """

    app: str                                  # module path, e.g. repro.apps.mis
    variant: str = "fractal"
    n_cores: int = 4
    config: Optional[SystemConfig] = None
    input_obj: Any = None
    input_kwargs: Optional[Dict[str, Any]] = None
    input_key: Optional[str] = None
    check: bool = True
    max_cycles: Optional[int] = None
    fault_plan: Any = None                    # repro.faults.FaultPlan
    resilience: Any = None                    # repro.faults.ResiliencePolicy
    build_options: Dict[str, Any] = field(default_factory=dict)
    label: str = ""

    def resolved_config(self) -> SystemConfig:
        """The full config this job runs under (defaults applied)."""
        return self.config or SystemConfig.with_cores(self.n_cores)

    @property
    def display(self) -> str:
        """Short human label for progress lines and events."""
        if self.label:
            return self.label
        short = self.app.rsplit(".", 1)[-1]
        return f"{short}-{self.variant}@{self.resolved_config().n_cores}c"

    def _input_canonical(self) -> Any:
        if self.input_key is not None:
            return {"key": self.input_key}
        if self.input_kwargs is not None:
            return {"make_input": canonical(self.input_kwargs)}
        return {"object": canonical(self.input_obj)}

    def canonical(self) -> dict:
        """The JSON-safe dict the content address is computed from."""
        return {
            "schema": JOB_SCHEMA,
            "app": self.app,
            "variant": self.variant,
            "config": canonical(self.resolved_config()),
            "input": self._input_canonical(),
            "check": self.check,
            "max_cycles": self.max_cycles,
            "fault_plan": canonical(self.fault_plan),
            "resilience": canonical(self.resilience),
            "build_options": canonical(self.build_options),
        }

    def digest(self) -> str:
        """Stable content address (SHA-256 hex) of this job."""
        d = getattr(self, "_digest", None)
        if d is None:
            d = self._digest = stable_digest(self.canonical())
        return d


@dataclass
class JobResult:
    """Outcome of one job: stats plus provenance and worker telemetry."""

    digest: str
    app: str
    variant: str
    n_cores: int
    label: str
    stats: Optional[RunStats] = None
    cached: bool = False
    wall_s: float = 0.0
    attempts: int = 1
    #: worker-side ``MetricsRegistry.snapshot()`` (None for cached results)
    metrics: Optional[dict] = None
    #: ``"ExcType: message"`` when the job ultimately failed, else None
    error: Optional[str] = None
    traceback: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the job produced stats (possibly partial) without
        raising."""
        return self.error is None and self.stats is not None


def execute_job(spec: JobSpec, trace_dir: Optional[str] = None,
                collect_metrics: bool = True) -> JobResult:
    """Run one :class:`JobSpec` to completion in *this* process.

    This is the farm's worker entry point — it never raises for
    application/simulation errors; failures come back as a
    :class:`JobResult` with ``error`` set so the parent can apply its
    retry policy. ``trace_dir`` attaches a per-job JSONL telemetry sink
    (``<digest>.jsonl``).
    """
    from ..bench.harness import run_app
    from ..telemetry import EventBus, JsonlExporter

    t0 = time.perf_counter()
    base = dict(digest=spec.digest(), app=spec.app, variant=spec.variant,
                n_cores=spec.resolved_config().n_cores, label=spec.display)
    exporter = None
    try:
        app = importlib.import_module(spec.app)
        inp = spec.input_obj
        if inp is None and spec.input_kwargs is not None:
            inp = app.make_input(**spec.input_kwargs)
        cfg = spec.resolved_config()
        bus = None
        if trace_dir:
            bus = EventBus()
            exporter = JsonlExporter(f"{trace_dir}/{spec.digest()}.jsonl")
            bus.subscribe(exporter)
        run = run_app(app, inp, variant=spec.variant, n_cores=cfg.n_cores,
                      config=cfg, check=spec.check,
                      max_cycles=spec.max_cycles, telemetry=bus,
                      faults=spec.fault_plan, resilience=spec.resilience,
                      **spec.build_options)
        metrics = run.metrics.snapshot() if collect_metrics else None
        return JobResult(stats=run.stats, metrics=metrics,
                         wall_s=time.perf_counter() - t0, **base)
    except ConfigError:
        raise                     # caller bug, not a transient failure
    except Exception as exc:
        return JobResult(error=f"{type(exc).__name__}: {exc}",
                         traceback=traceback.format_exc(),
                         wall_s=time.perf_counter() - t0, **base)
    finally:
        if exporter is not None:
            exporter.close()
