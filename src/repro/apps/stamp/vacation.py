"""STAMP vacation: a travel reservation system.

Three resource tables (cars, flights, rooms) hold availability and price;
customer transactions query a handful of random resources per table, book
the cheapest available one, and record the reservation; management
transactions add/remove capacity. Transactions are short and mostly
disjoint, so vacation scales well (293x in Fig. 17) once the software work
queue is gone.

Checked invariant: per resource, initial capacity == remaining
availability + live reservations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ...errors import AppError
from ...vt import Ordering
from .common import drive_workload, require_stamp_variant

TABLES = ("car", "flight", "room")


@dataclass
class VacationTxn:
    kind: str                           # "reserve" | "manage"
    customer: int
    queries: Dict[str, List[int]] = field(default_factory=dict)
    table: str = ""
    resource: int = 0
    delta: int = 0


@dataclass
class VacationInput:
    n_resources: int
    init_capacity: int
    prices: Dict[str, List[int]]
    txns: List[VacationTxn]


def make_input(n_resources: int = 32, n_txns: int = 64, queries: int = 3,
               manage_fraction: float = 0.1, init_capacity: int = 5,
               seed: int = 7) -> VacationInput:
    rng = random.Random(seed)
    prices = {t: [rng.randint(50, 500) for _ in range(n_resources)]
              for t in TABLES}
    txns = []
    for i in range(n_txns):
        if rng.random() < manage_fraction:
            txns.append(VacationTxn(
                "manage", customer=i, table=rng.choice(TABLES),
                resource=rng.randrange(n_resources),
                delta=rng.choice((1, 1, 1, -1))))
        else:
            txns.append(VacationTxn(
                "reserve", customer=i,
                queries={t: rng.sample(range(n_resources), queries)
                         for t in TABLES}))
    return VacationInput(n_resources, init_capacity, prices, txns)


def build(host, inp: VacationInput, variant: str = "fractal") -> Dict:
    require_stamp_variant(variant)
    avail = {t: host.array(f"vac.avail.{t}", inp.n_resources * 8,
                           init=_spread([inp.init_capacity] * inp.n_resources))
             for t in TABLES}
    bookings = host.dict("vac.bookings", capacity=len(inp.txns) * 3 + 1)

    def txn(ctx, tid):
        t = inp.txns[tid]
        if t.kind == "manage":
            arr = avail[t.table]
            cur = arr.get(ctx, t.resource * 8)
            if cur + t.delta >= 0:
                arr.set(ctx, t.resource * 8, cur + t.delta)
            return
        for table in TABLES:
            best = None
            best_price = None
            for r in t.queries[table]:
                a = avail[table].get(ctx, r * 8)
                p = inp.prices[table][r]
                if a > 0 and (best_price is None or p < best_price):
                    best, best_price = r, p
            if best is not None:
                arr = avail[table]
                arr.set(ctx, best * 8, arr.get(ctx, best * 8) - 1)
                bookings.put(ctx, (t.customer, table), best)
        ctx.compute(60)

    drive_workload(host, len(inp.txns), txn, variant,
                   hint_fn=lambda tid: inp.txns[tid].customer, label="txn")
    return {"avail": avail, "bookings": bookings}


def root_ordering(variant: str) -> Ordering:
    return Ordering.UNORDERED


def _spread(values, scale: int = 8):
    out = []
    for v in values:
        out.append(v)
        out.extend([0] * (scale - 1))
    return out


def check(handles: Dict, inp: VacationInput) -> None:
    booked = {t: [0] * inp.n_resources for t in TABLES}
    for (customer, table), r in handles["bookings"].items_nonspec():
        booked[table][r] += 1
    # reconstruct capacity adjustments from successful manage txns is not
    # directly observable, so check the weaker-but-sharp direction:
    # availability plus bookings must never exceed initial capacity plus
    # total positive adjustments, and never go negative.
    max_add = {t: [0] * inp.n_resources for t in TABLES}
    max_sub = {t: [0] * inp.n_resources for t in TABLES}
    for t in inp.txns:
        if t.kind == "manage":
            if t.delta > 0:
                max_add[t.table][t.resource] += t.delta
            else:
                max_sub[t.table][t.resource] -= t.delta
    for table in TABLES:
        for r in range(inp.n_resources):
            a = handles["avail"][table].peek(r * 8)
            if a < 0:
                raise AppError(f"negative availability {table}[{r}]")
            total = a + booked[table][r]
            lo = inp.init_capacity - max_sub[table][r]
            hi = inp.init_capacity + max_add[table][r]
            if not (lo <= total <= hi):
                raise AppError(
                    f"{table}[{r}]: avail {a} + booked {booked[table][r]} "
                    f"outside [{lo}, {hi}]")
