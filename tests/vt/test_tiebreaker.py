"""Tests for tiebreaker allocation and wrap-around compaction (paper 4.4)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import VTError
from repro.vt import Tiebreaker, TiebreakerAllocator
from repro.vt.tiebreaker import WrapAround


class TestAllocation:
    def test_orders_by_cycle_then_tile(self):
        alloc = TiebreakerAllocator(width=32, tile_bits=8)
        a = alloc.alloc(10, 0)
        b = alloc.alloc(10, 3)
        c = alloc.alloc(11, 0)
        assert a < b < c

    def test_repr_matches_paper_notation(self):
        alloc = TiebreakerAllocator(width=32, tile_bits=8)
        tb = alloc.alloc(45, 2)
        assert repr(tb) == "45:2"

    def test_tile_must_fit(self):
        alloc = TiebreakerAllocator(width=32, tile_bits=4)
        with pytest.raises(VTError):
            alloc.alloc(0, 16)

    def test_tile_bits_must_be_less_than_width(self):
        with pytest.raises(VTError):
            TiebreakerAllocator(width=8, tile_bits=8)

    def test_lower_bound_below_future_allocations(self):
        alloc = TiebreakerAllocator(width=32, tile_bits=8)
        lb = alloc.lower_bound(100)
        for tile in (0, 1, 7):
            # equality only for (same cycle, tile 0); never greater
            assert lb <= alloc.alloc(100, tile)
            assert lb < alloc.alloc(101, tile)

    def test_lower_bound_above_past_allocations(self):
        alloc = TiebreakerAllocator(width=32, tile_bits=8)
        past = alloc.alloc(99, 255)
        assert alloc.lower_bound(100) > past


class TestWrapAround:
    def _tiny(self):
        # 8-bit cycles: wraps quickly.
        return TiebreakerAllocator(width=12, tile_bits=4)

    def test_alloc_raises_at_overflow(self):
        alloc = self._tiny()
        alloc.alloc(0, 0)
        with pytest.raises(WrapAround):
            alloc.alloc(alloc.max_rel_cycle, 0)  # rel = max+1

    def test_compaction_subtracts_half_with_saturation(self):
        alloc = self._tiny()
        high = Tiebreaker(raw=alloc.half_raw + 5, cycle=100, tile=5)
        low = Tiebreaker(raw=3, cycle=0, tile=3)
        assert alloc.compacted(high).raw == 5
        assert alloc.compacted(low).raw == 0

    def test_compaction_preserves_order_above_half(self):
        alloc = self._tiny()
        a = Tiebreaker(raw=alloc.half_raw + 5)
        b = Tiebreaker(raw=alloc.half_raw + 9)
        assert alloc.compacted(a) < alloc.compacted(b)

    def test_new_allocations_start_at_half_after_compaction(self):
        alloc = self._tiny()
        cycle = alloc.max_rel_cycle  # would overflow
        with pytest.raises(WrapAround):
            alloc.alloc(cycle, 0)
        alloc.compact(cycle)
        tb = alloc.alloc(cycle, 0)
        assert tb.raw >= alloc.half_raw // 2
        assert alloc.wraparounds == 1

    @given(st.integers(min_value=0, max_value=2**12 - 1),
           st.integers(min_value=0, max_value=2**12 - 1))
    def test_compaction_monotone(self, x, y):
        alloc = TiebreakerAllocator(width=12, tile_bits=4)
        a, b = Tiebreaker(raw=x), Tiebreaker(raw=y)
        ca, cb = alloc.compacted(a), alloc.compacted(b)
        if x <= y:
            assert ca.raw <= cb.raw
        else:
            assert ca.raw >= cb.raw
