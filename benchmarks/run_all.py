#!/usr/bin/env python
"""Regenerate every table and figure (full sweeps) outside pytest.

Usage:
    python benchmarks/run_all.py                     # serial, cached
    python benchmarks/run_all.py --jobs 4            # 4 worker processes
    python benchmarks/run_all.py --only fig06_mis,fig03_maxflow
    python benchmarks/run_all.py --skip fig17_stamp --cores 1,4,16
    python benchmarks/run_all.py --shard 1/3         # CI matrix slice

Results land in benchmarks/results/; a machine-readable run summary
(per-bench wall time, cache hit/miss counts, result makespans) is written
to BENCH_summary.json at the repo root — the perf-trajectory seed.

Each bench module runs in its own process (``--jobs N`` runs N of them
concurrently); every simulation inside goes through the
:mod:`repro.farm` result cache (on by default, ``--no-cache`` disables),
so a re-run only executes work whose content address is missing or whose
code fingerprint went stale. Tables are byte-identical between serial,
parallel, and cached runs. A bench failure no longer kills the sweep:
every module runs, failures are summarized at the end, and the exit code
is non-zero if any failed.
"""

import argparse
import contextlib
import importlib
import io
import json
import os
import pathlib
import sys
import time
import traceback

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

HERE = pathlib.Path(__file__).resolve().parent
REPO_ROOT = HERE.parent
RESULTS_DIR = HERE / "results"
DEFAULT_SUMMARY = REPO_ROOT / "BENCH_summary.json"

BENCHES = [
    "bench_table2_config",
    "bench_table3_inputs",
    "bench_table4_task_lengths",
    "bench_fig01_timeline",
    "bench_fig03_maxflow",
    "bench_fig04_silo",
    "bench_fig06_mis",
    "bench_fig14a_nested_speedups",
    "bench_fig14b_breakdowns",
    "bench_fig15a_overserialization",
    "bench_fig15b_breakdowns",
    "bench_fig16_zooming",
    "bench_fig17_stamp",
    "bench_swarm_suite",
    "bench_pbbs_suite",
    "bench_ablation_conflict",
    "bench_ablation_hints",
    "bench_ablation_queues",
    "bench_ablation_gvt",
    "bench_ablation_flatten",
]


def resolve_selection(only=None, skip=None, benches=None):
    """Apply --only/--skip to the bench list; names may drop the
    ``bench_`` prefix. Unknown names are an error (catches typos)."""
    benches = list(benches if benches is not None else BENCHES)

    def norm(name):
        name = name.strip()
        full = name if name.startswith("bench_") else f"bench_{name}"
        if full not in benches:
            raise SystemExit(f"unknown bench {name!r}; choose from: "
                             + ", ".join(b[len("bench_"):] for b in benches))
        return full

    if only:
        wanted = {norm(n) for group in only for n in group.split(",")}
        benches = [b for b in benches if b in wanted]
    if skip:
        unwanted = {norm(n) for group in skip for n in group.split(",")}
        benches = [b for b in benches if b not in unwanted]
    return benches


def run_bench(name):
    """Execute one bench module's full sweep; never raises.

    Runs in a worker process under ``--jobs N`` (or inline for 1).
    Stdout is captured so parallel benches don't interleave; the parent
    prints each module's output in submission order.
    """
    import importlib.util
    import runpy

    common = importlib.import_module("_common")
    common.reset_cache_stats()
    buf = io.StringIO()
    t0 = time.perf_counter()
    error = None
    try:
        # resolve to the source file and execute that: run_module would go
        # through sys.meta_path loaders (pytest's assertion-rewrite hook
        # claims bench_*.py and cannot feed runpy)
        spec = importlib.util.find_spec(name)
        if spec is None or not spec.origin:
            raise ModuleNotFoundError(f"no bench module {name!r}")
        with contextlib.redirect_stdout(buf):
            runpy.run_path(spec.origin, run_name="__main__")
    except SystemExit as exc:                  # a bench calling sys.exit
        if exc.code not in (None, 0):
            error = f"SystemExit({exc.code})"
    except BaseException:
        error = traceback.format_exc()
    return {"name": name, "wall_s": round(time.perf_counter() - t0, 3),
            "output": buf.getvalue(), "error": error,
            "cache": common.cache_stats()}


def collect_makespans():
    """Makespans of every structured result in benchmarks/results/."""
    makespans = {}
    for path in sorted(RESULTS_DIR.glob("*.json")):
        try:
            doc = json.loads(path.read_text())
        except ValueError:
            continue
        if doc.get("schema") != "repro.bench-runs/1":
            continue
        for entry in doc.get("runs", []):
            key = (f"{entry['app']}-{entry['variant']}"
                   f"@{entry['n_cores']}c")
            makespans.setdefault(path.stem, {})[key] = (
                entry["stats"]["makespan"])
    return makespans


def collect_serve_block():
    """The last bench_serve.py result, if any (kept across rewrites)."""
    path = RESULTS_DIR / "serve_load.json"
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    return doc if doc.get("schema") == "repro.serve-load/1" else None


def write_summary(path, records, *, jobs, total_wall_s, cores):
    """The BENCH_summary.json perf-trajectory document."""
    cache = {"hits": 0, "misses": 0}
    for rec in records:
        for k in cache:
            cache[k] += rec["cache"].get(k, 0)
    doc = {
        "schema": "repro.bench-summary/1",
        "generated_by": "benchmarks/run_all.py",
        "jobs": jobs,
        "cores": cores,
        "total_wall_s": round(total_wall_s, 3),
        "ok": all(r["error"] is None for r in records),
        "cache": cache,
        "benches": [{"name": r["name"], "wall_s": r["wall_s"],
                     "ok": r["error"] is None,
                     "error": (r["error"] or "").strip().splitlines()[-1]
                     if r["error"] else None,
                     "cache": r["cache"]} for r in records],
        "makespans": collect_makespans(),
    }
    serve = collect_serve_block()
    if serve is not None:
        doc["serve"] = serve
    pathlib.Path(path).write_text(json.dumps(doc, indent=2) + "\n")
    return doc


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        description="Run every bench module (or a selection) and emit "
                    "BENCH_summary.json.")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="bench modules to run concurrently "
                             "(default 1 = serial)")
    parser.add_argument("--only", action="append", metavar="NAME[,NAME]",
                        help="run only these benches (bench_ prefix "
                             "optional; repeatable)")
    parser.add_argument("--skip", action="append", metavar="NAME[,NAME]",
                        help="skip these benches (repeatable)")
    parser.add_argument("--shard", metavar="K/N", default=None,
                        help="run only deterministic shard K of N "
                             "(1-based; for CI matrix fan-out)")
    parser.add_argument("--cores", metavar="LIST", default=None,
                        help="override the core sweep for every bench "
                             "(sets REPRO_BENCH_CORES)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the repro.farm result cache")
    parser.add_argument("--clear-cache", action="store_true",
                        help="delete every cached result first")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="result-cache location (default: "
                             "benchmarks/results/.cache)")
    parser.add_argument("--summary-out", metavar="PATH",
                        default=str(DEFAULT_SUMMARY),
                        help="where to write the run summary JSON "
                             "(default: BENCH_summary.json at repo root)")
    parser.add_argument("--list", action="store_true",
                        help="print the selected benches and exit")
    return parser.parse_args(argv)


def main(argv=None):
    args = _parse_args(argv)
    benches = resolve_selection(args.only, args.skip)
    if args.shard:
        from repro.errors import ConfigError
        from repro.farm import parse_shard, select_shard
        try:
            k, n = parse_shard(args.shard)
        except ConfigError as exc:
            # a malformed K/N is a usage error, not a crash: exit the way
            # argparse does instead of spraying a traceback over CI logs
            raise SystemExit(f"run_all.py: error: --shard: {exc}")
        # shard the *filtered* list: --only/--skip applied above. Hash
        # sharding is stable under subsetting, so a bench keeps its shard
        # whether or not the others are selected.
        benches = select_shard(benches, k, n)
    if args.list:
        for name in benches:
            print(name)
        return 0
    if not benches:
        print("nothing to run", file=sys.stderr)
        return 0

    # environment for this process and every worker (fork inherits it)
    if args.cores:
        os.environ["REPRO_BENCH_CORES"] = args.cores
    os.environ["REPRO_BENCH_CACHE"] = "0" if args.no_cache else "1"
    if args.cache_dir:
        os.environ["REPRO_BENCH_CACHE_DIR"] = args.cache_dir
    if args.clear_cache and not args.no_cache:
        from repro.farm import ResultCache
        cache_root = args.cache_dir or (RESULTS_DIR / ".cache")
        n = ResultCache(cache_root).clear()
        print(f"cleared {n} cached results", flush=True)

    t0 = time.perf_counter()
    records = []
    if args.jobs <= 1:
        for name in benches:
            print(f"\n########## {name} ##########", flush=True)
            rec = run_bench(name)
            sys.stdout.write(rec["output"])
            _print_status(rec)
            records.append(rec)
    else:
        from concurrent.futures import ProcessPoolExecutor
        with ProcessPoolExecutor(max_workers=args.jobs) as pool:
            futures = [pool.submit(run_bench, name) for name in benches]
            for name, fut in zip(benches, futures):
                print(f"\n########## {name} ##########", flush=True)
                try:
                    rec = fut.result()
                except BaseException as exc:   # worker died
                    rec = {"name": name, "wall_s": 0.0, "output": "",
                           "error": f"worker crash: {exc}",
                           "cache": {"hits": 0, "misses": 0}}
                sys.stdout.write(rec["output"])
                _print_status(rec)
                records.append(rec)

    total_wall = time.perf_counter() - t0
    doc = write_summary(args.summary_out, records, jobs=args.jobs,
                        total_wall_s=total_wall,
                        cores=os.environ.get("REPRO_BENCH_CORES"))
    cache = doc["cache"]
    print(f"\nall benches done in {total_wall:.0f}s "
          f"(jobs={args.jobs}, cache: {cache['hits']} hits / "
          f"{cache['misses']} misses); summary: {args.summary_out}",
          flush=True)

    failures = [r for r in records if r["error"] is not None]
    if failures:
        print(f"\n{len(failures)} of {len(records)} benches FAILED:",
              file=sys.stderr)
        for rec in failures:
            last = rec["error"].strip().splitlines()[-1]
            print(f"  {rec['name']}: {last}", file=sys.stderr)
        return 1
    return 0


def _print_status(rec):
    status = "done" if rec["error"] is None else "FAILED"
    cache = rec["cache"]
    print(f"[{rec['name']} {status} in {rec['wall_s']:.0f}s; "
          f"cache {cache['hits']}h/{cache['misses']}m]", flush=True)
    if rec["error"] is not None:
        sys.stderr.write(rec["error"] if rec["error"].endswith("\n")
                         else rec["error"] + "\n")


if __name__ == "__main__":
    sys.exit(main())
