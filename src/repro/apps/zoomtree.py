"""Zooming microbenchmark (paper Sec. 6.3, Fig. 16).

Generates a depth-``depth`` tree of nested unordered domains with fanout
``F``: every task performs a small fixed amount of work (1500 cycles in
the paper); non-leaf tasks create an unordered subdomain and enqueue F
children into it. Sweeping the fanout and the hardware's maximum
concurrent nesting depth D (i.e. the fractal-VT bit budget: D levels of
32-bit unordered domain VTs) characterizes zooming overheads: at the full
depth no zooming happens; at D = 2 the system zooms on almost every
level.

Tasks are data-independent (each writes its own cache line), so measured
slowdowns come from zooming alone. The paper's depth-8, fanout-12 tree has
~39 M tasks — far beyond a Python-resident simulation — so the bench
sweeps a scaled-down tree with the same shape (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import AppError
from ..vt import Ordering
from .common import require_variant


@dataclass
class ZoomTreeInput:
    fanout: int
    depth: int
    work_cycles: int = 1500

    def level_starts(self) -> List[int]:
        """Level-order numbering offsets (slot index of each level)."""
        starts = []
        total, width = 0, 1
        for _ in range(self.depth):
            starts.append(total)
            total += width
            width *= self.fanout
        return starts

    @property
    def total_tasks(self) -> int:
        total, width = 0, 1
        for _ in range(self.depth):
            total += width
            width *= self.fanout
        return total


def make_input(fanout: int = 4, depth: int = 6,
               work_cycles: int = 1500) -> ZoomTreeInput:
    if fanout < 1 or depth < 1:
        raise AppError("fanout and depth must be >= 1")
    return ZoomTreeInput(fanout, depth, work_cycles)


def vt_bits_for_depth(max_depth: int) -> int:
    """The fractal-VT budget that supports ``max_depth`` concurrent levels
    of unordered domains (32 bits each; paper Fig. 16 sweeps D in 2..8)."""
    return 32 * max_depth


def build(host, inp: ZoomTreeInput, variant: str = "fractal",
          flattenable: bool = False) -> Dict:
    """``flattenable=True`` marks every level as decomposition-only, letting
    a ``flatten_nesting`` config elide deep levels (Sec. 6.3 future work:
    over-nested divide-and-conquer)."""
    require_variant(variant, ("fractal",))
    starts = inp.level_starts()
    executed = host.array("zt.executed", inp.total_tasks * 8)

    def node(ctx, idx, level):
        ctx.compute(inp.work_cycles)
        executed.set(ctx, idx * 8, 1)
        if level + 1 < inp.depth:
            first_child = (starts[level + 1]
                           + (idx - starts[level]) * inp.fanout)
            ctx.create_subdomain(Ordering.UNORDERED, flattenable=flattenable)
            for k in range(inp.fanout):
                ctx.enqueue_sub(node, first_child + k, level + 1,
                                label=f"L{level + 1}")

    host.enqueue_root(node, 0, 0, label="L0")
    return {"executed": executed, "input": inp}


def root_ordering(variant: str) -> Ordering:
    return Ordering.UNORDERED


def check(handles: Dict, inp: ZoomTreeInput) -> int:
    """Every tree node must have executed exactly once."""
    executed = handles["executed"]
    for idx in range(inp.total_tasks):
        if executed.peek(idx * 8) != 1:
            raise AppError(f"tree node {idx} never ran")
    return inp.total_tasks
