"""repro.farm.dist — the distributed fault-tolerant farm.

A coordinator/agent pair that stretches :class:`repro.farm.Farm`
semantics across processes and machines without giving up its core
guarantee — sweep output byte-identical to a serial run — even while
agents are SIGKILL'd mid-fragment and heartbeats are dropped on the
floor (see README "Distributed sweeps"):

- :mod:`~repro.farm.dist.wire` — the ``repro.farm-dist/1`` JSON
  protocol, one definition imported by both sides;
- :mod:`~repro.farm.dist.coordinator` — shard-leased fragments,
  heartbeat TTLs, a reaper that requeues lost work, and exactly-once
  result recording with duplicate suppression;
- :mod:`~repro.farm.dist.journal` — the coordinator's write-ahead log
  and snapshot compaction: a coordinator started with a journal dir
  replays it on restart and finishes every in-flight sweep;
- :mod:`~repro.farm.dist.agent` — the stateless worker loop
  (register → acquire → run on a local Farm → deliver), which rides out
  coordinator restarts by reconnecting on the seeded backoff curve;
- :mod:`~repro.farm.dist.client` — the HTTP client, with the chaos
  transport-fault hook and ``X-Repro-Token`` wire auth;
- :mod:`~repro.farm.dist.sweep` — the driver (`repro sweep --dist`).
"""

from .agent import AgentConfig, DistAgent, agent_forever
from .client import AgentGone, DistClient
from .coordinator import (Coordinator, CoordinatorConfig,
                          CoordinatorHandle, CoordinatorServer, DistError,
                          UnknownAgentError, UnknownSweepError,
                          coordinator_forever, start_coordinator_in_thread)
from .journal import (JOURNAL_SCHEMA, JournalError, JournalReplay,
                      JournalWriter, read_journal)
from .sweep import dist_sweep, records_to_results
from .wire import DIST_SCHEMA, TOKEN_ENV, TOKEN_HEADER, WireError

__all__ = [
    "DIST_SCHEMA",
    "JOURNAL_SCHEMA",
    "TOKEN_ENV",
    "TOKEN_HEADER",
    "AgentConfig",
    "AgentGone",
    "Coordinator",
    "CoordinatorConfig",
    "CoordinatorHandle",
    "CoordinatorServer",
    "DistAgent",
    "DistClient",
    "DistError",
    "JournalError",
    "JournalReplay",
    "JournalWriter",
    "UnknownAgentError",
    "UnknownSweepError",
    "WireError",
    "agent_forever",
    "coordinator_forever",
    "dist_sweep",
    "read_journal",
    "records_to_results",
    "start_coordinator_in_thread",
]
