"""The runtime side of fault injection.

One :class:`FaultInjector` serves one run. Every decision is a pure hash
of the plan seed and the attempt's identity (:func:`repro.faults.plan.hash01`),
so injection is deterministic and independent of call order. The injector
follows the simulator's telemetry convention: ``bus``/``clock`` are
installed by the simulator, and every emission site guards on the bus.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..telemetry.events import FaultInjectedEvent
from .plan import SITES, FaultPlan, hash01

_SITE_IDS = {name: i + 1 for i, name in enumerate(SITES)}


class FaultInjector:
    """Draws deterministic injection decisions for one simulation run."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        #: per-site injection counts (crash bundles and stats read this)
        self.injected: Dict[str, int] = {name: 0 for name in SITES}
        #: telemetry (installed by the simulator; None = disabled)
        self.bus = None
        self.clock: Callable[[], int] = lambda: 0
        #: tid of the run's first task (installed by the simulator).
        #: Tids are process-global, so draws hash the *run-relative* tid —
        #: otherwise a second run in the same process would draw a
        #: different injection pattern from the same seed.
        self.tid_base = 0
        # forced-conflict draws take a per-access sequence number so one
        # attempt is not doomed to refail at its first access forever
        self._conflict_draws = 0

    # ------------------------------------------------------------------
    @property
    def total_injected(self) -> int:
        """Injections performed so far, across all sites."""
        return sum(self.injected.values())

    def _budget_left(self) -> bool:
        cap = self.plan.max_injections
        return cap == 0 or self.total_injected < cap

    def _targets(self, task) -> bool:
        labels = self.plan.labels
        return labels is None or task.label in labels

    def _record(self, site: str, task, detail: str) -> None:
        self.injected[site] += 1
        if self.bus is not None:
            self.bus.emit(FaultInjectedEvent(
                self.clock(), site, task.tid, task.label, task.attempt,
                detail))

    # ------------------------------------------------------------------
    # decision points (one per injection site)
    # ------------------------------------------------------------------
    def fail_attempt(self, task) -> bool:
        """Should this attempt raise a transient exception at dispatch?"""
        rate = self.plan.task_exception_rate
        if not rate or not self._targets(task) or not self._budget_left():
            return False
        if hash01(self.plan.seed, _SITE_IDS["task_exception"],
                  task.tid - self.tid_base, task.attempt) >= rate:
            return False
        self._record("task_exception", task, "transient exception")
        return True

    def force_conflict(self, owner, line: int, is_write: bool) -> bool:
        """Should this speculative access be treated as a conflict?

        Wired into :attr:`repro.mem.memory.SpecMemory.fault_hook`; a True
        return aborts the accessor (and its cascade), exercising the
        abort/retry machinery beyond what the workload provokes naturally.
        """
        rate = self.plan.conflict_rate
        if not rate or not self._targets(owner) or not self._budget_left():
            return False
        self._conflict_draws += 1
        if hash01(self.plan.seed, _SITE_IDS["conflict"],
                  owner.tid - self.tid_base, owner.attempt,
                  self._conflict_draws) >= rate:
            return False
        self._record("conflict", owner,
                     f"forced conflict on line {line} "
                     f"({'write' if is_write else 'read'})")
        return True

    def stretch_duration(self, task, duration: int) -> int:
        """Runaway-task site: possibly stretch a finished attempt."""
        rate = self.plan.slow_task_rate
        if not rate or not self._targets(task) or not self._budget_left():
            return duration
        if hash01(self.plan.seed, _SITE_IDS["slow_task"],
                  task.tid - self.tid_base, task.attempt) >= rate:
            return duration
        stretched = duration * self.plan.slow_task_factor
        self._record("slow_task", task,
                     f"duration {duration} -> {stretched}")
        return stretched

    def squeeze_capacity(self, capacity: int) -> int:
        """Queue-squeeze site: scaled capacity (applied at construction)."""
        factor = self.plan.queue_capacity_factor
        if factor >= 1.0:
            return capacity
        squeezed = max(2, int(capacity * factor))
        self.injected["queue_squeeze"] += 1
        return squeezed
