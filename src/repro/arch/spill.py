"""Task spilling: coalescers and splitters (paper Sec. 4.1, Table 2).

When a tile's task queue passes its fill threshold, the task unit dispatches
a *coalescer* — a special job that removes up to ``spill_batch`` of the
latest-VT pending tasks whose parents have committed, stores them in a
memory buffer, and enqueues a *splitter* that will re-enqueue them later.
Splitters are deprioritized relative to all regular tasks, so spilled work
returns only when the tile would otherwise idle.

Zooming (paper Sec. 4.3) reuses this machinery to park whole base domains;
those buffers live on the zoom stack in :mod:`repro.core.zoom`.
"""

from __future__ import annotations

from typing import List, Optional

from ..telemetry.events import SpillEvent


class SpillBuffer:
    """An in-memory buffer of spilled pending tasks (one per splitter)."""

    __slots__ = ("tasks", "is_zoom")

    def __init__(self, tasks: List):
        self.tasks = list(tasks)
        #: True for buffers holding a zoomed-out base domain
        self.is_zoom = False

    def remove(self, task) -> bool:
        """Squash support: drop a spilled task; True when it was here."""
        try:
            self.tasks.remove(task)
            return True
        except ValueError:
            return False

    def min_key(self) -> Optional[tuple]:
        """Lowest VT key inside (spilled tasks still bound the GVT)."""
        if not self.tasks:
            return None
        return min(t.order_key() for t in self.tasks)

    def __len__(self) -> int:
        return len(self.tasks)


class CoalescerJob:
    """A pending spill operation, dispatched like a (non-speculative) task."""

    __slots__ = ("tile_id", "duration")

    kind = "coalescer"

    def __init__(self, tile_id: int, duration: int):
        self.tile_id = tile_id
        self.duration = duration

    def finish_event(self, now: int, n_tasks: int) -> SpillEvent:
        """The telemetry event for this job's completion."""
        return SpillEvent(now, self.tile_id, self.kind, n_tasks,
                          self.duration)

    def __repr__(self) -> str:
        return f"Coalescer(tile={self.tile_id})"


class SplitterJob:
    """A pending re-enqueue of a spill buffer. Deprioritized.

    The splitter's buffer bounds the GVT through
    :meth:`SpillBuffer.min_key`, standing in for the paper's
    lowest-timestamp tracking of spilled tasks.
    """

    __slots__ = ("tile_id", "buffer", "duration")

    kind = "splitter"

    def __init__(self, tile_id: int, buffer: SpillBuffer, duration: int):
        self.tile_id = tile_id
        self.buffer = buffer
        self.duration = duration

    def finish_event(self, now: int, n_tasks: int) -> SpillEvent:
        """The telemetry event for this job's completion."""
        return SpillEvent(now, self.tile_id, self.kind, n_tasks,
                          self.duration)

    def __repr__(self) -> str:
        return f"Splitter(tile={self.tile_id}, {len(self.buffer)} tasks)"
