"""End-to-end dist sweeps over real HTTP, including the chaos path.

The acceptance criteria of the dist design, in miniature:

- a clean two-agent sweep produces records whose stats are byte-equal
  to a serial ``Farm`` run of the same validated specs, and the same
  rendered speedup table;
- an agent whose heartbeats are all dropped (scripted
  :class:`~repro.faults.chaos.TransportChaos` — indistinguishable from
  a SIGKILL'd or partitioned agent to the coordinator) loses its leases,
  the fragments are requeued and re-executed by a healthy agent, the
  zombie's late deliveries are suppressed as duplicates, and the final
  table is still byte-identical — with zero result mismatches.
"""

import json
import threading

import pytest

from repro.bench.harness import AppRun
from repro.bench.report import speedup_table
from repro.core.stats import RunStats
from repro.farm import Farm, validate_jobspec
from repro.farm.dist import (AgentConfig, CoordinatorConfig, DistAgent,
                             dist_sweep, start_coordinator_in_thread)
from repro.faults.chaos import TransportChaos, wait_until

FAKEAPP = "tests.farm._fakeapp"
CORES = (1, 2, 4, 8)


def job_docs():
    return [{"app": FAKEAPP, "variant": "fractal", "n_cores": n,
             "input": {"n_tasks": 4, "work_cycles": 20}} for n in CORES]


def serial_stats():
    specs = [validate_jobspec(doc) for doc in job_docs()]
    results = Farm(jobs=1).run(specs)
    return [r.stats.to_dict() for r in results]


def start_agent(url, name, chaos=None, jobs=1):
    agent = DistAgent(AgentConfig(coordinator_url=url, agent_id=name,
                                  jobs=jobs, max_fragments=8,
                                  poll_interval_s=0.05),
                      chaos=chaos, log=lambda msg: None)
    thread = threading.Thread(target=agent.run, daemon=True,
                              name=f"agent-{name}")
    thread.start()
    return agent, thread


def stop_agents(agents):
    for agent, thread in agents:
        agent.request_stop()
    for agent, thread in agents:
        thread.join(timeout=10)


def counters(coord, name):
    snap = coord.metrics_snapshot()
    return sum(c["value"] for c in snap["counters"]
               if c["name"] == name)


def table_for(records):
    runs = [AppRun(app=r["app"], variant=r["variant"],
                   n_cores=r["n_cores"],
                   stats=RunStats.from_dict(r["stats"]), handles={},
                   cached=True) for r in records]
    return speedup_table(runs, baseline_variant="fractal",
                         baseline_cores=CORES[0])


@pytest.fixture
def coordinator():
    cfg = CoordinatorConfig(port=0, lease_ttl_s=0.8,
                            heartbeat_interval_s=0.2, fragments=2,
                            cache_dir=None, reap_interval_s=0.1)
    handle = start_coordinator_in_thread(cfg)
    yield handle
    handle.stop()


class TestCleanSweep:
    def test_matches_serial_run_byte_for_byte(self, coordinator):
        agents = [start_agent(coordinator.url, f"w{i}")
                  for i in range(2)]
        try:
            doc = dist_sweep(coordinator.url, job_docs(), timeout_s=60)
        finally:
            stop_agents(agents)
        assert doc["complete"]
        dist = [r["stats"] for r in doc["results"]]
        assert json.dumps(dist, sort_keys=True) \
            == json.dumps(serial_stats(), sort_keys=True)
        assert counters(coordinator.coordinator,
                        "dist.result_mismatch") == 0

    def test_resubmission_is_served_from_records(self, coordinator):
        agents = [start_agent(coordinator.url, "w0")]
        try:
            first = dist_sweep(coordinator.url, job_docs(), timeout_s=60)
            again = dist_sweep(coordinator.url, job_docs(), timeout_s=5)
        finally:
            stop_agents(agents)
        assert first["id"] == again["id"]
        assert first["results"] == again["results"]


class TestChaosSweep:
    def test_dropped_heartbeats_requeue_and_suppress_duplicates(
            self, coordinator):
        # the zombie: every heartbeat dropped (a partition), deliveries
        # delayed past the lease TTL — its work always arrives late
        zombie_chaos = TransportChaos({
            "partition": {"heartbeat": [1, 10_000]},
            "delay_ms": {"deliver": 2_000},
        })
        zombie = start_agent(coordinator.url, "zombie",
                             chaos=zombie_chaos)
        coord = coordinator.coordinator
        # the zombie must win the first acquire race or nothing ever
        # expires: submit in the background, wait until the zombie holds
        # every fragment, and only then let the healthy agent in
        result = {}

        def _run_sweep():
            try:
                result["doc"] = dist_sweep(coordinator.url, job_docs(),
                                           timeout_s=120)
            except Exception as exc:       # surfaced after join
                result["error"] = exc

        sweeper = threading.Thread(target=_run_sweep, daemon=True)
        agents = [zombie]
        try:
            sweeper.start()
            assert wait_until(
                lambda: counters(coord, "dist.leases_granted") >= 1,
                timeout_s=30)
            agents.append(start_agent(coordinator.url, "healthy"))
            sweeper.join(timeout=120)
        finally:
            stop_agents(agents)
        assert not sweeper.is_alive()
        if "error" in result:
            raise result["error"]
        doc = result["doc"]
        assert doc["complete"]
        # the chaos actually happened: at least one lease expired and
        # its fragment was re-executed
        assert counters(coord, "dist.fragments_requeued") >= 1
        assert counters(coord, "dist.leases_expired") >= 1
        # exactly-once held: every duplicate was suppressed with
        # matching stats, nothing double-counted, nothing lost
        assert counters(coord, "dist.result_mismatch") == 0
        n_done = counters(coord, "dist.results_recorded")
        assert n_done == len(CORES)
        # and the output is still byte-identical to a serial run
        dist = [r["stats"] for r in doc["results"]]
        assert json.dumps(dist, sort_keys=True) \
            == json.dumps(serial_stats(), sort_keys=True)
        assert table_for(doc["results"]) == table_for([
            {"app": r["app"], "variant": r["variant"],
             "n_cores": r["n_cores"], "stats": s}
            for r, s in zip(doc["results"], serial_stats())])
        assert zombie[0].n_heartbeats_dropped >= 1
