"""Exporter tests: JSONL round-trip, Perfetto structure, metrics JSON,
schema validation."""

import json

import pytest

from repro.telemetry import (
    EventBus,
    JsonlExporter,
    MetricsRegistry,
    ValidationError,
    event_from_dict,
    metrics_snapshot,
    read_events_jsonl,
    to_perfetto,
    validate_event_dict,
    validate_jsonl,
    write_events_jsonl,
    write_metrics_json,
    write_perfetto,
)
from repro.telemetry.events import (
    AbortEvent,
    CommitEvent,
    ConflictEvent,
    GvtTickEvent,
    SpillEvent,
    ZoomEvent,
)
from repro.core.stats import CycleBreakdown, RunStats

EVENTS = [
    CommitEvent(40, 1, "update", core=0, start=10, duration=30, depth=1),
    AbortEvent(55, 2, "update", core=1, start=20, executed=35,
               reason="write conflict", parked=False, cascade=1, hop=0),
    ConflictEvent(55, 17, "write", tid=1, vt="(O32 5)", core=0,
                  victims=[2], victim_vts=["(O32 9)"], victim_cores=[1]),
    SpillEvent(60, 0, "coalescer", n_tasks=8, duration=23),
    ZoomEvent(70, "in", depth=1, n_spilled=3),
    GvtTickEvent(200, 4, 2, commits=1),
]


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        assert write_events_jsonl(EVENTS, path) == len(EVENTS)
        back = read_events_jsonl(path)
        assert back == EVENTS

    def test_streaming_exporter_matches_batch(self, tmp_path):
        path = tmp_path / "s.jsonl"
        bus = EventBus()
        with JsonlExporter(path) as exp:
            bus.subscribe(exp)
            for e in EVENTS:
                bus.emit(e)
        assert exp.n_events == len(EVENTS)
        assert read_events_jsonl(path) == EVENTS

    def test_event_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            event_from_dict({"kind": "nope", "t": 0})

    def test_validate_jsonl_accepts_export(self, tmp_path):
        path = tmp_path / "ok.jsonl"
        write_events_jsonl(EVENTS, path)
        assert validate_jsonl(path) == len(EVENTS)

    def test_validate_rejects_bad_lines(self, tmp_path):
        for bad, msg in [
            ("{not json", "not JSON"),
            ('"scalar"', "not an object"),
            ('{"kind": "martian", "t": 0}', "unknown event kind"),
            ('{"kind": "commit", "t": 1}', "missing fields"),
        ]:
            path = tmp_path / "bad.jsonl"
            path.write_text(bad + "\n")
            with pytest.raises(ValidationError, match=msg):
                validate_jsonl(path)

    def test_validate_rejects_empty_log(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValidationError, match="no events"):
            validate_jsonl(path)

    def test_validate_event_dict_timestamp(self):
        with pytest.raises(ValidationError, match="bad timestamp"):
            validate_event_dict({"kind": "zoom", "t": -1, "direction": "in",
                                 "depth": 0, "n_spilled": 0})
        with pytest.raises(ValidationError, match="bad timestamp"):
            validate_event_dict({"kind": "zoom", "t": True, "direction": "in",
                                 "depth": 0, "n_spilled": 0})


class TestPerfetto:
    def test_structure(self, tmp_path):
        doc = to_perfetto(EVENTS, sim_name="unit")
        evs = doc["traceEvents"]
        slices = [e for e in evs if e.get("ph") == "X"]
        # one committed slice + one aborted slice
        cats = sorted(s["cat"] for s in slices)
        assert cats == ["aborted", "task"]
        committed = next(s for s in slices if s["cat"] == "task")
        assert (committed["ts"], committed["dur"]) == (10, 30)
        aborted = next(s for s in slices if s["cat"] == "aborted")
        assert aborted["args"]["reason"] == "write conflict"
        # the conflict becomes one flow-arrow pair per victim
        flows = sorted(e["ph"] for e in evs if e.get("ph") in ("s", "f"))
        assert flows == ["f", "s"]
        # counters + instants + process metadata all present
        assert any(e.get("ph") == "C" for e in evs)
        assert any(e.get("ph") == "i" for e in evs)
        assert any(e.get("ph") == "M" and e.get("name") == "process_name"
                   for e in evs)
        path = tmp_path / "trace.json"
        write_perfetto(EVENTS, path, sim_name="unit")
        assert json.loads(path.read_text())["traceEvents"]


class TestMetricsJson:
    def test_snapshot_includes_stats(self, tmp_path):
        m = MetricsRegistry()
        m.inc("cycles", 7, category="committed", core=0)
        stats = RunStats(name="unit", n_cores=1, makespan=7,
                         breakdown=CycleBreakdown(committed=7),
                         tasks_committed=1)
        doc = metrics_snapshot(m, stats)
        assert doc["schema"] == "repro.metrics/1"
        assert doc["stats"]["breakdown"]["committed"] == 7
        path = tmp_path / "m.json"
        write_metrics_json(m, path, stats=stats)
        on_disk = json.loads(path.read_text())
        assert on_disk == doc
        # and the stats round-trip back into an equal RunStats
        assert RunStats.from_dict(on_disk["stats"]) == stats


class TestRunStatsRoundTrip:
    def test_full_round_trip(self):
        stats = RunStats(
            name="rt", n_cores=4, makespan=123,
            breakdown=CycleBreakdown(committed=100, aborted=20, spill=3,
                                     stall=2, empty=367),
            tasks_committed=10, tasks_aborted=2, tasks_squashed=1,
            tasks_spilled=4, enqueues=13, domains_created=2,
            domains_flattened=1, max_depth=3, true_conflicts=2,
            false_positive_conflicts=1, zoom_ins=1, zoom_outs=1,
            tiebreaker_wraparounds=1, gvt_ticks=5,
            cache={"hits": 9, "misses": 2})
        d = json.loads(json.dumps(stats.to_dict()))
        assert RunStats.from_dict(d) == stats

    def test_from_dict_ignores_unknown_keys(self):
        d = RunStats(name="x").to_dict()
        d["future_field"] = 42
        d["breakdown"]["future_cat"] = 7
        assert RunStats.from_dict(d).name == "x"
