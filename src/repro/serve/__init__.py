"""repro.serve — always-on simulation-as-a-service on top of repro.farm.

``repro serve`` turns the experiment farm into a long-lived multi-tenant
service (see README "Serving"):

- **content-addressed jobs** — ``POST /v1/jobs`` canonicalizes the
  JobSpec and uses its sha256 digest as the job id, so identical
  submissions from any tenant *coalesce* onto one running job and
  completed ones are answered O(1) from the
  :class:`~repro.farm.cache.ResultCache`;
- **admission control** — per-tenant bounded FIFO queues and token-bucket
  rate limits (API-key tenants), rejecting with 429 + Retry-After;
- **persistent workers** — a pool of single-worker
  :class:`~repro.farm.farm.Farm` slots that keep their simulation
  processes warm across jobs and reuse the farm's timeout / retry /
  crash-rebuild machinery;
- **streaming** — ``GET /v1/jobs/{id}/events`` is a Server-Sent-Events
  feed of the job's telemetry (queued, running, farm events, final
  state), with replay of the buffered history on connect;
- **graceful drain** — SIGTERM stops admission, finishes queued and
  running jobs, then exits 0 (3 if the drain times out).

Everything is stdlib-only: asyncio for the HTTP layer,
``http.client`` in :mod:`repro.serve.client`.
"""

from .config import SERVE_SCHEMA, ServeConfig, TenantQuota
from .http import ServeServer, ServerHandle, serve_forever, start_in_thread
from .manager import (AdmissionError, AuthError, DrainingError, Job,
                      JobManager, ServeError, TokenBucket, UnknownJobError)

__all__ = [
    "SERVE_SCHEMA",
    "AdmissionError",
    "AuthError",
    "DrainingError",
    "Job",
    "JobManager",
    "ServeConfig",
    "ServeError",
    "ServeServer",
    "ServerHandle",
    "TenantQuota",
    "TokenBucket",
    "UnknownJobError",
    "serve_forever",
    "start_in_thread",
]
