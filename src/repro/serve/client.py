"""A small blocking client for the serve API (stdlib ``http.client``).

Typical use::

    from repro.serve.client import ServeClient

    c = ServeClient("http://127.0.0.1:8177", api_key="key-alice")
    doc = c.submit({"app": "mis", "n_cores": 4,
                    "input": {"scale": 7, "seed": 1}})
    stats = c.result(doc["id"])["stats"]

    for kind, event in c.events(doc["id"]):
        print(kind, event)

Raises :class:`ServeAPIError` on any non-2xx response;
:class:`RateLimited` (a subclass) carries ``retry_after`` for 429s.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, Iterator, List, Optional, Tuple
from urllib.parse import urlsplit


class ServeAPIError(Exception):
    """A non-2xx response from the server."""

    def __init__(self, status: int, doc: dict) -> None:
        detail = doc.get("error") or f"HTTP {status}"
        super().__init__(f"{detail} (HTTP {status})")
        self.status = status
        self.doc = doc
        #: field-level validation errors (400 responses), if any
        self.errors: List[dict] = doc.get("errors") or []


class RateLimited(ServeAPIError):
    """429: over the tenant's rate or queue quota."""

    def __init__(self, status: int, doc: dict,
                 retry_after: float) -> None:
        super().__init__(status, doc)
        self.retry_after = retry_after
        self.reason = doc.get("reason", "rate")


class JobFailed(ServeAPIError):
    """The job finished with an error (result endpoint, HTTP 500)."""


class ServeClient:
    """Blocking client for one serve endpoint. Not thread-safe — use one
    client per thread (they are cheap)."""

    def __init__(self, base_url: str, *, api_key: str = "",
                 timeout: float = 60.0) -> None:
        parts = urlsplit(base_url)
        if parts.scheme != "http":
            raise ValueError(f"only http:// endpoints supported: {base_url}")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 80
        self.api_key = api_key
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- plumbing ------------------------------------------------------
    def _headers(self) -> Dict[str, str]:
        h = {"Content-Type": "application/json",
             "Accept": "application/json"}
        if self.api_key:
            h["X-API-Key"] = self.api_key
        return h

    def _connect(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None
                 ) -> Tuple[int, Dict[str, str], dict]:
        payload = json.dumps(body).encode() if body is not None else None
        for attempt in (1, 2):
            conn = self._connect()
            try:
                conn.request(method, path, body=payload,
                             headers=self._headers())
                resp = conn.getresponse()
                raw = resp.read()
                break
            except (ConnectionError, http.client.HTTPException, OSError):
                # stale keep-alive connection: reconnect once
                self.close()
                if attempt == 2:
                    raise
        try:
            doc = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError:
            doc = {"error": raw.decode("utf-8", "replace")[:200]}
        headers = {k.lower(): v for k, v in resp.getheaders()}
        return resp.status, headers, doc

    def _checked(self, method: str, path: str,
                 body: Optional[dict] = None) -> dict:
        status, headers, doc = self._request(method, path, body)
        if status == 429:
            retry_after = float(doc.get("retry_after")
                                or headers.get("retry-after") or 1.0)
            raise RateLimited(status, doc, retry_after)
        if status >= 400:
            raise ServeAPIError(status, doc)
        return doc

    # -- API -----------------------------------------------------------
    def healthz(self) -> dict:
        return self._checked("GET", "/healthz")

    def metrics(self) -> dict:
        return self._checked("GET", "/metrics")

    def jobs(self) -> List[dict]:
        return self._checked("GET", "/v1/jobs")["jobs"]

    def submit(self, spec: dict) -> dict:
        """POST a JobSpec document; returns the job document (its ``id``
        is the content address, ``outcome`` is queued/coalesced/warm)."""
        return self._checked("POST", "/v1/jobs", spec)

    def status(self, job_id: str) -> dict:
        return self._checked("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str, *, wait: bool = True,
               timeout: float = 300.0, poll_s: float = 0.1) -> dict:
        """The job's result document (``stats`` is RunStats JSON).

        With ``wait`` (default) polls until the job leaves the queue;
        raises :class:`JobFailed` if it failed, ``TimeoutError`` if it
        does not finish in ``timeout`` seconds.
        """
        deadline = time.monotonic() + timeout
        while True:
            status, _headers, doc = self._request(
                "GET", f"/v1/jobs/{job_id}/result")
            if status == 200:
                return doc
            if status == 500:
                raise JobFailed(status, doc)
            if status == 409 and wait:
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"job {job_id} not finished after {timeout}s")
                time.sleep(poll_s)
                continue
            raise ServeAPIError(status, doc)

    def run(self, spec: dict, *, timeout: float = 300.0,
            poll_s: float = 0.1) -> dict:
        """Submit and wait: returns the result document."""
        doc = self.submit(spec)
        return self.result(doc["id"], timeout=timeout, poll_s=poll_s)

    def events(self, job_id: str,
               timeout: float = 300.0) -> Iterator[Tuple[str, dict]]:
        """Stream the job's SSE feed as ``(kind, event_dict)`` pairs.

        Replays the buffered history first, then live events; returns
        when the job's final event arrives or the server closes the
        stream. Uses a dedicated connection (SSE holds it open).
        """
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=timeout)
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events",
                         headers={**self._headers(),
                                  "Accept": "text/event-stream"})
            resp = conn.getresponse()
            if resp.status != 200:
                raw = resp.read()
                try:
                    doc = json.loads(raw.decode("utf-8"))
                except ValueError:
                    doc = {"error": raw.decode("utf-8", "replace")[:200]}
                raise ServeAPIError(resp.status, doc)
            kind, data = "event", []
            while True:
                line = resp.fp.readline()
                if not line:
                    return
                line = line.decode("utf-8").rstrip("\n").rstrip("\r")
                if not line:                 # frame boundary
                    if data:
                        event = json.loads("\n".join(data))
                        yield kind, event
                        if event.get("final"):
                            return
                    kind, data = "event", []
                elif line.startswith(":"):
                    continue                 # keepalive comment
                elif line.startswith("event:"):
                    kind = line[len("event:"):].strip()
                elif line.startswith("data:"):
                    data.append(line[len("data:"):].strip())
        finally:
            conn.close()

    def wait_ready(self, timeout: float = 10.0) -> dict:
        """Poll ``/healthz`` until the server answers (startup helper)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.healthz()
            except (ConnectionError, ServeAPIError, OSError):
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.05)
