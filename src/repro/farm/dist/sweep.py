"""Driver for distributed sweeps: submit, wait, reassemble in order.

:func:`dist_sweep` is the client-side counterpart of
``Farm.run(specs)``: it hands a list of JobSpec wire documents to a
coordinator, waits for the (possibly chaos-ridden) cluster to finish,
and returns the records **in input order** — so a table rendered from a
distributed sweep is byte-identical to a serial one, which is exactly
what the chaos smoke asserts.
"""

from __future__ import annotations

import time
from typing import List, Optional

from ...core.stats import RunStats
from ...errors import FarmError
from ..job import JobResult
from .client import DistClient


def dist_sweep(coordinator_url: str, jobs: List[dict], *,
               fragments: int = 0, label: str = "",
               timeout_s: float = 600.0, poll_s: float = 0.25,
               client: Optional[DistClient] = None,
               progress=None) -> dict:
    """Run ``jobs`` (JobSpec wire documents) through a coordinator.

    Returns the coordinator's results document: ``{"id", "complete",
    "n_jobs", "results": [record, ...]}`` with one record per job in
    input order. Raises :class:`TimeoutError` when the cluster does not
    finish in ``timeout_s`` (records gathered so far are attached).
    """
    own = client is None
    c = client or DistClient(coordinator_url)
    try:
        c.wait_ready()
        sub = c.submit_sweep(jobs, fragments=fragments, label=label)
        sweep_id = sub["id"]
        deadline = time.monotonic() + timeout_s
        last_done = -1
        while True:
            doc = c.sweep_results(sweep_id)
            n_done = sum(1 for r in doc["results"] if r is not None)
            if progress is not None and n_done != last_done:
                progress(n_done, doc["n_jobs"])
                last_done = n_done
            if doc["complete"]:
                return doc
            if time.monotonic() > deadline:
                exc = TimeoutError(
                    f"dist sweep {sweep_id[:12]} incomplete after "
                    f"{timeout_s}s ({n_done}/{doc['n_jobs']} jobs)")
                exc.partial = doc
                raise exc
            time.sleep(poll_s)
    finally:
        if own:
            c.close()


def records_to_results(records: List[dict]) -> List[JobResult]:
    """Rebuild Farm-shaped :class:`JobResult` rows from sweep records.

    The bridge between a distributed sweep and everything downstream
    that consumes ``Farm.run`` output (report tables, BENCH summaries,
    parity tests).
    """
    out = []
    for r in records:
        if r is None:
            raise FarmError("sweep incomplete: missing record")
        out.append(JobResult(
            digest=r["digest"], app=r["app"], variant=r["variant"],
            n_cores=r["n_cores"], label=r["label"],
            stats=(RunStats.from_dict(r["stats"])
                   if r["stats"] is not None else None),
            cached=bool(r.get("cached")), wall_s=r["wall_ms"] / 1000.0,
            attempts=r["attempts"], error=r["error"]))
    return out
