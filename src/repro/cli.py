"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``run <app>`` — run one benchmark application on the simulator and
  print its statistics (optionally against the serial reference). The
  telemetry flags export the run: ``--trace-out`` streams a JSONL event
  log, ``--perfetto`` writes a Chrome/Perfetto trace, ``--metrics-out``
  dumps the metrics registry + RunStats as JSON. The robustness flags
  (see :mod:`repro.faults`): ``--faults`` loads a fault-injection plan,
  ``--max-attempts`` bounds exception retries, ``--crash-dump-dir``
  writes a crash bundle on failure.
- ``profile <app>`` — run one application and report hot-path profile
  counters (GVT frontier scan lengths, queue-index scans, conflict-probe
  counts; see :mod:`repro.telemetry.profiling`). ``--json`` exports the
  profile document for CI's perf-smoke ceilings.
- ``apps`` — list available applications and their variants.
- ``config`` — print the paper's Table 2 system configuration.
- ``sweep <app>`` — scaling sweep over core counts with a speedup table
  and an ASCII chart. ``--jobs N`` fans the sweep out over a
  :class:`repro.farm.Farm` worker pool; ``--cache`` reuses / populates
  the content-addressed result cache so repeated sweeps only execute
  jobs whose digest is missing or stale (``--cache-dir`` relocates it,
  ``--summary-out`` dumps the farm summary JSON).
- ``coordinator`` / ``agent`` — the distributed farm
  (:mod:`repro.farm.dist`): a coordinator leasing digest-sharded sweep
  fragments to worker agents under heartbeat TTLs, with exactly-once
  result recording; ``sweep --dist URL`` drives a sweep through it and
  renders the same table bytes as a local run. ``profile --dist URL``
  reports leases, requeues and duplicate suppression.
- ``serve`` — run the always-on simulation service (:mod:`repro.serve`):
  HTTP/JSON job submission with content-addressed coalescing, per-tenant
  admission control, SSE progress streaming, and graceful drain on
  SIGTERM. ``profile --serve URL`` reports a live instance's queue
  depths, admission rejects and cache hit rates.
- ``crash-validate BUNDLE.json ...`` — validate ``repro.crash/1`` crash
  bundles: exit 0 all valid, 1 structurally invalid, 4 unreadable or
  truncated/garbage JSON (field-level messages, never a traceback).

Exit codes (``run``): 0 success; 1 application failure (result check or
:class:`repro.errors.AppError`, incl. a task exhausting its retries);
2 simulator internal error or bad fault plan; 3 queue-resource
exhaustion (:class:`repro.errors.QueueError`); 4 partial run — the
resilience watchdog stopped the simulation and partial stats were
reported.
"""

from __future__ import annotations

import argparse
import dataclasses
import importlib
import sys
from typing import List, Optional

from .apps.registry import APPS
from .bench.harness import run_app, run_serial, sweep_cores
from .bench.plots import speedup_chart
from .bench.report import format_table, speedup_table
from .config import SystemConfig
from .errors import (AppError, ConfigError, FarmError, QueueError,
                     SimulationError)
from .faults import ResiliencePolicy, load_fault_file
from .telemetry import (EventBus, EventRecorder, JsonlExporter,
                        to_perfetto, write_metrics_json, write_perfetto)

_EXIT_CODES = """\
exit codes:
  0  success
  1  application failure (result check / AppError / retries exhausted)
  2  simulator internal error, or an invalid --faults plan
  3  queue-resource exhaustion (QueueError) despite degradation
  4  partial run: the resilience watchdog stopped the simulation
"""

_SERVE_EXIT_CODES = """\
exit codes:
  0  clean shutdown (SIGTERM/SIGINT drained all queued and running jobs)
  2  invalid configuration (tenants file, bind address)
  3  drain timed out: --drain-timeout expired with jobs still pending
"""

_CRASH_EXIT_CODES = """\
exit codes:
  0  every bundle valid
  1  a bundle parsed as JSON but failed repro.crash/1 validation
  4  a file was unreadable or not JSON at all (truncated or garbage)
"""


def _load(name: str):
    try:
        module_path, variants = APPS[name]
    except KeyError:
        raise SystemExit(
            f"unknown app {name!r}; run `python -m repro apps` for the list")
    return importlib.import_module(module_path), variants


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fractal (ISCA 2017) reproduction — run benchmark "
                    "applications on the speculative simulator.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser(
        "run", help="run one application", epilog=_EXIT_CODES,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    p_run.add_argument("app", help="application name (see `apps`)")
    p_run.add_argument("--variant", default=None,
                       help="execution-model variant (default: best)")
    p_run.add_argument("--cores", type=int, default=16)
    p_run.add_argument("--conflicts", choices=("bloom", "precise"),
                       default="bloom")
    p_run.add_argument("--no-hints", action="store_true")
    p_run.add_argument("--audit", action="store_true",
                       help="verify serializability after the run")
    p_run.add_argument("--serial", action="store_true",
                       help="also run the serial reference")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--trace-out", metavar="PATH", default=None,
                       help="stream the event log to PATH as JSON Lines")
    p_run.add_argument("--perfetto", metavar="PATH", default=None,
                       help="write a Chrome/Perfetto trace JSON to PATH")
    p_run.add_argument("--metrics-out", metavar="PATH", default=None,
                       help="write the metrics registry + stats JSON to PATH")
    p_run.add_argument("--faults", metavar="PLAN.json", default=None,
                       help="inject faults from a seeded plan file "
                            "(repro.faults; enables retry/backoff "
                            "resilience unless the file disables it)")
    p_run.add_argument("--max-attempts", type=int, default=None,
                       metavar="N",
                       help="retries-plus-one budget for task exceptions "
                            "(enables the resilience policy; overrides "
                            "the plan file's value)")
    p_run.add_argument("--crash-dump-dir", metavar="DIR", default=None,
                       help="write a JSON crash bundle here when the run "
                            "fails or the watchdog fires")

    p_sweep = sub.add_parser("sweep", help="scaling sweep over core counts")
    p_sweep.add_argument("app")
    p_sweep.add_argument("--variants", default=None,
                         help="comma-separated (default: all)")
    p_sweep.add_argument("--cores", default="1,4,16",
                         help="comma-separated core counts")
    p_sweep.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker processes for the sweep (repro.farm; "
                              "default 1 = in-process)")
    p_sweep.add_argument("--cache", action="store_true",
                         help="reuse/populate the content-addressed result "
                              "cache; only missing or stale digests run")
    p_sweep.add_argument("--cache-dir", metavar="DIR",
                         default="benchmarks/results/.cache",
                         help="result-cache location (default: "
                              "benchmarks/results/.cache)")
    p_sweep.add_argument("--timeout", type=float, default=0.0, metavar="SEC",
                         help="graceful per-job wall-clock watchdog "
                              "(partial stats instead of a kill)")
    p_sweep.add_argument("--summary-out", metavar="PATH", default=None,
                         help="write the farm summary (jobs, cache "
                              "hits/misses, wall time) as JSON")
    p_sweep.add_argument("--dist", metavar="URL", default=None,
                         help="run the sweep through a repro.farm.dist "
                              "coordinator at URL instead of a local "
                              "farm (`repro coordinator` + `repro "
                              "agent`); the rendered table is "
                              "byte-identical either way")
    p_sweep.add_argument("--fragments", type=int, default=0, metavar="N",
                         help="--dist: lease fragments to cut the sweep "
                              "into (default: coordinator's setting)")
    p_sweep.add_argument("--dist-timeout", type=float, default=600.0,
                         metavar="SEC",
                         help="--dist: overall sweep deadline "
                              "(default 600)")
    p_sweep.add_argument("--token", default=None, metavar="SECRET",
                         help="--dist: coordinator wire token (default: "
                              "$REPRO_DIST_TOKEN)")

    p_coord = sub.add_parser(
        "coordinator",
        help="run a distributed-farm coordinator (repro.farm.dist)")
    p_coord.add_argument("--host", default="127.0.0.1")
    p_coord.add_argument("--port", type=int, default=8178,
                         help="listen port (0 picks a free one)")
    p_coord.add_argument("--lease-ttl", type=float, default=6.0,
                         metavar="SEC",
                         help="un-renewed lease lifetime (default 6)")
    p_coord.add_argument("--heartbeat-interval", type=float, default=1.5,
                         metavar="SEC",
                         help="agent heartbeat period (default 1.5; "
                              "must be < --lease-ttl)")
    p_coord.add_argument("--fragments", type=int, default=8, metavar="N",
                         help="default fragments per sweep (default 8)")
    p_coord.add_argument("--cache-dir", metavar="DIR",
                         default="benchmarks/results/.cache",
                         help="content-addressed result cache (default: "
                              "benchmarks/results/.cache)")
    p_coord.add_argument("--no-cache", action="store_true",
                         help="disable the result cache")
    p_coord.add_argument("--journal-dir", metavar="DIR", default=None,
                         help="write-ahead journal directory; restarting "
                              "on the same dir resumes every in-flight "
                              "sweep (default: off, in-memory only)")
    p_coord.add_argument("--snapshot-every", type=int, default=2048,
                         metavar="N",
                         help="compact the journal into a snapshot every "
                              "N records (default 2048)")
    p_coord.add_argument("--token", default=None, metavar="SECRET",
                         help="require X-Repro-Token on every request "
                              "(default: $REPRO_DIST_TOKEN; empty = "
                              "open)")

    p_agent = sub.add_parser(
        "agent", help="run a distributed-farm worker agent")
    p_agent.add_argument("coordinator", metavar="URL",
                         help="coordinator base URL, e.g. "
                              "http://127.0.0.1:8178")
    p_agent.add_argument("--id", default="",
                         help="agent name (default: assigned)")
    p_agent.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="local farm worker processes (default 1)")
    p_agent.add_argument("--max-fragments", type=int, default=1,
                         metavar="N",
                         help="leases to hold at once (default 1)")
    p_agent.add_argument("--exit-when-idle", action="store_true",
                         help="exit 0 once the coordinator has no "
                              "pending work")
    p_agent.add_argument("--cache-dir", metavar="DIR", default=None,
                         help="local result cache (default: off; share "
                              "the coordinator's dir on one machine)")
    p_agent.add_argument("--crash-dump-dir", metavar="DIR", default=None,
                         help="write repro.crash/1 bundles when farm "
                              "worker processes die")
    p_agent.add_argument("--token", default="", metavar="SECRET",
                         help="coordinator wire token (default: "
                              "$REPRO_DIST_TOKEN)")
    p_agent.add_argument("--reconnect-timeout", type=float, default=120.0,
                         metavar="SEC",
                         help="continuous coordinator silence before "
                              "the agent gives up (default 120)")

    p_serve = sub.add_parser(
        "serve", help="run the always-on simulation service (repro.serve)",
        epilog=_SERVE_EXIT_CODES,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8177,
                         help="listen port (0 picks a free one)")
    p_serve.add_argument("--workers", type=int, default=2, metavar="N",
                         help="persistent farm worker slots (default 2)")
    p_serve.add_argument("--cache-dir", metavar="DIR",
                         default="benchmarks/results/.cache",
                         help="content-addressed result cache (default: "
                              "benchmarks/results/.cache)")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="disable the result cache (every submission "
                              "executes)")
    p_serve.add_argument("--timeout", type=float, default=0.0, metavar="SEC",
                         help="graceful per-job wall-clock watchdog "
                              "(changes the content address)")
    p_serve.add_argument("--max-attempts", type=int, default=2, metavar="N",
                         help="per-job attempt budget (default 2)")
    p_serve.add_argument("--drain-timeout", type=float, default=60.0,
                         metavar="SEC",
                         help="how long SIGTERM waits for pending jobs "
                              "(default 60)")
    p_serve.add_argument("--tenants", metavar="FILE", default=None,
                         help="tenants JSON file (API keys -> quotas; see "
                              "README 'Serving')")
    p_serve.add_argument("--require-key", action="store_true",
                         help="reject submissions without an X-API-Key")
    p_serve.add_argument("--no-warmup", action="store_true",
                         help="skip pre-importing the simulator in workers")

    p_prof = sub.add_parser(
        "profile", help="run one application and report hot-path counters")
    p_prof.add_argument("app", nargs="?", default=None,
                        help="application name (see `apps`); omit with "
                             "--serve")
    p_prof.add_argument("--variant", default=None,
                        help="execution-model variant (default: best)")
    p_prof.add_argument("--cores", type=int, default=16)
    p_prof.add_argument("--conflicts", choices=("bloom", "precise"),
                        default="bloom")
    p_prof.add_argument("--seed", type=int, default=0)
    p_prof.add_argument("--json", metavar="PATH", default=None,
                        help="also write the profile document as JSON")
    p_prof.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="write metrics (incl. profile_* counters) "
                             "+ stats JSON to PATH")
    p_prof.add_argument("--serve", metavar="URL", default=None,
                        help="profile a running serve instance instead: "
                             "fetch URL/metrics and report queue depths, "
                             "admission rejects, coalescing and cache "
                             "hit rates")
    p_prof.add_argument("--api-key", default="",
                        help="X-API-Key for --serve")
    p_prof.add_argument("--dist", metavar="URL", default=None,
                        help="profile a running dist coordinator "
                             "instead: leases, requeues, duplicate "
                             "suppression, recovery, per-agent rows")
    p_prof.add_argument("--token", default=None, metavar="SECRET",
                        help="--dist: coordinator wire token (default: "
                             "$REPRO_DIST_TOKEN)")

    p_crash = sub.add_parser(
        "crash-validate",
        help="validate repro.crash/1 crash-bundle files",
        epilog=_CRASH_EXIT_CODES,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    p_crash.add_argument("bundles", nargs="+", metavar="BUNDLE.json",
                         help="crash bundle files to validate")

    sub.add_parser("apps", help="list applications")
    sub.add_parser("config", help="print the Table 2 configuration")
    return parser


def _note_crash_dir(args) -> None:
    """Point the user at the crash bundle after a failed run."""
    if getattr(args, "crash_dump_dir", None):
        print(f"crash bundle written under {args.crash_dump_dir}/",
              file=sys.stderr)


def _cmd_run(args) -> int:
    app, variants = _load(args.app)
    variant = args.variant or variants[-1]
    if variant not in variants:
        raise SystemExit(f"{args.app} supports variants {variants}")
    inp = app.make_input()
    cfg = SystemConfig.with_cores(args.cores, conflict_mode=args.conflicts,
                                  use_hints=not args.no_hints,
                                  seed=args.seed)

    faults = resilience = None
    if args.faults:
        try:
            faults, resilience = load_fault_file(args.faults)
        except (OSError, ValueError, ConfigError) as exc:
            print(f"cannot load --faults plan: {exc}", file=sys.stderr)
            return 2
        if resilience is None:
            # injecting faults without any resilience would just crash
            # the run; default to the standard retry/backoff policy
            resilience = ResiliencePolicy()
    if args.max_attempts is not None:
        resilience = dataclasses.replace(resilience or ResiliencePolicy(),
                                         max_attempts=args.max_attempts)

    bus = recorder = exporter = None
    if args.trace_out or args.perfetto:
        bus = EventBus()
        if args.perfetto:
            recorder = EventRecorder()
            bus.subscribe(recorder)
        if args.trace_out:
            try:
                exporter = JsonlExporter(args.trace_out)
            except OSError as exc:
                print(f"cannot open --trace-out: {exc}", file=sys.stderr)
                return 1
            bus.subscribe(exporter)

    try:
        run = run_app(app, inp, variant=variant, n_cores=args.cores,
                      config=cfg, audit=args.audit, telemetry=bus,
                      faults=faults, resilience=resilience,
                      crash_dump_dir=args.crash_dump_dir)
    except QueueError as exc:
        print(f"queue exhaustion: {exc}", file=sys.stderr)
        _note_crash_dir(args)
        return 3
    except SimulationError as exc:
        print(f"simulation error: {exc}", file=sys.stderr)
        _note_crash_dir(args)
        return 2
    except AppError as exc:
        print(f"result check: FAILED — {exc}", file=sys.stderr)
        _note_crash_dir(args)
        return 1
    finally:
        if exporter is not None:
            exporter.close()

    sim_name = f"{args.app}-{variant}"
    try:
        if recorder is not None:
            write_perfetto(recorder.events, args.perfetto, sim_name=sim_name)
            print(f"perfetto trace: {args.perfetto} "
                  f"({len(recorder)} events)")
        if exporter is not None:
            print(f"event log: {args.trace_out} ({exporter.n_events} events)")
        if args.metrics_out:
            write_metrics_json(run.metrics, args.metrics_out, stats=run.stats)
            print(f"metrics: {args.metrics_out}")
    except OSError as exc:
        print(f"cannot write export: {exc}", file=sys.stderr)
        return 1

    print(run.stats.summary())
    if not run.stats.completed:
        failure = run.stats.failure
        print(f"watchdog fired ({failure.get('limit_kind')}): partial "
              f"stats above, {failure.get('n_live')} tasks left live",
              file=sys.stderr)
        if run.sim.crash_bundle_path:
            print(f"crash bundle: {run.sim.crash_bundle_path}",
                  file=sys.stderr)
        return 4
    print("result check: OK")
    if args.serial:
        try:
            host = run_serial(app, inp, variant=variant)
        except AppError as exc:
            print(f"serial reference check: FAILED — {exc}", file=sys.stderr)
            return 1
        print(f"serial reference: {host.cycles:,} cycles "
              f"({host.tasks_executed:,} tasks)")
        if host.cycles:
            print(f"speculative vs serial at {args.cores} cores: "
                  f"{host.cycles / run.makespan:.2f}x")
    return 0


def _cmd_serve(args) -> int:
    from .serve import ServeConfig, serve_forever
    try:
        config = ServeConfig(
            host=args.host, port=args.port, workers=args.workers,
            cache_dir=None if args.no_cache else args.cache_dir,
            timeout_s=args.timeout, max_attempts=args.max_attempts,
            drain_timeout_s=args.drain_timeout,
            require_key=args.require_key, warmup=not args.no_warmup)
        if args.tenants:
            config.load_tenants(args.tenants)
        return serve_forever(config)
    except ConfigError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"serve: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2


def _cmd_coordinator(args) -> int:
    import os as _os

    from .farm.dist import CoordinatorConfig, coordinator_forever
    from .farm.dist.wire import TOKEN_ENV
    token = args.token if args.token is not None \
        else _os.environ.get(TOKEN_ENV, "")
    try:
        config = CoordinatorConfig(
            host=args.host, port=args.port,
            lease_ttl_s=args.lease_ttl,
            heartbeat_interval_s=args.heartbeat_interval,
            fragments=args.fragments,
            cache_dir=None if args.no_cache else args.cache_dir,
            journal_dir=args.journal_dir,
            journal_snapshot_every=args.snapshot_every,
            auth_token=token)
        return coordinator_forever(config)
    except ConfigError as exc:
        print(f"coordinator: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"coordinator: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2


def _cmd_agent(args) -> int:
    from .farm.dist import AgentConfig, agent_forever
    try:
        config = AgentConfig(
            coordinator_url=args.coordinator, agent_id=args.id,
            jobs=args.jobs, max_fragments=args.max_fragments,
            exit_when_idle=args.exit_when_idle,
            cache_dir=args.cache_dir,
            crash_dump_dir=args.crash_dump_dir,
            token=args.token,
            reconnect_timeout_s=args.reconnect_timeout)
        return agent_forever(config)
    except ConfigError as exc:
        print(f"agent: {exc}", file=sys.stderr)
        return 2
    except (OSError, ConnectionError) as exc:
        print(f"agent: cannot reach {args.coordinator}: {exc}",
              file=sys.stderr)
        return 2


def _cmd_profile_dist(args) -> int:
    from .farm.dist import DistClient
    from .serve.client import ServeAPIError
    from .telemetry.profiling import format_dist_profile
    try:
        with DistClient(args.dist, token=args.token,
                        timeout=10.0) as client:
            doc = client.metrics()
    except (OSError, ValueError, ServeAPIError) as exc:
        print(f"cannot fetch {args.dist}/metrics: {exc}", file=sys.stderr)
        return 2
    print(format_dist_profile(doc))
    if args.json:
        import json as _json
        with open(args.json, "w") as f:
            _json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"dist metrics json: {args.json}")
    return 0


def _cmd_profile_serve(args) -> int:
    from .serve.client import ServeAPIError, ServeClient
    from .telemetry.profiling import format_serve_profile
    try:
        with ServeClient(args.serve, api_key=args.api_key,
                         timeout=10.0) as client:
            doc = client.metrics()
    except (OSError, ValueError, ServeAPIError) as exc:
        print(f"cannot fetch {args.serve}/metrics: {exc}", file=sys.stderr)
        return 2
    print(format_serve_profile(doc))
    if args.json:
        import json as _json
        with open(args.json, "w") as f:
            _json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"serve metrics json: {args.json}")
    return 0


def _cmd_profile(args) -> int:
    import json as _json
    import time as _time

    from .telemetry import (collect_profile, fold_into_registry,
                            format_profile)

    if args.serve:
        return _cmd_profile_serve(args)
    if args.dist:
        return _cmd_profile_dist(args)
    if not args.app:
        raise SystemExit("profile: an app name (or --serve/--dist URL) "
                         "is required")
    app, variants = _load(args.app)
    variant = args.variant or variants[-1]
    if variant not in variants:
        raise SystemExit(f"{args.app} supports variants {variants}")
    inp = app.make_input()
    cfg = SystemConfig.with_cores(args.cores, conflict_mode=args.conflicts,
                                  seed=args.seed)
    t0 = _time.perf_counter()
    try:
        run = run_app(app, inp, variant=variant, n_cores=args.cores,
                      config=cfg)
    except QueueError as exc:
        print(f"queue exhaustion: {exc}", file=sys.stderr)
        return 3
    except SimulationError as exc:
        print(f"simulation error: {exc}", file=sys.stderr)
        return 2
    except AppError as exc:
        print(f"result check: FAILED — {exc}", file=sys.stderr)
        return 1
    wall_s = _time.perf_counter() - t0

    profile = collect_profile(run.sim, wall_s=wall_s)
    fold_into_registry(run.metrics, profile)
    print(format_profile(profile))
    try:
        if args.json:
            with open(args.json, "w") as f:
                _json.dump(profile, f, indent=2, sort_keys=True)
                f.write("\n")
            print(f"profile json: {args.json}")
        if args.metrics_out:
            write_metrics_json(run.metrics, args.metrics_out,
                               stats=run.stats)
            print(f"metrics: {args.metrics_out}")
    except OSError as exc:
        print(f"cannot write export: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_sweep_dist(args, variants, cores) -> int:
    """`repro sweep --dist URL`: same grid, executed by a coordinator's
    agents; same table bytes as the local path."""
    import json as _json

    from .bench.harness import AppRun
    from .core.stats import RunStats
    from .farm.dist import dist_sweep
    from .serve.client import ServeAPIError

    jobs = [{"app": args.app, "variant": variant, "n_cores": n,
             "input": {}}
            for variant in variants for n in cores]
    tty = sys.stderr.isatty()

    def progress(done, total):
        if tty:
            print(f"\r[dist] {done}/{total} jobs", end="",
                  file=sys.stderr, flush=True)

    try:
        doc = dist_sweep(args.dist, jobs, fragments=args.fragments,
                         label=f"sweep:{args.app}",
                         timeout_s=args.dist_timeout,
                         token=args.token, progress=progress)
    except TimeoutError as exc:
        print(f"\ndist sweep: {exc}", file=sys.stderr)
        return 2
    except (OSError, ConnectionError) as exc:
        print(f"dist sweep: cannot reach {args.dist}: {exc}",
              file=sys.stderr)
        return 2
    except ServeAPIError as exc:
        print(f"dist sweep: coordinator rejected us: {exc}",
              file=sys.stderr)
        return 2
    finally:
        if tty:
            print(file=sys.stderr)
    failures = [(r["label"], r["error"]) for r in doc["results"]
                if r["error"] is not None]
    if failures:
        print(f"dist sweep: {len(failures)} of {doc['n_jobs']} jobs "
              f"failed", file=sys.stderr)
        for label, err in failures:
            print(f"  {label}: {err}", file=sys.stderr)
        return 2
    runs = [AppRun(app=r["app"], variant=r["variant"],
                   n_cores=r["n_cores"],
                   stats=RunStats.from_dict(r["stats"]), handles={},
                   cached=True)
            for r in doc["results"]]
    print(speedup_table(runs, baseline_variant=variants[0],
                        baseline_cores=cores[0]))
    print()
    print(speedup_chart(runs, baseline_variant=variants[0],
                        baseline_cores=cores[0]))
    if args.summary_out:
        with open(args.summary_out, "w") as f:
            _json.dump({"schema": "repro.dist-sweep/1",
                        "sweep": doc["id"], "n_jobs": doc["n_jobs"],
                        "agents": sorted({r["agent"]
                                          for r in doc["results"]}),
                        "requeues": sum(r["epoch"]
                                        for r in doc["results"]
                                        if r["epoch"])}, f, indent=2)
            f.write("\n")
    return 0


def _cmd_sweep(args) -> int:
    app, all_variants = _load(args.app)
    variants = (args.variants.split(",") if args.variants
                else list(all_variants))
    cores = [int(c) for c in args.cores.split(",")]
    if args.dist:
        return _cmd_sweep_dist(args, variants, cores)
    inp = app.make_input()

    farm = None
    if args.jobs > 1 or args.cache or args.timeout or args.summary_out:
        from .farm import Farm, ResultCache
        cache = ResultCache(args.cache_dir) if args.cache else None
        farm = Farm(jobs=args.jobs, cache=cache, timeout_s=args.timeout,
                    progress=sys.stderr.isatty())
    try:
        runs = sweep_cores(app, inp, variants, cores, farm=farm)
    except FarmError as exc:
        print(f"farm: {exc}", file=sys.stderr)
        for label, err in exc.failures:
            print(f"  {label}: {err}", file=sys.stderr)
        return 2
    print(speedup_table(runs, baseline_variant=variants[0],
                        baseline_cores=cores[0]))
    print()
    print(speedup_chart(runs, baseline_variant=variants[0],
                        baseline_cores=cores[0]))
    if farm is not None:
        s = farm.summary()
        print(f"[farm] {s['jobs']} jobs on {s['workers']} workers: "
              f"{s['cache_hits']} cached, {s['failed']} failed, "
              f"{s['retries']} retries in {s['wall_s']:.2f}s",
              file=sys.stderr)
        if args.summary_out:
            import json as _json
            with open(args.summary_out, "w") as f:
                _json.dump({"schema": "repro.farm-summary/1", **s}, f,
                           indent=2)
                f.write("\n")
    return 0


def _cmd_crash_validate(args) -> int:
    from .faults.crashdump import validate_paths
    return validate_paths(args.bundles)


def _cmd_apps() -> int:
    rows = [[name, module.rsplit(".", 2)[-2] if "stamp" in module
             or "swarm" in module or "pbbs" in module else "core",
             ", ".join(variants)]
            for name, (module, variants) in sorted(APPS.items())]
    print(format_table(["app", "suite", "variants"], rows))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "coordinator":
        return _cmd_coordinator(args)
    if args.command == "agent":
        return _cmd_agent(args)
    if args.command == "crash-validate":
        return _cmd_crash_validate(args)
    if args.command == "apps":
        return _cmd_apps()
    if args.command == "config":
        print(SystemConfig.paper_256core().describe())
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
