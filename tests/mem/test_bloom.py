"""Tests for H3 Bloom signatures (paper Table 2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MemoryError_
from repro.mem import BloomSignature, H3HashFamily


def make_sig(bits=2048, ways=8, seed=0):
    return BloomSignature(H3HashFamily(k=ways, m_bits=bits, seed=seed))


class TestH3Family:
    def test_indices_one_per_bank(self):
        fam = H3HashFamily(k=8, m_bits=2048, seed=1)
        idx = fam.indices(12345)
        assert len(idx) == 8
        for bank, i in enumerate(idx):
            assert bank * 256 <= i < (bank + 1) * 256

    def test_deterministic(self):
        a = H3HashFamily(k=4, m_bits=1024, seed=7)
        b = H3HashFamily(k=4, m_bits=1024, seed=7)
        assert a.indices(999) == b.indices(999)

    def test_seed_changes_hashes(self):
        a = H3HashFamily(k=4, m_bits=1024, seed=7)
        b = H3HashFamily(k=4, m_bits=1024, seed=8)
        assert any(a.indices(k) != b.indices(k) for k in range(32))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(MemoryError_):
            H3HashFamily(k=4, m_bits=1000)

    def test_h3_linearity(self):
        """H3 is XOR-linear: h(a ^ b) == h(a) ^ h(b) per bank offset."""
        fam = H3HashFamily(k=2, m_bits=512, seed=3)
        a, b = 0b1010, 0b0110
        ha = [i % 256 for i in fam.indices(a)]
        hb = [i % 256 for i in fam.indices(b)]
        hx = [i % 256 for i in fam.indices(a ^ b)]
        assert hx == [x ^ y for x, y in zip(ha, hb)]


class TestBloomSignature:
    def test_no_false_negatives_small(self):
        sig = make_sig()
        keys = list(range(0, 500, 7))
        sig.update(keys)
        assert all(sig.maybe_contains(k) for k in keys)

    @given(st.sets(st.integers(min_value=0, max_value=2**40), max_size=64),
           st.integers(min_value=0, max_value=2**40))
    @settings(max_examples=50, deadline=None)
    def test_no_false_negatives_property(self, keys, probe):
        sig = make_sig(bits=512, ways=4)
        sig.update(keys)
        for k in keys:
            assert sig.maybe_contains(k)

    def test_empty_matches_nothing(self):
        sig = make_sig()
        assert not sig.maybe_contains(42)
        assert sig.false_positive_rate() == 0.0

    def test_fill_and_fp_rate_grow(self):
        sig = make_sig(bits=512, ways=4)
        prev = 0.0
        for k in range(100):
            sig.insert(k * 31 + 7)
            rate = sig.false_positive_rate()
            assert rate >= prev
            prev = rate
        assert 0.0 < prev <= 1.0

    def test_overflowed_signature_has_high_fp(self):
        """Flat tasks with huge footprints saturate 2 Kbit filters —
        the Fig. 14 failure mode."""
        sig = make_sig(bits=2048, ways=8)
        sig.update(range(0, 20000, 3))
        assert sig.false_positive_rate() > 0.5

    def test_small_sets_have_tiny_fp(self):
        """Fine-grain Fractal tasks (a few lines) barely touch the filter."""
        sig = make_sig(bits=2048, ways=8)
        sig.update(range(8))
        assert sig.false_positive_rate() < 1e-10

    def test_clear(self):
        sig = make_sig()
        sig.update(range(32))
        sig.clear()
        assert sig.popcount == 0
        assert not sig.maybe_contains(3)

    def test_false_positive_exists_at_saturation(self):
        sig = make_sig(bits=64, ways=2)
        sig.update(range(200))
        # With 64 bits and 200 keys, an unseen key almost surely hits.
        assert sig.maybe_contains(10**9)


class TestBatchedOps:
    """The vectorized paths must agree bit-for-bit with the scalar ones."""

    def test_indices_array_matches_indices(self):
        fam = H3HashFamily(k=8, m_bits=2048, seed=11)
        keys = [0, 1, 2, 255, 256, 4097, (1 << 40) + 3]
        arr = fam.indices_array(keys)
        for row, k in zip(arr, keys):
            assert tuple(row) == fam.indices(k)

    def test_insert_many_matches_serial_inserts(self):
        a = make_sig(bits=512, ways=4, seed=5)
        b = make_sig(bits=512, ways=4, seed=5)
        keys = [k * 13 + 1 for k in range(60)]
        before = a.popcount
        for k in keys:
            a.insert(k)
        added = b.insert_many(keys)
        assert b._bits == a._bits
        assert b.popcount == a.popcount
        assert added == a.popcount - before
        assert b.inserted == a.inserted

    def test_contains_many_matches_serial_probes(self):
        sig = make_sig(bits=512, ways=4, seed=5)
        sig.update(range(0, 120, 3))
        probes = list(range(0, 200, 7))
        got = sig.contains_many(probes)
        assert [bool(x) for x in got] == [sig.maybe_contains(p)
                                          for p in probes]


class TestSignatureBank:
    def test_bank_matches_signature(self):
        from repro.mem import SignatureBank
        fam = H3HashFamily(k=8, m_bits=2048, seed=9)
        bank = SignatureBank(fam, capacity=4)
        sig = BloomSignature(fam)
        row = bank.acquire()
        for k in range(0, 90, 3):
            assert bank.insert(row, k) == sig.insert(k)
        assert bank.popcount(row) == sig.popcount
        assert bank.fill(row) == sig.fill
        assert bank.false_positive_rate(row) == sig.false_positive_rate()
        for p in range(0, 150, 5):
            assert bank.probe(row, p) == sig.maybe_contains(p)

    def test_probe_rows_matches_per_row_probe(self):
        import numpy as np
        from repro.mem import SignatureBank
        fam = H3HashFamily(k=4, m_bits=512, seed=2)
        bank = SignatureBank(fam, capacity=2)
        rows = [bank.acquire() for _ in range(6)]  # forces a growth step
        for i, row in enumerate(rows):
            bank.insert_many(row, list(range(i * 10, i * 10 + 8)))
        for key in range(0, 70, 3):
            got = bank.probe_rows(key, np.array(rows))
            assert [bool(x) for x in got] == [bank.probe(r, key)
                                              for r in rows]

    def test_release_clears_row_for_reuse(self):
        from repro.mem import SignatureBank
        fam = H3HashFamily(k=4, m_bits=512, seed=2)
        bank = SignatureBank(fam, capacity=1)
        row = bank.acquire()
        bank.insert(row, 33)
        assert bank.probe(row, 33)
        bank.release(row)
        row2 = bank.acquire()
        assert row2 == row
        assert not bank.probe(row2, 33)
        assert bank.popcount(row2) == 0

    def test_insert_many_matches_scalar_inserts(self):
        from repro.mem import SignatureBank
        fam = H3HashFamily(k=8, m_bits=2048, seed=4)
        bank = SignatureBank(fam, capacity=2)
        a, b = bank.acquire(), bank.acquire()
        keys = [k * 7 + 2 for k in range(40)]
        for k in keys:
            bank.insert(a, k)
        bank.insert_many(b, keys)
        assert (bank._words[a] == bank._words[b]).all()
