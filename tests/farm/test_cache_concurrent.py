"""ResultCache under concurrent access (the serve contention pattern).

Two kinds of coverage:

- raw cache: many threads racing get/put on the same content address —
  exactly one logical compute, counters reconcile with lookups, and the
  stored entry is intact (atomic write-then-rename);
- through the serve manager: two submitters racing on one digest yield
  one compute + one coalesce, and the cache's hit/miss/stale counters
  reconcile with the number of lookups the manager performed.
"""

import json
import threading

from repro.core.stats import RunStats
from repro.farm import Farm, JobSpec, ResultCache
from repro.serve import JobManager, ServeConfig
from repro.serve.manager import DONE

FAKEAPP = "tests.farm._fakeapp"


def fake_spec(n_tasks=4):
    return JobSpec(app=FAKEAPP, variant="fractal", n_cores=2,
                   input_kwargs={"n_tasks": n_tasks})


def run_stats(spec):
    return Farm(jobs=1).run([spec])[0].stats


class TestRawCacheRaces:
    def test_racing_get_put_one_compute_counters_reconcile(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="t1")
        spec = fake_spec()
        stats = run_stats(spec)
        digest = spec.digest()
        n_threads = 8
        lookups = []
        lock = threading.Lock()
        barrier = threading.Barrier(n_threads)

        def worker():
            barrier.wait()
            hit = cache.get(digest)
            with lock:
                lookups.append(hit)
            if hit is None:
                # miss -> "compute" (already done above) and publish
                cache.put(spec, stats, wall_s=0.1)

        threads = [threading.Thread(target=worker)
                   for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        s = cache.stats()
        assert s["hits"] + s["misses"] == len(lookups) == n_threads
        assert s["misses"] >= 1                # at least the first racer
        assert s["stale"] == 0
        assert s["entries"] == 1               # one digest, one entry
        # the winning writer left an intact, readable entry
        assert cache.get(digest).to_dict() == stats.to_dict()

    def test_concurrent_distinct_digests_all_stored(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="t1")
        specs = [fake_spec(n) for n in (4, 5, 6, 7)]
        stats = {s.digest(): run_stats(s) for s in specs}

        def worker(spec):
            if cache.get(spec.digest()) is None:
                cache.put(spec, stats[spec.digest()], wall_s=0.1)

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in specs for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert cache.entries() == len(specs)
        s = cache.stats()
        assert s["hits"] + s["misses"] == len(threads)
        for spec in specs:
            assert (cache.get(spec.digest()).to_dict()
                    == stats[spec.digest()].to_dict())


class TestManagerCacheRace:
    def make_manager(self, tmp_path):
        return JobManager(ServeConfig(
            workers=1, warmup=False, cache_dir=str(tmp_path / "cache")))

    def fake_doc(self):
        return {"app": FAKEAPP, "variant": "fractal", "n_cores": 2,
                "input": {"n_tasks": 4}}

    def test_two_racing_submitters_one_compute_one_coalesce(self, tmp_path):
        m = self.make_manager(tmp_path)
        outcomes = []
        lock = threading.Lock()
        barrier = threading.Barrier(2)

        def submitter():
            barrier.wait()
            job, outcome = m.submit(self.fake_doc())
            with lock:
                outcomes.append((job, outcome))

        threads = [threading.Thread(target=submitter) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert sorted(o for _, o in outcomes) == ["coalesced", "queued"]
        jobs = {job for job, _ in outcomes}
        assert len(jobs) == 1                  # same record for both
        m.start()
        try:
            (job,) = jobs
            assert m.wait(job.digest, timeout=90).state == DONE
            # one queued job -> exactly one cache lookup (a miss) and one
            # store; the coalesced submission never touched the cache
            s = m.cache.stats()
            assert s == {"hits": 0, "misses": 1, "stale": 0, "puts": 1,
                         "entries": 1}
        finally:
            m.drain(timeout=30)

    def test_counters_reconcile_across_miss_run_hit(self, tmp_path):
        m = self.make_manager(tmp_path)
        m.start()
        try:
            job, outcome = m.submit(self.fake_doc())
            assert outcome == "queued"         # lookup #1: miss
            m.wait(job.digest, timeout=90)
            _, outcome = m.submit(self.fake_doc())
            assert outcome == "warm"           # job table, no cache lookup
        finally:
            m.drain(timeout=30)
        m2 = self.make_manager(tmp_path)       # fresh table, same cache
        _, outcome = m2.submit(self.fake_doc())
        assert outcome == "warm"               # lookup #2: hit
        s = m2.cache.stats()
        # m2 performed exactly one lookup; hits + misses must equal it
        assert s["hits"] + s["misses"] == 1
        assert s["hits"] == 1
        assert s["misses"] == 0 and s["stale"] == 0

    def test_warm_entry_served_intact_under_parallel_readers(self, tmp_path):
        m = self.make_manager(tmp_path)
        m.start()
        try:
            job, _ = m.submit(self.fake_doc())
            m.wait(job.digest, timeout=90)
            want = json.dumps(job.stats.to_dict(), sort_keys=True)
        finally:
            m.drain(timeout=30)
        readers = [JobManager(ServeConfig(
            workers=1, warmup=False, cache_dir=str(tmp_path / "cache")))
            for _ in range(4)]
        got = []
        lock = threading.Lock()

        def reader(mgr):
            j, outcome = mgr.submit(self.fake_doc())
            with lock:
                got.append((outcome,
                            json.dumps(j.stats.to_dict(), sort_keys=True)))

        threads = [threading.Thread(target=reader, args=(r,))
                   for r in readers]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(o == "warm" for o, _ in got)
        assert all(s == want for _, s in got)
