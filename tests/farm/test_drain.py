"""Farm graceful shutdown (request_stop / SIGTERM drain) and worker-crash
crash bundles.

Drain semantics under test: a stop request mid-sweep lets in-flight jobs
finish — and persist their cache entries — while unstarted jobs fail
fast with a ``farm stopped`` error, and the process pool is shut down
waited-for (never orphaned), persistent or not. The stop triggers are
exercised both directly (:meth:`Farm.request_stop` from a bus
subscriber, deterministic) and through a real mid-run SIGTERM
(:func:`repro.farm.install_sigterm_drain`).
"""

import json
import os
import pathlib
import signal

import pytest

from repro.farm import Farm, JobSpec, ResultCache, install_sigterm_drain
from repro.faults import validate_crash_bundle
from repro.faults.resilience import ResiliencePolicy

FAKEAPP = "tests.farm._fakeapp"

FAST_RETRY = ResiliencePolicy(backoff_base=1, backoff_factor=1.0,
                              backoff_cap=1)


def specs_for(n, **extra):
    return [JobSpec(app=FAKEAPP, variant="fractal", n_cores=2,
                    input_kwargs={"n_tasks": 4 + i, **extra},
                    label=f"fake-{i}") for i in range(n)]


class StopAfterFirstDone:
    """Bus subscriber that fires a stop action on the first job_done."""

    def __init__(self, action):
        self.action = action
        self.fired = False

    def __call__(self, event):
        if event.KIND == "job_done" and not self.fired:
            self.fired = True
            self.action()


def run_drained(farm, n_jobs, action):
    farm.bus.subscribe(StopAfterFirstDone(action))
    return farm.run(specs_for(n_jobs))


class TestRequestStop:
    def test_drain_finishes_inflight_and_fails_unstarted(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        farm = Farm(jobs=2, cache=cache, persistent=True,
                    backlog_factor=1, warmup=False)
        results = run_drained(farm, 12, farm.request_stop)
        assert len(results) == 12           # every job gets a result row
        done = [r for r in results if r.error is None]
        drained = [r for r in results
                   if r.error is not None and "farm stopped" in r.error]
        assert done and drained             # both populations exist
        assert len(done) + len(drained) == 12
        # every completed job persisted its cache entry
        for r in done:
            assert cache.get(r.digest) is not None
        # the pool was shut down, not orphaned — persistent or not
        assert farm._executor is None
        assert farm.n_drained >= 1
        assert farm.n_drain_failed == len(drained)

    def test_drained_farm_runs_again_cleanly(self, tmp_path):
        farm = Farm(jobs=2, persistent=True, backlog_factor=1,
                    warmup=False)
        run_drained(farm, 8, farm.request_stop)
        results = farm.run(specs_for(3))    # fresh run: stop flag cleared
        assert all(r.error is None for r in results)
        farm.close()

    def test_inline_farm_drains_too(self):
        farm = Farm(jobs=1)
        results = run_drained(farm, 6, farm.request_stop)
        assert len(results) == 6
        assert results[0].error is None     # the one that triggered stop
        assert any(r.error is not None and "farm stopped" in r.error
                   for r in results)


class TestSigtermDrain:
    def test_mid_run_sigterm_drains_instead_of_orphaning(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        farm = Farm(jobs=2, cache=cache, persistent=True,
                    backlog_factor=1, warmup=False)
        previous = signal.getsignal(signal.SIGTERM)
        install_sigterm_drain(farm)
        try:
            results = run_drained(
                farm, 12,
                lambda: os.kill(os.getpid(), signal.SIGTERM))
            assert len(results) == 12
            done = [r for r in results if r.error is None]
            drained = [r for r in results if r.error is not None]
            assert done and drained
            assert all("farm stopped" in r.error for r in drained)
            for r in done:
                assert cache.get(r.digest) is not None
            assert farm._executor is None   # pool shut down waited-for
        finally:
            signal.signal(signal.SIGTERM, previous)
            signal.signal(signal.SIGINT, signal.default_int_handler)


class TestWorkerCrashBundles:
    def test_worker_crash_writes_valid_bundle(self, tmp_path):
        dump_dir = tmp_path / "crashes"
        spec = JobSpec(app=FAKEAPP, variant="fractal", n_cores=2,
                       input_kwargs={"n_tasks": 4, "crash_times": 99,
                                     "scratch": str(tmp_path / "s")},
                       label="crasher")
        farm = Farm(jobs=2, use_pool=True, max_attempts=2,
                    retry_policy=FAST_RETRY, warmup=False,
                    crash_dump_dir=str(dump_dir))
        results = farm.run([spec])
        assert results[0].error is not None
        bundles = sorted(dump_dir.glob("crash-farm-*.json"))
        assert len(bundles) == 2            # one per attempt
        for i, path in enumerate(bundles, start=1):
            doc = json.loads(path.read_text())
            validate_crash_bundle(doc)
            assert doc["reason"] == "farm_worker_crash"
            assert doc["farm"]["digest"] == spec.digest()
            assert doc["farm"]["attempt"] == i
            assert f"a{i}" in path.name

    def test_no_dir_means_no_bundle(self, tmp_path):
        spec = JobSpec(app=FAKEAPP, variant="fractal", n_cores=2,
                       input_kwargs={"n_tasks": 4, "crash_times": 99,
                                     "scratch": str(tmp_path / "s")},
                       label="crasher")
        farm = Farm(jobs=2, use_pool=True, max_attempts=1,
                    retry_policy=FAST_RETRY, warmup=False)
        results = farm.run([spec])
        assert results[0].error is not None  # crash still surfaces
