"""The dist worker agent: acquire leases, run fragments, deliver.

One :class:`DistAgent` is a long-lived worker process that:

1. registers with the coordinator (getting its lease TTL and heartbeat
   interval),
2. runs a daemon heartbeat thread renewing every lease it holds,
3. loops: acquire fragments → validate each leased job document through
   the *same* :func:`~repro.farm.validate.validate_jobspec` the
   coordinator used (so both sides agree on every content address) →
   execute them on a local :class:`~repro.farm.Farm` → deliver results.

Crash-safety is the coordinator's job, which makes the agent simple: it
never persists state, and being SIGKILL'd at any instant is fully
recovered by lease expiry + re-execution + duplicate suppression. The
agent only handles the *graceful* signals — SIGTERM/SIGINT finish the
fragment in hand, deliver it, and exit.

The agent does, however, survive the *coordinator's* crash window: a
connection failure or 5xx anywhere in the register/heartbeat/acquire/
deliver loops is retried on the seeded faults backoff curve (never
raised out of the run loop) until ``reconnect_timeout_s`` of continuous
silence. After a reconnect mid-delivery it reconciles the lease first —
asks the coordinator whether the fragment is still on its epoch and
unrecorded — and either delivers (still live, or provably identical) or
discards (superseded), so a restarted coordinator is never spammed with
work it already has.

Chaos: if ``REPRO_DIST_CHAOS`` is set (JSON, see
:class:`repro.faults.chaos.TransportChaos`) the agent installs the
scripted transport faults on its client — dropped heartbeats and
partition windows then exercise the coordinator's expiry/requeue paths
with this agent as the (unwitting) victim.
"""

from __future__ import annotations

import os
import signal
import socket
import sys
import threading
import time
import zlib
from dataclasses import dataclass
from typing import List, Optional

from ...faults.chaos import ChaosDrop, TransportChaos
from ...serve.client import ServeAPIError, retry_delay_s
from ..farm import Farm
from ..job import JobSpec
from ..validate import validate_jobspec
from . import wire
from .client import AgentGone, DistClient


@dataclass
class AgentConfig:
    """Everything one agent process needs."""

    coordinator_url: str
    agent_id: str = ""                  #: "" = coordinator assigns one
    jobs: int = 1                       #: local Farm parallelism
    max_fragments: int = 1              #: leases to hold at once
    poll_interval_s: float = 0.25       #: acquire poll period when idle
    exit_when_idle: bool = False        #: exit 0 once no work is pending
    cache_dir: Optional[str] = None     #: local Farm read/write cache
    crash_dump_dir: Optional[str] = None
    max_attempts: int = 2               #: local Farm retry budget
    use_pool: Optional[bool] = None     #: None = pool iff jobs > 1
    #: delivery retries on transient transport failure
    deliver_attempts: int = 8
    #: wire secret sent as X-Repro-Token ("" = REPRO_DIST_TOKEN env)
    token: str = ""
    #: continuous coordinator silence before the agent gives up (exit 2)
    reconnect_timeout_s: float = 120.0


class DistAgent:
    """One worker agent (see module docs)."""

    def __init__(self, config: AgentConfig, *,
                 client: Optional[DistClient] = None,
                 chaos: Optional[TransportChaos] = None,
                 log=None) -> None:
        self.config = config
        self.chaos = chaos if chaos is not None \
            else TransportChaos.from_env()
        token = config.token or None    # None = env fallback
        self.client = client or DistClient(
            config.coordinator_url, token=token,
            transport_fault=self.chaos)
        if client is not None and self.chaos is not None \
                and client.transport_fault is None:
            client.transport_fault = self.chaos
        # the heartbeat thread gets its own connection — an HTTP client
        # is one socket, and heartbeats must never interleave with an
        # in-flight acquire/deliver on it (they share the chaos script,
        # so drop ordinals still count per op class, not per socket)
        self._hb_client = DistClient(config.coordinator_url, token=token,
                                     transport_fault=self.chaos)
        self._log = log or (lambda msg: print(
            f"[agent{':' + self.agent_id if self.agent_id else ''}] "
            f"{msg}", file=sys.stderr, flush=True))
        self.agent_id = config.agent_id
        self.heartbeat_interval_s = 1.0
        self._stop = threading.Event()
        self._reregister = threading.Event()
        self._held_lock = threading.Lock()
        self._held: List[str] = []
        self._hb_thread: Optional[threading.Thread] = None
        self.n_fragments_run = 0
        self.n_jobs_run = 0
        self.n_heartbeats_dropped = 0
        self.n_reconnects = 0
        self.n_coordinator_errors = 0
        self.n_leases_discarded = 0
        self.n_deliveries_reconciled = 0
        # per-agent backoff jitter seed, stable across reconnects
        self._retry_seed = zlib.crc32(
            (config.agent_id or "agent").encode("utf-8"))
        self.farm = Farm(jobs=config.jobs, use_pool=config.use_pool,
                         max_attempts=config.max_attempts,
                         persistent=True, warmup=config.jobs > 1,
                         crash_dump_dir=config.crash_dump_dir,
                         cache=self._make_cache())

    def _make_cache(self):
        if not self.config.cache_dir:
            return None
        from ..cache import ResultCache
        return ResultCache(self.config.cache_dir)

    # -- lifecycle -----------------------------------------------------
    def request_stop(self) -> None:
        """Finish the fragment in hand, deliver it, then exit."""
        self._stop.set()

    def _install_signals(self) -> None:
        if threading.current_thread() is not threading.main_thread():
            return
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                signal.signal(sig, lambda *_: self.request_stop())
            except ValueError:          # pragma: no cover (non-main)
                pass

    def _backoff_sleep(self, attempt: int) -> None:
        """Sleep the seeded faults backoff curve (interruptible)."""
        self._stop.wait(retry_delay_s(attempt, 0.0, self._retry_seed))

    def _register(self) -> bool:
        """(Re-)register, retrying transport faults and coordinator 5xx
        on the backoff curve; False = gave up (silence past
        ``reconnect_timeout_s`` or stop requested)."""
        deadline = time.monotonic() + self.config.reconnect_timeout_s
        attempt = 0
        while not self._stop.is_set():
            try:
                doc = self.client.register(
                    agent=self.config.agent_id,
                    capacity=self.config.jobs,
                    pid=os.getpid(), host=socket.gethostname())
            except (ChaosDrop, ConnectionError, OSError):
                pass
            except ServeAPIError as exc:
                if exc.status < 500:
                    raise       # 401 (bad token) / 4xx: not retryable
                self.n_coordinator_errors += 1
            else:
                self.agent_id = doc["agent"]
                self.heartbeat_interval_s = float(
                    doc["heartbeat_interval_s"])
                self._reregister.clear()
                self._log(f"registered as {self.agent_id!r} "
                          f"(heartbeat {self.heartbeat_interval_s}s)")
                return True
            attempt += 1
            if time.monotonic() > deadline:
                self._log("cannot register: coordinator silent for "
                          f"{self.config.reconnect_timeout_s}s; "
                          "giving up")
                return False
            self._backoff_sleep(attempt)
        return False

    # -- heartbeats ----------------------------------------------------
    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval_s):
            with self._held_lock:
                held = list(self._held)
            try:
                doc = self._hb_client.heartbeat(self.agent_id, held)
            except ChaosDrop:
                self.n_heartbeats_dropped += 1
                continue
            except AgentGone:
                self._reregister.set()
                continue
            except ServeAPIError:
                # a restarting coordinator answers 5xx for a moment;
                # heartbeats are best-effort, so count and carry on
                self.n_coordinator_errors += 1
                continue
            except (ConnectionError, OSError):
                continue
            for lease_id in doc.get("expired", ()):
                # keep executing: our delivery may still win the race,
                # and if not, duplicate suppression absorbs it
                self._log(f"lease {lease_id} expired under us "
                          f"(will deliver anyway)")

    # -- work ----------------------------------------------------------
    def _run_lease(self, lease_raw: dict) -> None:
        lease = wire.check_lease(lease_raw)
        with self._held_lock:
            self._held.append(lease["lease"])
        try:
            indices: List[int] = []
            specs: List[JobSpec] = []
            for job in lease["jobs"]:
                indices.append(job["index"])
                specs.append(validate_jobspec(
                    job["spec"], source=f"lease {lease['lease']}"))
            self._log(f"running fragment {lease['fragment']} "
                      f"epoch {lease['epoch']} ({len(specs)} jobs)")
            results = self.farm.run(specs)
            self.n_fragments_run += 1
            self.n_jobs_run += len(results)
            payload = {
                "agent": self.agent_id,
                "sweep": lease["sweep"],
                "fragment": lease["fragment"],
                "epoch": lease["epoch"],
                "results": [
                    {"index": idx,
                     "digest": r.digest,
                     "stats": r.stats.to_dict() if r.stats else None,
                     "error": r.error if r.stats is None else None,
                     "wall_ms": int(r.wall_s * 1000),
                     "attempts": r.attempts}
                    for idx, r in zip(indices, results)],
            }
            self._deliver(lease["lease"], payload)
        finally:
            with self._held_lock:
                if lease["lease"] in self._held:
                    self._held.remove(lease["lease"])

    def _fragment_superseded(self, payload: dict) -> bool:
        """Ask the coordinator whether this delivery is still wanted
        (reconcile-after-reconnect). Unreachable or erroring coordinator
        counts as *not* superseded — keep trying to deliver; only a
        positive answer (recorded, or a newer epoch) discards work."""
        try:
            doc = self.client.fragment_status(payload["sweep"],
                                              payload["fragment"])
        except ServeAPIError as exc:
            # 404: the sweep is gone (journal-less restart) — nothing
            # to deliver to
            return exc.status == 404
        except (ChaosDrop, ConnectionError, OSError):
            return False
        return (bool(doc.get("recorded"))
                or doc.get("state") == "done"
                or int(doc.get("epoch", 0)) > payload["epoch"])

    def _deliver(self, lease_id: str, payload: dict) -> bool:
        """Deliver one fragment's results; True on accepted delivery.

        Transport faults and coordinator 5xx retry on the backoff curve.
        After a connection failure (the coordinator-restart window) the
        next attempt is preceded by a reconcile probe: if the fragment
        was recorded or re-issued in the meantime, the delivery is
        discarded instead of retried.
        """
        last: Optional[Exception] = None
        reconnected = False
        for attempt in range(1, self.config.deliver_attempts + 1):
            try:
                doc = self.client.deliver(lease_id, payload)
            except ChaosDrop as exc:
                last = exc
            except (ConnectionError, OSError) as exc:
                last = exc
                reconnected = True
            except ServeAPIError as exc:
                if exc.status == 404:
                    # unknown sweep: a coordinator restarted without its
                    # journal — the sweep will be resubmitted, re-leased
                    # and re-run; this delivery has no home
                    self.n_leases_discarded += 1
                    self._log(f"discarding fragment "
                              f"{payload['fragment']}: {exc}")
                    return False
                if exc.status < 500:
                    self._log(f"delivery of fragment "
                              f"{payload['fragment']} rejected: {exc}")
                    return False
                last = exc
                self.n_coordinator_errors += 1
            else:
                if reconnected:
                    self.n_reconnects += 1
                    self.n_deliveries_reconciled += 1
                self._log(f"delivered fragment {payload['fragment']}: "
                          f"{doc['accepted']} accepted, "
                          f"{doc['duplicates']} duplicate")
                return True
            if attempt >= self.config.deliver_attempts \
                    or self._stop.is_set():
                break
            if reconnected and self._fragment_superseded(payload):
                self.n_leases_discarded += 1
                self._log(f"fragment {payload['fragment']} superseded "
                          f"while reconnecting; discarding delivery")
                return False
            self._backoff_sleep(attempt)
        self._log(f"giving up delivering fragment "
                  f"{payload['fragment']}: {last!r} (the lease will "
                  f"expire and the fragment re-run elsewhere)")
        return False

    # -- main loop -----------------------------------------------------
    def run(self) -> int:
        """Register and work until stopped; returns an exit code.

        Coordinator trouble — connection refused, 5xx, 429 — never
        raises out of this loop: the agent backs off and reconnects
        until ``reconnect_timeout_s`` of continuous silence (exit 2).
        A 401 (bad token) exits 2 immediately: retrying cannot fix it.
        """
        self._install_signals()
        try:
            self.client.wait_ready()
        except ServeAPIError as exc:
            if exc.status == 401:
                self._log(f"coordinator rejected our token: {exc} "
                          f"(set {wire.TOKEN_ENV})")
                return 2
            raise
        except (ConnectionError, OSError) as exc:
            self._log(f"coordinator unreachable: {exc!r}")
            return 2
        if not self._register():
            return 2
        self._hb_thread = threading.Thread(
            target=self._heartbeat_loop, name="agent-heartbeat",
            daemon=True)
        self._hb_thread.start()
        down_since: Optional[float] = None
        trouble = 0
        try:
            while not self._stop.is_set():
                if self._reregister.is_set():
                    if not self._register():
                        return 2
                try:
                    doc = self.client.acquire(
                        self.agent_id,
                        max_fragments=self.config.max_fragments)
                except ChaosDrop:
                    time.sleep(self.config.poll_interval_s)
                    continue
                except AgentGone:
                    self._reregister.set()
                    continue
                except ServeAPIError as exc:
                    if exc.status == 401:
                        self._log(f"coordinator rejected our token: "
                                  f"{exc} (set {wire.TOKEN_ENV})")
                        return 2
                    if exc.status < 500 and exc.status != 429:
                        raise       # a real protocol bug; surface it
                    self.n_coordinator_errors += 1
                    trouble += 1
                    self._backoff_sleep(trouble)
                    continue
                except (ConnectionError, OSError):
                    now = time.monotonic()
                    if down_since is None:
                        down_since = now
                        self._log("coordinator unreachable; "
                                  "reconnecting with backoff")
                    elif (now - down_since
                          > self.config.reconnect_timeout_s):
                        self._log("coordinator silent for "
                                  f"{self.config.reconnect_timeout_s}s;"
                                  " giving up")
                        return 2
                    trouble += 1
                    self._backoff_sleep(trouble)
                    continue
                if down_since is not None:
                    self.n_reconnects += 1
                    self._log("reconnected to coordinator")
                down_since = None
                trouble = 0
                for lease_raw in doc.get("leases", ()):
                    if self._stop.is_set():
                        break
                    self._run_lease(lease_raw)
                if not doc.get("leases"):
                    if (doc.get("idle") or doc.get("draining")) \
                            and self.config.exit_when_idle:
                        self._log("idle; exiting")
                        return 0
                    self._stop.wait(self.config.poll_interval_s)
            self._log("stop requested; drained")
            return 0
        finally:
            self._stop.set()
            if self._hb_thread is not None:
                self._hb_thread.join(timeout=2.0)
            self.farm.close()
            self.client.close()
            self._hb_client.close()

    def summary(self) -> dict:
        return {"agent": self.agent_id,
                "fragments_run": self.n_fragments_run,
                "jobs_run": self.n_jobs_run,
                "heartbeats_dropped": self.n_heartbeats_dropped,
                "reconnects": self.n_reconnects,
                "coordinator_errors": self.n_coordinator_errors,
                "leases_discarded": self.n_leases_discarded,
                "deliveries_reconciled": self.n_deliveries_reconciled,
                "chaos": self.chaos.summary() if self.chaos else None}


def agent_forever(config: AgentConfig) -> int:
    """CLI entry: run one agent until idle/SIGTERM."""
    return DistAgent(config).run()
