"""Tests for the ASCII chart renderer."""

import pytest

from repro.bench.plots import ascii_chart, speedup_chart


class TestAsciiChart:
    def test_empty(self):
        assert ascii_chart({}) == "(no data)"

    def test_single_series_shape(self):
        out = ascii_chart({"flat": [(1, 1.0), (4, 2.0), (16, 4.0)]},
                          width=40, height=10)
        lines = out.splitlines()
        assert len(lines) == 10 + 3
        assert "f = flat" in lines[-1]
        assert "f" in out

    def test_two_series_distinct_glyphs(self):
        out = ascii_chart({"flat": [(1, 1.0)], "fractal": [(1, 2.0)]})
        assert "f = flat" in out
        # collision resolved with a fallback glyph
        assert "= fractal" in out

    def test_log_x(self):
        out = ascii_chart({"s": [(1, 1.0), (256, 100.0)]}, logx=True)
        assert "256" in out

    def test_overlap_renders_star(self):
        out = ascii_chart({"a": [(1, 1.0)], "b": [(1, 1.0)]},
                          width=10, height=5)
        assert "*" in out


class TestSpeedupChart:
    def test_from_runs(self):
        class _Run:
            def __init__(self, variant, n_cores, makespan):
                self.variant = variant
                self.n_cores = n_cores
                self.makespan = makespan

        runs = [_Run("flat", 1, 1000), _Run("flat", 4, 500),
                _Run("fractal", 1, 1200), _Run("fractal", 4, 250)]
        out = speedup_chart(runs, baseline_variant="flat")
        assert "speedup vs cores" in out
        assert "flat" in out and "fractal" in out
