#!/usr/bin/env python
"""Regenerate every table and figure (full sweeps) outside pytest.

Usage:
    python benchmarks/run_all.py              # default core sweep
    REPRO_BENCH_CORES=1,4,16,64 python benchmarks/run_all.py

Results land in benchmarks/results/. Expect tens of minutes for the full
sweep — the quick version is ``pytest benchmarks/ --benchmark-only``.
"""

import importlib
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

BENCHES = [
    "bench_table2_config",
    "bench_table3_inputs",
    "bench_table4_task_lengths",
    "bench_fig01_timeline",
    "bench_fig03_maxflow",
    "bench_fig04_silo",
    "bench_fig06_mis",
    "bench_fig14a_nested_speedups",
    "bench_fig14b_breakdowns",
    "bench_fig15a_overserialization",
    "bench_fig15b_breakdowns",
    "bench_fig16_zooming",
    "bench_fig17_stamp",
    "bench_swarm_suite",
    "bench_ablation_conflict",
    "bench_ablation_hints",
    "bench_ablation_queues",
    "bench_ablation_gvt",
    "bench_ablation_flatten",
]


def main():
    import runpy

    t0 = time.time()
    for name in BENCHES:
        print(f"\n########## {name} ##########", flush=True)
        start = time.time()
        # every bench module runs its full sweep under __main__ semantics
        runpy.run_module(name, run_name="__main__")
        print(f"[{name} done in {time.time() - start:.0f}s]", flush=True)
    print(f"\nall benches done in {time.time() - t0:.0f}s")


if __name__ == "__main__":
    main()
