"""Spatial-hint task mapping with load balancing (paper Sec. 3.1, Table 2).

A *spatial hint* is an integer that abstractly names the data a task will
access. The scheduler maps equal hints to the same tile, so tasks likely to
touch the same data run near it (cheap accesses through the cache model)
and behind each other (fewer concurrent conflicts). Load balancing diverts
tasks away from overloaded home tiles, as in the paper's hints + load
balancing scheme [35].

Without hints (or with hints disabled), tasks round-robin across tiles.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..telemetry.events import DivertEvent


def _mix(x: int) -> int:
    """SplitMix64 finalizer — a cheap, well-distributed integer hash."""
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
    x = (x ^ (x >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


class HintScheduler:
    """Chooses the destination tile for each enqueue."""

    def __init__(self, n_tiles: int, use_hints: bool = True,
                 load_balance_threshold: int = 8, seed: int = 0):
        self.n_tiles = n_tiles
        self.use_hints = use_hints
        self.threshold = load_balance_threshold
        self._seed = _mix(seed + 0x9E3779B97F4A7C15)
        self._rr = 0
        #: telemetry (installed by the simulator): bus emits a DivertEvent
        #: whenever load balancing overrides a hint's home tile
        self.bus = None
        self.clock = None

    @staticmethod
    def _least_loaded(units: Sequence) -> tuple:
        """``(tile, load)`` of the least-loaded tile, one pass, first
        minimal index on ties — same answer ``min(range, key=...)`` gave,
        without a lambda call and a re-read per tile."""
        best_tile = 0
        best_len = units[0].pending_count
        for t in range(1, len(units)):
            n = units[t].pending_count
            if n < best_len:
                best_tile, best_len = t, n
        return best_tile, best_len

    def tile_for(self, hint: Optional[int], units: Sequence,
                 hard_cap: bool = False) -> int:
        """Destination tile for a task with this hint.

        ``units`` are the per-tile :class:`repro.arch.task_unit.TaskUnit`\\ s,
        consulted for queue occupancy. With ``hard_cap`` (set by the
        simulator's resilience machinery), a physically full home queue
        always diverts to the least-loaded tile, trading locality for not
        tripping the overflow degradation path.
        """
        if self.n_tiles == 1:
            return 0
        if hint is None or not self.use_hints:
            tile = self._rr
            self._rr = (self._rr + 1) % self.n_tiles
            if hard_cap and units[tile].pending_count >= units[tile].task_queue_cap:
                tile, _ = self._least_loaded(units)
            return tile
        home = _mix(hint ^ self._seed) % self.n_tiles
        home_len = units[home].pending_count
        # Divert only when the home queue is clearly overloaded.
        if home_len < self.threshold and not (
                hard_cap and home_len >= units[home].task_queue_cap):
            return home
        min_tile, min_len = self._least_loaded(units)
        if home_len > min_len + self.threshold or (
                hard_cap and home_len >= units[home].task_queue_cap
                and min_len < home_len):
            if self.bus:
                self.bus.emit(DivertEvent(self.clock(), hint, home, min_tile))
            return min_tile
        return home

    def hint_home(self, hint: int) -> int:
        """The unbalanced home tile of a hint (exposed for tests)."""
        return _mix(hint ^ self._seed) % self.n_tiles
