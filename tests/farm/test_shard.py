"""Deterministic sharding tests (repro.farm.shard)."""

import pytest

from repro.farm import (deterministic_shards, parse_shard, select_shard,
                        shard_index)


class TestShardIndex:
    def test_stable(self):
        assert shard_index("abc", 4) == shard_index("abc", 4)

    def test_in_range(self):
        for key in ("a", "b", "c", "x" * 100):
            for n in (1, 2, 3, 7):
                assert 0 <= shard_index(key, n) < n

    def test_spread(self):
        # 64 keys over 4 shards: every shard gets something
        keys = [f"key-{i}" for i in range(64)]
        hit = {shard_index(k, 4) for k in keys}
        assert hit == {0, 1, 2, 3}


class TestShards:
    def test_partition(self):
        items = [f"job-{i}" for i in range(20)]
        shards = deterministic_shards(items, 3)
        assert len(shards) == 3
        flat = [x for shard in shards for x in shard]
        assert sorted(flat) == sorted(items)
        # each shard preserves input order
        for shard in shards:
            assert shard == [x for x in items if x in shard]

    def test_stable_under_subsetting(self):
        # an item's shard does not depend on what else is in the list
        items = [f"job-{i}" for i in range(20)]
        full = deterministic_shards(items, 4)
        subset = deterministic_shards(items[5:], 4)
        for k in range(4):
            assert [x for x in full[k] if x in items[5:]] == subset[k]

    def test_select_matches_partition(self):
        items = [f"job-{i}" for i in range(20)]
        shards = deterministic_shards(items, 4)
        for k in range(4):
            assert select_shard(items, k + 1, 4) == shards[k]


class TestParseShard:
    def test_ok(self):
        assert parse_shard("1/3") == (1, 3)
        assert parse_shard("3/3") == (3, 3)

    @pytest.mark.parametrize("bad", ["0/3", "4/3", "1", "a/b", "1/0", ""])
    def test_rejects(self, bad):
        with pytest.raises(Exception):
            parse_shard(bad)
