"""The reservation-based ``speculative_for`` round engine (PBBS, Snippet 1).

Executes iterations ``0..n-1`` of a loop whose bodies may conflict, in
rounds of speculative batches. Each round:

1. **reserve** — every active iteration stakes priority claims
   (:class:`~repro.specfor.reservation.ReservationTable.write_min`) on the
   locations it needs, or declares itself done without a commit (the
   *filter* outcome);
2. **commit** — an iteration that holds every location it reserved
   performs its effects and is done; iterations that lost a reservation
   are **carried** (keep/pack) into the next round, ahead of freshly
   injected indices.

Because ``write_min`` keeps the minimum priority, the lowest-index active
iteration always wins all its locations, so (a) every round with active
work finishes at least one iteration under a well-formed step, and (b) the
final result equals running the loop *sequentially* in index order — the
deterministic-reservations guarantee the property tests pin down.

A :class:`SpecForPolicy` bounds livelock: consecutive zero-progress rounds
walk a ladder (full round size → halved → serialized single-iteration
rounds, mirroring the simulator's NORMAL→THROTTLED→SAFE escalation from
:mod:`repro.faults`) and ``max_tries`` zero-progress rounds raise
:class:`SpecForLivelock`. The ladder only ever fires for steps that break
the reserve/commit contract; it is a safety net, like PBBS ``maxTries``.

The **step protocol** (duck-typed):

- ``reserve(ctx, i) -> bool`` — stake reservations; return False to
  declare the iteration done with no commit. The return value must depend
  only on state committed by *earlier* phases, never on the reservation
  cells' mid-round contents.
- ``commit(ctx, i) -> bool`` — check holdings, apply effects; return
  False to carry the iteration into the next round.
- ``release(ctx, i)`` (optional) — called in the commit phase for
  iterations filtered this round, to drop stale reservation holds.

This module is the *standalone* scheduler (an eager Python loop — the
differential oracle and property-test surface). The same protocol runs as
ordered tasks inside a fractal domain via
:class:`~repro.specfor.adapter.DomainSpecFor`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..errors import AppError, ConfigError

#: livelock-ladder rungs
STAGE_FULL, STAGE_HALVED, STAGE_SERIAL = 0, 1, 2


class SpecForLivelock(AppError):
    """``max_tries`` consecutive rounds made no progress."""


@dataclass(frozen=True)
class SpecForPolicy:
    """Round-batching and livelock-ladder knobs of one engine."""

    #: round size = n // granularity + 1 (PBBS maxRoundSize)
    granularity: int = 8
    #: zero-progress rounds before the round size halves
    throttle_after: int = 4
    #: zero-progress rounds before rounds serialize to one iteration
    serialize_after: int = 8
    #: zero-progress rounds before :class:`SpecForLivelock` (PBBS maxTries)
    max_tries: int = 64

    def __post_init__(self) -> None:
        if self.granularity < 1:
            raise ConfigError("granularity must be >= 1")
        if not (1 <= self.throttle_after <= self.serialize_after
                <= self.max_tries):
            raise ConfigError(
                "ladder must be ordered: 1 <= throttle_after <= "
                "serialize_after <= max_tries")

    @classmethod
    def from_resilience(cls, policy, *, granularity: int = 8
                        ) -> "SpecForPolicy":
        """Derive the ladder from a :class:`repro.faults.ResiliencePolicy`.

        The same escalation philosophy, re-keyed to rounds: the abort-rate
        window that trips dispatch throttling becomes the zero-progress
        streak that halves rounds; twice the window serializes them; the
        retry budget scales the fatal ``max_tries`` bound.
        """
        window = max(policy.livelock_window, 2)
        return cls(granularity=granularity,
                   throttle_after=max(window // 2, 1),
                   serialize_after=window,
                   max_tries=max(policy.max_attempts, 1) * window)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def max_round_size(self, n: int) -> int:
        return n // self.granularity + 1

    def stage_for(self, streak: int) -> int:
        """Ladder rung after ``streak`` consecutive zero-progress rounds."""
        if streak >= self.serialize_after:
            return STAGE_SERIAL
        if streak >= self.throttle_after:
            return STAGE_HALVED
        return STAGE_FULL

    def size_for(self, stage: int, n: int) -> int:
        base = self.max_round_size(n)
        if stage >= STAGE_SERIAL:
            return 1
        if stage == STAGE_HALVED:
            return max(base // 2, 1)
        return base


@dataclass
class RoundRecord:
    """Outcome of one round (in-memory log; the telemetry event carries
    the same counts)."""

    round: int
    batch: tuple          # active iteration indices, carried-first
    fresh: int            # newly injected this round
    committed: int
    filtered: int         # done via reserve-step filter, no commit
    carried: tuple        # losers packed into the next round
    done: int             # total iterations finished after this round
    stage: int

    @property
    def size(self) -> int:
        return len(self.batch)


@dataclass
class SpecForOutcome:
    """Result of one standalone :func:`speculative_for` run."""

    n: int
    done: int
    commits: int
    filtered: int
    reserve_failures: int  # carried iteration-rounds (lost reservations)
    rounds: List[RoundRecord] = field(default_factory=list)

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)


def speculative_for(step, n: int, *, policy: Optional[SpecForPolicy] = None,
                    ctx=None,
                    observer: Optional[Callable[[RoundRecord], None]] = None
                    ) -> SpecForOutcome:
    """Run iterations ``0..n-1`` of ``step`` in speculative rounds.

    ``ctx`` is passed through to the step (None for pure-Python steps;
    a serial/simulator context when the step's state lives in repro.mem).
    ``observer`` sees every :class:`RoundRecord` as it completes.
    """
    pol = policy or SpecForPolicy()
    out = SpecForOutcome(n=n, done=0, commits=0, filtered=0,
                         reserve_failures=0)
    if n <= 0:
        return out
    carried: List[int] = []
    next_fresh = 0
    streak = 0
    r = 0
    while out.done < n:
        stage = pol.stage_for(streak)
        size = pol.size_for(stage, n)
        # a shrunken rung defers excess carried iterations too — the
        # serialize rung really does run one iteration at a time
        active, deferred = carried[:size], carried[size:]
        take = max(0, min(size - len(active), n - next_fresh))
        batch = tuple(active) + tuple(range(next_fresh, next_fresh + take))
        next_fresh += take
        # reserve phase: whole batch stakes claims before any commit runs
        keep = [step.reserve(ctx, i) for i in batch]
        committed = filtered = 0
        losers: List[int] = []
        release = getattr(step, "release", None)
        for k, i in enumerate(batch):
            if keep[k]:
                if step.commit(ctx, i):
                    committed += 1
                else:
                    losers.append(i)
            else:
                filtered += 1
                if release is not None:
                    release(ctx, i)
        done_delta = len(batch) - len(losers)
        out.done += done_delta
        out.commits += committed
        out.filtered += filtered
        out.reserve_failures += len(losers)
        record = RoundRecord(round=r, batch=batch, fresh=take,
                             committed=committed, filtered=filtered,
                             carried=tuple(losers) + tuple(deferred),
                             done=out.done, stage=stage)
        out.rounds.append(record)
        if observer is not None:
            observer(record)
        streak = 0 if done_delta else streak + 1
        if streak >= pol.max_tries:
            raise SpecForLivelock(
                f"speculative_for made no progress for {streak} rounds "
                f"({out.done}/{n} done; round size {len(batch)}); the "
                f"step violates the reserve/commit contract")
        carried = losers + deferred
        r += 1
    return out


def sequential_for(step, n: int, *, ctx=None) -> int:
    """The sequential reference loop; returns the number of commits.

    Runs each iteration alone, in index order: reserve always wins, so an
    iteration either commits immediately or is filtered. Under the
    deterministic-reservations guarantee this produces the same final
    state as :func:`speculative_for` over a fresh copy of the step's
    state.
    """
    commits = 0
    for i in range(n):
        if step.reserve(ctx, i):
            if not step.commit(ctx, i):
                raise SpecForLivelock(
                    f"sequential iteration {i} failed to commit while "
                    f"running alone; the step violates the contract")
            commits += 1
    return commits
