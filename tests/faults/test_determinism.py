"""Satellite (d): an identical FaultPlan seed must reproduce a run exactly.

Fault injection is hash-driven (no shared RNG stream), so two runs of the
same app under the same plan must produce byte-identical ``RunStats`` —
including every injection, retry, backoff requeue, and safe-mode entry.
"""

import json

import pytest

from repro.apps import mis
from repro.apps.stamp import kmeans
from repro.bench.harness import run_app
from repro.faults import FaultPlan, ResiliencePolicy


def _stats_bytes(app, inp, plan, policy):
    run = run_app(app, inp, variant="fractal", n_cores=4, check=True,
                  faults=plan, resilience=policy)
    return json.dumps(run.stats.to_dict(), sort_keys=True)


@pytest.mark.parametrize("app,make_input", [
    (mis, lambda: mis.make_input(scale=4, edge_factor=3)),
    (kmeans, lambda: kmeans.make_input(n_points=48, k=3)),
], ids=["mis", "kmeans"])
def test_same_seed_reproduces_stats_byte_for_byte(app, make_input):
    plan = FaultPlan(seed=13, task_exception_rate=0.1, conflict_rate=0.05,
                     slow_task_rate=0.05, slow_task_factor=4)
    policy = ResiliencePolicy(max_attempts=12)
    first = _stats_bytes(app, make_input(), plan, policy)
    second = _stats_bytes(app, make_input(), plan, policy)
    assert first == second
    doc = json.loads(first)
    assert doc["faults_injected"] > 0     # the plan actually fired


def test_different_seed_changes_the_injection_pattern():
    inp = mis.make_input(scale=4, edge_factor=3)
    policy = ResiliencePolicy(max_attempts=12)
    a = _stats_bytes(mis, inp, FaultPlan(seed=1, task_exception_rate=0.2),
                     policy)
    b = _stats_bytes(mis, inp, FaultPlan(seed=2, task_exception_rate=0.2),
                     policy)
    assert a != b
