"""Tests for the five Swarm-suite benchmarks (paper Sec. 6.4)."""

import pytest

from repro.apps import astar, bfs, des, nocsim, sssp

SUITE = [bfs, sssp, astar, des, nocsim]
IDS = ["bfs", "sssp", "astar", "des", "nocsim"]


@pytest.mark.parametrize("app", SUITE, ids=IDS)
def test_correct_speculative(app, run_checked):
    inp = app.make_input()
    run = run_checked(app, inp, "swarm", n_cores=16)
    assert run.stats.tasks_committed > 0


@pytest.mark.parametrize("app", SUITE, ids=IDS)
def test_correct_serial(app, run_serial_checked):
    run_serial_checked(app, app.make_input(), "swarm")


@pytest.mark.parametrize("app", [bfs, sssp, des, nocsim],
                         ids=["bfs", "sssp", "des", "nocsim"])
def test_deterministic_across_core_counts(app, run_checked):
    """Timestamp order makes the results fully deterministic: any core
    count must produce identical state. (astar is excluded: candidates
    tied with the goal's f may or may not settle depending on arbitrary
    tie order — only its settled values and goal are deterministic,
    which `check` already enforces.)"""
    inp = app.make_input()
    a = run_checked(app, inp, "swarm", n_cores=4)
    b = run_checked(app, inp, "swarm", n_cores=16)
    key = {"bfs": "dist", "sssp": "dist",
           "des": "wires", "nocsim": "delivered"}[app.__name__.rsplit(".", 1)[-1]]
    assert a.handles[key].snapshot() == b.handles[key].snapshot()


def test_astar_goal_deterministic(run_checked):
    inp = astar.make_input()
    a = run_checked(astar, inp, "swarm", n_cores=4)
    b = run_checked(astar, inp, "swarm", n_cores=16)
    goal = inp.node(*inp.goal) * 8
    assert a.handles["g"].peek(goal) == b.handles["g"].peek(goal)


class TestBfs:
    def test_star_graph(self, run_checked):
        from repro.graphs import Graph
        g = Graph(9)
        for v in range(1, 9):
            g.add_edge(0, v)
        run = run_checked(bfs, g, "swarm")
        assert bfs.check(run.handles, g) == 9

    def test_disconnected_component_unreached(self, run_checked):
        from repro.graphs import Graph
        g = Graph(6)
        g.add_edge(0, 1)
        g.add_edge(3, 4)
        run = run_checked(bfs, g, "swarm")
        assert bfs.check(run.handles, g) == 2


class TestSssp:
    def test_prefers_cheap_detour(self, run_checked):
        from repro.graphs import Graph
        g = Graph(4)
        g.add_edge(0, 1, weight=10)
        g.add_edge(0, 2, weight=1)
        g.add_edge(2, 3, weight=1)
        g.add_edge(3, 1, weight=1)
        run = run_checked(sssp, g, "swarm")
        sssp.check(run.handles, g)
        assert run.handles["dist"].peek(1 * 8) == 3


class TestAstar:
    def test_open_grid_is_manhattan(self, run_checked):
        inp = astar.make_input(width=8, height=8, wall_fraction=0.0)
        run = run_checked(astar, inp, "swarm")
        assert astar.check(run.handles, inp) == 14

    def test_pruning_limits_settlements(self, run_checked):
        """With a perfect-corridor heuristic, A* must settle far fewer
        cells than the whole grid once the goal is found."""
        inp = astar.make_input(width=16, height=16, wall_fraction=0.0)
        run = run_checked(astar, inp, "swarm")
        settled = sum(1 for i in range(inp.n)
                      if run.handles["g"].peek(i * 8) != astar.UNSETTLED)
        assert settled < inp.n


class TestDes:
    def test_quiescent_without_toggles(self, run_checked):
        inp = des.make_input(n_toggles=0)
        inp.toggles = []
        run = run_checked(des, inp, "swarm")
        assert run.stats.tasks_committed == 0

    def test_single_toggle_propagates(self, run_checked):
        inp = des.make_input(n_inputs=2, n_gates=6, n_toggles=1)
        run = run_checked(des, inp, "swarm")
        des.check(run.handles, inp)


class TestNocsim:
    def test_all_delivered_and_drained(self, run_checked):
        inp = nocsim.make_input(mesh=4, n_packets=16)
        run = run_checked(nocsim, inp, "swarm")
        last = nocsim.check(run.handles, inp)
        assert last > 0

    def test_contention_delays_packets(self, run_checked):
        """Many packets to one destination must serialize through its
        neighbourhood: the last delivery is far beyond the Manhattan
        minimum."""
        inp = nocsim.make_input(mesh=4, n_packets=20, seed=3)
        inp.packets = [(0, p % 15, 15) for p in range(12)]
        run = run_checked(nocsim, inp, "swarm")
        last = nocsim.check(run.handles, inp)
        assert last >= 11  # 12 packets drain one per cycle at best
