"""Tests for the typed speculative data structures."""

import pytest

from repro.errors import AppError, MemoryError_
from repro.mem import SpecArray, SpecCell, SpecDict, SpecQueue
from repro.mem.data import ABSENT

from .conftest import FakeCtx


@pytest.fixture
def ctx(mem, owner_factory):
    return FakeCtx(mem, owner_factory(1))


class TestSpecCell:
    def test_get_set(self, mem, ctx):
        cell = SpecCell(mem, mem.space.alloc("c", 1))
        cell.set(ctx, 5)
        assert cell.get(ctx) == 5

    def test_add_returns_new_value(self, mem, ctx):
        cell = SpecCell(mem, mem.space.alloc("c", 1))
        cell.poke(10)
        assert cell.add(ctx, 3) == 13
        assert cell.get(ctx) == 13

    def test_poke_peek_nonspec(self, mem):
        cell = SpecCell(mem, mem.space.alloc("c", 1))
        cell.poke(42)
        assert cell.peek() == 42


class TestSpecArray:
    def test_fill_and_snapshot(self, mem, ctx):
        arr = SpecArray(mem, mem.space.alloc("a", 4), 4)
        arr.fill([1, 2, 3, 4])
        assert arr.snapshot() == [1, 2, 3, 4]

    def test_get_set_add(self, mem, ctx):
        arr = SpecArray(mem, mem.space.alloc("a", 4), 4)
        arr.set(ctx, 2, 9)
        assert arr.get(ctx, 2) == 9
        assert arr.add(ctx, 2, 1) == 10

    def test_bounds(self, mem, ctx):
        arr = SpecArray(mem, mem.space.alloc("a", 4), 4)
        with pytest.raises(MemoryError_):
            arr.get(ctx, 4)

    def test_len(self, mem):
        arr = SpecArray(mem, mem.space.alloc("a", 7), 7)
        assert len(arr) == 7


class TestSpecDict:
    def make(self, mem, cap=8, stride=1):
        return SpecDict(mem, mem.space.alloc("d", cap * stride), cap,
                        stride=stride)

    def test_put_get(self, mem, ctx):
        d = self.make(mem)
        d.put(ctx, "k", 1)
        assert d.get(ctx, "k") == 1

    def test_get_missing_returns_default(self, mem, ctx):
        d = self.make(mem)
        assert d.get(ctx, "nope", default="dflt") == "dflt"
        assert not d.contains(ctx, "nope")

    def test_put_if_absent(self, mem, ctx):
        d = self.make(mem)
        assert d.put_if_absent(ctx, "k", 1)
        assert not d.put_if_absent(ctx, "k", 2)
        assert d.get(ctx, "k") == 1

    def test_delete(self, mem, ctx):
        d = self.make(mem)
        d.put(ctx, "k", 1)
        assert d.delete(ctx, "k")
        assert not d.contains(ctx, "k")
        assert not d.delete(ctx, "k")

    def test_capacity_enforced(self, mem, ctx):
        d = self.make(mem, cap=2)
        d.put(ctx, "a", 1)
        d.put(ctx, "b", 2)
        with pytest.raises(AppError):
            d.put(ctx, "c", 3)

    def test_cannot_store_sentinel(self, mem, ctx):
        d = self.make(mem)
        with pytest.raises(MemoryError_):
            d.put(ctx, "k", ABSENT)

    def test_items_nonspec_skips_deleted(self, mem, ctx):
        d = self.make(mem)
        d.put(ctx, "a", 1)
        d.put(ctx, "b", 2)
        d.delete(ctx, "a")
        assert dict(d.items_nonspec()) == {"b": 2}
        assert d.len_nonspec() == 1

    def test_stride_separates_lines(self, mem, ctx):
        d = self.make(mem, cap=4, stride=8)
        d.put(ctx, "a", 1)
        d.put(ctx, "b", 2)
        a0 = d._slot_addr("a")
        a1 = d._slot_addr("b")
        assert mem.space.line_of(a0) != mem.space.line_of(a1)

    def test_rollback_restores_absence(self, mem, owner_factory):
        d = self.make(mem)
        t = owner_factory(5)
        d.put(FakeCtx(mem, t), "k", 1)
        mem.rollback(t)
        assert d.peek("k") is None


class TestSpecQueue:
    def make(self, mem, cap=4):
        return SpecQueue(mem, mem.space.alloc("q", cap + 2), cap)

    def test_fifo(self, mem, ctx):
        q = self.make(mem)
        q.push(ctx, "a")
        q.push(ctx, "b")
        assert q.pop(ctx) == "a"
        assert q.pop(ctx) == "b"

    def test_empty_pop_returns_default(self, mem, ctx):
        q = self.make(mem)
        assert q.pop(ctx, default="empty") == "empty"

    def test_overflow(self, mem, ctx):
        q = self.make(mem, cap=2)
        q.push(ctx, 1)
        q.push(ctx, 2)
        with pytest.raises(AppError):
            q.push(ctx, 3)

    def test_size(self, mem, ctx):
        q = self.make(mem)
        q.push(ctx, 1)
        q.push(ctx, 2)
        q.pop(ctx)
        assert q.size(ctx) == 1
        assert q.size_nonspec() == 1

    def test_wraparound_ring(self, mem, ctx):
        q = self.make(mem, cap=2)
        for i in range(5):
            q.push(ctx, i)
            assert q.pop(ctx) == i
