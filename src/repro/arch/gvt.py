"""The global virtual time (GVT) arbiter (paper Sec. 4.1, 4.3, 4.5).

Tiles periodically report their earliest unfinished work; everything that
precedes the global minimum can safely commit (Jefferson's virtual time
algorithm). In Fractal the same central arbiter also serializes zoom-in /
zoom-out requests and tiebreaker wrap-around walks, and manages the small
in-memory stack of saved base-domain timestamps.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from ..core.task import TaskState
from ..telemetry.events import GvtTickEvent
from .frontier import StrippedIndex


class GvtFrontier:
    """Incrementally-maintained earliest-unfinished frontier.

    Replaces the per-tick linear re-minimization over every live task with
    two lazy-deletion structures mirroring the GVT's state classification:

    - RUNNING tasks bound the GVT by their *full* finalized key, which is
      fixed for the attempt's lifetime — one ordinary heap suffices.
    - PENDING / WAIT_ZOOM / non-zoom SPILLED tasks bound it by their
      *stripped* key (final tiebreaker tightened to the present), whose
      time-invariant prefix lives in a :class:`StrippedIndex`.
    - FINISHED / FINISH_STALLED / zoom-parked tasks do not bound the GVT
      and are simply invalidated.

    Entries are versioned by the task's ``_gvt_token``; every add bumps it
    first, so at most one entry per task is valid across both structures,
    and a state transition is one O(log n) push (or an O(1) bump for
    discards). Global VT rewrites (zooming, tiebreaker compaction) call
    :meth:`rebuild`. :meth:`min_key` returns exactly the value of the
    reference linear scan (``Simulator._compute_gvt_linear``).
    """

    __slots__ = ("_dyn", "_run", "_seq", "scan_steps", "queries")

    def __init__(self):
        self._dyn = StrippedIndex("_gvt_token")
        self._run: List[tuple] = []  # (full_key, seq, token, task)
        self._seq = 0
        #: profile counters (run-heap entries examined / min queries)
        self.scan_steps = 0
        self.queries = 0

    def add_dyn(self, task) -> None:
        """Track a task that bounds the GVT by its stripped key."""
        task._gvt_token += 1
        self._dyn.push(task)

    def add_run(self, task) -> None:
        """Track a dispatched task by its full (finalized) key."""
        task._gvt_token += 1
        self._seq += 1
        heapq.heappush(self._run,
                       (task.order_key(), self._seq, task._gvt_token, task))

    def discard(self, task) -> None:
        """The task no longer bounds the GVT (finished/squashed/parked)."""
        task._gvt_token += 1

    def min_key(self, now_lb_raw: int) -> Optional[tuple]:
        """The GVT bound: min over running full keys and dynamic stripped
        keys with ``now_lb_raw`` as the tightened final tiebreaker."""
        self.queries += 1
        best: Optional[tuple] = None
        run = self._run
        while run:
            key, seq, token, task = run[0]
            self.scan_steps += 1
            if token != task._gvt_token:
                heapq.heappop(run)
                continue
            best = key
            break
        dyn = self._dyn.min_candidate(now_lb_raw)
        if dyn is not None and (best is None or dyn < best):
            best = dyn
        return best

    def rebuild(self, live) -> None:
        """Re-key everything after a global VT rewrite (zoom/compaction)."""
        self._dyn.clear()
        self._run.clear()
        for task in live:
            state = task.state
            if state is TaskState.RUNNING:
                self.add_run(task)
            elif state in (TaskState.PENDING, TaskState.WAIT_ZOOM):
                self.add_dyn(task)
            elif state is TaskState.SPILLED:
                if getattr(task.spill_buffer, "is_zoom", False):
                    continue  # parked outer domains are later than all live
                self.add_dyn(task)

    def __repr__(self) -> str:
        return (f"GvtFrontier(run={len(self._run)}, dyn={self._dyn!r})")


class GvtArbiter:
    """Computes commit frontiers and queues zoom requests."""

    def __init__(self, commit_interval: int = 200):
        self.commit_interval = commit_interval
        #: saved base-domain (ordering, timestamp) pairs, pushed at zoom-in
        self.base_stack: List[Tuple[object, int]] = []
        #: outstanding zoom requests: ("in"|"out", requesting task)
        self.zoom_requests: List[Tuple[str, object]] = []
        #: telemetry bus (installed by the simulator; None/falsy = off)
        self.bus = None
        # stats
        self.ticks = 0
        self.commits_total = 0
        self.zoom_ins = 0
        self.zoom_outs = 0

    # ------------------------------------------------------------------
    def next_tick(self, now: int) -> int:
        """Cycle of the next arbiter update after ``now``."""
        return now + self.commit_interval

    def note_tick(self, now: int, n_live: int, n_finished: int) -> None:
        """Record one arbiter update (and emit its telemetry event)."""
        self.ticks += 1
        if self.bus:
            self.bus.emit(GvtTickEvent(now, n_live, n_finished,
                                       self.commits_total))

    @staticmethod
    def min_unfinished_key(sources) -> Optional[tuple]:
        """The GVT: minimum VT key over every unfinished-work source.

        ``sources`` yields keys (tuples) or None. Returns None when no
        unfinished work exists anywhere — then *everything* finished may
        commit.
        """
        best = None
        for key in sources:
            if key is not None and (best is None or key < best):
                best = key
        return best

    # ------------------------------------------------------------------
    def request_zoom(self, direction: str, task) -> None:
        """Queue a zoom-in/out request from a parked task."""
        if direction not in ("in", "out"):
            raise ValueError(f"bad zoom direction {direction!r}")
        self.zoom_requests.append((direction, task))

    def push_base(self, ordering, timestamp: int) -> None:
        """Save a zoomed-out base domain's ordering and timestamp."""
        self.base_stack.append((ordering, timestamp))
        self.zoom_ins += 1

    def pop_base(self) -> Tuple[object, int]:
        """Restore the most recently saved base domain info."""
        self.zoom_outs += 1
        return self.base_stack.pop()

    @property
    def zoom_depth(self) -> int:
        """Number of base domains currently parked on the stack."""
        return len(self.base_stack)
