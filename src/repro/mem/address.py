"""Flat word-addressed address space with named regions and cache lines.

Applications allocate named :class:`Region`\\ s from an :class:`AddressSpace`.
Each address identifies one machine word (8 bytes); conflict detection and
the cache model operate on 64-byte *lines* (8 words), so unrelated fields
that share a line can conflict — real false sharing, as in the paper's
hardware. Regions may be allocated line-aligned to avoid it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import MemoryError_

WORD_BYTES = 8


@dataclass(frozen=True)
class Region:
    """A contiguous, named allocation of ``size`` words starting at ``base``."""

    name: str
    base: int
    size: int

    def addr(self, offset: int) -> int:
        """Absolute address of word ``offset`` (bounds-checked)."""
        if not (0 <= offset < self.size):
            raise MemoryError_(
                f"offset {offset} out of bounds for region {self.name!r} "
                f"(size {self.size})")
        return self.base + offset

    def __contains__(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size


class AddressSpace:
    """Bump allocator for regions plus address→line / line→tile mapping."""

    def __init__(self, line_bytes: int = 64, n_tiles: int = 1):
        if line_bytes % WORD_BYTES:
            raise MemoryError_("line_bytes must be a multiple of the word size")
        self.line_words = line_bytes // WORD_BYTES
        self.n_tiles = n_tiles
        self._next = self.line_words  # keep address 0 unused
        self._regions: Dict[str, Region] = {}

    def alloc(self, name: str, size: int, *, line_aligned: bool = True) -> Region:
        """Allocate ``size`` words under ``name``. Names must be unique.

        ``line_aligned`` regions start on a line boundary and are padded to
        a whole number of lines, preventing false sharing with neighbours.
        """
        if size <= 0:
            raise MemoryError_(f"region size must be positive, got {size}")
        if name in self._regions:
            raise MemoryError_(f"region {name!r} already allocated")
        base = self._next
        if line_aligned:
            base = -(-base // self.line_words) * self.line_words
            padded = -(-size // self.line_words) * self.line_words
        else:
            padded = size
        region = Region(name, base, size)
        self._regions[name] = region
        self._next = base + padded
        return region

    def region(self, name: str) -> Region:
        """Look up a region by name."""
        try:
            return self._regions[name]
        except KeyError:
            raise MemoryError_(f"unknown region {name!r}") from None

    @property
    def words_allocated(self) -> int:
        """High-water mark of allocated words."""
        return self._next

    # --- mappings used by conflict detection and the cache model --------
    def line_of(self, addr: int) -> int:
        """Cache-line id of a word address."""
        return addr // self.line_words

    def home_tile(self, addr: int) -> int:
        """Static-NUCA home tile of an address's line (line interleaving)."""
        return self.line_of(addr) % self.n_tiles
