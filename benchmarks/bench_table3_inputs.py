"""Table 3: benchmark inputs and 1-core run times.

The paper lists each benchmark's source, input, and 1-core cycle count
(0.7-16.7 B cycles at paper scale). This bench runs every application on
one core at reproduction scale and reports input descriptions and
measured cycles.
"""

from _common import emit, once, run_once
from repro.apps import (
    bayes, color, genome, intruder, kmeans, labyrinth, maxflow, mis, msf,
    silo, ssca2, vacation, yada)
from repro.bench.report import format_table

ROWS = [
    ("color", color, {}, "swarm", "R-MAT scale 6 (for com-youtube)"),
    ("msf", msf, {}, "fractal", "R-MAT scale 6, weighted (for kron_g500)"),
    ("silo", silo, {}, "fractal", "TPC-C-lite, 2 whs, 64 txns"),
    ("ssca2", ssca2, {}, "hwq", "64 nodes, 256 edges"),
    ("vacation", vacation, {}, "hwq", "32 resources x3 tables, 64 txns"),
    ("genome", genome, {}, "hwq", "160-base genome, 12-base segments"),
    ("kmeans", kmeans, {}, "hwq", "96 points, k=4, 3 iters"),
    ("intruder", intruder, {}, "hwq", "24 flows x 4 fragments"),
    ("yada", yada, {}, "hwq", "48-point Delaunay mesh"),
    ("labyrinth", labyrinth, {}, "fractal", "10x10x2 grid, 10 paths"),
    ("bayes", bayes, {}, "fractal", "10 vars, 40 decisions"),
    ("maxflow", maxflow, {}, "fractal", "rmf-wide 4x4x4 (64 nodes)"),
    ("mis", mis, {}, "fractal", "R-MAT scale 7"),
]


def table():
    rows = []
    for name, app, params, variant, desc in ROWS:
        inp = app.make_input(**params)
        run = run_once(app, inp, variant, 1)
        rows.append([name, desc, f"{run.makespan:,}",
                     f"{run.stats.tasks_committed:,}"])
    text = format_table(
        ["benchmark", "input (reproduction scale)", "1-core cycles",
         "tasks"], rows)
    emit("table3_inputs", text)
    return rows


def bench_table3_inputs(benchmark):
    rows = once(benchmark, table)
    assert len(rows) == 13
    assert all(int(r[2].replace(",", "")) > 0 for r in rows)


if __name__ == "__main__":
    table()
