"""Shared fixtures for execution-engine tests."""

import pytest

from repro import Ordering, Simulator, SystemConfig


def small_config(n_cores=4, **overrides):
    overrides.setdefault("conflict_mode", "precise")
    return SystemConfig.with_cores(n_cores, **overrides)


@pytest.fixture
def make_sim():
    def factory(n_cores=4, root_ordering=Ordering.UNORDERED, **overrides):
        return Simulator(small_config(n_cores, **overrides),
                         root_ordering=root_ordering)
    return factory
