"""Registry of runnable applications.

One place maps the short app names users type (CLI, JobSpec JSON, the
serve API) to ``repro.apps`` module paths and their supported variants.
Dotted module paths are also accepted everywhere a registry name is, so
out-of-tree app modules (e.g. the farm test fixtures) stay runnable; for
those the variant set is unknown and not checked.
"""

from __future__ import annotations

from typing import Optional, Tuple

#: app name -> (module path, variants)
APPS = {
    "mis": ("repro.apps.mis", ("flat", "swarm", "fractal")),
    "color": ("repro.apps.color", ("flat", "swarm", "fractal")),
    "msf": ("repro.apps.msf", ("flat", "swarm", "fractal")),
    "maxflow": ("repro.apps.maxflow", ("flat", "fractal")),
    "silo": ("repro.apps.silo", ("flat", "swarm", "fractal")),
    "zoomtree": ("repro.apps.zoomtree", ("fractal",)),
    "ssca2": ("repro.apps.stamp.ssca2", ("tm", "hwq", "fractal")),
    "vacation": ("repro.apps.stamp.vacation", ("tm", "hwq", "fractal")),
    "kmeans": ("repro.apps.stamp.kmeans", ("tm", "hwq", "fractal")),
    "genome": ("repro.apps.stamp.genome", ("tm", "hwq", "fractal")),
    "intruder": ("repro.apps.stamp.intruder", ("tm", "hwq", "fractal")),
    "labyrinth": ("repro.apps.stamp.labyrinth", ("tm", "hwq", "fractal")),
    "bayes": ("repro.apps.stamp.bayes", ("tm", "hwq", "fractal")),
    "yada": ("repro.apps.stamp.yada", ("tm", "hwq", "fractal")),
    "bfs": ("repro.apps.swarm.bfs", ("swarm",)),
    "sssp": ("repro.apps.swarm.sssp", ("swarm",)),
    "astar": ("repro.apps.swarm.astar", ("swarm",)),
    "des": ("repro.apps.swarm.des", ("swarm",)),
    "nocsim": ("repro.apps.swarm.nocsim", ("swarm",)),
}

#: module path -> short registry name (for display)
MODULE_TO_NAME = {module: name for name, (module, _) in APPS.items()}


def resolve_app(name: str) -> Tuple[str, Optional[Tuple[str, ...]]]:
    """Resolve ``name`` to ``(module_path, variants-or-None)``.

    ``name`` is either a registry key (``"mis"``) or a dotted module path
    (``"repro.apps.mis"``, ``"tests.farm._fakeapp"``). Unknown plain names
    raise ``KeyError`` listing the registry.
    """
    entry = APPS.get(name)
    if entry is not None:
        return entry
    if "." in name:
        variants = None
        known = APPS.get(MODULE_TO_NAME.get(name, ""))
        if known is not None:
            variants = known[1]
        return name, variants
    raise KeyError(
        f"unknown app {name!r}; choose one of {sorted(APPS)} "
        f"or give a dotted module path")
