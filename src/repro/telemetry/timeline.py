"""The ASCII timeline as an event-stream consumer.

:class:`TraceBuilder` subscribes to a run's bus and reconstructs the
:class:`repro.core.trace.Trace` that :func:`repro.core.trace.render_timeline`
draws — the simulator no longer records trace segments itself; the Fig. 1
chart is just one more telemetry consumer.
"""

from __future__ import annotations

from ..core.trace import Trace
from .events import Event


class TraceBuilder:
    """Bus subscriber that turns commit/abort events into trace segments.

    Zoom-park rollbacks (``AbortEvent.parked``) are skipped to keep the
    rendered timelines identical to the pre-telemetry charts, which only
    showed counted aborts.
    """

    def __init__(self, trace: Trace):
        self.trace = trace

    def __call__(self, event: Event) -> None:
        kind = event.KIND
        if kind == "commit":
            self.trace.record(event.core, event.start,
                              event.start + event.duration,
                              event.label, "committed")
        elif kind == "abort" and not event.parked and event.core is not None:
            self.trace.record(event.core, event.start,
                              event.start + event.executed,
                              event.label, "aborted")
