"""Tiles and cores (paper Fig. 8).

These are bookkeeping shells: a :class:`Core` tracks what it is doing and
until when; a :class:`Tile` groups cores with their task unit. All behaviour
lives in the simulator.
"""

from __future__ import annotations

from typing import List, Optional

from .task_unit import TaskUnit


class Core:
    """One in-order core."""

    __slots__ = ("cid", "tile_id", "busy_until", "job", "idle_since",
                 "idle_reason")

    def __init__(self, cid: int, tile_id: int):
        self.cid = cid
        self.tile_id = tile_id
        self.busy_until = 0
        #: the task attempt / coalescer / splitter currently occupying us
        self.job = None
        self.idle_since: Optional[int] = 0
        self.idle_reason: str = "empty"

    @property
    def is_free(self) -> bool:
        """True when no job occupies this core."""
        return self.job is None

    def __repr__(self) -> str:
        state = "free" if self.is_free else f"busy({self.job})"
        return f"Core{self.cid}@T{self.tile_id}[{state}]"


class Tile:
    """A tile: cores + task unit (+ an L2/L3 slice modeled in CacheModel)."""

    __slots__ = ("tid", "cores", "unit")

    def __init__(self, tid: int, n_cores: int, task_queue_cap: int,
                 commit_queue_cap: int):
        self.tid = tid
        self.cores: List[Core] = []
        self.unit = TaskUnit(tid, task_queue_cap, commit_queue_cap)

    def free_cores(self) -> List[Core]:
        """Cores currently available for dispatch."""
        return [c for c in self.cores if c.is_free]

    def __repr__(self) -> str:
        return f"Tile{self.tid}({len(self.cores)} cores, {self.unit})"
