"""The event bus: a zero-overhead-when-disabled subscriber fan-out.

Producers hold a bus and guard every emission site with its truthiness::

    if self.bus:
        self.bus.emit(CommitEvent(...))

With no subscribers the bus is falsy, so a disabled run pays one attribute
access and boolean check per site — no event objects are ever built.
Subscribers are plain callables invoked synchronously, in subscription
order, with each event.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator, List, Optional, Sequence

from .events import Event

Subscriber = Callable[[Event], None]


class EventBus:
    """Synchronous publish/subscribe fan-out for simulation events."""

    __slots__ = ("_subs",)

    def __init__(self):
        self._subs: List[Subscriber] = []

    def __bool__(self) -> bool:
        return bool(self._subs)

    @property
    def enabled(self) -> bool:
        """True when at least one subscriber is attached."""
        return bool(self._subs)

    def subscribe(self, fn: Subscriber) -> Subscriber:
        """Attach ``fn``; returns it so it can be unsubscribed later."""
        self._subs.append(fn)
        return fn

    def unsubscribe(self, fn: Subscriber) -> None:
        """Detach a subscriber (no-op when absent)."""
        try:
            self._subs.remove(fn)
        except ValueError:
            pass

    def emit(self, event: Event) -> None:
        """Deliver ``event`` to every subscriber, in subscription order."""
        for fn in self._subs:
            fn(event)


class EventRecorder:
    """A subscriber that collects events in memory (optionally filtered).

    The standard consumer for exporters and offline analysis::

        bus = EventBus()
        rec = EventRecorder()
        bus.subscribe(rec)
        ... run ...
        commits = rec.of("commit")
    """

    def __init__(self, kinds: Optional[Sequence[str]] = None):
        self.events: List[Event] = []
        self._kinds = frozenset(kinds) if kinds is not None else None

    def __call__(self, event: Event) -> None:
        if self._kinds is None or event.KIND in self._kinds:
            self.events.append(event)

    def of(self, *kinds: str) -> List[Event]:
        """All recorded events whose kind is one of ``kinds``."""
        wanted = frozenset(kinds)
        return [e for e in self.events if e.KIND in wanted]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)


class EventRingBuffer:
    """A subscriber that keeps only the most recent events.

    Crash bundles (:mod:`repro.faults.crashdump`) subscribe one of these
    so a failing run can report what led up to the failure without paying
    for (or retaining) a full event log.
    """

    def __init__(self, maxlen: int = 512):
        self.events: deque = deque(maxlen=maxlen)
        #: total events seen (>= len(self) once the buffer wraps)
        self.n_seen = 0

    def __call__(self, event: Event) -> None:
        self.events.append(event)
        self.n_seen += 1

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)
