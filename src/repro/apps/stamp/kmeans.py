"""STAMP kmeans: transactional k-means clustering.

Points are assigned to their nearest centroid in parallel chunks; each
assignment transaction folds the point into the cluster's shared
accumulator — the contended state. Iterations are separated by a
recompute step, expressed with root-domain timestamps (assignments of
iteration i at ts 2i, recompute at 2i+1), which models STAMP's barrier
loop. Integer coordinates keep every variant bit-identical to the oracle.

In the paper, kmeans scales only once spatial hints route same-cluster
updates to the same tile (Fig. 17, +Hints).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ...errors import AppError
from ...vt import Ordering
from .common import require_stamp_variant


@dataclass
class KmeansInput:
    points: List[Tuple[int, ...]]
    k: int
    dim: int
    iterations: int
    chunk: int

    @property
    def n_chunks(self) -> int:
        return (len(self.points) + self.chunk - 1) // self.chunk


def make_input(n_points: int = 96, k: int = 4, dim: int = 3,
               iterations: int = 3, chunk: int = 4,
               seed: int = 8) -> KmeansInput:
    rng = random.Random(seed)
    centers = [tuple(rng.randint(0, 1000) for _ in range(dim))
               for _ in range(k)]
    points = []
    for _ in range(n_points):
        c = rng.choice(centers)
        points.append(tuple(x + rng.randint(-100, 100) for x in c))
    return KmeansInput(points, k, dim, iterations, chunk)


def _nearest(point, centroids) -> int:
    best, best_d = 0, None
    for c, cen in enumerate(centroids):
        d = sum((a - b) * (a - b) for a, b in zip(point, cen))
        if best_d is None or d < best_d:
            best, best_d = c, d
    return best


def reference(inp: KmeansInput) -> Tuple[List[Tuple[int, ...]], List[int]]:
    """Plain-Python oracle with identical integer arithmetic."""
    centroids = [inp.points[i] for i in range(inp.k)]
    labels = [0] * len(inp.points)
    for _ in range(inp.iterations):
        sums = [[0] * inp.dim for _ in range(inp.k)]
        counts = [0] * inp.k
        for i, p in enumerate(inp.points):
            c = _nearest(p, centroids)
            labels[i] = c
            counts[c] += 1
            for d in range(inp.dim):
                sums[c][d] += p[d]
        centroids = [
            tuple(sums[c][d] // counts[c] if counts[c] else centroids[c][d]
                  for d in range(inp.dim))
            for c in range(inp.k)
        ]
    return centroids, labels


def build(host, inp: KmeansInput, variant: str = "fractal") -> Dict:
    require_stamp_variant(variant)
    K, D = inp.k, inp.dim
    centroid = host.array("km.centroid", K * 8,
                          init=_pack([inp.points[i] for i in range(K)], D))
    acc = host.array("km.acc", K * 8)       # accumulator vectors (tuples)
    count = host.array("km.count", K * 8)
    labels = host.array("km.labels", len(inp.points))

    def assign_chunk(ctx, it, cid):
        lo = cid * inp.chunk
        pts = inp.points[lo:lo + inp.chunk]
        cens = [centroid.get(ctx, c * 8) for c in range(K)]
        ctx.compute(8 * len(pts) * K * D)
        per_cluster: Dict[int, List[int]] = {}
        for off, p in enumerate(pts):
            c = _nearest(p, cens)
            labels.set(ctx, lo + off, c)
            per_cluster.setdefault(c, []).append(off)
        for c, offs in per_cluster.items():
            cur = acc.get(ctx, c * 8)
            cur = tuple(cur) if cur != 0 else (0,) * D
            for off in offs:
                cur = tuple(a + b for a, b in zip(cur, pts[off]))
            acc.set(ctx, c * 8, cur)
            count.set(ctx, c * 8, count.get(ctx, c * 8) + len(offs))

    def recompute(ctx, it):
        for c in range(K):
            n = count.get(ctx, c * 8)
            if n:
                s = acc.get(ctx, c * 8)
                centroid.set(ctx, c * 8, tuple(x // n for x in s))
            acc.set(ctx, c * 8, 0)
            count.set(ctx, c * 8, 0)
        ctx.compute(10 * K * D)

    # TM mode: the chunk list is consumed through a software queue *within
    # each iteration*; modeled by serializing chunk claims through a
    # speculative cursor cell per iteration.
    cursor = host.array("km.cursor", inp.iterations * 8) \
        if variant == "tm" else None

    def assign_tm(ctx, it, wid):
        slot = it * 8
        cid = cursor.get(ctx, slot)
        if cid >= inp.n_chunks:
            return
        cursor.set(ctx, slot, cid + 1)
        assign_chunk(ctx, it, cid)
        ctx.enqueue(assign_tm, it, wid, ts=ctx.timestamp, label="worker")

    for it in range(inp.iterations):
        if variant == "tm":
            for wid in range(min(16, inp.n_chunks)):
                host.enqueue_root(assign_tm, it, wid, ts=2 * it,
                                  label="worker")
        else:
            for cid in range(inp.n_chunks):
                host.enqueue_root(assign_chunk, it, cid, ts=2 * it,
                                  hint=cid % inp.k, label="assign")
        host.enqueue_root(recompute, it, ts=2 * it + 1, label="recompute")
    return {"centroid": centroid, "labels": labels, "input": inp}


def root_ordering(variant: str) -> Ordering:
    return Ordering.ORDERED_32


def _pack(points, dim):
    out = []
    for p in points:
        out.append(tuple(p))
        out.extend([0] * 7)
    return out


def check(handles: Dict, inp: KmeansInput) -> None:
    want_centroids, want_labels = reference(inp)
    for c in range(inp.k):
        got = handles["centroid"].peek(c * 8)
        if tuple(got) != want_centroids[c]:
            raise AppError(f"centroid {c}: {got} != {want_centroids[c]}")
    got_labels = handles["labels"].snapshot()
    if got_labels != want_labels:
        bad = [i for i in range(len(want_labels))
               if got_labels[i] != want_labels[i]][:5]
        raise AppError(f"labels differ at {bad}")
