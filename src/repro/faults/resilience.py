"""Resilience policy: retry budgets, backoff, and livelock detection.

The :class:`ResiliencePolicy` is pure configuration; the simulator owns
the mechanisms. The :class:`LivelockDetector` watches the abort/commit
mix over a sliding window of GVT ticks and escalates:

``NORMAL`` → ``THROTTLED`` (dispatch restricted to one task per tile,
shrinking the conflict window) → ``SAFE`` (fully serialized execution of
the GVT-leading task — which nothing can abort before it finishes, so
every safe-mode step commits work and the run provably moves forward,
Swarm-style). Safe mode exits after the configured number of serialized
commits once the abort rate has collapsed, restoring parallel dispatch.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigError

#: LivelockDetector states
NORMAL, THROTTLED, SAFE = "normal", "throttled", "safe"


@dataclass(frozen=True)
class ResiliencePolicy:
    """Knobs for every graceful-degradation mechanism (all optional)."""

    # --- retries -------------------------------------------------------
    #: attempts (first try + retries) before a task exception is fatal;
    #: 0 means task exceptions are always fatal (the no-policy default)
    max_attempts: int = 5
    #: exponential backoff on every abort requeue: base * factor^(n-1),
    #: capped; 0 base disables backoff
    backoff_base: int = 50
    backoff_factor: float = 2.0
    backoff_cap: int = 5_000

    # --- livelock / safe mode -----------------------------------------
    #: sliding window length in GVT ticks (0 disables the detector)
    livelock_window: int = 8
    #: windowed abort share that triggers dispatch throttling
    throttle_threshold: float = 0.75
    #: windowed abort share that triggers serialized safe mode
    safe_mode_threshold: float = 0.92
    #: serialized commits required before safe mode may exit
    safe_mode_commits: int = 8
    #: windowed abort share below which throttle/safe mode release
    exit_threshold: float = 0.30

    # --- queue overflow ------------------------------------------------
    #: task-queue occupancy (x capacity) past which overflow is fatal
    queue_fail_factor: float = 4.0

    # --- watchdog ------------------------------------------------------
    #: graceful cycle limit: the run stops and returns partial RunStats
    #: with a failure report instead of raising (0 = off)
    max_cycles: int = 0
    #: graceful wall-clock limit in seconds (0 = off)
    max_wall_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 0:
            raise ConfigError("max_attempts must be >= 0")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigError("backoff cycles must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1")
        if self.livelock_window < 0:
            raise ConfigError("livelock_window must be >= 0")
        for name in ("throttle_threshold", "safe_mode_threshold",
                     "exit_threshold"):
            v = getattr(self, name)
            if not (0.0 <= v <= 1.0):
                raise ConfigError(f"{name} must be in [0, 1], got {v}")
        if self.exit_threshold > self.throttle_threshold:
            raise ConfigError("exit_threshold must not exceed "
                              "throttle_threshold (hysteresis)")
        if self.queue_fail_factor < 1.0:
            raise ConfigError("queue_fail_factor must be >= 1")
        if self.max_cycles < 0 or self.max_wall_seconds < 0:
            raise ConfigError("watchdog limits must be >= 0")

    def to_dict(self) -> dict:
        """JSON-safe form."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "ResiliencePolicy":
        """Inverse of :meth:`to_dict`; unknown keys are an error."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ConfigError(
                f"unknown ResiliencePolicy keys: {sorted(unknown)}")
        return cls(**d)


def backoff_delay(policy: ResiliencePolicy, n_retries: int) -> int:
    """Requeue delay in cycles before retry number ``n_retries`` (>= 1)."""
    if policy.backoff_base <= 0 or n_retries <= 0:
        return 0
    delay = policy.backoff_base * policy.backoff_factor ** (n_retries - 1)
    return min(int(delay), policy.backoff_cap)


class LivelockDetector:
    """Sliding-window abort-rate monitor driving throttle / safe mode.

    Fed cumulative abort and commit totals once per GVT tick; transitions
    are returned to the caller (the simulator), which owns the dispatch
    policy and the telemetry emission.
    """

    def __init__(self, policy: ResiliencePolicy):
        self.policy = policy
        self.state = NORMAL
        self._window: deque = deque(maxlen=max(policy.livelock_window, 1))
        self._last_aborts = 0
        self._last_commits = 0
        #: commits observed since safe mode was entered
        self.safe_commits = 0
        #: cycle safe mode was entered (simulator-maintained, for events)
        self.safe_since = 0

    # ------------------------------------------------------------------
    @property
    def abort_rate(self) -> float:
        """Windowed aborted share of all attempt outcomes."""
        aborts = sum(a for a, _ in self._window)
        commits = sum(c for _, c in self._window)
        total = aborts + commits
        return aborts / total if total else 0.0

    @property
    def window_totals(self):
        """``(aborts, commits)`` summed over the current window."""
        return (sum(a for a, _ in self._window),
                sum(c for _, c in self._window))

    # ------------------------------------------------------------------
    def note_tick(self, aborts_total: int, commits_total: int) -> Optional[str]:
        """Record one GVT tick; returns a transition or None.

        Transitions: ``"throttle"`` (NORMAL→THROTTLED), ``"safe_enter"``
        (→SAFE), ``"release"`` (THROTTLED→NORMAL), ``"safe_exit"``
        (SAFE→NORMAL).
        """
        policy = self.policy
        if policy.livelock_window <= 0:
            return None
        da = aborts_total - self._last_aborts
        dc = commits_total - self._last_commits
        self._last_aborts, self._last_commits = aborts_total, commits_total
        self._window.append((da, dc))
        if self.state is SAFE:
            self.safe_commits += dc
            if (self.safe_commits >= policy.safe_mode_commits
                    and self.abort_rate <= policy.exit_threshold):
                self.state = NORMAL
                self._window.clear()
                return "safe_exit"
            return None
        if len(self._window) < self._window.maxlen:
            return None  # not enough history to judge
        rate = self.abort_rate
        aborts, _ = self.window_totals
        if not aborts:
            if self.state is THROTTLED and rate <= policy.exit_threshold:
                self.state = NORMAL
                return "release"
            return None
        if rate >= policy.safe_mode_threshold:
            self.state = SAFE
            self.safe_commits = 0
            return "safe_enter"
        if self.state is NORMAL and rate >= policy.throttle_threshold:
            self.state = THROTTLED
            return "throttle"
        if self.state is THROTTLED and rate <= policy.exit_threshold:
            self.state = NORMAL
            return "release"
        return None

    def force_safe(self) -> bool:
        """Queue-overflow escalation: enter safe mode immediately.

        Returns True when this call performed the transition.
        """
        if self.state is SAFE:
            return False
        self.state = SAFE
        self.safe_commits = 0
        return True
