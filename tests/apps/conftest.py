"""Shared fixtures for application tests.

App tests run tiny inputs on few cores with the serializability audit on,
so every run double-checks the engine end to end.
"""

import pytest

from repro.bench.harness import run_app, run_serial
from repro.config import SystemConfig


def tiny_config(n_cores=8, **overrides):
    return SystemConfig.with_cores(n_cores, **overrides)


@pytest.fixture
def run_checked():
    """Run an app variant with audit + check; returns the AppRun."""

    def runner(app, inp, variant, n_cores=8, max_cycles=20_000_000,
               **overrides):
        return run_app(app, inp, variant=variant, n_cores=n_cores,
                       config=tiny_config(n_cores, **overrides),
                       audit=True, check=True, max_cycles=max_cycles)

    return runner


@pytest.fixture
def run_serial_checked():
    def runner(app, inp, variant):
        return run_serial(app, inp, variant=variant, check=True)

    return runner
