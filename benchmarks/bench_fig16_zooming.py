"""Fig. 16: zooming overheads on the nested-domain-tree microbenchmark.

Paper: a depth-8 tree with fanout F in 4..12, hardware depth D in 2..8;
1500-cycle tasks. At 1 core, limiting D costs at most 21% (F=4, D=2) and
the cost shrinks as F or D grows. At 256 cores small D also costs
parallelism. Scaled here to a depth-5 tree, F in 2..6, D in 2..5 (the
paper's 39 M-task tree is beyond a Python-resident simulation; the
normalized shape is what is compared).
"""

from _common import core_counts, emit, once, run_once
from repro.apps import zoomtree
from repro.bench.report import format_table
from repro.config import SystemConfig

FANOUTS = (2, 3, 4, 6)
DEPTHS = (2, 3, 4, 5)
TREE_DEPTH = 5


def run_tree(fanout, max_depth, n_cores):
    inp = zoomtree.make_input(fanout=fanout, depth=TREE_DEPTH)
    cfg = SystemConfig.with_cores(
        n_cores, vt_bits=zoomtree.vt_bits_for_depth(max_depth),
        conflict_mode="precise")
    # result check runs inside run_once (check=True); cached repeats are
    # served straight from the result cache
    return run_once(zoomtree, inp, "fractal", n_cores, config=cfg)


def sweep(n_cores, fanouts=FANOUTS):
    rows = []
    results = {}
    for fanout in fanouts:
        baseline = run_tree(fanout, TREE_DEPTH, n_cores)
        results[(fanout, TREE_DEPTH)] = baseline
        row = [f"F={fanout}"]
        for d in DEPTHS:
            run = (baseline if d == TREE_DEPTH
                   else run_tree(fanout, d, n_cores))
            results[(fanout, d)] = run
            rel = baseline.makespan / run.makespan
            row.append(f"{rel:.2f} ({run.stats.zoom_ins}z)")
        rows.append(row)
    emit(f"fig16_zooming_{n_cores}c",
         format_table(["fanout"] + [f"D={d}" for d in DEPTHS], rows))
    return results


def bench_fig16_zooming_1core(benchmark):
    results = once(benchmark, lambda: sweep(1, fanouts=(2, 4)))
    for fanout in (2, 4):
        # performance is monotone in supported depth (Fig. 16a)
        spans = [results[(fanout, d)].makespan for d in DEPTHS]
        assert spans[0] >= spans[-1]
        assert results[(fanout, 2)].stats.zoom_ins > 0
        assert results[(fanout, TREE_DEPTH)].stats.zoom_ins == 0


def bench_fig16_zooming_parallel(benchmark):
    n = max(core_counts(quick=True))
    results = once(benchmark, lambda: sweep(n, fanouts=(4,)))
    assert results[(4, TREE_DEPTH)].stats.tasks_committed > 0


if __name__ == "__main__":
    sweep(1)
    sweep(max(core_counts()))
