"""Tests for task spilling, commit-queue pressure, and queue stalls
(paper Sec. 4.1, Table 2)."""

import pytest

from repro import Ordering, Simulator, SystemConfig


def sim_with(n_cores=4, **overrides):
    overrides.setdefault("conflict_mode", "precise")
    return Simulator(SystemConfig.with_cores(n_cores, **overrides))


class TestSpills:
    def test_overfull_queue_spills_and_completes(self):
        sim = sim_with(task_queue_per_core=8, spill_batch=5)
        cell = sim.cell("c", 0)

        def t(ctx):
            cell.add(ctx, 1)
            ctx.compute(100)

        def fanout(ctx):
            for _ in range(120):
                ctx.enqueue(t)

        sim.enqueue_root(fanout)
        stats = sim.run(max_cycles=20_000_000)
        assert cell.peek() == 120
        # coalescers fire on the overfull queue; the children only become
        # spillable once their parent commits (paper's policy), so only
        # the spill *cycles* are guaranteed here
        assert stats.breakdown.spill > 0

    def test_root_fanout_spills_tasks(self):
        sim = sim_with(task_queue_per_core=8, spill_batch=5)
        cell = sim.cell("c", 0)

        def t(ctx):
            cell.add(ctx, 1)
            ctx.compute(100)

        for _ in range(120):
            sim.enqueue_root(t)  # parentless: spillable immediately
        stats = sim.run(max_cycles=20_000_000)
        assert cell.peek() == 120
        assert stats.tasks_spilled > 0
        assert stats.breakdown.spill > 0

    def test_spilled_tasks_only_with_committed_parents(self):
        """Spill victims must have committed (or no) parents — squashing a
        spilled task via its parent's abort still works, but the paper's
        policy restricts spilling to parent-committed tasks."""
        sim = sim_with(task_queue_per_core=8, spill_batch=5)
        cell = sim.cell("c", 0)

        def t(ctx):
            cell.add(ctx, 1)

        for _ in range(100):
            sim.enqueue_root(t)  # parentless: all spillable
        stats = sim.run(max_cycles=20_000_000)
        assert cell.peek() == 100

    def test_no_spills_with_roomy_queue(self):
        sim = sim_with(task_queue_per_core=64)
        cell = sim.cell("c", 0)
        for _ in range(30):
            sim.enqueue_root(lambda ctx: cell.add(ctx, 1))
        stats = sim.run()
        assert stats.tasks_spilled == 0


class TestCommitQueuePressure:
    def test_tiny_commit_queue_still_completes(self):
        sim = sim_with(n_cores=4, commit_queue_per_core=1)
        cell = sim.cell("c", 0)

        def t(ctx):
            cell.add(ctx, 1)
            ctx.compute(50)

        for _ in range(40):
            sim.enqueue_root(t)
        stats = sim.run(max_cycles=20_000_000)
        assert cell.peek() == 40

    def test_stall_cycles_recorded(self):
        """Long tasks + tiny commit queue: finished tasks wait for
        entries, which the breakdown must show as stalls."""
        sim = sim_with(n_cores=4, commit_queue_per_core=1,
                       commit_interval=500)
        arr = sim.array("a", 64 * 8)

        def t(ctx, i):
            arr.set(ctx, i * 8, 1)
            ctx.compute(40)

        for i in range(64):
            sim.enqueue_root(t, i)
        stats = sim.run(max_cycles=20_000_000)
        assert stats.breakdown.stall > 0

    def test_ordered_pressure_aborts_make_progress(self):
        """Commit queues wedged behind an earlier unfinished task trigger
        the abort-to-free-space path (paper Sec. 4.1)."""
        sim = Simulator(SystemConfig.with_cores(
            4, commit_queue_per_core=1, conflict_mode="precise"),
            root_ordering=Ordering.ORDERED_32)
        cell = sim.cell("c", 0)

        def late(ctx):
            cell.add(ctx, 1)
            ctx.compute(30)

        def early_parent(ctx):
            # enqueued last but with the earliest timestamps
            for _ in range(4):
                ctx.enqueue(late, ts=1)
            ctx.compute(2000)

        for _ in range(30):
            sim.enqueue_root(late, ts=10)
        sim.enqueue_root(early_parent, ts=0)
        stats = sim.run(max_cycles=20_000_000)
        assert cell.peek() == 34


class TestSuperlinearCapacity:
    def test_bigger_systems_have_bigger_queues(self):
        """Per-core capacities are constant, so total capacity grows with
        the system (paper Sec. 5)."""
        small = SystemConfig.with_cores(4)
        big = SystemConfig.with_cores(64)
        assert big.total_task_queue == 16 * small.total_task_queue
        assert big.total_commit_queue == 16 * small.total_commit_queue
