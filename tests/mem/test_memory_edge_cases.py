"""Edge-case tests for versioned memory: chains, snapshots, undo order."""

import pytest

from repro.errors import SimulationError
from repro.mem.undo_log import UndoLog


class TestUndoLog:
    def test_first_preimage_wins(self):
        log = UndoLog()
        log.record(1, "original")
        log.record(1, "should be ignored")
        assert list(log.reversed_entries()) == [(1, "original")]

    def test_reverse_order(self):
        log = UndoLog()
        for i in range(4):
            log.record(i, i * 10)
        assert [a for a, _ in log.reversed_entries()] == [3, 2, 1, 0]

    def test_contains_and_len(self):
        log = UndoLog()
        log.record(5, None)
        assert 5 in log and 6 not in log
        assert len(log) == 1

    def test_clear(self):
        log = UndoLog()
        log.record(1, 2)
        log.clear()
        assert len(log) == 0


class TestWriterChains:
    def test_three_writer_chain_rollback_middle_cascades(self, mem,
                                                         owner_factory):
        mem.poke(100, "base")
        t1, t2, t3 = owner_factory(1), owner_factory(2), owner_factory(3)
        mem.store(t1, 100, "a")
        mem.store(t2, 100, "b")
        mem.store(t3, 100, "c")
        # aborting t2 must cascade to t3 (WAW dependence), leaving t1's
        mem.abort_cascade([t2], "test")
        assert mem.peek(100) == "a"
        assert t3.aborted and not t1.aborted

    def test_committed_snapshot_with_chain(self, mem, owner_factory):
        mem.poke(100, "base")
        t1, t2 = owner_factory(1), owner_factory(2)
        mem.store(t1, 100, "a")
        mem.store(t2, 100, "b")
        assert mem.committed_snapshot()[100] == "base"
        mem.commit(t1)
        assert mem.committed_snapshot()[100] == "a"
        mem.commit(t2)
        assert mem.committed_snapshot()[100] == "b"

    def test_interleaved_addresses_rollback(self, mem, owner_factory):
        for a in (0, 8, 16):
            mem.poke(a, f"base{a}")
        t = owner_factory(1)
        mem.store(t, 0, "x")
        mem.store(t, 16, "y")
        mem.store(t, 0, "z")
        mem.rollback(t)
        assert mem.peek(0) == "base0"
        assert mem.peek(16) == "base16"
        mem.assert_quiescent()

    def test_rollback_of_nontail_rejected(self, mem, owner_factory):
        t1, t2 = owner_factory(1), owner_factory(2)
        mem.store(t1, 100, "a")
        mem.store(t2, 100, "b")
        with pytest.raises(SimulationError):
            mem.rollback(t1)   # t2 is the tail; cascade order violated

    def test_reader_dependence_cleared_on_commit(self, mem, owner_factory):
        t1, t2 = owner_factory(1), owner_factory(2)
        mem.store(t1, 100, "v")
        mem.load(t2, 100)
        mem.commit(t1)
        assert t1 not in t2.deps
        # t2 no longer cascades from anything
        mem.commit(t2)
        mem.assert_quiescent()

    def test_counters(self, mem, owner_factory):
        t = owner_factory(1)
        mem.load(t, 0)
        mem.store(t, 0, 1)
        assert mem.n_loads == 1 and mem.n_stores == 1
