"""Farm execution tests: determinism, cache, retries, crash recovery.

The pool tests fork real worker processes running the fake app in
``tests/farm/_fakeapp.py`` (importable in workers because pytest puts the
repo root on ``sys.path`` and fork inherits it).
"""

import pytest

from repro.errors import FarmError
from repro.farm import Farm, JobSpec, ResultCache, stable_digest
from repro.faults import ResiliencePolicy
from repro.telemetry import EventBus, EventRecorder, MetricsRegistry

FAKEAPP = "tests.farm._fakeapp"

#: near-zero backoff so retry tests don't sleep for real
FAST_RETRY = ResiliencePolicy(backoff_base=1, backoff_factor=1.0,
                              backoff_cap=1)


def specs_for(counts=(4, 6, 8), **extra):
    return [JobSpec(app=FAKEAPP, variant="fractal", n_cores=2,
                    input_kwargs={"n_tasks": n, **extra},
                    label=f"fake-{n}") for n in counts]


def stats_digests(results):
    return [stable_digest(r.stats.to_dict()) for r in results]


class TestInline:
    def test_ordered_ok_results(self):
        farm = Farm(jobs=1)
        results = farm.run(specs_for())
        assert [r.label for r in results] == ["fake-4", "fake-6", "fake-8"]
        assert all(r.ok and not r.cached for r in results)
        assert [r.stats.tasks_committed for r in results] == [4, 6, 8]
        farm.raise_on_failures(results)  # no-op on success
        assert farm.summary()["done"] == 3
        assert farm.summary()["failed"] == 0

    def test_metrics_merged_into_parent_registry(self):
        reg = MetricsRegistry()
        farm = Farm(jobs=1, registry=reg)
        farm.run(specs_for(counts=(4,)))
        snap = reg.snapshot()
        names = {c["name"] for c in snap["counters"]}
        assert "farm_jobs" in names
        # and the worker simulator's own metrics were merged in
        assert len(names) > 1

    def test_retry_until_success(self, tmp_path):
        spec = JobSpec(app=FAKEAPP, variant="fractal", n_cores=2,
                       input_kwargs={"n_tasks": 4, "fail_times": 1,
                                     "scratch": str(tmp_path / "s")})
        farm = Farm(jobs=1, max_attempts=3, retry_policy=FAST_RETRY)
        (res,) = farm.run([spec])
        assert res.ok
        assert res.attempts == 2
        assert farm.summary()["retries"] == 1

    def test_retries_exhausted_reported_not_raised(self, tmp_path):
        spec = JobSpec(app=FAKEAPP, variant="fractal", n_cores=2,
                       input_kwargs={"n_tasks": 4, "fail_times": 99,
                                     "scratch": str(tmp_path / "s")},
                       label="doomed")
        farm = Farm(jobs=1, max_attempts=2, retry_policy=FAST_RETRY)
        (res,) = farm.run([spec])
        assert not res.ok
        assert "transient fake-app failure" in res.error
        assert res.attempts == 2
        with pytest.raises(FarmError) as err:
            farm.raise_on_failures([res])
        assert err.value.failures == [("doomed", res.error)]

    def test_shard_filter(self):
        specs = specs_for(counts=(4, 5, 6, 7, 8, 9))
        full = {s.digest() for s in specs}
        seen = set()
        for k in (1, 2, 3):
            results = Farm(jobs=1).run(specs, shard=(k, 3))
            assert seen.isdisjoint(r.digest for r in results)
            seen.update(r.digest for r in results)
        assert seen == full


class TestCacheIntegration:
    def test_second_run_all_hits(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="t1")
        cold = Farm(jobs=1, cache=cache)
        first = cold.run(specs_for())
        assert all(not r.cached for r in first)
        warm = Farm(jobs=1, cache=cache)
        second = warm.run(specs_for())
        assert all(r.cached for r in second)
        assert warm.summary()["cache_hits"] == 3
        assert stats_digests(first) == stats_digests(second)

    def test_cache_hit_emits_event(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="t1")
        Farm(jobs=1, cache=cache).run(specs_for(counts=(4,)))
        bus = EventBus()
        rec = bus.subscribe(EventRecorder())
        Farm(jobs=1, cache=cache, bus=bus).run(specs_for(counts=(4,)))
        kinds = [e.kind for e in rec.events]
        assert "cache_hit" in kinds
        assert "job_start" not in kinds

    def test_timeout_partial_result_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="t1")
        spec = JobSpec(app=FAKEAPP, variant="fractal", n_cores=1,
                       input_kwargs={"n_tasks": 50_000,
                                     "work_cycles": 1000})
        farm = Farm(jobs=1, cache=cache, timeout_s=0.01)
        (res,) = farm.run([spec])
        assert res.ok                    # graceful stop, not an error
        assert not res.stats.completed   # but the run is partial
        assert res.stats.failure is not None
        assert cache.entries() == 0      # partials never cached
        # and the timed spec is a distinct content address
        assert farm._with_timeout(spec).digest() != spec.digest()


class TestPool:
    def test_parallel_matches_inline(self):
        specs = specs_for()
        inline = Farm(jobs=1).run(specs_for())
        pooled = Farm(jobs=2, warmup=False).run(specs)
        assert [r.label for r in pooled] == [r.label for r in inline]
        assert stats_digests(pooled) == stats_digests(inline)
        assert all(r.metrics is not None for r in pooled)

    def test_events_per_job(self):
        bus = EventBus()
        rec = bus.subscribe(EventRecorder())
        Farm(jobs=2, bus=bus, warmup=False).run(specs_for())
        starts = [e for e in rec.events if e.kind == "job_start"]
        dones = [e for e in rec.events if e.kind == "job_done"]
        assert len(starts) == 3 and len(dones) == 3
        assert all(d.ok for d in dones)

    def test_pool_retry(self, tmp_path):
        specs = specs_for(counts=(4, 6))
        specs.append(JobSpec(app=FAKEAPP, variant="fractal", n_cores=2,
                             input_kwargs={"n_tasks": 4, "fail_times": 1,
                                           "scratch": str(tmp_path / "s")}))
        farm = Farm(jobs=2, max_attempts=3, retry_policy=FAST_RETRY,
                    warmup=False)
        results = farm.run(specs)
        assert all(r.ok for r in results)
        assert results[-1].attempts == 2
        assert farm.summary()["retries"] == 1

    def test_worker_crash_recovery(self, tmp_path):
        bus = EventBus()
        rec = bus.subscribe(EventRecorder())
        specs = specs_for(counts=(4, 6))
        specs.append(JobSpec(app=FAKEAPP, variant="fractal", n_cores=2,
                             input_kwargs={"n_tasks": 4, "crash_times": 1,
                                           "scratch": str(tmp_path / "s")},
                             label="crasher"))
        farm = Farm(jobs=2, max_attempts=3, retry_policy=FAST_RETRY,
                    bus=bus, warmup=False)
        results = farm.run(specs)
        assert [r.label for r in results][:2] == ["fake-4", "fake-6"]
        assert all(r.ok for r in results)
        assert farm.summary()["worker_crashes"] >= 1
        assert any(e.kind == "worker_crash" for e in rec.events)

    def test_crash_exhausts_attempts(self, tmp_path):
        spec = JobSpec(app=FAKEAPP, variant="fractal", n_cores=2,
                       input_kwargs={"n_tasks": 4, "crash_times": 99,
                                     "scratch": str(tmp_path / "s")},
                       label="always-crashes")
        farm = Farm(jobs=2, max_attempts=2, retry_policy=FAST_RETRY,
                    warmup=False)
        (res,) = farm.run([spec])
        assert not res.ok
        assert "crash" in res.error or "broke" in res.error
        with pytest.raises(FarmError):
            farm.raise_on_failures([res])


class TestSweepCores:
    def test_sweep_jobs_param_matches_serial(self):
        from repro.apps import zoomtree
        from repro.bench.harness import sweep_cores

        inp = zoomtree.make_input(fanout=2, depth=3)
        serial = sweep_cores(zoomtree, inp, ["fractal"], [1, 2])
        parallel = sweep_cores(zoomtree, inp, ["fractal"], [1, 2], jobs=2)
        assert stats_digests(serial) == stats_digests(parallel)
        assert all(r.cached for r in parallel)  # no live simulator
        with pytest.raises(AttributeError):
            parallel[0].sim
