"""Versioned speculative memory (paper Sec. 4.1).

:class:`SpecMemory` is the single shared memory of a simulated chip. Every
speculative load/store flows through it:

- **Eager version management** — stores update memory in place and log the
  pre-image in the owner's undo log.
- **Eager conflict detection, earlier-VT-wins** — an access by task T
  immediately aborts every live later-VT task whose read/write set
  conflicts with it (the simulator supplies the ``abort_cascade`` callback
  that also kills descendants and data-dependent tasks).
- **Speculative forwarding with dependence tracking** — a load returns the
  latest (possibly still-speculative) value; the reader records a
  dependence on the speculative writer so that the writer's abort cascades
  to it (paper: "Swarm always forwards still-speculative data read by a
  later task. On a conflict, Swarm aborts only descendants and
  data-dependent tasks").

Conflict *detection* happens at cache-line granularity (real false
sharing); versioning and dependences are word-granular.

Engines
-------

Per-access semantics are load-bearing: a conflicting later task must be
aborted *before* the accessor reads a value, so detection cannot simply be
deferred to end-of-task. What CAN be batched is the re-probe: within one
task body, the population of a line's reader/writer indices only changes
when an access registers a first touch or an abort cascade scrubs a
victim. ``SpecMemory`` therefore keeps per-line *population epochs* —
one for reader membership, one for writer membership, each bumped on any
change — and memoizes, per owner, the epochs at which a line was last
probed clean. Re-accesses at unchanged epochs skip the victim scans
entirely: a read-grade memo watches only the writer epoch (new readers
cannot conflict with a load), a write-grade memo watches both. Since
probes find work only when the relevant membership changed, the memoized
decision is exactly the scalar one.

Three engines share all bookkeeping and differ only in probing:

- ``fast`` (default) — epoch-memoized probes as above.
- ``scalar`` — the pre-vectorization reference: a full chain walk on
  every access, no memoization.
- ``audit`` — the fast engine, but every memoized skip is cross-checked
  against a reference probe and any divergence raises
  :class:`SimulationError` (the ``REPRO_GVT_AUDIT`` pattern).

Select with the constructor's ``engine=`` or the environment:
``REPRO_MEM_AUDIT=1`` forces ``audit``; ``REPRO_MEM_ENGINE=scalar|fast``
overrides the default. RunStats-visible counters (loads, stores, true /
injected conflicts) and all values, victims, and dependences are
byte-identical across engines; only the profile-only probe counters
(``probe_steps``, ``fast_hits``, ``slow_probes``, ``epoch_bumps``) differ.

The false-positive sampler and fault hook are deliberately invoked once
per access in *every* engine — they consume seeded RNG draws, so skipping
them on the fast path would desynchronize Bloom-mode runs.

Owners are task attempts; the protocol they must satisfy is documented on
:class:`OwnerProtocol`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..errors import MemoryError_, SimulationError
from ..telemetry.events import ConflictEvent
from .address import AddressSpace
from .conflicts import ConflictPolicy, PreciseConflictModel
from .undo_log import UndoLog

_ENGINES = ("fast", "scalar", "audit")


class OwnerProtocol:
    """What :class:`SpecMemory` requires of a speculative owner.

    Attributes (installed by :meth:`SpecMemory.attach_owner`):

    - ``undo`` (:class:`UndoLog`), ``reads`` / ``writes`` (addr→value, for
      the serializability audit), ``read_lines`` / ``write_lines`` (sets),
      ``deps`` / ``dependents`` (owner sets), ``sig_read`` / ``sig_write``,
      ``_okey`` (cached ``order_key()``; refreshed by
      :meth:`SpecMemory.refresh_order_keys` after global VT rewrites),
      ``_line_memo`` (line → packed probe epoch, fast engine only).

    Methods the owner class must provide:

    - ``order_key()`` — current fractal-VT sort key; totally orders all
      live owners and is consistent for the lifetime of each access chain.
    - ``still_executing()`` — True while the owner's stores are conceptually
      in flight (its finish event lies in the simulated future). May decay
      to False during an attempt but never rises again without a fresh
      attach (the fast engine's memoization relies on this).
    """


@dataclass
class AccessRecord:
    """One access, as recorded for traces and latency accounting."""

    addr: int
    is_write: bool
    latency: int


def _default_engine() -> str:
    if os.environ.get("REPRO_MEM_AUDIT", "") == "1":
        return "audit"
    return os.environ.get("REPRO_MEM_ENGINE", "") or "fast"


class SpecMemory:
    """The chip's shared memory with speculative versioning."""

    def __init__(self, space: AddressSpace,
                 conflict_model: Optional[ConflictPolicy] = None,
                 default_value: Any = 0,
                 engine: Optional[str] = None):
        self.space = space
        self.conflicts = conflict_model or PreciseConflictModel()
        self.default = default_value
        if engine is None:
            engine = _default_engine()
        if engine not in _ENGINES:
            raise MemoryError_(
                f"unknown memory engine {engine!r} (expected one of "
                f"{', '.join(_ENGINES)})")
        self.engine = engine
        self._fast = engine != "scalar"
        self._audit = engine == "audit"
        self._values: Dict[int, Any] = {}
        # line → live speculative readers (insertion-ordered dict-as-set:
        # victim enumeration must not depend on object addresses) /
        # VT-ordered writer chains
        self._line_readers: Dict[int, Dict] = {}
        self._line_writers: Dict[int, List] = {}
        # word → VT-ordered live speculative writer chain
        self._word_writers: Dict[int, List] = {}
        # per-line population epochs (fast engine): bumped whenever a
        # line's reader (_repoch) / writer (_wepoch) membership changes,
        # so memoized clean probes invalidate with one int compare. Both
        # only ever increase, so their sum changes iff either changes.
        self._repoch: List[int] = [0] * 1024
        self._wepoch: List[int] = [0] * 1024
        # skip the per-access false-positive sampler when the model never
        # samples (precise mode): it consumes no RNG there, so eliding the
        # call cannot desynchronize anything
        self._sample_fp = getattr(self.conflicts,
                                  "samples_false_positives", True)
        # bound once: called on every access when the model samples
        self._false_conflict = self.conflicts.false_conflict
        lw = space.line_words
        self._line_shift = lw.bit_length() - 1 if lw & (lw - 1) == 0 else None
        #: abort callback installed by the simulator: abort_cascade(victims,
        #: reason) must roll every victim (and its cascade) back before
        #: returning. Standalone/serial use may leave it unset as long as
        #: no conflicts arise.
        self.abort_cascade: Optional[Callable[[List, str], None]] = None
        #: notified on every poke; the simulator folds mid-run
        #: initialization pokes (fresh SpecDict slots) into the audit's
        #: initial snapshot.
        self.on_poke: Optional[Callable[[int, Any], None]] = None
        #: telemetry (installed by the simulator): a falsy bus disables
        #: conflict events; ``clock`` supplies the current cycle.
        self.bus = None
        self.clock: Callable[[], int] = lambda: 0
        #: fault injection (installed by the simulator when a plan forces
        #: conflicts): ``fault_hook(owner, line, is_write) -> bool``; True
        #: aborts the accessor as if its access had conflicted. None when
        #: injection is off — one None check per access, like ``bus``.
        self.fault_hook: Optional[Callable] = None
        # counters (folded into RunStats)
        self.n_loads = 0
        self.n_stores = 0
        self.n_true_conflicts = 0
        self.n_injected_conflicts = 0
        # profiling-only counters (out of the metrics registry unless
        # `repro profile` asks; engines legitimately differ here)
        #: candidate owners examined by per-line conflict checks
        self.probe_steps = 0
        #: accesses that walked the chains (every access, under scalar);
        #: ``fast_hits`` is derived from this — see the property below
        self.slow_probes = 0
        #: line-population changes observed (fast/audit engines)
        self.epoch_bumps = 0

    # ------------------------------------------------------------------
    # owner lifecycle
    # ------------------------------------------------------------------
    def attach_owner(self, owner) -> None:
        """Initialize per-attempt speculative state on ``owner``."""
        owner.undo = UndoLog()
        owner.reads = {}
        owner.writes = {}
        owner.read_lines = set()
        owner.write_lines = set()
        owner.deps = set()
        owner.dependents = set()
        owner._okey = owner.order_key()
        owner._line_memo = {}
        self.conflicts.register(owner)

    def detach_owner(self, owner) -> None:
        """Drop conflict-model tracking (commit and abort paths)."""
        self.conflicts.unregister(owner)

    def refresh_order_keys(self) -> None:
        """Re-cache every live owner's VT sort key.

        The simulator calls this after global VT rewrites (zoom,
        tiebreaker compaction). Rewrites preserve the *relative* order of
        live tasks, so memoized clean probes stay valid — only the cached
        keys need recomputing.
        """
        for owner in self.conflicts.live_owners():
            owner._okey = owner.order_key()

    # ------------------------------------------------------------------
    # non-speculative access (initialization / result inspection)
    # ------------------------------------------------------------------
    def poke(self, addr: int, value: Any) -> None:
        """Non-speculative store; only valid while no task speculates on
        the address's *line* (initialization and between-phase setup).

        Conflict detection is line-granular, so a poke under a live line
        reader or writer would mutate state those tasks have speculated
        on without aborting them — reject all of it, not just live word
        writers. Mid-run slot birth uses :meth:`poke_fresh` instead.
        """
        line = self.space.line_of(addr)
        if self._word_writers.get(addr):
            raise MemoryError_(f"poke({addr}) while speculative writers exist")
        if self._line_readers.get(line):
            raise MemoryError_(
                f"poke({addr}) while line {line} has live speculative readers")
        if self._line_writers.get(line):
            raise MemoryError_(
                f"poke({addr}) while line {line} has live speculative "
                f"writers on other words")
        self._values[addr] = value
        if self.on_poke is not None:
            self.on_poke(addr, value)

    def poke_fresh(self, addr: int, value: Any) -> None:
        """Non-speculative initialization of a never-touched word.

        The one legal mid-run poke: giving a *newly allocated* word its
        initial value (SpecDict slot birth). The word must hold no value
        and no speculative writer; the rest of its line may be under live
        speculation — allocation is not a mutation of any word a task
        could have accessed, so line-sharing tasks are unaffected.
        """
        if addr in self._values or self._word_writers.get(addr):
            raise MemoryError_(
                f"poke_fresh({addr}) on a word that already holds a value")
        self._values[addr] = value
        if self.on_poke is not None:
            self.on_poke(addr, value)

    def peek(self, addr: int) -> Any:
        """Non-speculative load of the current (possibly speculative) value."""
        return self._values.get(addr, self.default)

    def committed_snapshot(self) -> Dict[int, Any]:
        """Memory contents with all live speculative writes undone.

        Used by the auditor; O(words written speculatively).
        """
        snap = dict(self._values)
        for addr, chain in self._word_writers.items():
            if chain:
                first = chain[0]
                snap[addr] = first.undo._entries.get(addr, self.default)
        return snap

    # ------------------------------------------------------------------
    # speculative access
    # ------------------------------------------------------------------
    def load(self, owner, addr: int) -> Any:
        """Speculative load by ``owner``; may abort later conflicting tasks."""
        self.n_loads += 1
        shift = self._line_shift
        line = addr >> shift if shift is not None else self.space.line_of(addr)

        if self._fast:
            state = owner._line_memo.get(line)
            hit = False
            if state is not None:
                # epoch lists grow in lockstep (_bump), so one IndexError
                # guard covers both; unseen lines are at epoch 0
                try:
                    if state & 1:
                        hit = (state >> 1
                               == self._wepoch[line] + self._repoch[line])
                    else:
                        hit = state >> 1 == self._wepoch[line]
                except IndexError:
                    hit = state >> 1 == 0
            if hit:
                # relevant population unchanged since this owner's last
                # clean probe of the line: a re-probe finds nothing new.
                memo_bit = state & 1
                if self._audit:
                    self._audit_probe(owner, line, is_write=False)
            else:
                self.slow_probes += 1
                memo_bit = 0
                key = owner._okey
                chain = self._line_writers.get(line)
                if chain:
                    self.probe_steps += len(chain)
                    victims = [w for w in chain
                               if w is not owner and w._okey > key]
                    if victims:
                        self.n_true_conflicts += len(victims)
                        if self.bus:
                            self._emit_conflict("read-write", owner,
                                                victims, line)
                        self._abort(victims, "read-write conflict")
                    self._abort_if_earlier_writer_running(owner, line, key,
                                                          chain)
                    if owner.aborted:
                        return self.default
        else:
            key = owner.order_key()
            chain = self._line_writers.get(line)
            if chain:
                self.probe_steps += len(chain)
                victims = [w for w in chain
                           if w is not owner and w.order_key() > key]
                if victims:
                    self.n_true_conflicts += len(victims)
                    if self.bus:
                        self._emit_conflict("read-write", owner, victims, line)
                    self._abort(victims, "read-write conflict")
                self._abort_if_earlier_writer_running(owner, line, key, chain)
                if owner.aborted:
                    return self.default

        if self._sample_fp:
            other = self._false_conflict(owner, line, False)
            if other is not None:
                self._resolve_false_positive(owner, other, line)
                if owner.aborted:
                    # A sampled false positive against an earlier task
                    # killed the accessor; the caller unwinds via
                    # TaskAborted.
                    return self.default

        if self.fault_hook is not None:
            self._sample_injected_conflict(owner, line, is_write=False)
            if owner.aborted:
                return self.default

        value = self._values.get(addr, self.default)

        wchain = self._word_writers.get(addr)
        if wchain:
            writer = wchain[-1]
            # deps/dependents are always updated as a pair, so membership
            # in one implies the other — skip both set adds on re-reads
            if writer is not owner and writer not in owner.deps:
                owner.deps.add(writer)
                writer.dependents.add(owner)

        if addr not in owner.reads and addr not in owner.writes:
            owner.reads[addr] = value
        if self._fast:
            registered = line not in owner.read_lines
            if registered:
                owner.read_lines.add(line)
                readers = self._line_readers.get(line)
                if readers is None:
                    self._line_readers[line] = {owner: None}
                else:
                    readers[owner] = None
                self._bump(self._repoch, line)
                self.conflicts.note_access(owner, line, is_write=False)
            if registered or not hit:
                # (Re-)memoize post-registration: epoch bumps since the
                # probe were our own registration or cascade scrubs, both
                # of which only shrink-or-self the population the clean
                # probe verified. An unregistered fast hit leaves the
                # memo exactly as it was — no write needed.
                try:
                    wep = self._wepoch[line]
                    rep = self._repoch[line]
                except IndexError:
                    wep = rep = 0
                if memo_bit:
                    owner._line_memo[line] = ((wep + rep) << 1) | 1
                else:
                    owner._line_memo[line] = wep << 1
        else:
            self._line_readers.setdefault(line, {})[owner] = None
            if line not in owner.read_lines:
                owner.read_lines.add(line)
                self.conflicts.note_access(owner, line, is_write=False)
        return value

    def store(self, owner, addr: int, value: Any) -> None:
        """Speculative store by ``owner``; aborts later readers/writers."""
        self.n_stores += 1
        shift = self._line_shift
        line = addr >> shift if shift is not None else self.space.line_of(addr)

        if self._fast:
            state = owner._line_memo.get(line)
            hit = False
            if state is not None and state & 1:
                try:
                    hit = (state >> 1
                           == self._wepoch[line] + self._repoch[line])
                except IndexError:
                    hit = state >> 1 == 0
            if hit:
                # write-grade memo at unchanged epochs: the reader scan
                # and writer-chain walk would find exactly what the last
                # one did — nothing.
                if self._audit:
                    self._audit_probe(owner, line, is_write=True)
            else:
                self.slow_probes += 1
                key = owner._okey
                victims = []
                readers = self._line_readers.get(line)
                if readers:
                    self.probe_steps += len(readers)
                    victims.extend(r for r in readers
                                   if r is not owner and r._okey > key)
                chain = self._line_writers.get(line)
                if chain:
                    self.probe_steps += len(chain)
                    victims.extend(w for w in chain
                                   if w is not owner and w._okey > key
                                   and w not in victims)
                if victims:
                    self.n_true_conflicts += len(victims)
                    if self.bus:
                        self._emit_conflict("write", owner, victims, line)
                    self._abort(victims, "write conflict")
                if chain:
                    self._abort_if_earlier_writer_running(owner, line, key,
                                                          chain)
                    if owner.aborted:
                        return
        else:
            key = owner.order_key()
            victims = []
            readers = self._line_readers.get(line)
            if readers:
                self.probe_steps += len(readers)
                victims.extend(r for r in readers
                               if r is not owner and r.order_key() > key)
            chain = self._line_writers.get(line)
            if chain:
                self.probe_steps += len(chain)
                victims.extend(w for w in chain
                               if w is not owner and w.order_key() > key
                               and w not in victims)
            if victims:
                self.n_true_conflicts += len(victims)
                if self.bus:
                    self._emit_conflict("write", owner, victims, line)
                self._abort(victims, "write conflict")
            if chain:
                self._abort_if_earlier_writer_running(owner, line, key, chain)
                if owner.aborted:
                    return

        if self._sample_fp:
            other = self._false_conflict(owner, line, True)
            if other is not None:
                self._resolve_false_positive(owner, other, line)
                if owner.aborted:
                    return

        if self.fault_hook is not None:
            self._sample_injected_conflict(owner, line, is_write=True)
            if owner.aborted:
                return

        wchain = self._word_writers.get(addr)
        if wchain is None:
            wchain = self._word_writers[addr] = []
        if wchain and wchain[-1] is not owner:
            # write-after-speculative-write: conservative WAW dependence so
            # the earlier writer's abort cascades here and undo chains stay
            # suffix-restorable.
            prev_writer = wchain[-1]
            owner.deps.add(prev_writer)
            prev_writer.dependents.add(owner)
        owner.undo.record(addr, self._values.get(addr, self.default))
        if not wchain or wchain[-1] is not owner:
            wchain.append(owner)

        self._values[addr] = value
        owner.writes[addr] = value
        if line not in owner.write_lines:
            # first line touch as a writer: join the chain (an owner in
            # the chain is always its tail here — eager aborts cleared any
            # later writers before this store proceeded)
            owner.write_lines.add(line)
            lchain = self._line_writers.get(line)
            if lchain is None:
                self._line_writers[line] = [owner]
            else:
                lchain.append(owner)
            if self._fast:
                self._bump(self._wepoch, line)
            self.conflicts.note_access(owner, line, is_write=True)
        if self._fast and not hit:
            # a fast hit leaves the write-grade memo current; a slow probe
            # (or a grade upgrade) re-records it at the post-registration
            # epochs, which only our own bump or cascade scrubs moved.
            try:
                eps = self._wepoch[line] + self._repoch[line]
            except IndexError:
                eps = 0
            owner._line_memo[line] = (eps << 1) | 1

    # ------------------------------------------------------------------
    def _bump(self, ep: List[int], line: int) -> None:
        """Advance one line's reader or writer population epoch.

        Both epoch lists grow in lockstep so the hot-path readers can
        index them under a single IndexError guard.
        """
        if line >= len(ep):
            grow = line + 1025
            for lst in (self._repoch, self._wepoch):
                if grow > len(lst):
                    lst.extend([0] * (grow - len(lst)))
        ep[line] += 1
        self.epoch_bumps += 1

    def _audit_probe(self, owner, line: int, is_write: bool) -> None:
        """Cross-check a memoized skip against the reference probe.

        The fast path claims "a re-probe of this line finds nothing"; run
        the scalar probe and raise if it would have found victims or a
        blocking earlier in-flight writer (``REPRO_GVT_AUDIT`` pattern).
        """
        key = owner.order_key()
        if key != owner._okey:
            raise SimulationError(
                f"REPRO_MEM_AUDIT: stale cached order key for {owner!r} "
                f"(cached {owner._okey!r}, live {key!r}); "
                f"refresh_order_keys() was not called after a VT rewrite")
        chain = self._line_writers.get(line) or ()
        victims = [w for w in chain if w is not owner and w.order_key() > key]
        if is_write and not victims:
            readers = self._line_readers.get(line) or ()
            victims = [r for r in readers
                       if r is not owner and r.order_key() > key]
        blockers = [w for w in chain
                    if w is not owner and w.order_key() < key
                    and w.still_executing()]
        if victims or blockers:
            raise SimulationError(
                f"REPRO_MEM_AUDIT: fast path skipped a probe that finds "
                f"work — {'store' if is_write else 'load'} of line {line} "
                f"by {owner!r}: victims={victims} blockers={blockers}")

    def _abort_if_earlier_writer_running(self, owner, line: int,
                                         key, chain) -> None:
        """Kill the accessor when an earlier-VT task that wrote this line
        is still mid-execution.

        The simulator runs each task body atomically at dispatch, so an
        earlier task's stores are already in memory even though, on real
        hardware, they would land throughout its execution and abort any
        later task that touched the line meanwhile. Treating the pending
        store window as "access now = premature" restores the hardware's
        contention behaviour: later tasks retry until the earlier writer
        finishes, after which ordinary speculative forwarding applies
        (Swarm forwards data of *finished*, still-uncommitted tasks).

        ``chain`` is the line's writer chain the caller already fetched;
        aborts of later writers mutate it in place, so it is still the
        live list (re-fetching could only swap a drained chain for None,
        which iterates the same: not at all).
        """
        if not chain:
            return
        for w in chain:
            if w is not owner and w.order_key() < key and w.still_executing():
                # Tell the scheduler when the blocking store lands, so the
                # retry happens once instead of spinning (one abort per
                # in-flight writer, as on real hardware).
                finish = getattr(w, "dispatch_time", 0) + getattr(w, "duration", 0)
                owner.retry_after = max(getattr(owner, "retry_after", 0), finish)
                self.n_true_conflicts += 1
                if self.bus:
                    self._emit_conflict("premature-access", w, [owner], line)
                self._abort([owner], "access during earlier writer")
                return

    def _emit_conflict(self, cause: str, aggressor, victims: List,
                       line: int) -> None:
        """Publish a :class:`ConflictEvent` (callers guard on ``self.bus``)."""
        self.bus.emit(ConflictEvent(
            self.clock(), line, cause,
            getattr(aggressor, "tid", -1), repr(getattr(aggressor, "vt", None)),
            getattr(getattr(aggressor, "core", None), "cid", None),
            [getattr(v, "tid", -1) for v in victims],
            [repr(getattr(v, "vt", None)) for v in victims],
            [getattr(getattr(v, "core", None), "cid", None) for v in victims]))

    def _abort(self, victims: List, reason: str) -> None:
        if self.abort_cascade is None:
            raise SimulationError(
                f"conflict ({reason}) with no abort_cascade installed")
        self.abort_cascade(victims, reason)

    def _sample_injected_conflict(self, owner, line: int,
                                  is_write: bool) -> None:
        """Fault-injection site: treat this access as a forced conflict.

        The accessor aborts (and retries) exactly as it would on a real
        false positive against an earlier task; callers guard on
        ``self.fault_hook``.
        """
        if not self.fault_hook(owner, line, is_write):
            return
        self.n_injected_conflicts += 1
        if self.bus:
            self._emit_conflict("injected", owner, [owner], line)
        self._abort([owner], "injected conflict")

    def _sample_false_conflict(self, owner, line: int, is_write: bool) -> None:
        """Sample-and-resolve in one step (kept for tests / direct callers;
        the hot paths inline the sampling call and only pay for resolution
        on an actual hit)."""
        other = self.conflicts.false_conflict(owner, line, is_write)
        if other is not None:
            self._resolve_false_positive(owner, other, line)

    def _resolve_false_positive(self, owner, other, line: int) -> None:
        if getattr(other, "aborted", False):
            return
        # Hardware aborts the later of the two; "both signatures matched"
        # carries no direction, so VT decides.
        victim = owner if owner.order_key() > other.order_key() else other
        if self.bus:
            aggressor = other if victim is owner else owner
            self._emit_conflict("false-positive", aggressor, [victim], line)
        self._abort([victim], "false positive")

    # ------------------------------------------------------------------
    # rollback / commit
    # ------------------------------------------------------------------
    def rollback(self, owner) -> None:
        """Undo ``owner``'s writes and drop its speculative footprint.

        The caller (abort cascade) must invoke this latest-first across the
        cascade so each owner is the most recent writer of its words.
        """
        for addr, prev in owner.undo.reversed_entries():
            chain = self._word_writers.get(addr)
            if not chain or chain[-1] is not owner:
                raise SimulationError(
                    f"rollback of non-tail writer at addr {addr}")
            chain.pop()
            if not chain:
                del self._word_writers[addr]
            self._values[addr] = prev
        self._scrub(owner)

    def commit(self, owner) -> None:
        """Make ``owner``'s writes permanent and drop its footprint."""
        for addr in owner.undo._entries:
            chain = self._word_writers.get(addr)
            if not chain or chain[0] is not owner:
                raise SimulationError(
                    f"commit of non-head writer at addr {addr}")
            chain.pop(0)
            if not chain:
                del self._word_writers[addr]
        self._scrub(owner)

    def _scrub(self, owner) -> None:
        """Remove ``owner`` from the line indices (commit and abort paths).

        Strict: an owner whose footprint sets name a line it is not
        actually indexed under means the bookkeeping is corrupted —
        raising here, with the owner and line at hand, beats the distant
        `assert_quiescent` failure the old swallow-and-continue produced.
        """
        fast = self._fast
        for line in owner.read_lines:
            readers = self._line_readers.get(line)
            if readers is None or owner not in readers:
                raise SimulationError(
                    f"scrub: {owner!r} missing from the reader index of "
                    f"line {line} (memory bookkeeping corrupted)")
            del readers[owner]
            if not readers:
                del self._line_readers[line]
            if fast:
                self._bump(self._repoch, line)
        for line in owner.write_lines:
            chain = self._line_writers.get(line)
            try:
                chain.remove(owner)
            except (AttributeError, ValueError):
                raise SimulationError(
                    f"scrub: {owner!r} missing from the writer chain of "
                    f"line {line} (memory bookkeeping corrupted)") from None
            if not chain:
                del self._line_writers[line]
            if fast:
                self._bump(self._wepoch, line)
        for dep in owner.deps:
            dep.dependents.discard(owner)
        for dependent in owner.dependents:
            dependent.deps.discard(owner)
        owner.deps = set()
        owner.dependents = set()
        owner._line_memo = {}
        self.detach_owner(owner)

    # ------------------------------------------------------------------
    @property
    def fast_hits(self) -> int:
        """Accesses whose probe was skipped via a valid line memo.

        Every load/store is classified exactly once — memoized skip or
        chain walk — so the count is derived rather than incremented on
        the hot path (0 under the scalar engine, which walks every time).
        """
        return self.n_loads + self.n_stores - self.slow_probes

    @property
    def live_speculative_words(self) -> int:
        """Words currently holding uncommitted speculative values."""
        return len(self._word_writers)

    def assert_quiescent(self) -> None:
        """Check that no speculative state remains (end-of-run invariant)."""
        if self._word_writers or self._line_readers or self._line_writers:
            raise SimulationError(
                f"memory not quiescent: {len(self._word_writers)} spec words, "
                f"{len(self._line_readers)} read lines, "
                f"{len(self._line_writers)} written lines")
