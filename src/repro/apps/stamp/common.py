"""Shared machinery for the STAMP ports (Fig. 17 feature ladder)."""

from __future__ import annotations

from typing import Callable, Optional

from ...errors import AppError

STAMP_VARIANTS = ("tm", "hwq", "fractal")


def require_stamp_variant(variant: str, allowed=STAMP_VARIANTS) -> str:
    if variant not in allowed:
        raise AppError(f"unknown STAMP variant {variant!r}; pick from {allowed}")
    return variant


def drive_workload(host, n_units: int, unit_fn: Callable, variant: str, *,
                   hint_fn: Optional[Callable[[int], int]] = None,
                   n_workers: int = 32, label: str = "txn") -> None:
    """Feed ``n_units`` work units (ids 0..n-1) to ``unit_fn(ctx, uid)``.

    - ``tm``: the original STAMP shape — worker transactions pull unit ids
      from a *software* work queue held in transactional memory. Every pop
      reads and writes the queue head inside the worker's transaction, so
      concurrent workers serialize through it (the scaling wall the
      +HWQueues step of Fig. 17 removes).
    - ``hwq`` / ``fractal``: one hardware-queued task per unit, with
      spatial hints from ``hint_fn``.
    """
    if variant == "tm":
        queue = host.queue("stamp.workq", capacity=n_units + 1)
        # pre-fill non-speculatively
        for uid in range(n_units):
            queue.mem.poke(queue.region.addr(queue._BUF + uid % queue.capacity),
                           uid)
        queue.mem.poke(queue.region.addr(queue._TAIL), n_units)

        def worker(ctx):
            uid = queue.pop(ctx, default=None)
            if uid is None:
                return
            unit_fn(ctx, uid)
            ctx.enqueue(worker, label="worker")

        for _ in range(min(n_workers, n_units)):
            host.enqueue_root(worker, label="worker")
    else:
        for uid in range(n_units):
            host.enqueue_root(unit_fn, uid,
                              hint=hint_fn(uid) if hint_fn else None,
                              label=label)
