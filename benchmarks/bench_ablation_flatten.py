"""Ablation: flattening unnecessary nesting (paper Sec. 6.3 future work).

"Nesting could be overused (e.g., increasing the nesting depth at every
intermediate step of a divide-and-conquer algorithm), which would limit
parallelism. ... a compiler pass may be able to safely flatten unnecessary
nesting levels." This bench over-nests the domain-tree microbenchmark
under a tight VT budget and shows the flattening policy removing the
zooming cost.
"""

from _common import core_counts, emit, once, run_once
from repro.apps import zoomtree
from repro.bench.report import format_table
from repro.config import SystemConfig


def sweep(n_cores):
    inp = zoomtree.make_input(fanout=3, depth=6)
    rows = []
    results = {}
    for name, flatten in (("nested", False), ("flattened", True)):
        cfg = SystemConfig.with_cores(
            n_cores, vt_bits=64, conflict_mode="precise",
            flatten_nesting=flatten, flatten_depth_threshold=2)
        # result check runs inside run_once (check=True); cached repeats
        # are served straight from the result cache
        run = run_once(zoomtree, inp, "fractal", n_cores, config=cfg,
                       flattenable=True, max_cycles=200_000_000)
        results[name] = run
        rows.append([name, f"{run.makespan:,}", run.stats.zoom_ins,
                     run.stats.domains_flattened, run.stats.max_depth])
    emit(f"ablation_flatten_{n_cores}c", format_table(
        ["policy", "makespan", "zoom-ins", "levels flattened",
         "max depth"], rows))
    return results


def bench_ablation_flatten(benchmark):
    n = max(core_counts(quick=True))
    results = once(benchmark, lambda: sweep(n))
    assert results["nested"].stats.zoom_ins > 0
    assert results["flattened"].stats.zoom_ins == 0
    assert results["flattened"].makespan <= results["nested"].makespan


if __name__ == "__main__":
    sweep(max(core_counts()))
