"""Swarm sssp: single-source shortest paths with timestamp = tentative
distance (speculative Dijkstra).

Each task visits one (node, distance) candidate: the first visit of a node
(smallest timestamp — the execution model guarantees timestamp order)
claims its distance and relaxes its out-edges by enqueueing candidates at
``ts = dist + weight``. Later candidates for a settled node are no-ops.
Integer weights keep timestamps exact.
"""

from __future__ import annotations

import random
from typing import Dict

from ...errors import AppError
from ...graphs import Graph, rmat
from ...vt import Ordering
from ..common import require_variant

UNSETTLED = -1


def make_input(scale: int = 7, edge_factor: int = 4, max_weight: int = 16,
               seed: int = 22) -> Graph:
    g = rmat(scale, edge_factor, seed=seed)
    rng = random.Random(seed ^ 0x55)
    for u, v in g.edges():
        w = rng.randint(1, max_weight)
        g.weights[(u, v)] = w
        g.weights[(v, u)] = w
    return g


def build(host, g: Graph, variant: str = "swarm", source: int = 0) -> Dict:
    require_variant(variant, ("swarm",))
    dist = host.array("sssp.dist", g.n * 8, fill=UNSETTLED)
    adj = [tuple((ngh, int(g.weight(v, ngh))) for ngh in g.neighbors(v))
           for v in range(g.n)]

    def visit(ctx, v, d):
        if dist.get(ctx, v * 8) != UNSETTLED:
            return
        dist.set(ctx, v * 8, d)
        ctx.compute(6)
        for (ngh, w) in adj[v]:
            ctx.enqueue(visit, ngh, d + w, ts=d + w, hint=ngh,
                        label="visit")

    host.enqueue_root(visit, source, 0, ts=0, hint=source, label="visit")
    return {"dist": dist, "graph": g, "source": source}


def root_ordering(variant: str) -> Ordering:
    return Ordering.ORDERED_32


def check(handles: Dict, g: Graph) -> int:
    """Distances must match networkx Dijkstra; returns reached count."""
    import networkx as nx

    source = handles["source"]
    want = nx.single_source_dijkstra_path_length(g.to_networkx(), source)
    reached = 0
    for v in range(g.n):
        got = handles["dist"].peek(v * 8)
        if v in want:
            reached += 1
            if got != int(want[v]):
                raise AppError(f"dist[{v}] = {got}, expected {int(want[v])}")
        elif got != UNSETTLED:
            raise AppError(f"unreachable node {v} got distance {got}")
    return reached
