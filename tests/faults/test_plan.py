"""FaultPlan construction, validation, round-trips, and file loading."""

import json

import pytest

from repro.errors import ConfigError
from repro.faults import FaultPlan, ResiliencePolicy, load_fault_file
from repro.faults.plan import SITES, hash01


class TestHash01:
    def test_deterministic_and_bounded(self):
        draws = [hash01(7, 1, tid, attempt)
                 for tid in range(50) for attempt in range(3)]
        assert draws == [hash01(7, 1, tid, attempt)
                         for tid in range(50) for attempt in range(3)]
        assert all(0.0 <= d < 1.0 for d in draws)

    def test_varies_with_every_argument(self):
        base = hash01(1, 2, 3, 4)
        assert hash01(2, 2, 3, 4) != base
        assert hash01(1, 3, 3, 4) != base
        assert hash01(1, 2, 4, 4) != base
        assert hash01(1, 2, 3, 5) != base
        assert hash01(1, 2, 3, 4, 1) != base

    def test_roughly_uniform(self):
        draws = [hash01(0, 1, i, 1) for i in range(2000)]
        assert 0.45 < sum(draws) / len(draws) < 0.55


class TestFaultPlan:
    def test_defaults_inject_nothing(self):
        assert not FaultPlan().injects_anything

    @pytest.mark.parametrize("field", ["task_exception_rate",
                                       "conflict_rate", "slow_task_rate"])
    def test_any_rate_activates(self, field):
        assert FaultPlan(**{field: 0.1}).injects_anything

    def test_queue_squeeze_activates(self):
        assert FaultPlan(queue_capacity_factor=0.5).injects_anything

    @pytest.mark.parametrize("kwargs", [
        {"task_exception_rate": 1.5},
        {"conflict_rate": -0.1},
        {"slow_task_factor": 0},
        {"queue_capacity_factor": 0.0},
        {"queue_capacity_factor": 1.5},
        {"max_injections": -1},
    ])
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ConfigError):
            FaultPlan(**kwargs)

    def test_round_trip(self):
        plan = FaultPlan(seed=9, task_exception_rate=0.25,
                         slow_task_rate=0.1, slow_task_factor=5,
                         max_injections=100, labels=("relax", "visit"))
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        json.dumps(plan.to_dict())  # JSON-safe

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigError, match="unknown FaultPlan keys"):
            FaultPlan.from_dict({"task_exception_rate": 0.1, "typo": 1})

    def test_labels_list_coerced_to_tuple(self):
        plan = FaultPlan(labels=["a", "b"])
        assert plan.labels == ("a", "b")

    def test_sites_cover_the_documented_set(self):
        assert set(SITES) == {"task_exception", "conflict", "slow_task",
                              "queue_squeeze"}


class TestLoadFaultFile:
    def _write(self, tmp_path, doc):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(doc))
        return path

    def test_full_file(self, tmp_path):
        path = self._write(tmp_path, {
            "seed": 5,
            "faults": {"task_exception_rate": 0.1},
            "resilience": {"max_attempts": 3},
        })
        plan, policy = load_fault_file(path)
        assert plan.seed == 5
        assert plan.task_exception_rate == 0.1
        assert policy == ResiliencePolicy(max_attempts=3)

    def test_top_level_seed_hoisted_into_faults(self, tmp_path):
        plan, _ = load_fault_file(self._write(tmp_path, {"seed": 11}))
        assert plan.seed == 11

    def test_missing_resilience_is_none(self, tmp_path):
        plan, policy = load_fault_file(self._write(
            tmp_path, {"faults": {"conflict_rate": 0.2}}))
        assert policy is None
        assert plan.conflict_rate == 0.2

    def test_unknown_section_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="unknown fault-file sections"):
            load_fault_file(self._write(tmp_path, {"fautls": {}}))

    def test_non_object_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="JSON object"):
            load_fault_file(self._write(tmp_path, [1, 2]))
