"""Benchmark harness: generic app runners, sweeps, and report tables."""

from .harness import run_app, run_serial, sweep_cores, AppRun
from .report import speedup_table, breakdown_table, format_table

__all__ = [
    "run_app",
    "run_serial",
    "sweep_cores",
    "AppRun",
    "speedup_table",
    "breakdown_table",
    "format_table",
]
