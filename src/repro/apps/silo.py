"""silo: an in-memory transactional database on TPC-C-style transactions
(paper Secs. 1, 2.2, 6.2; Tu et al. [61]).

A scaled-down TPC-C: warehouses with districts, customers, per-warehouse
stock, and an order log. The workload mixes *new-order* transactions
(allocate an order id from the district, decrement stock per line item,
write order-line records, finalize the order) and *payment* transactions
(update warehouse, district, and customer year-to-date balances).

Variants (Figs. 4-5):

- ``flat`` — silo-flat: one unordered task per database transaction (the
  conventional HTM approach); inter-transaction parallelism only.
- ``fractal`` — silo-fractal: each transaction opens an ordered subdomain
  and runs its operations as fine-grain tasks (allocate id at ts 0, line
  items at ts 1, finalize at ts 2). On a conflict only the touched
  operation aborts, not the whole transaction.
- ``swarm`` — silo-swarm (Fig. 5): the same fine-grain tasks in an ordered
  *root* domain, with a disjoint timestamp range per transaction; the
  launcher and the transaction code must agree on the range size, which is
  exactly the composability cost the paper criticizes.

Checked invariants: stock conservation, order-id density, YTD balance
conservation, and order-line consistency against a serial replay oracle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import AppError
from ..vt import Ordering
from .common import VARIANTS_ALL, require_variant

#: timestamps reserved per transaction in the swarm variant (Fig. 5 uses 10)
SWARM_TS_PER_TXN = 10


@dataclass
class Txn:
    kind: str                       # "new_order" | "payment"
    warehouse: int
    district: int
    customer: int
    items: List[Tuple[int, int]] = field(default_factory=list)  # (item, qty)
    amount: int = 0


@dataclass
class SiloInput:
    n_warehouses: int
    n_districts: int
    n_customers: int
    n_items: int
    initial_stock: int
    txns: List[Txn]


def make_input(n_warehouses: int = 2, n_districts: int = 4,
               n_customers: int = 16, n_items: int = 64,
               n_txns: int = 64, items_per_order: int = 4,
               payment_fraction: float = 0.4, seed: int = 5) -> SiloInput:
    """A TPC-C-like mix (paper: 4 warehouses, 32 K txns; toy default 64)."""
    rng = random.Random(seed)
    txns = []
    for _ in range(n_txns):
        wh = rng.randrange(n_warehouses)
        d = rng.randrange(n_districts)
        c = rng.randrange(n_customers)
        if rng.random() < payment_fraction:
            txns.append(Txn("payment", wh, d, c, amount=rng.randint(1, 500)))
        else:
            items = [(rng.randrange(n_items), rng.randint(1, 5))
                     for _ in range(items_per_order)]
            txns.append(Txn("new_order", wh, d, c, items=items))
    return SiloInput(n_warehouses, n_districts, n_customers, n_items,
                     initial_stock=10_000, txns=txns)


def build(host, inp: SiloInput, variant: str = "fractal") -> Dict:
    require_variant(variant, VARIANTS_ALL)
    W, D, C, I = (inp.n_warehouses, inp.n_districts, inp.n_customers,
                  inp.n_items)
    n_txns = len(inp.txns)
    # --- tables (line-spread so unrelated rows do not false-share) -------
    wh_ytd = host.array("silo.wh_ytd", W * 8)
    dist_next_oid = host.array("silo.dist_next_oid", W * D * 8)
    dist_ytd = host.array("silo.dist_ytd", W * D * 8)
    cust_balance = host.array("silo.cust_balance", C * 8)
    stock = host.array("silo.stock", W * I, fill=inp.initial_stock)
    orders = host.dict("silo.orders", capacity=n_txns + 1)
    order_lines = host.dict("silo.order_lines", capacity=n_txns * 8 + 1)
    # per-transaction scratch (allocated order id), one line each
    scratch = host.array("silo.scratch", max(n_txns, 1) * 8)

    def d_idx(wh, d):
        return (wh * D + d) * 8

    # ------------------- fine-grain operations --------------------------
    def op_alloc_oid(ctx, tid):
        txn = inp.txns[tid]
        slot = d_idx(txn.warehouse, txn.district)
        oid = dist_next_oid.get(ctx, slot)
        dist_next_oid.set(ctx, slot, oid + 1)
        scratch.set(ctx, tid * 8, oid)

    def op_line(ctx, tid, k):
        txn = inp.txns[tid]
        item, qty = txn.items[k]
        s_idx = txn.warehouse * I + item
        q = stock.get(ctx, s_idx)
        q -= qty
        if q < 10:
            q += 91  # TPC-C restock rule
        stock.set(ctx, s_idx, q)
        oid = scratch.get(ctx, tid * 8)
        order_lines.put(ctx, (txn.warehouse, txn.district, oid, k),
                        (item, qty))

    def op_finalize(ctx, tid):
        txn = inp.txns[tid]
        oid = scratch.get(ctx, tid * 8)
        orders.put(ctx, (txn.warehouse, txn.district, oid),
                   (txn.customer, len(txn.items)))

    def op_payment(ctx, tid):
        txn = inp.txns[tid]
        wh_ytd.add(ctx, txn.warehouse * 8, txn.amount)
        dist_ytd.add(ctx, d_idx(txn.warehouse, txn.district), txn.amount)
        cust_balance.add(ctx, txn.customer * 8, -txn.amount)

    # ------------------- transaction drivers ----------------------------
    def txn_flat(ctx, tid):
        txn = inp.txns[tid]
        if txn.kind == "payment":
            op_payment(ctx, tid)
        else:
            op_alloc_oid(ctx, tid)
            for k in range(len(txn.items)):
                op_line(ctx, tid, k)
            op_finalize(ctx, tid)

    def txn_fractal(ctx, tid):
        txn = inp.txns[tid]
        ctx.create_subdomain(Ordering.ORDERED_32)
        if txn.kind == "payment":
            ctx.enqueue_sub(op_payment, tid, ts=0, hint=txn.warehouse,
                            label="pay")
        else:
            ctx.enqueue_sub(op_alloc_oid, tid, ts=0, hint=txn.warehouse,
                            label="alloc")
            for k in range(len(txn.items)):
                ctx.enqueue_sub(op_line, tid, k, ts=1,
                                hint=txn.warehouse * I + txn.items[k][0],
                                label="line")
            ctx.enqueue_sub(op_finalize, tid, ts=2, hint=txn.warehouse,
                            label="fin")

    def txn_swarm(ctx, tid):
        txn = inp.txns[tid]
        base = ctx.timestamp
        if txn.kind == "payment":
            ctx.enqueue(op_payment, tid, ts=base + 1, hint=txn.warehouse,
                        label="pay")
        else:
            ctx.enqueue(op_alloc_oid, tid, ts=base + 1, hint=txn.warehouse,
                        label="alloc")
            for k in range(len(txn.items)):
                ctx.enqueue(op_line, tid, k, ts=base + 2,
                            hint=txn.warehouse * I + txn.items[k][0],
                            label="line")
            ctx.enqueue(op_finalize, tid, ts=base + 3, hint=txn.warehouse,
                        label="fin")

    if variant == "swarm":
        for tid in range(n_txns):
            host.enqueue_root(txn_swarm, tid, ts=tid * SWARM_TS_PER_TXN,
                              hint=inp.txns[tid].warehouse, label="txn")
    else:
        fn = txn_flat if variant == "flat" else txn_fractal
        for tid in range(n_txns):
            host.enqueue_root(fn, tid, hint=inp.txns[tid].warehouse,
                              label="txn")
    return {
        "wh_ytd": wh_ytd, "dist_ytd": dist_ytd, "dist_next_oid": dist_next_oid,
        "cust_balance": cust_balance, "stock": stock, "orders": orders,
        "order_lines": order_lines, "input": inp,
    }


def root_ordering(variant: str) -> Ordering:
    return Ordering.ORDERED_64 if variant == "swarm" else Ordering.UNORDERED


def check(handles: Dict, inp: SiloInput) -> None:
    W, D, C, I = (inp.n_warehouses, inp.n_districts, inp.n_customers,
                  inp.n_items)
    # --- payment conservation -------------------------------------------
    total_paid = sum(t.amount for t in inp.txns if t.kind == "payment")
    got_wh = sum(handles["wh_ytd"].peek(w * 8) for w in range(W))
    got_dist = sum(handles["dist_ytd"].peek((w * D + d) * 8)
                   for w in range(W) for d in range(D))
    got_cust = -sum(handles["cust_balance"].peek(c * 8) for c in range(C))
    if not (total_paid == got_wh == got_dist == got_cust):
        raise AppError(
            f"payment conservation broken: paid={total_paid}, wh={got_wh}, "
            f"dist={got_dist}, cust={got_cust}")
    # --- order ids dense per district ------------------------------------
    new_orders = [t for t in inp.txns if t.kind == "new_order"]
    per_district: Dict[Tuple[int, int], int] = {}
    for t in new_orders:
        per_district[(t.warehouse, t.district)] = per_district.get(
            (t.warehouse, t.district), 0) + 1
    for (w, d), count in per_district.items():
        got = handles["dist_next_oid"].peek((w * D + d) * 8)
        if got != count:
            raise AppError(f"district ({w},{d}) next_oid {got} != {count}")
        for oid in range(count):
            if handles["orders"].peek((w, d, oid)) is None:
                raise AppError(f"order ({w},{d},{oid}) missing")
    # --- stock conservation (mod the restock rule) -----------------------
    lines = dict(handles["order_lines"].items_nonspec())
    if len(lines) != sum(len(t.items) for t in new_orders):
        raise AppError("order-line count mismatch")
    consumed: Dict[Tuple[int, int], int] = {}
    for t in new_orders:
        for (item, qty) in t.items:
            key = (t.warehouse, item)
            consumed[key] = consumed.get(key, 0) + qty
    for (w, item), qty in consumed.items():
        got = handles["stock"].peek(w * I + item)
        delta = inp.initial_stock - got
        # restocks add multiples of 91
        if (qty - delta) % 91 != 0 or delta > qty:
            raise AppError(
                f"stock ({w},{item}): consumed {qty}, delta {delta}")
