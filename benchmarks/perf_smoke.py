#!/usr/bin/env python
"""CI perf smoke: pinned hot-path counter ceilings and a wall-clock gate.

Two checks, both against ``benchmarks/perf_baseline.json``:

1. (default) Run each baseline workload under ``repro profile`` and
   assert (a) makespan and event count match the pinned values exactly —
   the runs are seeded, so any drift is a determinism bug — and (b) the
   frontier-scan / conflict-probe counters stay below their ceilings,
   which sit ~1.2x above the values the indexed hot path produces. A
   reintroduced linear scan blows through them immediately.

2. (``--timed SUMMARY``) Read a ``BENCH_summary.json`` from a *cold*
   (``--no-cache``) sweep of the CI bench subset and fail when its wall
   clock exceeds the pinned budget times ``regression_factor`` (>20%
   regression).

Usage:
    python benchmarks/perf_smoke.py
    python benchmarks/perf_smoke.py --timed /tmp/summary-timed.json
"""

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile

BASELINE = pathlib.Path(__file__).resolve().parent / "perf_baseline.json"


def profile_workload(app, cores):
    """Run ``repro profile`` in a subprocess; return the profile dict."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out = tmp.name
    cmd = [sys.executable, "-m", "repro", "profile", app,
           "--cores", str(cores), "--json", out]
    res = subprocess.run(cmd, capture_output=True, text=True)
    if res.returncode != 0:
        sys.stderr.write(res.stdout + res.stderr)
        raise SystemExit(f"profile run failed for {app}@{cores}c "
                         f"(exit {res.returncode})")
    doc = json.loads(pathlib.Path(out).read_text())
    pathlib.Path(out).unlink(missing_ok=True)
    return doc


def observed_counters(profile):
    return {
        "gvt_queries": profile["gvt"]["queries"],
        "gvt_scan_steps": profile["gvt"]["scan_steps"],
        "queue_scan_steps": profile["queues"]["scan_steps"],
        "mem_probe_steps": profile["memory"]["probe_steps"],
        "mem_slow_probes": profile["memory"]["slow_probes"],
        "mem_epoch_bumps": profile["memory"]["epoch_bumps"],
        "conflict_probe_steps": profile["conflict_model"]["probe_steps"],
        "conflict_bank_probes": profile["conflict_model"]["bank_probes"],
    }


def check_counters(baseline):
    failures = []
    for wl in baseline["workloads"]:
        label = f"{wl['app']}@{wl['cores']}c"
        prof = profile_workload(wl["app"], wl["cores"])
        for field, want in wl["expect"].items():
            got = prof[field]
            status = "ok" if got == want else "DRIFT"
            print(f"{label:16s} {field:22s} {got:>10} "
                  f"(pinned {want}) {status}")
            if got != want:
                failures.append(f"{label}: {field} {got} != pinned {want}")
        counters = observed_counters(prof)
        for name, ceiling in wl["ceilings"].items():
            got = counters[name]
            status = "ok" if got <= ceiling else "OVER"
            print(f"{label:16s} {name:22s} {got:>10} "
                  f"(ceiling {ceiling}) {status}")
            if got > ceiling:
                failures.append(f"{label}: {name} {got} > ceiling {ceiling}")
    return failures


def check_timed(baseline, summary_path):
    doc = json.loads(pathlib.Path(summary_path).read_text())
    failures = []
    if not doc.get("ok"):
        failures.append(f"timed sweep had failing benches: {summary_path}")
    if doc.get("cache", {}).get("hits"):
        failures.append("timed sweep was not cold "
                        f"({doc['cache']['hits']} cache hits) — "
                        "run it with --no-cache")
    budget = (baseline["timed_subset_wall_budget_s"]
              * baseline["regression_factor"])
    wall = doc["total_wall_s"]
    status = "ok" if wall <= budget else "REGRESSION"
    print(f"timed subset    wall {wall:.1f}s "
          f"(budget {budget:.1f}s = {baseline['timed_subset_wall_budget_s']}s"
          f" x {baseline['regression_factor']}) {status}")
    if wall > budget:
        failures.append(f"wall clock {wall:.1f}s exceeds budget "
                        f"{budget:.1f}s (>20% regression)")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--timed", metavar="SUMMARY", default=None,
                        help="also gate the wall clock of this cold "
                             "BENCH_summary.json")
    parser.add_argument("--baseline", metavar="PATH", default=str(BASELINE),
                        help="baseline document (default: "
                             "benchmarks/perf_baseline.json)")
    args = parser.parse_args(argv)
    baseline = json.loads(pathlib.Path(args.baseline).read_text())

    failures = [] if args.timed else check_counters(baseline)
    if args.timed:
        failures += check_timed(baseline, args.timed)
    if failures:
        print(f"\n{len(failures)} perf-smoke check(s) FAILED:",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nperf smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
