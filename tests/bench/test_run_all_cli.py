"""benchmarks/run_all.py CLI tests: selection, failure summary, summary JSON.

The real bench modules take minutes; these tests point run_all at tiny
stand-in bench modules written to a tmp dir and monkeypatched into
``BENCHES``.
"""

import importlib
import json
import pathlib
import sys

import pytest

BENCH_DIR = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"


@pytest.fixture()
def run_all():
    sys.path.insert(0, str(BENCH_DIR))
    try:
        yield importlib.import_module("run_all")
    finally:
        while str(BENCH_DIR) in sys.path:
            sys.path.remove(str(BENCH_DIR))


@pytest.fixture()
def fake_benches(run_all, tmp_path, monkeypatch):
    """Three stand-in bench modules: two pass, one raises."""
    # snapshot the env keys main() mutates so teardown restores them
    monkeypatch.setenv("REPRO_BENCH_CACHE", "0")
    (tmp_path / "bench_alpha.py").write_text(
        "print('alpha table')\n")
    (tmp_path / "bench_beta.py").write_text(
        "print('beta table')\n")
    (tmp_path / "bench_broken.py").write_text(
        "raise RuntimeError('bench exploded')\n")
    monkeypatch.syspath_prepend(str(tmp_path))
    monkeypatch.setattr(run_all, "BENCHES",
                        ["bench_alpha", "bench_beta", "bench_broken"])
    return run_all


class TestSelection:
    def test_only_and_prefix_optional(self, fake_benches):
        sel = fake_benches.resolve_selection(only=["alpha,bench_beta"])
        assert sel == ["bench_alpha", "bench_beta"]

    def test_skip(self, fake_benches):
        sel = fake_benches.resolve_selection(skip=["broken"])
        assert sel == ["bench_alpha", "bench_beta"]

    def test_unknown_name_rejected(self, fake_benches):
        with pytest.raises(SystemExit):
            fake_benches.resolve_selection(only=["nope"])

    def test_list_flag(self, fake_benches, capsys, tmp_path):
        rc = fake_benches.main(["--list", "--skip", "broken"])
        assert rc == 0
        out = capsys.readouterr().out.splitlines()
        assert out == ["bench_alpha", "bench_beta"]

    def test_shard_flag_partitions(self, fake_benches, capsys):
        names = set()
        for k in (1, 2):
            fake_benches.main(["--list", "--shard", f"{k}/2"])
            names.update(capsys.readouterr().out.split())
        assert names == {"bench_alpha", "bench_beta", "bench_broken"}

    def test_shard_assignment_pinned(self, fake_benches, capsys):
        # Pin the hash-based assignment: any change to the shard function
        # silently reshuffles CI matrix slices, so lock it down.
        fake_benches.main(["--list", "--shard", "1/2"])
        assert capsys.readouterr().out.split() == ["bench_beta",
                                                   "bench_broken"]
        fake_benches.main(["--list", "--shard", "2/2"])
        assert capsys.readouterr().out.split() == ["bench_alpha"]

    def test_shard_of_filtered_list_is_stable(self, fake_benches, capsys):
        # --shard composes with --only/--skip by sharding the *filtered*
        # list, and hash assignment is stable under subsetting: dropping
        # bench_beta must not move the survivors between shards.
        fake_benches.main(["--list", "--skip", "beta", "--shard", "1/2"])
        assert capsys.readouterr().out.split() == ["bench_broken"]
        fake_benches.main(["--list", "--only", "alpha,broken",
                           "--shard", "2/2"])
        assert capsys.readouterr().out.split() == ["bench_alpha"]

    @pytest.mark.parametrize("bad", ["three", "0/2", "3/2", "1/0", "a/b"])
    def test_malformed_shard_exits_cleanly(self, fake_benches, bad):
        # Regression: a bad K/N used to escape as a raw ConfigError
        # traceback instead of a usage-style exit.
        with pytest.raises(SystemExit) as exc:
            fake_benches.main(["--list", "--shard", bad])
        assert "--shard" in str(exc.value)


class TestExecution:
    def test_success_run_and_summary(self, fake_benches, tmp_path, capsys):
        out_path = tmp_path / "summary.json"
        rc = fake_benches.main(["--only", "alpha,beta", "--no-cache",
                                "--summary-out", str(out_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "alpha table" in out and "beta table" in out
        doc = json.loads(out_path.read_text())
        assert doc["schema"] == "repro.bench-summary/1"
        assert doc["ok"] is True
        assert [b["name"] for b in doc["benches"]] == ["bench_alpha",
                                                       "bench_beta"]
        assert all(b["ok"] for b in doc["benches"])
        assert set(doc["cache"]) == {"hits", "misses"}

    def test_failure_summary_and_exit_code(self, fake_benches, tmp_path,
                                           capsys):
        out_path = tmp_path / "summary.json"
        rc = fake_benches.main(["--no-cache",
                                "--summary-out", str(out_path)])
        assert rc == 1
        captured = capsys.readouterr()
        assert "alpha table" in captured.out   # others still ran
        assert "1 of 3 benches FAILED" in captured.err
        assert "bench_broken" in captured.err
        assert "bench exploded" in captured.err
        doc = json.loads(out_path.read_text())
        assert doc["ok"] is False
        broken = next(b for b in doc["benches"]
                      if b["name"] == "bench_broken")
        assert not broken["ok"]
        assert "bench exploded" in broken["error"]

    def test_parallel_jobs_same_outputs(self, fake_benches, tmp_path,
                                        capsys):
        out_path = tmp_path / "summary.json"
        rc = fake_benches.main(["--only", "alpha,beta", "--jobs", "2",
                                "--no-cache",
                                "--summary-out", str(out_path)])
        assert rc == 0
        out = capsys.readouterr().out
        # outputs print in submission order even under --jobs
        assert out.index("alpha table") < out.index("beta table")
        doc = json.loads(out_path.read_text())
        assert doc["jobs"] == 2 and doc["ok"] is True

    def test_run_bench_reports_cache_stats(self, fake_benches, tmp_path,
                                           monkeypatch):
        (tmp_path / "bench_counts.py").write_text(
            "import _common\n"
            "_common._CACHE_STATS['hits'] += 2\n"
            "_common._CACHE_STATS['misses'] += 1\n")
        monkeypatch.syspath_prepend(str(tmp_path))
        rec = fake_benches.run_bench("bench_counts")
        assert rec["error"] is None
        assert rec["cache"] == {"hits": 2, "misses": 1}
