"""repro — a full Python reproduction of *Fractal: An Execution Model for
Fine-Grain Nested Speculative Parallelism* (ISCA 2017).

Quickstart::

    from repro import Simulator, SystemConfig, Ordering

    sim = Simulator(SystemConfig.with_cores(16))
    counter = sim.cell("counter", 0)

    def bump(ctx, amount):
        counter.add(ctx, amount)

    def txn(ctx, n):
        # each transaction runs its pieces in a nested ordered subdomain
        ctx.create_subdomain(Ordering.ORDERED_32)
        for i in range(n):
            ctx.enqueue_sub(bump, 1, ts=i)

    for _ in range(8):
        sim.enqueue_root(txn, 4)
    stats = sim.run()
    assert counter.peek() == 32

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced table and figure.
"""

from .config import LatencyModel, SystemConfig, PAPER_CORE_COUNTS, QUICK_CORE_COUNTS
from .errors import (
    AppError,
    ConfigError,
    DomainError,
    FractalError,
    QueueError,
    SerializabilityViolation,
    SimulationError,
    TaskExecutionError,
    TimestampError,
    VTBudgetExceeded,
    VTError,
)
from .vt import DomainVT, FractalVT, Ordering, Tiebreaker, TiebreakerAllocator
from .mem import (
    AddressSpace,
    BloomSignature,
    SpecArray,
    SpecCell,
    SpecDict,
    SpecMemory,
    SpecQueue,
)
from .core import (
    Domain,
    RunStats,
    SerialExecutor,
    Simulator,
    TaskAborted,
    TaskContext,
    TaskDesc,
    TaskState,
    audit_serializability,
)
from .telemetry import (
    EventBus,
    EventRecorder,
    JsonlExporter,
    MetricsRegistry,
    metrics_snapshot,
    to_perfetto,
    write_events_jsonl,
    write_metrics_json,
    write_perfetto,
)
from .core.highlevel import (
    callcc,
    enqueue_all,
    enqueue_all_ordered,
    forall,
    forall_ordered,
    forall_reduce,
    forall_reduce_ordered,
    parallel,
    parallel_reduce,
    task,
)

__version__ = "1.0.0"

__all__ = [
    "LatencyModel",
    "SystemConfig",
    "PAPER_CORE_COUNTS",
    "QUICK_CORE_COUNTS",
    "AppError",
    "ConfigError",
    "DomainError",
    "FractalError",
    "QueueError",
    "SerializabilityViolation",
    "SimulationError",
    "TaskExecutionError",
    "TimestampError",
    "VTBudgetExceeded",
    "VTError",
    "DomainVT",
    "FractalVT",
    "Ordering",
    "Tiebreaker",
    "TiebreakerAllocator",
    "AddressSpace",
    "BloomSignature",
    "SpecArray",
    "SpecCell",
    "SpecDict",
    "SpecMemory",
    "SpecQueue",
    "Domain",
    "RunStats",
    "SerialExecutor",
    "Simulator",
    "TaskAborted",
    "TaskContext",
    "TaskDesc",
    "TaskState",
    "audit_serializability",
    "EventBus",
    "EventRecorder",
    "JsonlExporter",
    "MetricsRegistry",
    "metrics_snapshot",
    "to_perfetto",
    "write_events_jsonl",
    "write_metrics_json",
    "write_perfetto",
    "callcc",
    "enqueue_all",
    "enqueue_all_ordered",
    "forall",
    "forall_ordered",
    "forall_reduce",
    "forall_reduce_ordered",
    "parallel",
    "parallel_reduce",
    "task",
]
