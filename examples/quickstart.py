#!/usr/bin/env python
"""Quickstart: Fractal in ~60 lines.

Builds a tiny bank where transfer transactions run as *nested* Fractal
programs: each transaction opens an ordered subdomain whose fine-grain
tasks debit, credit, and record the transfer. Conflicting transfers abort
selectively (only the touched operation re-executes), yet every
transaction stays atomic — the core promise of the paper.

Run:  python examples/quickstart.py
"""

from repro import Ordering, Simulator, SystemConfig

N_ACCOUNTS = 16
N_TRANSFERS = 40


def main():
    sim = Simulator(SystemConfig.with_cores(16), name="quickstart")

    # accounts live in speculative memory, one cache line each
    balance = sim.array("balance", N_ACCOUNTS * 8,
                        init=[100 if i % 8 == 0 else 0
                              for i in range(N_ACCOUNTS * 8)])
    journal = sim.dict("journal", capacity=N_TRANSFERS + 1)

    def debit(ctx, src, amount):
        balance.add(ctx, src * 8, -amount)

    def credit(ctx, dst, amount):
        balance.add(ctx, dst * 8, amount)

    def record(ctx, tid, src, dst, amount):
        journal.put(ctx, tid, (src, dst, amount))

    def transfer(ctx, tid):
        src = (tid * 7) % N_ACCOUNTS
        dst = (tid * 11 + 3) % N_ACCOUNTS
        amount = 1 + tid % 5
        if src == dst:
            return
        # nested parallelism: the transaction's pieces are ordered tasks
        # in its own subdomain, atomic as a unit with respect to all
        # other transactions
        ctx.create_subdomain(Ordering.ORDERED_32)
        ctx.enqueue_sub(debit, src, amount, ts=0, hint=src)
        ctx.enqueue_sub(credit, dst, amount, ts=0, hint=dst)
        ctx.enqueue_sub(record, tid, src, dst, amount, ts=1)

    for tid in range(N_TRANSFERS):
        sim.enqueue_root(transfer, tid, label="transfer")

    stats = sim.run()
    sim.audit()  # verify serializability of the whole run

    total = sum(balance.peek(i * 8) for i in range(N_ACCOUNTS))
    print(stats.summary())
    print(f"\ntotal money: {total} (conserved: {total == 100 * 2})")
    print(f"journal entries: {journal.len_nonspec()}")


if __name__ == "__main__":
    main()
