#!/usr/bin/env python
"""The paper's flagship case study (Sec. 2.1): maxflow with nested
parallelism.

Runs push-relabel with global relabeling on an rmf-wide network in both
forms — maxflow-flat (monolithic global-relabel transactions) and
maxflow-fractal (global relabel as an ordered BFS subdomain) — prints the
speedup, and renders Fig. 1-style execution timelines showing how the
flat version's long relabel tasks serialize the machine.

Run:  python examples/maxflow_nested.py
"""

from repro.apps import maxflow
from repro.bench.harness import run_app
from repro.core.trace import render_timeline

N_CORES = 16


def main():
    inp = maxflow.make_input(b=4, layers=4)
    print(f"rmf-wide network: {inp.n} nodes, {inp.m // 2} edges")
    print(f"oracle max flow: {maxflow.reference_maxflow(inp)}\n")

    runs = {}
    for variant in ("flat", "fractal"):
        run = run_app(maxflow, inp, variant=variant, n_cores=N_CORES,
                      enable_trace=True, audit=True)
        flow = maxflow.check(run.handles, inp)
        runs[variant] = run
        print(f"maxflow-{variant}: flow={flow}")
        print(run.stats.summary())
        print()

    speedup = runs["flat"].makespan / runs["fractal"].makespan
    print(f"fractal vs flat speedup at {N_CORES} cores: {speedup:.2f}x\n")

    for variant in ("flat", "fractal"):
        sim = runs[variant].handles["_sim"]
        print(f"--- maxflow-{variant} timeline (first 8 cores) ---")
        print(render_timeline(sim.trace, n_cores=8, width=90,
                              glyphs={"active": ".", "bfs": "o",
                                      "global_relabel": "G"}))
        print()


if __name__ == "__main__":
    main()
