"""Spanning forest via deterministic reservations (PBBS ``spanningTree``).

Unweighted union-find spanning forest: edges are processed in index order;
an edge whose endpoints lie in different components links them and joins
the forest. The canonical result is the ``in_forest`` flag per edge —
provably identical across variants (and equal to the sequential greedy
loop), unlike the raw ``parent`` array whose intermediate bytes depend on
commit interleaving.

The ``specfor`` step reserves the *larger* endpoint root with priority
writeMin. A single cell per edge means every contended cell's winner
commits in that round, so rounds always progress. Committed links turn
the reserved root into a non-root that no later iteration ever reserves,
which is why stale reservations need no explicit release (the PBBS
``spanningTree.C`` trick).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ...errors import AppError
from ...graphs import Graph, rmat
from ...specfor import DomainSpecFor, ReservationTable, SpecForPolicy
from ...vt import Ordering
from ..common import join_increment, require_variant
from . import VARIANTS_PBBS

_SWARM_STRIDE = 2


def make_input(scale: int = 6, edge_factor: int = 3, seed: int = 5) -> Graph:
    return rmat(scale, edge_factor, seed=seed)


def edge_list(g: Graph) -> List[Tuple[int, int]]:
    """Edges in deterministic index order (the loop's iteration space)."""
    return list(g.edges())


def reference_flags(g: Graph) -> List[int]:
    """Sequential greedy union-find in edge order (plain Python)."""
    parent = list(range(g.n))

    def find(v):
        while parent[v] != v:
            v = parent[v]
        return v

    flags = []
    for u, v in edge_list(g):
        ru, rv = find(u), find(v)
        if ru == rv:
            flags.append(0)
        else:
            parent[max(ru, rv)] = min(ru, rv)
            flags.append(1)
    return flags


def build(host, g: Graph, variant: str = "specfor",
          granularity: int = 8) -> Dict:
    require_variant(variant, VARIANTS_PBBS)
    edges = edge_list(g)
    parent = host.array("spanning.parent", g.n, init=range(g.n))
    in_forest = host.array("spanning.in_forest", max(len(edges), 1))
    # swarm/fractal per-edge scratch: two root slots + a join counter,
    # one cache line apart so concurrent finds never false-share
    scratch = host.array("spanning.scratch", max(len(edges) * 3, 1) * 8)
    resv = ReservationTable.alloc(host, "spanning.resv", g.n)

    def find_root(ctx, v) -> int:
        while True:
            p = parent.get(ctx, v)
            if p == v:
                return v
            v = p

    def link(ctx, eidx, ru, rv):
        """Union by root id; records the accepted edge."""
        hi, lo = (ru, rv) if ru > rv else (rv, ru)
        parent.set(ctx, hi, lo)
        in_forest.set(ctx, eidx, 1)

    # --- flat: whole edge in one ordered transaction ------------------
    def edge_flat(ctx, eidx):
        u, v = edges[eidx]
        ru, rv = find_root(ctx, u), find_root(ctx, v)
        if ru != rv:
            link(ctx, eidx, ru, rv)

    # --- fractal: filter, then finds in an unordered subdomain --------
    class _CellView:
        """One scratch word presented as a join-counter cell."""

        __slots__ = ("addr",)

        def __init__(self, addr):
            self.addr = addr

        def add(self, ctx, delta):
            value = ctx.load(self.addr) + delta
            ctx.store(self.addr, value)
            return value

    def _counter(eidx):
        return _CellView(scratch.addr((eidx * 3 + 2) * 8))

    def link_checked(ctx, eidx, ru, rv):
        """Re-validate roots (stale after concurrent links) and union."""
        ru, rv = find_root(ctx, ru), find_root(ctx, rv)
        if ru != rv:
            link(ctx, eidx, ru, rv)

    def find_task(ctx, eidx, endpoint, slot):
        root = find_root(ctx, endpoint)
        scratch.set(ctx, (eidx * 3 + slot) * 8, root)
        if join_increment(ctx, _counter(eidx), 2):
            ru = scratch.get(ctx, eidx * 3 * 8)
            rv = scratch.get(ctx, (eidx * 3 + 1) * 8)
            ctx.enqueue(link_checked, eidx, ru, rv, hint=eidx,
                        label="link")

    def edge_fractal(ctx, eidx):
        u, v = edges[eidx]
        if find_root(ctx, u) == find_root(ctx, v):
            return
        ctx.create_subdomain(Ordering.UNORDERED)
        ctx.enqueue_sub(find_task, eidx, u, 0, hint=u, label="find")
        ctx.enqueue_sub(find_task, eidx, v, 1, hint=v, label="find")

    # --- swarm: fine tasks on a disjoint timestamp range --------------
    def swarm_find(ctx, eidx, endpoint, slot):
        scratch.set(ctx, (eidx * 3 + slot) * 8, find_root(ctx, endpoint))

    def swarm_link(ctx, eidx):
        link_checked(ctx, eidx, scratch.get(ctx, eidx * 3 * 8),
                     scratch.get(ctx, (eidx * 3 + 1) * 8))

    def edge_swarm(ctx, eidx):
        u, v = edges[eidx]
        if find_root(ctx, u) == find_root(ctx, v):
            return
        base = ctx.timestamp
        ctx.enqueue(swarm_find, eidx, u, 0, ts=base, hint=u, label="find")
        ctx.enqueue(swarm_find, eidx, v, 1, ts=base, hint=v, label="find")
        ctx.enqueue(swarm_link, eidx, ts=base + 1, hint=eidx, label="link")

    # --- specfor: reserve the larger root, link on a held cell --------
    class SpanningStep:
        def reserve(self, ctx, i):
            u, v = edges[i]
            ru, rv = find_root(ctx, u), find_root(ctx, v)
            if ru == rv:
                return False  # filter: already connected
            resv.write_min(ctx, max(ru, rv), i)
            return True

        def commit(self, ctx, i):
            u, v = edges[i]
            ru, rv = find_root(ctx, u), find_root(ctx, v)
            if ru == rv:
                # connected by a same-phase commit; next round's reserve
                # filters this iteration out
                return False
            if resv.holds(ctx, max(ru, rv), i):
                link(ctx, i, ru, rv)
                # the linked root is no longer a root, so its stale
                # reservation can never block anyone: no reset needed
                return True
            return False

    if variant == "specfor":
        engine = DomainSpecFor(host, "spanning", SpanningStep(),
                               len(edges),
                               policy=SpecForPolicy(granularity=granularity))
        engine.enqueue_driver(host)
        return {"parent": parent, "in_forest": in_forest, "edges": edges,
                "graph": g, "engine": engine}

    fn = {"flat": edge_flat, "fractal": edge_fractal,
          "swarm": edge_swarm}[variant]
    stride = _SWARM_STRIDE if variant == "swarm" else 1
    for eidx in range(len(edges)):
        host.enqueue_root(fn, eidx, ts=eidx * stride,
                          hint=edges[eidx][0], label="edge")
    return {"parent": parent, "in_forest": in_forest, "edges": edges,
            "graph": g}


def root_ordering(variant: str) -> Ordering:
    # specfor: a single unordered driver; rounds are ordered inside its
    # subdomain. Other variants timestamp the root loop directly.
    return Ordering.UNORDERED if variant == "specfor" else Ordering.ORDERED_32


def result_arrays(handles: Dict) -> Dict[str, list]:
    """The canonical (order-invariant) result of a run."""
    return {"in_forest": handles["in_forest"].snapshot()}


def check(handles: Dict, g: Graph) -> int:
    """Flags must equal the sequential greedy reference *and* form a
    spanning forest per networkx; returns the forest size."""
    import networkx as nx

    flags = handles["in_forest"].snapshot()
    want = reference_flags(g)
    if flags != want:
        diff = [i for i, (a, b) in enumerate(zip(flags, want)) if a != b]
        raise AppError(
            f"in_forest differs from the sequential reference at edge "
            f"indices {diff[:10]} ({len(diff)} total)")
    edges = handles["edges"]
    chosen = [edges[i] for i in range(len(edges)) if flags[i]]
    gx = g.to_networkx()
    n_components = nx.number_connected_components(gx)
    if len(chosen) != g.n - n_components:
        raise AppError(
            f"forest has {len(chosen)} edges, expected "
            f"{g.n - n_components}")
    fx = nx.Graph()
    fx.add_nodes_from(range(g.n))
    fx.add_edges_from(chosen)
    if nx.number_connected_components(fx) != n_components:
        raise AppError("chosen edges do not span the graph's components")
    return len(chosen)
