"""Service configuration: listener, worker pool, tenants and quotas.

A :class:`ServeConfig` describes one ``repro serve`` instance. Tenants
are identified by API key (the ``X-API-Key`` request header); each key
maps to a :class:`TenantQuota` bounding its queue depth and submission
rate. Requests without a key run as the ``anonymous`` tenant under
``default_quota`` unless ``require_key`` is set.

The on-disk form (``repro serve --tenants tenants.json``)::

    {
      "require_key": false,
      "default": {"queue_limit": 64, "rate": 50, "burst": 100},
      "tenants": {
        "key-alice": {"name": "alice", "queue_limit": 16, "rate": 5}
      }
    }
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import ConfigError

#: serve API wire-format tag (response bodies carry it)
SERVE_SCHEMA = "repro.serve/1"


@dataclass(frozen=True)
class TenantQuota:
    """Admission limits for one tenant.

    ``queue_limit`` bounds queued-plus-running jobs; the token bucket
    (``rate`` refills/second up to ``burst``) bounds the submission rate.
    Both rejections come back as 429 with a Retry-After hint.
    """

    name: str
    queue_limit: int = 64
    rate: float = 50.0
    burst: int = 100

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("tenant name must be non-empty")
        if self.queue_limit < 1:
            raise ConfigError(
                f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.rate <= 0:
            raise ConfigError(f"rate must be > 0, got {self.rate}")
        if self.burst < 1:
            raise ConfigError(f"burst must be >= 1, got {self.burst}")

    @classmethod
    def from_dict(cls, name: str, d: dict) -> "TenantQuota":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ConfigError(
                f"unknown tenant-quota keys for {name!r}: {sorted(unknown)}")
        return cls(**{"name": name, **d})


@dataclass
class ServeConfig:
    """Everything one server instance needs (see module docs)."""

    host: str = "127.0.0.1"
    port: int = 8177
    #: persistent farm worker slots (one simulation process each)
    workers: int = 2
    #: content-addressed result cache location; None disables the cache
    cache_dir: Optional[str] = "benchmarks/results/.cache"
    #: graceful per-job wall-clock watchdog (0 = none); part of the digest
    timeout_s: float = 0.0
    #: per-job attempt budget (farm retry machinery)
    max_attempts: int = 2
    #: how long SIGTERM waits for queued+running jobs before giving up
    drain_timeout_s: float = 60.0
    #: reject keyless requests instead of running them as ``anonymous``
    require_key: bool = False
    default_quota: TenantQuota = field(
        default_factory=lambda: TenantQuota("anonymous"))
    #: api key -> quota
    tenants: Dict[str, TenantQuota] = field(default_factory=dict)
    #: per-job event ring size (SSE replay window)
    events_buffer: int = 256
    #: completed-job records kept in memory before eviction (the result
    #: cache still answers evicted digests)
    max_jobs: int = 4096
    #: pre-import the simulator in farm workers
    warmup: bool = True

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.events_buffer < 8:
            raise ConfigError("events_buffer must be >= 8")
        if self.max_jobs < self.workers:
            raise ConfigError("max_jobs must be >= workers")

    def load_tenants(self, path: str) -> None:
        """Merge a tenants JSON file (see module docs) into this config."""
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except OSError as exc:
            raise ConfigError(f"cannot read tenants file {path}: {exc}")
        except ValueError as exc:
            raise ConfigError(f"tenants file {path}: invalid JSON: {exc}")
        if not isinstance(doc, dict):
            raise ConfigError(f"tenants file {path} must hold a JSON object")
        unknown = set(doc) - {"require_key", "default", "tenants"}
        if unknown:
            raise ConfigError(
                f"unknown tenants-file sections: {sorted(unknown)}")
        if "require_key" in doc:
            self.require_key = bool(doc["require_key"])
        if doc.get("default") is not None:
            self.default_quota = TenantQuota.from_dict(
                "anonymous", doc["default"])
        for key, quota in (doc.get("tenants") or {}).items():
            if not isinstance(quota, dict):
                raise ConfigError(
                    f"tenants file {path}: entry {key!r} must be an object")
            quota = dict(quota)
            quota.setdefault("name", key)
            name = quota.pop("name")
            self.tenants[key] = TenantQuota.from_dict(name, quota)
