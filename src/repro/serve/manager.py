"""The serve job manager: admission, coalescing, worker slots, drain.

:class:`JobManager` is the transport-independent heart of ``repro
serve``. The HTTP layer (:mod:`repro.serve.http`) translates requests
into calls on it; tests drive it directly.

Lifecycle of a submission (all under one lock, so the admission decision
is atomic):

1. **auth** — the API key selects a :class:`TenantState` (401 on unknown
   keys, or on missing keys when ``require_key`` is set);
2. **rate** — the tenant's token bucket must yield a token (else 429
   with a Retry-After hint);
3. **validate** — the JSON body becomes a canonical
   :class:`~repro.farm.job.JobSpec` via the shared validator (400 with
   field-level errors), the configured watchdog timeout is attached with
   :func:`~repro.farm.farm.apply_timeout`, and the sha256 content
   address is computed — the job id;
4. **coalesce** — an in-flight job with the same digest absorbs the
   submission (no second execution, shared result and event stream);
5. **warm** — a completed in-memory job, or a
   :class:`~repro.farm.cache.ResultCache` entry, answers O(1) without
   executing;
6. **quota** — the tenant's queue must have room (else 429);
7. **enqueue** — the job joins the tenant FIFO and worker slots pick it
   up round-robin across tenants (one slow tenant cannot starve the
   rest).

Each worker slot owns a persistent single-worker
:class:`~repro.farm.farm.Farm` (``use_pool=True``), so simulations run
in real worker processes with the farm's timeout / retry /
crash-rebuild machinery, while the slot thread stays cheap. Slots run
``cache=None``; the manager is the only cache reader/writer, which
keeps hit/miss accounting exact under concurrency.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..farm import Farm, JobSpec, ResultCache, apply_timeout
from ..telemetry import (AdmissionRejectEvent, EventBus, JobCoalescedEvent,
                         JobQueuedEvent, MetricsRegistry, ServeDrainEvent)
from .config import ServeConfig, TenantQuota

# job states (wire values)
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


class ServeError(Exception):
    """Base for manager-level request failures (maps to an HTTP status)."""

    status = 500


class AuthError(ServeError):
    status = 401


class DrainingError(ServeError):
    status = 503

    def __init__(self) -> None:
        super().__init__("server is draining; not accepting submissions")


class UnknownJobError(ServeError):
    status = 404

    def __init__(self, job_id: str) -> None:
        super().__init__(f"unknown job id {job_id!r}")


class AdmissionError(ServeError):
    """429: the tenant is over its rate or queue quota."""

    status = 429

    def __init__(self, tenant: str, reason: str, retry_after: float) -> None:
        super().__init__(
            f"tenant {tenant!r} rejected at admission ({reason}); "
            f"retry after {retry_after:.2f}s")
        self.tenant = tenant
        self.reason = reason           # "rate" | "queue"
        self.retry_after = retry_after


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, capacity ``burst``.

    ``try_take`` returns 0.0 on success or the seconds until a token
    will be available (the Retry-After hint). ``clock`` is injectable so
    tests don't sleep.
    """

    def __init__(self, rate: float, burst: int,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()

    def try_take(self) -> float:
        now = self._clock()
        self._tokens = min(self.burst,
                           self._tokens + (now - self._last) * self.rate)
        self._last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        return (1.0 - self._tokens) / self.rate


class Job:
    """One content-addressed job record (in-memory, digest-keyed).

    All mutation happens under the manager lock. ``events`` is a bounded
    ring used for SSE replay; ``subscribers`` are callbacks fed every
    new event (the HTTP layer bridges them onto asyncio queues).
    """

    def __init__(self, digest: str, spec: JobSpec, tenant: str,
                 events_buffer: int) -> None:
        self.digest = digest
        self.spec = spec
        self.tenant = tenant
        self.state = QUEUED
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.attempts = 0
        self.wall_s = 0.0
        self.error: Optional[str] = None
        self.stats = None              # RunStats when DONE
        #: answered straight from the ResultCache (never executed here)
        self.cached = False
        self.n_submitted = 1
        self.events: Deque[dict] = deque(maxlen=events_buffer)
        self._seq = 0
        self.subscribers: List[Callable[[dict], None]] = []
        self.done_evt = threading.Event()

    def to_doc(self) -> dict:
        return {
            "id": self.digest,
            "state": self.state,
            "tenant": self.tenant,
            "label": self.spec.display,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "attempts": self.attempts,
            "wall_s": round(self.wall_s, 4),
            "error": self.error,
            "cached": self.cached,
            "n_submitted": self.n_submitted,
            "has_result": self.stats is not None,
        }


class TenantState:
    """Per-tenant runtime state: FIFO queue, bucket, counters."""

    def __init__(self, quota: TenantQuota,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.quota = quota
        self.bucket = TokenBucket(quota.rate, quota.burst, clock)
        self.queue: Deque[str] = deque()   # digests awaiting a slot
        self.n_running = 0
        self.counters = {"submitted": 0, "coalesced": 0, "warm_hits": 0,
                         "rejected_rate": 0, "rejected_queue": 0,
                         "done": 0, "failed": 0}

    @property
    def depth(self) -> int:
        """Queued + running jobs — what the queue quota bounds."""
        return len(self.queue) + self.n_running

    def to_doc(self) -> dict:
        return {"queue_limit": self.quota.queue_limit,
                "rate": self.quota.rate, "burst": self.quota.burst,
                "depth": self.depth, "queued": len(self.queue),
                "running": self.n_running, **self.counters}


class _WorkerSlot:
    def __init__(self, slot_id: int, farm: Farm) -> None:
        self.id = slot_id
        self.farm = farm
        self.thread: Optional[threading.Thread] = None
        self.current: Optional[str] = None   # digest being executed


class JobManager:
    """See module docs. Thread-safe; one instance per server."""

    def __init__(self, config: ServeConfig, *,
                 cache: Optional[ResultCache] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.config = config
        self._clock = clock
        if cache is not None:
            self.cache: Optional[ResultCache] = cache
        elif config.cache_dir:
            self.cache = ResultCache(config.cache_dir)
        else:
            self.cache = None
        self.registry = MetricsRegistry()
        self.bus = EventBus()
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._finished_order: Deque[str] = deque()
        self._tenants: Dict[str, TenantState] = {}
        self._keys: Dict[str, str] = {}      # api key -> tenant name
        self._rr: Deque[str] = deque()       # round-robin tenant order
        self._draining = False
        self._stopped = False
        self._started = False
        self.t0 = time.monotonic()
        self._get_tenant(config.default_quota)
        for key, quota in config.tenants.items():
            self._keys[key] = quota.name
            self._get_tenant(quota)
        self._slots = [
            _WorkerSlot(i, Farm(jobs=1, use_pool=True, persistent=True,
                                cache=None, max_attempts=config.max_attempts,
                                warmup=config.warmup, collect_metrics=True))
            for i in range(config.workers)
        ]
        for slot in self._slots:
            slot.farm.bus.subscribe(
                lambda ev, s=slot: self._on_farm_event(s, ev))

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        with self._lock:
            if self._started:
                return
            self._started = True
        for slot in self._slots:
            t = threading.Thread(target=self._slot_loop, args=(slot,),
                                 name=f"serve-slot-{slot.id}", daemon=True)
            slot.thread = t
            t.start()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admitting, wait for queued+running jobs, stop slots.

        Returns True if everything finished inside ``timeout``. On
        timeout the remaining jobs are marked failed (the caller is
        exiting; their processes are torn down with the farms).
        """
        if timeout is None:
            timeout = self.config.drain_timeout_s
        deadline = time.monotonic() + timeout
        with self._cond:
            if not self._draining:
                self._draining = True
                self._emit(ServeDrainEvent(t=self._now_ms(), phase="begin",
                                           n_pending=self._n_pending()))
            while self._n_pending() > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(min(0.2, remaining))
            clean = self._n_pending() == 0
            if not clean:
                # hard-stop: fail whatever is left so waiters unblock
                for ts in self._tenants.values():
                    while ts.queue:
                        job = self._jobs[ts.queue.popleft()]
                        self._fail_abandoned(job, "server drain timed out")
                for slot in self._slots:
                    if slot.current and slot.current in self._jobs:
                        job = self._jobs[slot.current]
                        if job.state == RUNNING:
                            ts = self._tenants[job.tenant]
                            ts.n_running -= 1
                            self._fail_abandoned(
                                job, "server drain timed out mid-run")
            self._stopped = True
            self._emit(ServeDrainEvent(t=self._now_ms(), phase="done",
                                       n_pending=0 if clean
                                       else self._n_pending()))
            self._cond.notify_all()
        for slot in self._slots:
            if slot.thread is not None:
                slot.thread.join(timeout=5.0)
            slot.farm.close()
        return clean

    def stop(self) -> None:
        """Immediate shutdown (tests); jobs still queued are failed."""
        self.drain(timeout=0.0)

    # -- submission ----------------------------------------------------
    def submit(self, doc: dict, api_key: str = "") -> Tuple[Job, str]:
        """Admit one submission; returns ``(job, outcome)``.

        ``outcome`` is ``"queued"`` (new job admitted), ``"coalesced"``
        (absorbed by an in-flight job) or ``"warm"`` (answered from a
        completed job or the result cache). Raises ``AuthError``,
        ``DrainingError``, ``AdmissionError`` or
        :class:`~repro.farm.validate.SpecValidationError`.
        """
        from ..farm import validate_jobspec
        with self._cond:
            if self._draining:
                raise DrainingError()
            ts = self._tenant_for(api_key)
            wait = ts.bucket.try_take()
            if wait > 0:
                ts.counters["rejected_rate"] += 1
                self.registry.inc("serve.admission_reject",
                                  tenant=ts.quota.name, reason="rate")
                self._emit(AdmissionRejectEvent(
                    t=self._now_ms(), tenant=ts.quota.name, reason="rate",
                    retry_after=wait))
                raise AdmissionError(ts.quota.name, "rate", wait)
            spec = validate_jobspec(doc)       # 400 on bad fields
            spec = apply_timeout(spec, self.config.timeout_s)
            digest = spec.digest()
            ts.counters["submitted"] += 1
            self.registry.inc("serve.submissions", tenant=ts.quota.name)
            job = self._jobs.get(digest)
            if job is not None and job.state in (QUEUED, RUNNING):
                job.n_submitted += 1
                ts.counters["coalesced"] += 1
                self.registry.inc("serve.coalesced_submissions",
                                  tenant=ts.quota.name)
                self._emit(JobCoalescedEvent(
                    t=self._now_ms(), digest=digest, tenant=ts.quota.name,
                    n_submitted=job.n_submitted))
                self._job_event(job, {"kind": "job_coalesced",
                                      "tenant": ts.quota.name,
                                      "n_submitted": job.n_submitted})
                return job, "coalesced"
            if job is not None and job.state == DONE:
                job.n_submitted += 1
                ts.counters["warm_hits"] += 1
                self.registry.inc("serve.warm_hits", tenant=ts.quota.name,
                                  source="table")
                return job, "warm"
            # FAILED jobs fall through: a resubmission retries them.
            stats = self.cache.get(digest) if self.cache else None
            if stats is not None:
                job = Job(digest, spec, ts.quota.name,
                          self.config.events_buffer)
                job.state = DONE
                job.stats = stats
                job.cached = True
                job.finished = time.time()
                self._jobs[digest] = job
                self._record_finished(digest)
                ts.counters["warm_hits"] += 1
                self.registry.inc("serve.warm_hits", tenant=ts.quota.name,
                                  source="cache")
                self._job_event(job, {"kind": "job_state", "state": DONE,
                                      "cached": True, "final": True})
                job.done_evt.set()
                return job, "warm"
            if ts.depth >= ts.quota.queue_limit:
                ts.counters["rejected_queue"] += 1
                self.registry.inc("serve.admission_reject",
                                  tenant=ts.quota.name, reason="queue")
                self._emit(AdmissionRejectEvent(
                    t=self._now_ms(), tenant=ts.quota.name, reason="queue",
                    retry_after=1.0))
                raise AdmissionError(ts.quota.name, "queue", 1.0)
            job = Job(digest, spec, ts.quota.name, self.config.events_buffer)
            self._jobs[digest] = job
            ts.queue.append(digest)
            self._update_depth(ts)
            self._emit(JobQueuedEvent(t=self._now_ms(), digest=digest,
                                      tenant=ts.quota.name,
                                      queue_depth=ts.depth))
            self._job_event(job, {"kind": "job_queued",
                                  "tenant": ts.quota.name,
                                  "queue_depth": ts.depth})
            self._cond.notify_all()
            return job, "queued"

    # -- queries -------------------------------------------------------
    def job(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise UnknownJobError(job_id)
            return job

    def jobs(self) -> List[dict]:
        with self._lock:
            return [j.to_doc() for j in self._jobs.values()]

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        job = self.job(job_id)
        job.done_evt.wait(timeout)
        return job

    def subscribe(self, job_id: str,
                  fn: Callable[[dict], None]) -> List[dict]:
        """Register ``fn`` for the job's future events; returns the ring
        snapshot for replay. Atomic, so no event is missed or doubled."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise UnknownJobError(job_id)
            replay = list(job.events)
            job.subscribers.append(fn)
            return replay

    def unsubscribe(self, job_id: str, fn: Callable[[dict], None]) -> None:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None and fn in job.subscribers:
                job.subscribers.remove(fn)

    def summary(self) -> dict:
        with self._lock:
            states = {QUEUED: 0, RUNNING: 0, DONE: 0, FAILED: 0}
            for j in self._jobs.values():
                states[j.state] = states.get(j.state, 0) + 1
            return {
                "uptime_s": round(time.monotonic() - self.t0, 3),
                "draining": self._draining,
                "workers": len(self._slots),
                "jobs": {"total": len(self._jobs), **states},
                "tenants": {name: ts.to_doc()
                            for name, ts in sorted(self._tenants.items())},
                "cache": self.cache.stats() if self.cache else None,
            }

    def metrics_snapshot(self) -> dict:
        """The manager registry (serve.* counters + merged farm/sim
        metrics from every finished job)."""
        with self._lock:
            return self.registry.snapshot()

    def healthy(self) -> dict:
        with self._lock:
            return {"ok": True,
                    "state": "draining" if self._draining else "serving",
                    "uptime_s": round(time.monotonic() - self.t0, 3),
                    "pending": self._n_pending()}

    # -- internals -----------------------------------------------------
    def _now_ms(self) -> int:
        return int((time.monotonic() - self.t0) * 1000)

    def _emit(self, event) -> None:
        if self.bus:
            self.bus.emit(event)

    def _n_pending(self) -> int:
        return sum(ts.depth for ts in self._tenants.values())

    def _get_tenant(self, quota: TenantQuota) -> TenantState:
        ts = self._tenants.get(quota.name)
        if ts is None:
            ts = TenantState(quota, self._clock)
            self._tenants[quota.name] = ts
            self._rr.append(quota.name)
        return ts

    def _tenant_for(self, api_key: str) -> TenantState:
        if api_key:
            name = self._keys.get(api_key)
            if name is None:
                raise AuthError("unknown API key")
            return self._tenants[name]
        if self.config.require_key:
            raise AuthError("an API key is required (X-API-Key header)")
        return self._tenants[self.config.default_quota.name]

    def _update_depth(self, ts: TenantState) -> None:
        self.registry.gauge("serve.queue_depth",
                            tenant=ts.quota.name).set(ts.depth)

    def _job_event(self, job: Job, payload: dict) -> None:
        # caller holds the lock
        job._seq += 1
        event = {"seq": job._seq, "t": self._now_ms(),
                 "digest": job.digest, **payload}
        job.events.append(event)
        for fn in list(job.subscribers):
            try:
                fn(event)
            except Exception:
                pass  # a dead subscriber must not break the job

    def _record_finished(self, digest: str) -> None:
        # caller holds the lock; bound the in-memory job table
        self._finished_order.append(digest)
        while len(self._jobs) > self.config.max_jobs and self._finished_order:
            victim = self._finished_order.popleft()
            job = self._jobs.get(victim)
            if job is not None and job.state in (DONE, FAILED) \
                    and not job.subscribers:
                del self._jobs[victim]

    def _fail_abandoned(self, job: Job, why: str) -> None:
        # caller holds the lock
        job.state = FAILED
        job.error = why
        job.finished = time.time()
        self._tenants[job.tenant].counters["failed"] += 1
        self.registry.inc("serve.jobs", status="abandoned")
        self._record_finished(job.digest)
        self._job_event(job, {"kind": "job_state", "state": FAILED,
                              "error": why, "final": True})
        job.done_evt.set()

    def _on_farm_event(self, slot: _WorkerSlot, event) -> None:
        # slot-thread context: route the farm event into the job's ring
        d = event.to_dict()
        digest = d.get("digest") or slot.current
        if not digest:
            return
        with self._lock:
            job = self._jobs.get(digest)
            if job is not None:
                self._job_event(job, d)

    # -- execution -----------------------------------------------------
    def _slot_loop(self, slot: _WorkerSlot) -> None:
        while True:
            job = self._next_job(slot)
            if job is None:
                return
            try:
                self._execute(slot, job)
            finally:
                slot.current = None

    def _next_job(self, slot: _WorkerSlot) -> Optional[Job]:
        with self._cond:
            while True:
                if self._stopped:
                    return None
                for _ in range(len(self._rr)):
                    name = self._rr[0]
                    self._rr.rotate(-1)
                    ts = self._tenants[name]
                    if ts.queue:
                        digest = ts.queue.popleft()
                        ts.n_running += 1
                        self._update_depth(ts)
                        job = self._jobs[digest]
                        job.state = RUNNING
                        job.started = time.time()
                        slot.current = digest
                        self._job_event(job, {"kind": "job_state",
                                              "state": RUNNING,
                                              "slot": slot.id})
                        return job
                self._cond.wait(0.5)

    def _execute(self, slot: _WorkerSlot, job: Job) -> None:
        # fresh registry per job so the merge below never races a snapshot
        run_reg = slot.farm.registry = MetricsRegistry()
        try:
            res = slot.farm.run([job.spec])[0]
        except Exception as exc:   # farm.run should not raise; belt+braces
            res = None
            error = f"{type(exc).__name__}: {exc}"
        else:
            error = res.error
        with self._cond:
            ts = self._tenants[job.tenant]
            ts.n_running -= 1
            self._update_depth(ts)
            if res is not None:
                job.attempts = res.attempts
                job.wall_s = res.wall_s
            job.finished = time.time()
            if error is None and res is not None:
                job.state = DONE
                job.stats = res.stats
                ts.counters["done"] += 1
                self.registry.inc("serve.jobs", status="done")
                if (self.cache is not None and res.stats is not None
                        and res.stats.completed):
                    self.cache.put(job.spec, res.stats, wall_s=res.wall_s)
            else:
                job.state = FAILED
                job.error = error
                ts.counters["failed"] += 1
                self.registry.inc("serve.jobs", status="failed")
            self.registry.merge_snapshot(run_reg.snapshot())
            self._record_finished(job.digest)
            self._job_event(job, {"kind": "job_state", "state": job.state,
                                  "error": job.error, "final": True})
            self._cond.notify_all()
        job.done_evt.set()
