"""Tests for the conflict-detection models (Bloom vs precise)."""

import pytest

from repro.mem.conflicts import (
    BloomConflictModel,
    PreciseConflictModel,
    make_conflict_model,
)

from .conftest import FakeOwner


def attach(model, key):
    o = FakeOwner((key,))
    o.read_lines = set()
    o.write_lines = set()
    model.register(o)
    return o


class TestPrecise:
    def test_never_false_conflicts(self):
        model = PreciseConflictModel()
        a, b = attach(model, 1), attach(model, 2)
        for line in range(1000):
            model.note_access(a, line, is_write=True)
            assert model.false_conflict(b, line + 5000, is_write=True) is None

    def test_live_tracking(self):
        model = PreciseConflictModel()
        a = attach(model, 1)
        assert model.live_count == 1
        model.unregister(a)
        assert model.live_count == 0


class TestBloomSampled:
    def test_no_false_conflicts_with_tiny_footprints(self):
        model = BloomConflictModel(bits=2048, ways=8, seed=1)
        a, b = attach(model, 1), attach(model, 2)
        for line in range(4):
            model.note_access(a, line, is_write=True)
        hits = sum(model.false_conflict(b, 10_000 + i, True) is not None
                   for i in range(2000))
        assert hits == 0

    def test_saturated_signature_conflicts_constantly(self):
        model = BloomConflictModel(bits=256, ways=4, seed=1)
        a, b = attach(model, 1), attach(model, 2)
        for line in range(3000):
            model.note_access(a, line, is_write=True)
        hits = sum(model.false_conflict(b, 10**6 + i, True) is not None
                   for i in range(200))
        assert hits > 150
        assert model.false_positives == hits

    def test_alone_never_conflicts(self):
        model = BloomConflictModel(seed=1)
        a = attach(model, 1)
        for line in range(5000):
            model.note_access(a, line, is_write=True)
        assert model.false_conflict(a, 42, True) is None

    def test_unregister_removes_fp_mass(self):
        model = BloomConflictModel(bits=256, ways=4, seed=1)
        a, b = attach(model, 1), attach(model, 2)
        for line in range(3000):
            model.note_access(a, line, is_write=True)
        model.unregister(a)
        hits = sum(model.false_conflict(b, 10**6 + i, True) is not None
                   for i in range(500))
        assert hits == 0


class TestBloomExact:
    def test_exact_probe_finds_aliases(self):
        model = BloomConflictModel(bits=64, ways=2, seed=1, exact=True)
        a, b = attach(model, 1), attach(model, 2)
        for line in range(500):
            model.note_access(a, line, is_write=True)
            a.write_lines.add(line)
        # some unseen line must alias in a 64-bit filter with 500 lines
        hits = sum(model.false_conflict(b, 10**6 + i, True) is not None
                   for i in range(50))
        assert hits > 0

    def test_exact_probe_excludes_true_hits(self):
        model = BloomConflictModel(bits=2048, ways=8, seed=1, exact=True)
        a, b = attach(model, 1), attach(model, 2)
        model.note_access(a, 7, is_write=True)
        a.write_lines.add(7)
        # touching the truly-written line is a true conflict, not false
        assert model.false_conflict(b, 7, True) is None


class ForcedRandom:
    """Deterministic rng stub: returns queued draws, then raises."""

    def __init__(self, draws):
        self._draws = list(draws)

    def random(self):
        return self._draws.pop(0)


class TestGaugeParity:
    def test_register_unregister_parity(self):
        # Both models must drive the peak-live gauge identically for the
        # same register/unregister sequence (including double-unregister,
        # which must not underflow the peak).
        traces = []
        for model in (PreciseConflictModel(), BloomConflictModel(seed=1)):
            gauge = type("G", (), {"value": 0})()
            model._live_gauge = gauge
            trace = []
            a, b, c = (attach(model, k) for k in (1, 2, 3))
            trace.append(gauge.value)
            model.unregister(b)
            model.unregister(b)  # idempotent
            trace.append((gauge.value, model.live_count))
            d = attach(model, 4)
            trace.append((gauge.value, model.live_count))
            for o in (a, c, d):
                model.unregister(o)
            trace.append((gauge.value, model.live_count))
            traces.append(trace)
        assert traces[0] == traces[1]
        assert traces[0][-1] == (3, 0)  # peak sticks, live drains


class TestBloomVictimSelection:
    def test_zero_rate_task_never_elected_victim(self):
        # Regression: the weighted victim walk used to assign `chosen`
        # before checking the candidate's rate, so float drift in the
        # running fp sum (or a pick of exactly 0.0) could elect a task
        # with *empty* signatures — one that cannot alias anything.
        model = BloomConflictModel(bits=2048, ways=8, seed=1)
        owner = attach(model, 1)
        attach(model, 2)  # never accesses anything: zero-rate signatures
        model.note_access(owner, 5, is_write=True)
        # Simulate running-sum drift: _fp_sum a hair above owner's own
        # cached rate even though every other live task is empty.
        model._fp_sum = owner._fp_cached + 1e-9
        model._rng = ForcedRandom([0.0, 0.0])  # pass Bernoulli; pick = 0.0
        model._rand = model._rng.random  # hot paths bind .random once
        assert model.false_conflict(owner, 999, True) is None
        assert model.false_positives == 0

    def test_victim_walk_follows_registration_order(self):
        # Regression: _live used to be a set, so the weighted walk (and
        # the exact probe) iterated live tasks in object-address order —
        # the elected victim differed from run to run of the same seed
        # (the 256b column of bench_ablation_conflict was observably
        # nondeterministic). With registration-ordered iteration and a
        # pick of 0.0, the victim must be the first-registered candidate.
        model = BloomConflictModel(bits=2048, ways=8, seed=1)
        owner = attach(model, 0)
        others = [attach(model, k) for k in range(1, 41)]
        for i, o in enumerate(others):
            model.note_access(o, 1000 + i, is_write=True)
        model._rng = ForcedRandom([0.0, 0.0])  # pass Bernoulli; pick = 0.0
        model._rand = model._rng.random  # hot paths bind .random once
        assert model.false_conflict(owner, 999, True) is others[0]

    def test_exact_and_sampled_agree_on_who_must_die(self):
        # With one saturated task and one empty task live, both probing
        # modes must only ever elect the saturated one: an empty signature
        # cannot falsely match, so "who must die" never names it.
        for exact in (False, True):
            model = BloomConflictModel(bits=128, ways=2, seed=3, exact=exact)
            sat, empty, prober = (attach(model, k) for k in (1, 2, 3))
            for line in range(2000):
                model.note_access(sat, line, is_write=True)
            victims = {model.false_conflict(prober, 10**6 + i, True)
                       for i in range(300)}
            victims.discard(None)
            assert victims == {sat}, f"exact={exact}"


class TestFactory:
    def test_factory_modes(self):
        assert isinstance(make_conflict_model("precise"), PreciseConflictModel)
        assert isinstance(make_conflict_model("bloom"), BloomConflictModel)
        with pytest.raises(ValueError):
            make_conflict_model("magic")
