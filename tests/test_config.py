"""Tests for SystemConfig (paper Table 2)."""

import pytest

from repro.config import LatencyModel, SystemConfig
from repro.errors import ConfigError


class TestPaperConfig:
    def test_paper_256core_matches_table2(self):
        cfg = SystemConfig.paper_256core()
        assert cfg.n_cores == 256
        assert cfg.n_tiles == 64
        assert cfg.total_task_queue == 16384
        assert cfg.total_commit_queue == 4096
        assert cfg.vt_bits == 128
        assert cfg.commit_interval == 200

    def test_describe_covers_table2_rows(self):
        text = SystemConfig.paper_256core().describe()
        for token in ("256 cores", "64 tiles", "Bloom", "GVT",
                      "coalescers", "hints", "mesh"):
            assert token.lower() in text.lower()


class TestWithCores:
    @pytest.mark.parametrize("n,cpt", [(1, 1), (4, 4), (16, 4), (64, 4),
                                       (256, 4)])
    def test_paper_core_counts(self, n, cpt):
        cfg = SystemConfig.with_cores(n)
        assert cfg.n_cores == n
        assert cfg.cores_per_tile == cpt

    def test_awkward_counts_still_tile(self):
        cfg = SystemConfig.with_cores(8)
        assert cfg.n_cores == 8
        assert cfg.mesh_dim ** 2 * cfg.cores_per_tile == 8

    def test_prime_count_single_tile(self):
        cfg = SystemConfig.with_cores(7)
        assert cfg.n_cores == 7 and cfg.n_tiles == 1

    def test_invalid(self):
        with pytest.raises(ConfigError):
            SystemConfig.with_cores(0)


class TestValidation:
    def test_bad_conflict_mode(self):
        with pytest.raises(ConfigError):
            SystemConfig(conflict_mode="psychic")

    def test_bad_bloom_bits(self):
        with pytest.raises(ConfigError):
            SystemConfig(bloom_bits=1000)

    def test_bad_spill_threshold(self):
        with pytest.raises(ConfigError):
            SystemConfig(spill_threshold=0.0)

    def test_tiny_vt_budget(self):
        with pytest.raises(ConfigError):
            SystemConfig(vt_bits=16)

    def test_replace(self):
        cfg = SystemConfig.with_cores(4)
        cfg2 = cfg.replace(conflict_mode="precise")
        assert cfg2.conflict_mode == "precise"
        assert cfg2.n_cores == cfg.n_cores

    def test_frozen(self):
        cfg = SystemConfig.with_cores(4)
        with pytest.raises(Exception):
            cfg.mesh_dim = 2

    def test_latency_model_defaults(self):
        lat = LatencyModel()
        assert lat.l1_hit < lat.l2_hit < lat.l3_hit < lat.mem_latency
