#!/usr/bin/env python
"""CI smoke test for ``repro serve`` as a real OS process.

Covers the service's whole observable lifecycle:

1. start ``python -m repro serve --port 0`` as a subprocess and parse
   the bound port from its stderr banner;
2. submit a quick job matrix through :class:`repro.serve.client` and
   wait for every result;
3. resubmit the matrix and assert every answer is a warm cache /
   coalesce hit (no second execution);
4. stream at least one SSE event from a job's event feed;
5. send SIGTERM and assert the server drains and exits with code 0.

Exit code 0 if every step holds, 1 otherwise. Stdlib + repro only.
"""

import pathlib
import re
import signal
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.client import ServeClient                    # noqa: E402

MATRIX = [
    {"app": "zoomtree", "variant": "fractal", "n_cores": n,
     "input": {"fanout": 2, "depth": 3}}
    for n in (2, 4)
] + [
    {"app": "mis", "variant": "fractal", "n_cores": 2,
     "input": {"scale": 6, "edge_factor": 4, "seed": 1}},
]

BANNER = re.compile(r"listening on http://([\d.]+):(\d+)")


def fail(msg):
    print(f"serve-smoke: FAIL: {msg}", file=sys.stderr)
    return 1


def wait_for_banner(proc, timeout=30.0):
    """Read the server's stderr until the listening banner appears."""
    deadline = time.monotonic() + timeout
    lines = []
    while time.monotonic() < deadline:
        line = proc.stderr.readline()
        if not line:
            if proc.poll() is not None:
                break
            continue
        lines.append(line)
        m = BANNER.search(line)
        if m:
            return f"http://{m.group(1)}:{m.group(2)}", lines
    raise RuntimeError(f"no listening banner; stderr so far: {lines!r}")


def main():
    cache_dir = tempfile.mkdtemp(prefix="serve-smoke-cache-")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "2", "--cache-dir", cache_dir,
         "--drain-timeout", "120"],
        cwd=REPO_ROOT, stderr=subprocess.PIPE, text=True,
        env={**__import__("os").environ,
             "PYTHONPATH": str(REPO_ROOT / "src")})
    try:
        url, _ = wait_for_banner(proc)
        print(f"server up at {url}", flush=True)
        with ServeClient(url, timeout=300.0) as client:
            client.wait_ready(timeout=30)

            ids = []
            for spec in MATRIX:
                doc = client.submit(spec)
                ids.append(doc["id"])
            for job_id in ids:
                res = client.result(job_id, timeout=300)
                if res["state"] != "done":
                    return fail(f"job {job_id[:12]} state {res['state']}")
            print(f"cold pass: {len(ids)} jobs done", flush=True)

            warm = 0
            for spec in MATRIX:
                doc = client.submit(spec)
                if doc["outcome"] not in ("warm", "coalesced"):
                    return fail(f"resubmission was {doc['outcome']!r}, "
                                f"expected warm/coalesced")
                warm += 1
            print(f"warm pass: {warm}/{len(MATRIX)} warm hits", flush=True)

            events = list(client.events(ids[0], timeout=60))
            if not events:
                return fail("SSE stream yielded no events")
            if not events[-1][1].get("final"):
                return fail("SSE stream did not terminate on a final event")
            print(f"sse pass: {len(events)} events "
                  f"({', '.join(k for k, _ in events[:4])}, ...)",
                  flush=True)

        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=180)
        if rc != 0:
            return fail(f"server exited {rc} after SIGTERM, expected 0")
        print("drain pass: clean exit 0", flush=True)
        print("serve-smoke: OK", flush=True)
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)


if __name__ == "__main__":
    sys.exit(main())
