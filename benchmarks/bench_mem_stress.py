"""Stress bench for the versioned-memory / Bloom layer, driven directly.

Hammers :class:`repro.mem.memory.SpecMemory` and the conflict models with
synthetic owner waves — no simulator, no apps — so wall time measures
exactly the memory layer that ISSUE 10 vectorizes. This is the
"memory-bound benchmark subset" whose before/after numbers are pinned in
``BENCH_summary.json``.

Three sweeps:

- ``churn``  — each owner re-accesses a small private working set many
  times (re-access dominated: the epoch-memoized fast path should turn
  almost every access into a dict hit; precise conflict model).
- ``shared`` — owner waves load a hot shared region plus a private slice
  (probe/victim-scan dominated; precise model; no aborts so both engines
  do identical work).
- ``bloom``  — the churn mix through ``BloomConflictModel`` sampled mode
  (signature insert + false-positive bookkeeping dominated).

Every op sequence is seeded and fixed, so the two engines do identical
logical work and per-config RunStats-grade counters must match exactly.

Usage::

    PYTHONPATH=src python benchmarks/bench_mem_stress.py \
        [--engine fast|scalar] [--json OUT] [--repeat N]

``--engine`` is forwarded to ``SpecMemory`` when the installed version
supports it (post-vectorization); on older trees it falls back to the
only engine there is, which makes this file runnable at the pre-change
commit to record honest "before" numbers.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.mem.address import AddressSpace  # noqa: E402
from repro.mem.conflicts import (BloomConflictModel,  # noqa: E402
                                 PreciseConflictModel)
from repro.mem.memory import SpecMemory  # noqa: E402


class Owner:
    """Minimal OwnerProtocol stand-in with a fixed VT key."""

    __slots__ = ("_key", "aborted", "undo", "reads", "writes", "read_lines",
                 "write_lines", "deps", "dependents", "sig_read", "sig_write",
                 "_fp_cached", "_okey", "_line_memo", "_sig_row")

    def __init__(self, key):
        self._key = key
        self.aborted = False

    def order_key(self):
        return self._key

    def still_executing(self):
        return False

    def __repr__(self):
        return f"Owner{self._key}"


def _cascade(mem):
    """Abort hook: roll back victims latest-first (plus data dependents)."""

    def hook(victims, reason):
        cascade, stack, seen = [], list(victims), set()
        while stack:
            v = stack.pop()
            if id(v) in seen:
                continue
            seen.add(id(v))
            cascade.append(v)
            stack.extend(v.dependents)
        for v in sorted(cascade, key=lambda o: o.order_key(), reverse=True):
            v.aborted = True
            mem.rollback(v)

    return hook


def _make_memory(model, engine):
    space = AddressSpace(line_bytes=64, n_tiles=4)
    params = inspect.signature(SpecMemory.__init__).parameters
    if "engine" in params:
        mem = SpecMemory(space, model, engine=engine)
    else:  # pre-vectorization tree: single scalar engine
        mem = SpecMemory(space, model)
    mem.abort_cascade = _cascade(mem)
    return space, mem


def run_churn(engine, waves=120, owners_per_wave=8, lines_each=4, rounds=12):
    """Private working sets, heavy re-access."""
    model = PreciseConflictModel()
    space, mem = _make_memory(model, engine)
    lw = space.line_words
    region = space.alloc("churn", owners_per_wave * lines_each * lw)
    accesses = 0
    t0 = time.perf_counter()
    for wave in range(waves):
        batch = []
        for i in range(owners_per_wave):
            o = Owner((wave, i))
            mem.attach_owner(o)
            batch.append(o)
        for i, o in enumerate(batch):
            base = i * lines_each * lw
            for _ in range(rounds):
                for w in range(lines_each * lw):
                    mem.load(o, region.addr(base + w))
                for ln in range(lines_each):
                    mem.store(o, region.addr(base + ln * lw), wave)
                accesses += lines_each * (lw + 1)
        for o in batch:
            mem.commit(o)
    wall = time.perf_counter() - t0
    mem.assert_quiescent()
    return wall, accesses, _counters(mem, model)


def run_shared(engine, waves=120, readers_per_wave=8, hot_lines=4, rounds=6):
    """Forwarding from hot lines with deep finished-writer chains.

    Per wave, one earlier-VT writer per word of each hot line stores its
    word (so every hot line carries a chain of ``line_words`` finished
    speculative writers), then later-VT readers repeatedly load the whole
    region — the forwarded-reduction pattern. Every load's victim scan
    walks the full chain and finds nothing, so both engines do identical
    logical work with zero aborts; the fast engine memoizes the clean
    probe after the first touch."""
    model = PreciseConflictModel()
    space, mem = _make_memory(model, engine)
    lw = space.line_words
    hot = space.alloc("hot", hot_lines * lw)
    accesses = 0
    t0 = time.perf_counter()
    for wave in range(waves):
        writers = []
        for j in range(lw):
            o = Owner((wave, j))
            mem.attach_owner(o)
            writers.append(o)
        readers = []
        for i in range(readers_per_wave):
            o = Owner((wave, lw + i))
            mem.attach_owner(o)
            readers.append(o)
        for j, o in enumerate(writers):
            for ln in range(hot_lines):
                mem.store(o, hot.addr(ln * lw + j), wave)
            accesses += hot_lines
        for _ in range(rounds):
            for o in readers:
                for w in range(hot_lines * lw):
                    mem.load(o, hot.addr(w))
                accesses += hot_lines * lw
        for o in writers:
            mem.commit(o)
        for o in readers:
            mem.commit(o)
    wall = time.perf_counter() - t0
    mem.assert_quiescent()
    return wall, accesses, _counters(mem, model)


def run_bloom(engine, waves=80, owners_per_wave=8, lines_each=4, rounds=10):
    """The churn mix through Bloom signatures (sampled false positives)."""
    model = BloomConflictModel(bits=2048, ways=8, seed=7)
    space, mem = _make_memory(model, engine)
    lw = space.line_words
    region = space.alloc("bloomset", owners_per_wave * lines_each * lw)
    accesses = 0
    t0 = time.perf_counter()
    for wave in range(waves):
        batch = []
        for i in range(owners_per_wave):
            o = Owner((wave, i))
            mem.attach_owner(o)
            batch.append(o)
        for i, o in enumerate(batch):
            base = i * lines_each * lw
            for _ in range(rounds):
                for w in range(lines_each * lw):
                    if o.aborted:
                        break
                    mem.load(o, region.addr(base + w))
                    accesses += 1
                for ln in range(lines_each):
                    if o.aborted:
                        break
                    mem.store(o, region.addr(base + ln * lw), wave)
                    accesses += 1
                if o.aborted:
                    break
        for o in batch:
            if not o.aborted:
                mem.commit(o)
    wall = time.perf_counter() - t0
    mem.assert_quiescent()
    c = _counters(mem, model)
    c["false_positives"] = model.false_positives
    return wall, accesses, c


def _counters(mem, model):
    return {
        "n_loads": mem.n_loads,
        "n_stores": mem.n_stores,
        "n_true_conflicts": mem.n_true_conflicts,
        "mem_probe_steps": mem.probe_steps,
        "fast_hits": getattr(mem, "fast_hits", 0),
        "slow_probes": getattr(mem, "slow_probes", 0),
        "conflict_probe_steps": getattr(model, "probe_steps", 0),
    }


CONFIGS = {
    "churn": run_churn,
    "shared": run_shared,
    "bloom": run_bloom,
}


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--engine", default="fast", choices=["fast", "scalar"],
                    help="SpecMemory engine (ignored on pre-engine trees)")
    ap.add_argument("--only", default=None,
                    help="comma-separated subset of configs")
    ap.add_argument("--repeat", type=int, default=3,
                    help="timed repetitions; best wall is reported")
    ap.add_argument("--json", default=None, help="write results to this file")
    args = ap.parse_args(argv)

    names = list(CONFIGS) if not args.only else args.only.split(",")
    results = {}
    for name in names:
        fn = CONFIGS[name]
        best, accesses, counters = None, 0, {}
        for _ in range(args.repeat):
            wall, accesses, counters = fn(args.engine)
            best = wall if best is None else min(best, wall)
        rate = accesses / best if best else 0.0
        results[name] = {
            "wall_s": round(best, 4),
            "accesses": accesses,
            "accesses_per_s": round(rate),
            "counters": counters,
        }
        print(f"{name:8s} engine={args.engine:7s} {best:7.3f}s  "
              f"{accesses:9d} accesses  {rate / 1e3:8.1f} k/s")

    doc = {
        "schema": "repro.mem-stress/1",
        "engine": args.engine,
        "configs": results,
    }
    if args.json:
        Path(args.json).write_text(json.dumps(doc, indent=2, sort_keys=True))
        print(f"wrote {args.json}")
    return doc


if __name__ == "__main__":
    main()
