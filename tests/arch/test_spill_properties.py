"""Property tests: SpillBuffer and spill-victim selection invariants.

Generated VT keys deliberately mix nesting depths — a shallow task's
1-element key against a deep task's 3-element key is exactly the shape
that broke naive stripped-key comparisons (see arch/frontier.py).
"""

from hypothesis import given, settings, strategies as st

from repro.arch.spill import SpillBuffer, select_spill_victims
from repro.core.task import TaskState

_vt_keys = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 7)),
    min_size=1, max_size=3).map(tuple)


class _Task:
    def __init__(self, key, committed_parent=True):
        self._key = key
        self.queue_token = 0
        self.parent = None if committed_parent else _Parent()

    def order_key(self):
        return self._key

    def __repr__(self):
        return f"_Task{self._key}"


class _Parent:
    state = TaskState.RUNNING  # i.e. not committed: child is unspillable


def _stripped(key, now_lb=1000):
    """The simulator's stripped-key transform with a frozen lower bound."""
    return key[:-1] + ((key[-1][0], now_lb),)


class TestSpillBufferProperties:
    def test_empty_buffer_min_key_is_none(self):
        buf = SpillBuffer([])
        assert buf.min_key() is None
        assert buf.min_stripped(0) is None

    @given(keys=st.lists(_vt_keys, max_size=12))
    @settings(max_examples=80, deadline=None)
    def test_remove_absent_returns_false(self, keys):
        buf = SpillBuffer([_Task(k) for k in keys])
        outsider = _Task(((99, 99),))
        assert buf.remove(outsider) is False
        assert len(buf) == len(keys)

    @given(keys=st.lists(_vt_keys, min_size=1, max_size=12),
           drop=st.data())
    @settings(max_examples=80, deadline=None)
    def test_min_keys_track_contents_across_removals(self, keys, drop):
        tasks = [_Task(k) for k in keys]
        buf = SpillBuffer(tasks)
        while tasks:
            assert buf.min_key() == min(t.order_key() for t in tasks)
            assert buf.min_stripped(1000) == min(
                _stripped(t.order_key()) for t in tasks)
            victim = drop.draw(st.sampled_from(tasks))
            assert buf.remove(victim) is True
            assert buf.remove(victim) is False  # second removal: gone
            tasks.remove(victim)
        assert buf.min_key() is None
        assert buf.min_stripped(1000) is None


class TestVictimSelectionProperties:
    @given(keys=st.lists(_vt_keys, min_size=1, max_size=12, unique=True),
           batch=st.integers(0, 12))
    @settings(max_examples=120, deadline=None)
    def test_victims_never_earlier_than_retained_minimum(self, keys, batch):
        pending = [_Task(k) for k in keys]
        victims = select_spill_victims(pending, _stripped, batch)
        assert len(victims) <= batch
        retained = [t for t in pending if t not in victims]
        # the earliest spillable task must stay resident (it may hold the
        # GVT), so every victim sorts at or after the retained minimum
        assert retained
        floor = min(_stripped(t.order_key()) for t in retained)
        for v in victims:
            assert _stripped(v.order_key()) >= floor

    @given(keys=st.lists(_vt_keys, min_size=1, max_size=12, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_uncommitted_parents_are_never_spilled(self, keys):
        pending = [_Task(k, committed_parent=(i % 2 == 0))
                   for i, k in enumerate(keys)]
        victims = select_spill_victims(pending, _stripped, len(keys))
        assert all(v.parent is None for v in victims)
