"""Table 2: configuration of the simulated system.

Prints the modeled 256-core configuration alongside the paper's values and
asserts the architectural parameters match Table 2 exactly.
"""

from _common import emit, once
from repro.config import SystemConfig


def bench_table2_config(benchmark):
    cfg = once(benchmark, SystemConfig.paper_256core)
    emit("table2_config", cfg.describe())
    assert cfg.n_cores == 256
    assert cfg.n_tiles == 64 and cfg.cores_per_tile == 4
    assert cfg.total_task_queue == 16384
    assert cfg.total_commit_queue == 4096
    assert cfg.vt_bits == 128
    assert cfg.bloom_bits == 2048 and cfg.bloom_ways == 8
    assert cfg.commit_interval == 200
    assert cfg.spill_threshold == 0.85 and cfg.spill_batch == 15
    assert cfg.enqueue_cost == 5 and cfg.create_subdomain_cost == 2
    assert cfg.latency.l1_hit == 2 and cfg.latency.l2_hit == 7
    assert cfg.latency.l3_hit == 9 and cfg.latency.mem_latency == 120
    assert cfg.mesh_dim == 8


if __name__ == "__main__":
    emit("table2_config", SystemConfig.paper_256core().describe())
