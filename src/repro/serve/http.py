"""The serve HTTP layer: routes over the shared asyncio plumbing.

Routes (all JSON unless noted)::

    POST /v1/jobs           submit a JobSpec; 202 queued / 200 warm or
                            coalesced / 400 field errors / 429 quota
    GET  /v1/jobs           list known jobs
    GET  /v1/jobs/{id}      job state document
    GET  /v1/jobs/{id}/result   RunStats JSON (409 while pending,
                                500 + error when failed)
    GET  /v1/jobs/{id}/events   Server-Sent Events progress stream
    GET  /healthz           liveness + drain state
    GET  /metrics           serve/farm/sim metrics snapshot + summary

The connection loop, request parsing, and error scaffolding live in
:mod:`repro.serve.httpbase` (shared with the distributed-farm
coordinator); this module adds only the serve routes and their binding
to :class:`~repro.serve.manager.JobManager`.
"""

from __future__ import annotations

import asyncio
import json
import math
import signal
import sys
import threading
import time
from typing import Optional

from ..errors import ConfigError
from ..farm import SpecValidationError
from .config import SERVE_SCHEMA, ServeConfig
from .httpbase import (MAX_BODY, JsonHttpServer, Request,  # noqa: F401
                       run_loop_in_thread)
from .manager import DONE, FAILED, JobManager, ServeError

#: kept as the historic import location (tests patch/import these here)
_Request = Request

#: seconds between SSE keepalive comments on an idle stream
SSE_KEEPALIVE_S = 15.0


class ServeServer(JsonHttpServer):
    """One listening server bound to a :class:`JobManager`."""

    SCHEMA = SERVE_SCHEMA

    def __init__(self, manager: JobManager, config: ServeConfig) -> None:
        super().__init__(config.host, config.port)
        self.manager = manager
        self.config = config

    async def start(self) -> None:
        await super().start()
        self.manager.start()

    # -- error translation ---------------------------------------------
    def _translate_error(self, exc: Exception):
        if isinstance(exc, SpecValidationError):
            return 400, {"error": str(exc.what), "source": "spec",
                         "errors": exc.errors}, None
        if isinstance(exc, ServeError):
            doc = {"error": str(exc)}
            headers = {}
            if getattr(exc, "retry_after", None) is not None:
                headers["Retry-After"] = str(
                    max(1, math.ceil(exc.retry_after)))
                doc["retry_after"] = round(exc.retry_after, 3)
                doc["reason"] = exc.reason
            return exc.status, doc, headers
        return None

    # -- routing -------------------------------------------------------
    async def _dispatch(self, req: Request, writer) -> bool:
        m, path = req.method, req.path.rstrip("/") or "/"
        if path == "/healthz" and m == "GET":
            self._send(writer, 200, self.manager.healthy())
        elif path == "/metrics" and m == "GET":
            self._send(writer, 200, {
                "schema": "repro.serve-metrics/1",
                "serve": self.manager.summary(),
                "metrics": self.manager.metrics_snapshot()})
        elif path == "/v1/jobs" and m == "POST":
            doc = req.json()
            loop = asyncio.get_running_loop()
            job, outcome = await loop.run_in_executor(
                None, self.manager.submit, doc, req.api_key)
            status = 202 if outcome == "queued" else 200
            self._send(writer, status,
                       {**job.to_doc(), "outcome": outcome})
        elif path == "/v1/jobs" and m == "GET":
            self._send(writer, 200, {"jobs": self.manager.jobs()})
        elif path.startswith("/v1/jobs/"):
            return await self._job_route(req, writer, path)
        else:
            return await self._not_found(req, writer)
        await writer.drain()
        return True

    async def _job_route(self, req: Request, writer, path: str) -> bool:
        rest = path[len("/v1/jobs/"):]
        job_id, _, sub = rest.partition("/")
        if req.method != "GET" or sub not in ("", "result", "events"):
            self._send(writer, 405, {"error": "method not allowed"})
            return True
        job = self.manager.job(job_id)     # raises UnknownJobError -> 404
        if sub == "":
            self._send(writer, 200, job.to_doc())
        elif sub == "result":
            if job.state == DONE:
                self._send(writer, 200,
                           {"id": job.digest, "state": job.state,
                            "cached": job.cached, "wall_s": job.wall_s,
                            "stats": job.stats.to_dict()})
            elif job.state == FAILED:
                self._send(writer, 500,
                           {"id": job.digest, "state": job.state,
                            "error": job.error})
            else:
                self._send(writer, 409,
                           {"id": job.digest, "state": job.state,
                            "error": "job not finished"})
        else:
            await self._sse(req, writer, job_id)
            return False
        await writer.drain()
        return True

    # -- SSE -----------------------------------------------------------
    async def _sse(self, req: Request, writer, job_id: str) -> None:
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()

        def push(event: dict) -> None:
            loop.call_soon_threadsafe(queue.put_nowait, event)

        replay = self.manager.subscribe(job_id, push)
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: text/event-stream\r\n"
                     b"Cache-Control: no-cache\r\n"
                     b"Connection: close\r\n\r\n")
        try:
            final = False
            for event in replay:
                writer.write(_sse_frame(event))
                final = final or bool(event.get("final"))
            await writer.drain()
            while not final:
                try:
                    event = await asyncio.wait_for(queue.get(),
                                                   timeout=SSE_KEEPALIVE_S)
                except asyncio.TimeoutError:
                    writer.write(b": keepalive\n\n")
                    await writer.drain()
                    continue
                writer.write(_sse_frame(event))
                await writer.drain()
                final = bool(event.get("final"))
        finally:
            self.manager.unsubscribe(job_id, push)


def _sse_frame(event: dict) -> bytes:
    kind = event.get("kind", "event")
    data = json.dumps(event, sort_keys=True)
    return (f"event: {kind}\nid: {event.get('seq', 0)}\n"
            f"data: {data}\n\n").encode("utf-8")


# -- entry points ------------------------------------------------------
async def _amain(config: ServeConfig,
                 manager: Optional[JobManager] = None) -> int:
    manager = manager or JobManager(config)
    server = ServeServer(manager, config)
    await server.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:      # pragma: no cover (non-unix)
            pass
    print(f"[serve] listening on http://{config.host}:{server.port} "
          f"({config.workers} workers, cache="
          f"{config.cache_dir or 'off'})", file=sys.stderr, flush=True)
    await stop.wait()
    print("[serve] signal received; draining", file=sys.stderr, flush=True)
    await server.close()
    clean = await loop.run_in_executor(None, manager.drain,
                                       config.drain_timeout_s)
    print(f"[serve] drain {'complete' if clean else 'TIMED OUT'}",
          file=sys.stderr, flush=True)
    return 0 if clean else 3


def serve_forever(config: ServeConfig) -> int:
    """Run until SIGTERM/SIGINT; returns the process exit code
    (0 clean drain, 3 drain timeout)."""
    try:
        return asyncio.run(_amain(config))
    except KeyboardInterrupt:            # pragma: no cover
        return 0


class ServerHandle:
    """A server running on a background thread (tests and benchmarks)."""

    def __init__(self, manager: JobManager, server: ServeServer,
                 loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread) -> None:
        self.manager = manager
        self.server = server
        self.loop = loop
        self.thread = thread

    @property
    def url(self) -> str:
        return f"http://{self.server.config.host}:{self.server.port}"

    def stop(self, drain: bool = True,
             timeout: Optional[float] = None) -> bool:
        """Close the listener, drain the manager, stop the loop."""
        fut = asyncio.run_coroutine_threadsafe(self.server.close(),
                                               self.loop)
        fut.result(timeout=10)
        clean = self.manager.drain(
            timeout if timeout is not None
            else (self.manager.config.drain_timeout_s if drain else 0.0))
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        return clean


def start_in_thread(config: ServeConfig, *,
                    manager: Optional[JobManager] = None) -> ServerHandle:
    """Start a server on a daemon thread; returns once it is listening.

    ``config.port`` may be 0 to pick a free port (see ``handle.url``).
    """
    mgr = manager or JobManager(config)
    server = ServeServer(mgr, config)
    loop, thread = run_loop_in_thread(server, name="serve-http")
    return ServerHandle(mgr, server, loop, thread)


# re-exported for backward compatibility (original definition site)
__all__ = ["MAX_BODY", "SSE_KEEPALIVE_S", "ServeServer", "ServerHandle",
           "serve_forever", "start_in_thread"]
