"""Task descriptors and their lifecycle (paper Sec. 4.1).

A :class:`TaskDesc` is a task's hardware descriptor: function pointer,
arguments, timestamp, spatial hint, and fractal VT. The same descriptor is
reused across re-executions (attempts) after aborts; all speculative state
(undo log, read/write sets, dependences — installed by
:meth:`repro.mem.memory.SpecMemory.attach_owner`) is per-attempt.

State machine::

    PENDING -> RUNNING -> {FINISHED | FINISH_STALLED -> FINISHED} -> COMMITTED
       ^          |                |
       |          +--- abort ------+----> PENDING   (re-execute)
       |          +--- squash -----+----> SQUASHED  (parent aborted; gone)
       |
       +--> SPILLED -> PENDING                      (coalescer / splitter)
       +--> WAIT_ZOOM -> PENDING                    (zoom request granted)
"""

from __future__ import annotations

import enum
from typing import Any, Callable, List, Optional, Tuple

from ..vt import FractalVT
from .domain import Domain

#: the tid the next TaskDesc will take (process-global, monotonic)
_tid_watermark = 0


def tid_watermark() -> int:
    """The tid the *next* TaskDesc will receive.

    Tids are process-global, so within one process a second run of the
    same workload sees different absolute tids. Anything that needs a
    per-run task identity (e.g. hash-keyed fault injection) subtracts the
    watermark captured at run construction.
    """
    return _tid_watermark


class TaskState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    FINISH_STALLED = "finish-stalled"
    FINISHED = "finished"
    COMMITTED = "committed"
    SQUASHED = "squashed"
    SPILLED = "spilled"
    WAIT_ZOOM = "wait-zoom"


class TaskDesc:
    """One Fractal task."""

    __slots__ = (
        # descriptor
        "tid", "fn", "args", "timestamp", "hint", "domain", "parent", "label",
        # lifecycle
        "state", "vt", "attempt", "aborted", "n_aborts", "n_exec_faults",
        "children", "subdomain",
        # placement
        "queue_tile", "queue_token", "core", "spill_buffer",
        # GVT frontier entry version (see arch.gvt.GvtFrontier)
        "_gvt_token",
        # timing (current attempt)
        "enqueue_time", "dispatch_time", "duration", "finish_time",
        "retry_after",
        # deferred app events (ctx.emit), published at commit
        "emits",
        # commit record
        "commit_seq", "commit_time",
        # zoom bookkeeping
        "zoom_pending_enqueues",
        # speculative owner state (installed by SpecMemory.attach_owner)
        "undo", "reads", "writes", "read_lines", "write_lines",
        "deps", "dependents", "sig_read", "sig_write", "_fp_cached",
        "_okey", "_line_memo", "_sig_row",
    )

    def __init__(self, fn: Callable, args: Tuple, domain: Domain,
                 timestamp: Optional[int] = None, hint: Optional[int] = None,
                 parent: Optional["TaskDesc"] = None,
                 label: Optional[str] = None):
        global _tid_watermark
        self.tid = _tid_watermark
        _tid_watermark += 1
        self.fn = fn
        self.args = args
        self.timestamp = timestamp
        self.hint = hint
        self.domain = domain
        self.parent = parent
        self.label = label or getattr(fn, "__name__", "task")

        self.state = TaskState.PENDING
        self.vt: Optional[FractalVT] = None
        self.attempt = 0
        self.aborted = False
        self.n_aborts = 0
        # attempts that died to an exception escaping the task body
        # (injected or app-code); bounds the resilience retry budget
        self.n_exec_faults = 0
        self.children: List[TaskDesc] = []
        self.subdomain: Optional[Domain] = None

        self.queue_tile = -1
        self.queue_token = 0
        self._gvt_token = 0
        self.core = None
        self.spill_buffer = None

        self.enqueue_time = 0
        self.dispatch_time = 0
        self.duration = 0
        self.finish_time = 0
        self.retry_after = 0
        self.emits = None
        self.commit_seq = -1
        self.commit_time = -1
        self.zoom_pending_enqueues = None
        # Dependence edges exist even before the first dispatch (the abort
        # cascade walks children's dependents); SpecMemory.attach_owner
        # resets them per attempt.
        self.deps = set()
        self.dependents = set()

    # ------------------------------------------------------------------
    def order_key(self) -> tuple:
        """Current fractal-VT sort key (the SpecMemory owner protocol)."""
        return self.vt.key()

    def still_executing(self) -> bool:
        """SpecMemory owner protocol: True while this attempt's finish event
        is still in the future (its stores are conceptually in flight)."""
        return self.state is TaskState.RUNNING

    @property
    def is_speculative(self) -> bool:
        """True while this attempt holds speculative state."""
        return self.state in (TaskState.RUNNING, TaskState.FINISH_STALLED,
                              TaskState.FINISHED)

    @property
    def is_live(self) -> bool:
        """Unfinished or uncommitted — bounds the GVT."""
        return self.state not in (TaskState.COMMITTED, TaskState.SQUASHED)

    def begin_attempt(self) -> None:
        """Reset per-attempt state at dispatch."""
        self.attempt += 1
        self.aborted = False
        self.children = []
        self.subdomain = None
        self.retry_after = 0
        self.emits = None

    def __repr__(self) -> str:
        vt = f" vt={self.vt!r}" if self.vt is not None else ""
        return f"<{self.label}#{self.tid} {self.state.value}{vt}>"
