"""STAMP labyrinth: non-overlapping path routing on a 3D grid (Lee's
algorithm; paper Secs. 6.1, 6.4).

Each transaction routes one (start, end) pair: a breadth-first expansion
over unoccupied cells computes distances, then the route is traced back
and its cells claimed. In the TM/hwq variants the whole router is one
transaction whose read set is the entire expanded region — the poster
child for Bloom-filter overflow (Fig. 14). labyrinth-fractal runs the
expansion *inside an ordered subdomain*, one task per wavefront cell
(timestamp = BFS level) with a per-transaction distance scratchpad, and a
final claim task; the route stays atomic, but each task's footprint is a
handful of lines.

A routing may legitimately fail when earlier routes blocked every path;
the checker validates claimed paths cell-by-cell and re-routes failures
against the final grid to confirm they are genuinely blocked.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ...errors import AppError
from ...graphs import Graph, grid3d
from ...vt import Ordering
from .common import drive_workload, require_stamp_variant

FREE, WALL = 0, -1


@dataclass
class LabyrinthInput:
    grid: Graph
    dims: Tuple[int, int, int]
    pairs: List[Tuple[int, int]]
    walls: List[int]


def make_input(x: int = 10, y: int = 10, z: int = 2, n_paths: int = 10,
               wall_fraction: float = 0.05, seed: int = 11) -> LabyrinthInput:
    rng = random.Random(seed)
    grid = grid3d(x, y, z)
    n = grid.n
    walls = sorted(rng.sample(range(n), int(n * wall_fraction)))
    blocked = set(walls)
    pairs = []
    while len(pairs) < n_paths:
        s, t = rng.randrange(n), rng.randrange(n)
        if s != t and s not in blocked and t not in blocked:
            pairs.append((s, t))
            blocked.add(s)
            blocked.add(t)
    return LabyrinthInput(grid, (x, y, z), pairs, walls)


def build(host, inp: LabyrinthInput, variant: str = "fractal") -> Dict:
    require_stamp_variant(variant)
    n = inp.grid.n
    n_paths = len(inp.pairs)
    # occupancy: 0 free, -1 wall, path id + 1 when claimed
    occ_init = [FREE] * n
    for w in inp.walls:
        occ_init[w] = WALL
    occ = host.array("lab.occ", n, init=occ_init)
    # Endpoints are reserved at workload creation (as in STAMP, where
    # terminals are pre-marked): no other route may pass through them,
    # else its claimed cells would be overwritten by the owner.
    endpoints = frozenset(v for pair in inp.pairs for v in pair)
    # per-transaction distance scratchpad and result flag
    # one line per (path, cell) so sibling wavefront tasks never
    # false-share distance words
    dist = host.array("lab.dist", n_paths * n * 8, fill=-1)
    done = host.array("lab.done", n_paths * 8, fill=-1)  # -1 run, 0 fail, 1 ok
    adj = [tuple(inp.grid.neighbors(v)) for v in range(n)]

    def trace_back(ctx, pid):
        src, dst = inp.pairs[pid]
        base = pid * n
        d = dist.get(ctx, (base + dst) * 8)
        if d < 0:
            done.set(ctx, pid * 8, 0)
            return
        path = [dst]
        v = dst
        while v != src:
            for ngh in adj[v]:
                if dist.get(ctx, (base + ngh) * 8) == dist.get(ctx, (base + v) * 8) - 1:
                    v = ngh
                    break
            else:
                raise AppError("backtrace lost the wavefront")
            path.append(v)
        for v in path:
            if v not in (src, dst) and occ.get(ctx, v) != FREE:
                # a cell the expansion saw free was claimed meanwhile —
                # impossible under atomicity; conflicts force a re-run
                done.set(ctx, pid * 8, 0)
                return
        for v in path:
            occ.set(ctx, v, pid + 1)
        done.set(ctx, pid * 8, 1)
        ctx.compute(4 * len(path))

    # ----------------- coarse (tm / hwq) router --------------------------
    def route_flat(ctx, pid):
        src, dst = inp.pairs[pid]
        base = pid * n
        dist.set(ctx, (base + src) * 8, 0)
        frontier = [src]
        level = 0
        while frontier and dist.get(ctx, (base + dst) * 8) < 0:
            level += 1
            nxt = []
            for v in frontier:
                for ngh in adj[v]:
                    if dist.get(ctx, (base + ngh) * 8) >= 0:
                        continue
                    if ngh != dst and (ngh in endpoints
                                       or occ.get(ctx, ngh) != FREE):
                        continue
                    dist.set(ctx, (base + ngh) * 8, level)
                    nxt.append(ngh)
            frontier = nxt
            ctx.compute(3 * len(nxt))
        trace_back(ctx, pid)

    # ----------------- fractal router ------------------------------------
    def expand(ctx, pid, v, level):
        base = pid * n
        if dist.get(ctx, (base + v) * 8) >= 0:
            return
        dist.set(ctx, (base + v) * 8, level)
        ctx.compute(3)
        dst = inp.pairs[pid][1]
        if v == dst:
            return
        for ngh in adj[v]:
            if ngh == dst or (ngh not in endpoints
                              and occ.get(ctx, ngh) == FREE):
                ctx.enqueue(expand, pid, ngh, level + 1, ts=level + 1,
                            hint=ngh, label="expand")

    def route_fractal(ctx, pid):
        src, _dst = inp.pairs[pid]
        ctx.create_subdomain(Ordering.ORDERED_32)
        ctx.enqueue_sub(expand, pid, src, 0, ts=0, hint=src, label="expand")
        ctx.enqueue_sub(trace_back, pid, ts=n + 1, label="claim")

    fn = route_fractal if variant == "fractal" else route_flat
    drive_workload(host, n_paths, fn, variant,
                   hint_fn=lambda pid: inp.pairs[pid][0], label="route")
    return {"occ": occ, "done": done, "input": inp}


def root_ordering(variant: str) -> Ordering:
    return Ordering.UNORDERED


def check(handles: Dict, inp: LabyrinthInput) -> int:
    """Validate claimed paths and failures; returns routed-path count."""
    n = inp.grid.n
    occ = handles["occ"].snapshot()
    routed = 0
    for w in inp.walls:
        if occ[w] != WALL:
            raise AppError(f"wall {w} overwritten")
    claimed: Dict[int, List[int]] = {}
    for v in range(n):
        if occ[v] > 0:
            claimed.setdefault(occ[v] - 1, []).append(v)
    for pid, (src, dst) in enumerate(inp.pairs):
        status = handles["done"].peek(pid * 8)
        if status == 1:
            routed += 1
            cells = set(claimed.get(pid, ()))
            if src not in cells or dst not in cells:
                raise AppError(f"path {pid} missing endpoints")
            # cells must form a connected src->dst path
            frontier, seen = [src], {src}
            while frontier:
                cur = frontier.pop()
                for ngh in inp.grid.neighbors(cur):
                    if ngh in cells and ngh not in seen:
                        seen.add(ngh)
                        frontier.append(ngh)
            if dst not in seen:
                raise AppError(f"path {pid} disconnected")
        elif status == 0:
            if pid in claimed:
                raise AppError(f"failed path {pid} claimed cells")
            # A failure was blocked at its serialization point, so it must
            # still be blocked on the (more congested) final grid.
            endpoints = {v for pair in inp.pairs for v in pair}
            frontier, seen = [src], {src}
            while frontier:
                cur = frontier.pop()
                for ngh in inp.grid.neighbors(cur):
                    if ngh == dst:
                        raise AppError(
                            f"path {pid} failed but a route exists")
                    if (ngh not in seen and occ[ngh] == FREE
                            and ngh not in endpoints):
                        seen.add(ngh)
                        frontier.append(ngh)
        else:
            raise AppError(f"path {pid} never routed")
    return routed
