#!/usr/bin/env python
"""Serve-layer benchmark: submission latency, throughput, warm-hit ratio.

Starts an in-process ``repro.serve`` server (thread + real worker
processes) on a fresh result cache and drives it through three phases:

1. **cold** — a small matrix of quick jobs, every one a genuine
   simulation (cache is empty); per-job submit->result wall time.
2. **warm** — the same matrix resubmitted; every submission must be
   answered O(1) from the in-memory job table / result cache. The
   warm-hit ratio here is the headline number (target >= 0.9).
3. **load** — a burst of mixed requests (warm submissions + status +
   metrics reads) measuring request latency p50/p99 and requests/s.

Results land in ``benchmarks/results/serve_load.json`` and are merged
into ``BENCH_summary.json`` under the ``"serve"`` key (run_all.py folds
the same file in when it regenerates the summary).

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py [--load-requests N]
"""

import argparse
import json
import pathlib
import statistics
import sys
import tempfile
import time

HERE = pathlib.Path(__file__).resolve().parent
REPO_ROOT = HERE.parent
RESULTS_DIR = HERE / "results"
SUMMARY = REPO_ROOT / "BENCH_summary.json"

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve import ServeConfig, start_in_thread          # noqa: E402
from repro.serve.client import ServeClient                    # noqa: E402

#: the quick-job matrix: real apps, small inputs (seconds, not minutes)
MATRIX = [
    {"app": "mis", "variant": "fractal", "n_cores": n,
     "input": {"scale": 6, "edge_factor": 4, "seed": 1}}
    for n in (2, 4)
] + [
    {"app": "zoomtree", "variant": "fractal", "n_cores": n,
     "input": {"fanout": 2, "depth": 3}}
    for n in (2, 4)
] + [
    {"app": "maxflow", "variant": "fractal", "n_cores": 2,
     "input": {"b": 4, "layers": 4, "seed": 4}},
    {"app": "mis", "variant": "flat", "n_cores": 2,
     "input": {"scale": 6, "edge_factor": 4, "seed": 1}},
]


def pctl(values, q):
    if not values:
        return 0.0
    return statistics.quantiles(values, n=100)[q - 1] if len(values) > 1 \
        else values[0]


def phase_cold(client):
    latencies = []
    for spec in MATRIX:
        t0 = time.perf_counter()
        doc = client.submit(spec)
        client.result(doc["id"], timeout=600)
        latencies.append((time.perf_counter() - t0) * 1000)
    return latencies


def phase_warm(client, repeats):
    latencies, warm = [], 0
    total = 0
    for _ in range(repeats):
        for spec in MATRIX:
            t0 = time.perf_counter()
            doc = client.submit(spec)
            latencies.append((time.perf_counter() - t0) * 1000)
            total += 1
            if doc["outcome"] in ("warm", "coalesced"):
                warm += 1
    return latencies, warm / total if total else 0.0


def phase_load(client, n_requests, job_id):
    """Mixed read/submit burst against already-warm state."""
    latencies = []
    t_start = time.perf_counter()
    for i in range(n_requests):
        t0 = time.perf_counter()
        kind = i % 4
        if kind == 0:
            client.submit(MATRIX[i % len(MATRIX)])
        elif kind == 1:
            client.status(job_id)
        elif kind == 2:
            client.healthz()
        else:
            client.result(job_id, wait=False)
        latencies.append((time.perf_counter() - t0) * 1000)
    wall = time.perf_counter() - t_start
    return latencies, n_requests / wall if wall else 0.0


def merge_into_summary(block, path=SUMMARY):
    """Attach the serve block to BENCH_summary.json (create if absent)."""
    doc = {"schema": "repro.bench-summary/1"}
    if path.exists():
        try:
            doc = json.loads(path.read_text())
        except ValueError:
            pass
    doc["serve"] = block
    path.write_text(json.dumps(doc, indent=2) + "\n")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--warm-repeats", type=int, default=5)
    parser.add_argument("--load-requests", type=int, default=200)
    parser.add_argument("--out", default=str(RESULTS_DIR / "serve_load.json"))
    args = parser.parse_args(argv)

    cache_dir = tempfile.mkdtemp(prefix="serve-bench-cache-")
    cfg = ServeConfig(host="127.0.0.1", port=0, workers=args.workers,
                      cache_dir=cache_dir)
    handle = start_in_thread(cfg)
    print(f"server up at {handle.url} ({args.workers} workers, "
          f"fresh cache)", flush=True)
    try:
        with ServeClient(handle.url, timeout=600.0) as client:
            client.wait_ready()
            t0 = time.perf_counter()
            cold = phase_cold(client)
            print(f"cold:  {len(cold)} jobs, "
                  f"mean {statistics.mean(cold):.0f} ms "
                  f"(simulations executed)", flush=True)
            warm, warm_ratio = phase_warm(client, args.warm_repeats)
            print(f"warm:  {len(warm)} submissions, "
                  f"p50 {pctl(warm, 50):.2f} ms, "
                  f"hit ratio {warm_ratio:.1%}", flush=True)
            job_id = client.submit(MATRIX[0])["id"]
            load, rps = phase_load(client, args.load_requests, job_id)
            print(f"load:  {len(load)} requests, {rps:.0f} req/s, "
                  f"p50 {pctl(load, 50):.2f} ms, "
                  f"p99 {pctl(load, 99):.2f} ms", flush=True)
            metrics = client.metrics()
            total_wall = time.perf_counter() - t0
    finally:
        clean = handle.stop(drain=True, timeout=120)

    block = {
        "schema": "repro.serve-load/1",
        "workers": args.workers,
        "matrix_size": len(MATRIX),
        "total_wall_s": round(total_wall, 3),
        "clean_drain": clean,
        "cold": {"n": len(cold),
                 "mean_ms": round(statistics.mean(cold), 3),
                 "p50_ms": round(pctl(cold, 50), 3)},
        "warm": {"n": len(warm),
                 "hit_ratio": round(warm_ratio, 4),
                 "p50_ms": round(pctl(warm, 50), 3),
                 "p99_ms": round(pctl(warm, 99), 3)},
        "load": {"n": len(load),
                 "requests_per_s": round(rps, 1),
                 "p50_ms": round(pctl(load, 50), 3),
                 "p99_ms": round(pctl(load, 99), 3)},
        "cache": metrics["serve"]["cache"],
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    pathlib.Path(args.out).write_text(json.dumps(block, indent=2) + "\n")
    merge_into_summary(block)
    print(f"results: {args.out} (+ BENCH_summary.json 'serve' block)",
          flush=True)

    if warm_ratio < 0.9:
        print(f"FAIL: warm-hit ratio {warm_ratio:.1%} < 90%",
              file=sys.stderr)
        return 1
    if not clean:
        print("FAIL: drain did not complete cleanly", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
