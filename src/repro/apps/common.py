"""Shared helpers for benchmark applications."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

from ..errors import AppError

VARIANTS_FLAT_FRACTAL = ("flat", "fractal")
VARIANTS_ALL = ("flat", "swarm", "fractal")


def require_variant(variant: str, allowed: Sequence[str]) -> str:
    if variant not in allowed:
        raise AppError(f"unknown variant {variant!r}; pick one of {allowed}")
    return variant


def chunked(items: Sequence, size: int) -> Iterator[List]:
    """Split a sequence into chunks of at most ``size`` items."""
    if size < 1:
        raise AppError("chunk size must be >= 1")
    for i in range(0, len(items), size):
        yield list(items[i:i + size])


def join_increment(ctx, cell, arrivals: int) -> bool:
    """Join-counter pattern: atomically bump ``cell``; True for the last
    arrival of ``arrivals``. The caller then enqueues the continuation
    (fork-join over unordered tasks, paper Sec. 7.1)."""
    return cell.add(ctx, 1) == arrivals


def splitmix(x: int) -> int:
    """Deterministic 64-bit hash (shared by apps needing cheap pseudo-
    randomness inside tasks, where ``random`` would break re-execution)."""
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)
