"""The global virtual time (GVT) arbiter (paper Sec. 4.1, 4.3, 4.5).

Tiles periodically report their earliest unfinished work; everything that
precedes the global minimum can safely commit (Jefferson's virtual time
algorithm). In Fractal the same central arbiter also serializes zoom-in /
zoom-out requests and tiebreaker wrap-around walks, and manages the small
in-memory stack of saved base-domain timestamps.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..telemetry.events import GvtTickEvent


class GvtArbiter:
    """Computes commit frontiers and queues zoom requests."""

    def __init__(self, commit_interval: int = 200):
        self.commit_interval = commit_interval
        #: saved base-domain (ordering, timestamp) pairs, pushed at zoom-in
        self.base_stack: List[Tuple[object, int]] = []
        #: outstanding zoom requests: ("in"|"out", requesting task)
        self.zoom_requests: List[Tuple[str, object]] = []
        #: telemetry bus (installed by the simulator; None/falsy = off)
        self.bus = None
        # stats
        self.ticks = 0
        self.commits_total = 0
        self.zoom_ins = 0
        self.zoom_outs = 0

    # ------------------------------------------------------------------
    def next_tick(self, now: int) -> int:
        """Cycle of the next arbiter update after ``now``."""
        return now + self.commit_interval

    def note_tick(self, now: int, n_live: int, n_finished: int) -> None:
        """Record one arbiter update (and emit its telemetry event)."""
        self.ticks += 1
        if self.bus:
            self.bus.emit(GvtTickEvent(now, n_live, n_finished,
                                       self.commits_total))

    @staticmethod
    def min_unfinished_key(sources) -> Optional[tuple]:
        """The GVT: minimum VT key over every unfinished-work source.

        ``sources`` yields keys (tuples) or None. Returns None when no
        unfinished work exists anywhere — then *everything* finished may
        commit.
        """
        best = None
        for key in sources:
            if key is not None and (best is None or key < best):
                best = key
        return best

    # ------------------------------------------------------------------
    def request_zoom(self, direction: str, task) -> None:
        """Queue a zoom-in/out request from a parked task."""
        if direction not in ("in", "out"):
            raise ValueError(f"bad zoom direction {direction!r}")
        self.zoom_requests.append((direction, task))

    def push_base(self, ordering, timestamp: int) -> None:
        """Save a zoomed-out base domain's ordering and timestamp."""
        self.base_stack.append((ordering, timestamp))
        self.zoom_ins += 1

    def pop_base(self) -> Tuple[object, int]:
        """Restore the most recently saved base domain info."""
        self.zoom_outs += 1
        return self.base_stack.pop()

    @property
    def zoom_depth(self) -> int:
        """Number of base domains currently parked on the stack."""
        return len(self.base_stack)
