"""ResultCache tests: round trips, fingerprints, invalidation."""

import json

from repro.core.stats import CycleBreakdown, RunStats
from repro.farm import CACHE_SCHEMA, JobSpec, ResultCache, code_fingerprint


def make_spec(n_cores=4):
    return JobSpec(app="repro.apps.zoomtree", variant="fractal",
                   n_cores=n_cores,
                   input_kwargs={"fanout": 2, "depth": 3})


def make_stats(makespan=1234):
    return RunStats(name="t", n_cores=4, makespan=makespan,
                    breakdown=CycleBreakdown(committed=1000, empty=200),
                    tasks_committed=7, cache={"hits": 3, "misses": 1})


class TestResultCache:
    def test_put_get_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec, stats = make_spec(), make_stats()
        assert cache.get(spec.digest()) is None
        cache.put(spec, stats, wall_s=0.5)
        got = cache.get(spec.digest())
        assert got == stats
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1
        assert cache.stats()["puts"] == 1

    def test_entry_document(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="deadbeef")
        spec = make_spec()
        cache.put(spec, make_stats())
        entry = cache.get_entry(spec.digest())
        assert entry["schema"] == CACHE_SCHEMA
        assert entry["digest"] == spec.digest()
        assert entry["fingerprint"] == "deadbeef"
        assert entry["spec"]["app"] == "repro.apps.zoomtree"
        # on-disk layout: two-char fan-out dirs, valid JSON
        path = next(tmp_path.glob("*/*.json"))
        assert path.parent.name == spec.digest()[:2]
        json.loads(path.read_text())

    def test_fingerprint_staleness(self, tmp_path):
        old = ResultCache(tmp_path, fingerprint="v1")
        spec = make_spec()
        old.put(spec, make_stats())
        new = ResultCache(tmp_path, fingerprint="v2")
        assert new.get(spec.digest()) is None
        assert new.stats()["stale"] == 1
        # same fingerprint still hits
        same = ResultCache(tmp_path, fingerprint="v1")
        assert same.get(spec.digest()) == make_stats()

    def test_contains_entries_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [make_spec(n) for n in (1, 2, 4)]
        for s in specs:
            cache.put(s, make_stats())
        assert all(cache.contains(s.digest()) for s in specs)
        assert cache.entries() == 3
        assert cache.clear() == 3
        assert cache.entries() == 0
        assert not cache.contains(specs[0].digest())

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        cache.put(spec, make_stats())
        path = next(tmp_path.glob("*/*.json"))
        path.write_text("{not json")
        fresh = ResultCache(tmp_path)
        assert fresh.get(spec.digest()) is None

    def test_put_is_atomic_no_temp_left(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(make_spec(), make_stats())
        leftovers = [p for p in tmp_path.rglob("*") if p.is_file()
                     and not p.name.endswith(".json")]
        assert leftovers == []


class TestCacheAccounting:
    """Regression tests: stale entries are misses; volatile fields never
    reach digests or comparisons; concurrent stale rewrites stay sane."""

    def test_stale_is_also_a_miss(self, tmp_path):
        # hits + misses must equal lookups even across code drift —
        # pre-fix, a stale lookup bumped only `stale` and a CI hit-rate
        # assertion over hits/(hits+misses) silently ignored it.
        old = ResultCache(tmp_path, fingerprint="v1")
        spec = make_spec()
        old.put(spec, make_stats())
        new = ResultCache(tmp_path, fingerprint="v2")
        assert new.get(spec.digest()) is None
        s = new.stats()
        assert s["stale"] == 1
        assert s["misses"] == 1
        assert s["hits"] == 0

    def test_volatile_fields_not_in_digest_or_stats(self, tmp_path):
        # The content digest comes from the spec alone; `created` and
        # `wall_s` are bookkeeping on the entry document and must never
        # leak into the digest or the cached RunStats payload that
        # cold/warm comparisons diff.
        spec = make_spec()
        assert spec.digest() == make_spec().digest()
        cache = ResultCache(tmp_path, fingerprint="v1")
        p1 = cache.put(spec, make_stats(), wall_s=0.25)
        doc1 = json.loads(p1.read_text())
        p2 = cache.put(spec, make_stats(), wall_s=99.0)
        doc2 = json.loads(p2.read_text())
        assert p1 == p2  # same digest -> same path, regardless of timing
        assert "created" not in doc1["stats"]
        assert "wall_s" not in doc1["stats"]
        assert doc1["stats"] == doc2["stats"]
        assert cache.get(spec.digest()) == make_stats()

    def test_concurrent_stale_rewrite_same_digest(self, tmp_path):
        # Two jobs race to refresh the same stale digest (atomic-write
        # race): both count it stale+miss once, both puts land on the
        # same path (last writer wins whole-file), and a later lookup
        # hits exactly once with a fully-formed document.
        spec = make_spec()
        ResultCache(tmp_path, fingerprint="v1").put(spec, make_stats())
        a = ResultCache(tmp_path, fingerprint="v2")
        b = ResultCache(tmp_path, fingerprint="v2")
        assert a.get(spec.digest()) is None
        assert b.get(spec.digest()) is None  # raced before a's rewrite
        a.put(spec, make_stats(makespan=111))
        b.put(spec, make_stats(makespan=222))
        for c in (a, b):
            s = c.stats()
            assert s["stale"] == 1 and s["misses"] == 1 and s["puts"] == 1
            assert s["entries"] == 1  # one file, no tmp leftovers
        got = a.get(spec.digest())
        assert got == make_stats(makespan=222)
        assert a.stats()["hits"] == 1


class TestCodeFingerprint:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_FARM_FINGERPRINT", "pinned")
        assert code_fingerprint() == "pinned"

    def test_stable_within_process(self, monkeypatch):
        monkeypatch.delenv("REPRO_FARM_FINGERPRINT", raising=False)
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64
