"""Maximal independent set (paper Sec. 2.3, Listing 1; input: R-MAT).

Given a graph, find a set S such that no two nodes of S are adjacent and
every node outside S has a neighbour in S.

Variants:

- ``flat`` — one unordered task per node that atomically includes the node
  and excludes all its neighbours (the PBBS-style TM port).
- ``fractal`` — Listing 1: an *include* task adds the node and creates an
  unordered subdomain of per-neighbour *exclude* tasks. The node and its
  neighbours are still visited atomically, but many fine tasks run in
  parallel.
- ``swarm`` — mis-swarm: include tasks carry unique timestamps (node id)
  and share them with their exclude tasks, over-serializing the root domain
  (this also makes the result deterministic, paper footnote 1).

Node states: 0 = unvisited, 1 = included, 2 = excluded.
"""

from __future__ import annotations

from typing import Dict

from ..errors import AppError
from ..graphs import Graph, rmat
from ..vt import Ordering
from .common import VARIANTS_ALL, require_variant

UNVISITED, INCLUDED, EXCLUDED = 0, 1, 2


def make_input(scale: int = 7, edge_factor: int = 4, seed: int = 1) -> Graph:
    """An R-MAT graph (the paper uses scale 23; toy default scale 7)."""
    return rmat(scale, edge_factor, seed=seed)


def build(host, g: Graph, variant: str = "fractal") -> Dict:
    """Allocate state and enqueue one task per node; returns handles."""
    require_variant(variant, VARIANTS_ALL)
    state = host.array("mis.state", g.n)
    adj = [tuple(g.neighbors(v)) for v in range(g.n)]

    def exclude(ctx, v):
        state.set(ctx, v, EXCLUDED)

    def include_flat(ctx, v):
        if state.get(ctx, v) == UNVISITED:
            state.set(ctx, v, INCLUDED)
            for ngh in adj[v]:
                state.set(ctx, ngh, EXCLUDED)

    def include_fractal(ctx, v):
        if state.get(ctx, v) == UNVISITED:
            state.set(ctx, v, INCLUDED)
            ctx.create_subdomain(Ordering.UNORDERED)
            for ngh in adj[v]:
                ctx.enqueue_sub(exclude, ngh, hint=ngh, label="exclude")

    def include_swarm(ctx, v):
        if state.get(ctx, v) == UNVISITED:
            state.set(ctx, v, INCLUDED)
            for ngh in adj[v]:
                ctx.enqueue(exclude, ngh, ts=ctx.timestamp, hint=ngh,
                            label="exclude")

    if variant == "swarm":
        for v in range(g.n):
            host.enqueue_root(include_swarm, v, ts=v, hint=v, label="include")
    elif variant == "fractal":
        for v in range(g.n):
            host.enqueue_root(include_fractal, v, hint=v, label="include")
    else:
        for v in range(g.n):
            host.enqueue_root(include_flat, v, hint=v, label="include")
    return {"state": state, "graph": g}


def root_ordering(variant: str) -> Ordering:
    """Root-domain ordering each variant requires."""
    return Ordering.ORDERED_32 if variant == "swarm" else Ordering.UNORDERED


def check(handles: Dict, g: Graph) -> int:
    """Verify independence and maximality; returns |S|."""
    state = handles["state"].snapshot()
    included = [v for v in range(g.n) if state[v] == INCLUDED]
    in_set = set(included)
    for v in range(g.n):
        if state[v] == UNVISITED:
            raise AppError(f"node {v} never visited")
    for v in included:
        for ngh in g.neighbors(v):
            if ngh in in_set:
                raise AppError(f"adjacent nodes {v},{ngh} both included")
    for v in range(g.n):
        if v not in in_set:
            if not any(n in in_set for n in g.neighbors(v)):
                raise AppError(f"excluded node {v} has no included neighbour")
    return len(included)
