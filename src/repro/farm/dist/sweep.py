"""Driver for distributed sweeps: submit, wait, reassemble in order.

:func:`dist_sweep` is the client-side counterpart of
``Farm.run(specs)``: it hands a list of JobSpec wire documents to a
coordinator, waits for the (possibly chaos-ridden) cluster to finish,
and returns the records **in input order** — so a table rendered from a
distributed sweep is byte-identical to a serial one, which is exactly
what the chaos smoke asserts.
"""

from __future__ import annotations

import http.client
import time
from typing import List, Optional

from ...core.stats import RunStats
from ...errors import FarmError
from ..job import JobResult
from .client import DistClient, ServeAPIError


def dist_sweep(coordinator_url: str, jobs: List[dict], *,
               fragments: int = 0, label: str = "",
               timeout_s: float = 600.0, poll_s: float = 0.25,
               client: Optional[DistClient] = None,
               token: Optional[str] = None,
               progress=None) -> dict:
    """Run ``jobs`` (JobSpec wire documents) through a coordinator.

    Returns the coordinator's results document: ``{"id", "complete",
    "n_jobs", "results": [record, ...]}`` with one record per job in
    input order. Raises :class:`TimeoutError` when the cluster does not
    finish in ``timeout_s`` (records gathered so far are attached).

    The driver rides out a coordinator restart: a connection failure
    mid-poll retries (re-submitting is safe — submission is idempotent
    by content address, and a journaled coordinator replays the sweep
    anyway) until the overall deadline. ``token`` is the wire secret
    (default: the ``REPRO_DIST_TOKEN`` environment variable).
    """
    own = client is None
    c = client or DistClient(coordinator_url, token=token)
    try:
        c.wait_ready()
        deadline = time.monotonic() + timeout_s
        sweep_id: Optional[str] = None
        last_done, n_done = -1, 0
        while True:
            try:
                if sweep_id is None:
                    sub = c.submit_sweep(jobs, fragments=fragments,
                                         label=label)
                    sweep_id = sub["id"]
                doc = c.sweep_results(sweep_id)
            except (ConnectionError, OSError,
                    http.client.HTTPException):
                # coordinator restart window: keep polling — a journaled
                # coordinator comes back knowing this very sweep
                if time.monotonic() > deadline:
                    raise
                time.sleep(poll_s)
                continue
            except ServeAPIError as exc:
                if exc.status == 404 and sweep_id is not None:
                    # it restarted without a journal and forgot the
                    # sweep; submission is idempotent, so resubmit
                    sweep_id = None
                    continue
                raise
            n_done = sum(1 for r in doc["results"] if r is not None)
            if progress is not None and n_done != last_done:
                progress(n_done, doc["n_jobs"])
                last_done = n_done
            if doc["complete"]:
                return doc
            if time.monotonic() > deadline:
                exc = TimeoutError(
                    f"dist sweep {sweep_id[:12]} incomplete after "
                    f"{timeout_s}s ({n_done}/{doc['n_jobs']} jobs)")
                exc.partial = doc
                raise exc
            time.sleep(poll_s)
    finally:
        if own:
            c.close()


def records_to_results(records: List[dict]) -> List[JobResult]:
    """Rebuild Farm-shaped :class:`JobResult` rows from sweep records.

    The bridge between a distributed sweep and everything downstream
    that consumes ``Farm.run`` output (report tables, BENCH summaries,
    parity tests).
    """
    out = []
    for r in records:
        if r is None:
            raise FarmError("sweep incomplete: missing record")
        out.append(JobResult(
            digest=r["digest"], app=r["app"], variant=r["variant"],
            n_cores=r["n_cores"], label=r["label"],
            stats=(RunStats.from_dict(r["stats"])
                   if r["stats"] is not None else None),
            cached=bool(r.get("cached")), wall_s=r["wall_ms"] / 1000.0,
            attempts=r["attempts"], error=r["error"]))
    return out
