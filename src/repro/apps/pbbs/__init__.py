"""PBBS deterministic-reservation applications (``speculative_for``).

Three apps built on :mod:`repro.specfor`, each with four variants:

- ``flat`` — one ordered task per loop iteration (ts = iteration index):
  the whole body runs as a single atomic transaction;
- ``swarm`` — the same iteration decomposed into fine tasks over a
  disjoint timestamp range per iteration (swarm-fg);
- ``fractal`` — an ordered iteration task opening an unordered subdomain
  for its inner work (the paper's nesting);
- ``specfor`` — the PBBS reserve→check→commit round pipeline hosted
  inside a fractal domain (:class:`repro.specfor.DomainSpecFor`).

Every variant of every app produces **byte-identical result arrays**,
equal to the sequential loop in iteration order — each app's ``check``
recomputes that reference in plain Python and compares exactly, on top of
an independent structural oracle.
"""

VARIANTS_PBBS = ("flat", "swarm", "fractal", "specfor")

__all__ = ["VARIANTS_PBBS", "contract", "refine", "spanning"]


def __getattr__(name):
    if name in ("contract", "refine", "spanning"):
        import importlib
        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
