"""Run a ``speculative_for`` loop as ordered tasks *inside* a fractal
domain.

:class:`DomainSpecFor` hosts the round pipeline of
:mod:`repro.specfor.engine` on a Fractal simulator (or the serial
reference executor): a driver task opens an ORDERED_32 subdomain and each
round ``r`` occupies three timestamp slots —

- ``3r``   one *reserve* task per active iteration (write_min claims),
- ``3r+1`` one *commit* task per active iteration (check → apply, or
  ``release`` for iterations the reserve step filtered),
- ``3r+2`` the *controller*, which reads the per-iteration outcome flags,
  packs losers ahead of fresh indices, walks the livelock ladder, emits a
  :class:`~repro.telemetry.SpecForRoundEvent` (deferred to its commit via
  ``ctx.emit``), and enqueues round ``r+1``.

Timestamp order gives the phases the barrier semantics the PBBS loop gets
from its ``parallel_for``s, while *within* a phase the simulator
speculates freely — reservation conflicts abort and retry under VT order,
which is exactly the dense conflict structure this family contributes.

Round bookkeeping (batch, fresh cursor, streak, done) travels through
immutable task *arguments*, so an aborted controller re-derives identical
state on re-execution; the only mutable engine state is the per-iteration
outcome array, which lives in speculative memory and rolls back with its
writers.
"""

from __future__ import annotations

from typing import Optional

from ..telemetry.events import SpecForRoundEvent
from ..vt import Ordering
from .engine import SpecForLivelock, SpecForPolicy

#: per-iteration outcome flags (the ``state`` array)
_FILTERED, _CONTENDING, _COMMITTED = 0, 1, 2


class DomainSpecFor:
    """One speculative-for engine instance hosted in a fractal domain.

    Build-time construction (allocation never happens in task bodies)::

        eng = DomainSpecFor(host, "spanning", step, n_iters, policy=...)
        eng.enqueue_driver(host)

    The step follows the :mod:`repro.specfor.engine` protocol; its
    ``reserve``/``commit``/``release`` run as separate ordered tasks, so
    everything they touch must live in speculative memory.
    """

    def __init__(self, host, name: str, step, n: int, *,
                 policy: Optional[SpecForPolicy] = None):
        self.name = name
        self.step = step
        self.n = n
        self.policy = policy or SpecForPolicy()
        # per-iteration outcome of the current round; indices are unique
        # across rounds so slots are never contended between iterations
        self.state = host.array(f"{name}.sf_state", max(n, 1))

    # ------------------------------------------------------------------
    def enqueue_driver(self, host, *, hint: Optional[int] = None) -> None:
        """Enqueue the root driver task (root domain may be unordered)."""
        host.enqueue_root(self._driver, hint=hint,
                          label=f"{self.name}.sf_driver")

    # ------------------------------------------------------------------
    # task bodies
    # ------------------------------------------------------------------
    def _driver(self, ctx):
        if self.n <= 0:
            return
        ctx.create_subdomain(Ordering.ORDERED_32)
        size = self.policy.size_for(0, self.n)
        batch = tuple(range(min(size, self.n)))
        for i in batch:
            ctx.enqueue_sub(self._reserve, i, ts=0, hint=i,
                            label=f"{self.name}.sf_reserve")
            ctx.enqueue_sub(self._commit, i, ts=1, hint=i,
                            label=f"{self.name}.sf_commit")
        ctx.enqueue_sub(self._control, 0, batch, len(batch), len(batch),
                        0, 0, (), ts=2, label=f"{self.name}.sf_control")

    def _reserve(self, ctx, i):
        self.state.set(ctx, i,
                       _CONTENDING if self.step.reserve(ctx, i)
                       else _FILTERED)

    def _commit(self, ctx, i):
        st = self.state.get(ctx, i)
        if st == _CONTENDING:
            if self.step.commit(ctx, i):
                self.state.set(ctx, i, _COMMITTED)
        else:
            release = getattr(self.step, "release", None)
            if release is not None:
                release(ctx, i)

    def _control(self, ctx, r, batch, fresh, next_fresh, streak, done,
                 deferred):
        carried = []
        committed = filtered = 0
        for i in batch:
            st = self.state.get(ctx, i)
            if st == _CONTENDING:
                carried.append(i)
            elif st == _COMMITTED:
                committed += 1
            else:
                filtered += 1
        done += len(batch) - len(carried)
        streak = 0 if len(carried) < len(batch) else streak + 1
        stage = self.policy.stage_for(streak)
        ctx.emit(SpecForRoundEvent(
            0, engine=self.name, round=r, size=len(batch), fresh=fresh,
            committed=committed, filtered=filtered, carried=len(carried),
            done=done, total=self.n, stage=stage))
        if streak >= self.policy.max_tries:
            raise SpecForLivelock(
                f"specfor engine {self.name!r} made no progress for "
                f"{streak} rounds ({done}/{self.n} done)")
        if done >= self.n:
            return
        size = self.policy.size_for(stage, self.n)
        # a shrunken rung defers excess carried iterations (same clamp
        # as the standalone engine): the pool keeps losers-first order
        pool = list(carried) + list(deferred)
        active, ndeferred = pool[:size], tuple(pool[size:])
        take = max(0, min(size - len(active), self.n - next_fresh))
        nbatch = tuple(active) + tuple(range(next_fresh,
                                             next_fresh + take))
        base = 3 * (r + 1)
        for i in nbatch:
            ctx.enqueue(self._reserve, i, ts=base, hint=i,
                        label=f"{self.name}.sf_reserve")
            ctx.enqueue(self._commit, i, ts=base + 1, hint=i,
                        label=f"{self.name}.sf_commit")
        ctx.enqueue(self._control, r + 1, nbatch, take, next_fresh + take,
                    streak, done, ndeferred, ts=base + 2,
                    label=f"{self.name}.sf_control")
