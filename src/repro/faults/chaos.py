"""Chaos injection for the distributed farm (and anything networked).

The dist chaos harness needs three failure modes, all **deterministic**
so a red CI run replays exactly:

- **process kills** — :func:`kill_after` SIGKILLs a worker/agent process
  on a timer, mid-fragment;
- **dropped/delayed messages** — :class:`TransportChaos` is installed as
  a :class:`~repro.farm.dist.client.DistClient` ``transport_fault`` hook
  and drops or delays calls by *op ordinal* (the k-th heartbeat, not "a
  random heartbeat"), with an optional seeded drop rate whose coin flips
  come from blake2b, never :mod:`random`;
- **partitions** — a ``partition`` window drops *every* op between two
  ordinals of a chosen op class, which from the coordinator's side is
  indistinguishable from the agent vanishing (heartbeats stop, leases
  expire, fragments requeue) — until the agent comes back and its
  deliveries exercise duplicate suppression.

Agent processes pick their chaos up from the ``REPRO_DIST_CHAOS``
environment variable (JSON, see :meth:`TransportChaos.from_env`), so the
harness can hand each subprocess a different failure script.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import threading
import time
from typing import Any, Dict, Optional

from ..errors import ConfigError

#: environment variable agents read their transport chaos from
CHAOS_ENV = "REPRO_DIST_CHAOS"

#: op classes TransportChaos keys on, derived from (method, path)
OPS = ("register", "heartbeat", "acquire", "deliver", "status", "other")


class ChaosDrop(Exception):
    """The chaos plan dropped this message before it hit the wire."""

    def __init__(self, op: str, ordinal: int) -> None:
        super().__init__(f"chaos dropped {op} #{ordinal}")
        self.op = op
        self.ordinal = ordinal


def classify_op(method: str, path: str) -> str:
    """Map a dist-protocol request to its chaos op class."""
    if path.endswith("/heartbeat"):
        return "heartbeat"
    if path.endswith("/leases"):
        return "acquire"
    if path.endswith("/results") and method == "POST":
        return "deliver"
    if path.endswith("/register"):
        return "register"
    if "/fragments/" in path:
        return "status"
    return "other"


def _coin(seed: int, op: str, ordinal: int) -> float:
    """Deterministic uniform [0, 1) from (seed, op, ordinal)."""
    h = hashlib.blake2b(f"{seed}:{op}:{ordinal}".encode(),
                        digest_size=8).digest()
    return int.from_bytes(h, "big") / 2 ** 64


class TransportChaos:
    """A seeded message-fault script, callable as a transport hook.

    Spec keys (all optional)::

        seed        int   — drop-rate coin seed (default 0)
        drop        {op: [ordinals]}      — drop the k-th call (1-based)
        drop_rate   {op: p}               — seeded chance of dropping
        delay_ms    {op: ms}              — sleep before every call
        partition   {op: [start, end]}    — drop ordinals start..end

    Each instance keeps its own per-op ordinal counters, so a script is
    a pure function of the call sequence — same calls, same faults.
    """

    def __init__(self, spec: Optional[Dict[str, Any]] = None, *,
                 sleep=time.sleep) -> None:
        spec = dict(spec or {})
        self.seed = int(spec.pop("seed", 0))
        self.drop = {op: set(int(k) for k in v)
                     for op, v in dict(spec.pop("drop", {})).items()}
        self.drop_rate = {op: float(p)
                          for op, p in dict(spec.pop("drop_rate",
                                                     {})).items()}
        self.delay_ms = {op: float(ms)
                         for op, ms in dict(spec.pop("delay_ms",
                                                     {})).items()}
        self.partition = {op: (int(w[0]), int(w[1]))
                          for op, w in dict(spec.pop("partition",
                                                     {})).items()}
        if spec:
            raise ConfigError(
                f"unknown chaos keys: {sorted(spec)} (have: seed, drop, "
                f"drop_rate, delay_ms, partition)")
        for table in (self.drop, self.drop_rate, self.delay_ms,
                      self.partition):
            for op in table:
                if op not in OPS:
                    raise ConfigError(
                        f"unknown chaos op {op!r} (have: {OPS})")
        self._sleep = sleep
        self._lock = threading.Lock()
        self._ordinals: Dict[str, int] = {}
        self.n_dropped = 0
        self.n_delayed = 0

    @classmethod
    def from_env(cls, env: Optional[Dict[str, str]] = None,
                 var: str = CHAOS_ENV) -> Optional["TransportChaos"]:
        """Build from a JSON env var; None when unset/empty."""
        raw = (env if env is not None else os.environ).get(var, "")
        if not raw.strip():
            return None
        try:
            return cls(json.loads(raw))
        except json.JSONDecodeError as exc:
            raise ConfigError(f"bad {var} JSON: {exc}") from None

    def __call__(self, method: str, path: str) -> None:
        """Apply the script to one outgoing request (transport hook)."""
        op = classify_op(method, path)
        with self._lock:
            ordinal = self._ordinals.get(op, 0) + 1
            self._ordinals[op] = ordinal
        delay = self.delay_ms.get(op, 0.0)
        if delay > 0:
            self.n_delayed += 1
            self._sleep(delay / 1000.0)
        dropped = ordinal in self.drop.get(op, ())
        window = self.partition.get(op)
        if window is not None and window[0] <= ordinal <= window[1]:
            dropped = True
        rate = self.drop_rate.get(op, 0.0)
        if rate > 0 and _coin(self.seed, op, ordinal) < rate:
            dropped = True
        if dropped:
            self.n_dropped += 1
            raise ChaosDrop(op, ordinal)

    def summary(self) -> dict:
        with self._lock:
            return {"dropped": self.n_dropped, "delayed": self.n_delayed,
                    "ordinals": dict(self._ordinals)}


def kill_after(proc, delay_s: float, *,
               sig: int = signal.SIGKILL) -> threading.Timer:
    """SIGKILL a process after ``delay_s`` seconds (daemon timer).

    ``proc`` is a pid or anything with a ``.pid`` (e.g. a
    ``subprocess.Popen`` — handy for killing a coordinator mid-sweep).
    Returns the started :class:`threading.Timer`; cancel it to call the
    chaos off. A process that exited on its own is ignored.
    """
    pid = int(getattr(proc, "pid", proc))

    def _kill() -> None:
        try:
            os.kill(pid, sig)
        except (ProcessLookupError, PermissionError):
            pass

    timer = threading.Timer(delay_s, _kill)
    timer.daemon = True
    timer.start()
    return timer


def wait_until(predicate, timeout_s: float, *,
               interval_s: float = 0.05) -> bool:
    """Poll ``predicate()`` until true or ``timeout_s`` elapses."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return bool(predicate())
