"""Tests for the PBBS deterministic-reservation family (spanning,
contract, refine) across all four variants.

The family's headline guarantee: every variant — including the
round-based ``specfor`` engine hosted inside a fractal domain — produces
result arrays byte-identical to the sequential loop in iteration order.
"""

import pytest

from repro.apps.pbbs import VARIANTS_PBBS, contract, refine, spanning
from repro.bench.harness import run_app
from repro.telemetry import EventBus, SpecForRoundEvent

APPS = [(spanning, "spanning"), (contract, "contract"), (refine, "refine")]


def small_input(app):
    if app is spanning:
        return app.make_input(scale=5, edge_factor=3)
    if app is contract:
        return app.make_input(n=32)
    return app.make_input(width=8, n_ops=32)


@pytest.mark.parametrize("app,name", APPS)
class TestAllVariants:
    @pytest.mark.parametrize("variant", VARIANTS_PBBS)
    def test_matches_sequential_reference(self, run_checked, app, name,
                                          variant):
        run_checked(app, small_input(app), variant)

    @pytest.mark.parametrize("variant", VARIANTS_PBBS)
    def test_serial_matches(self, run_serial_checked, app, name, variant):
        run_serial_checked(app, small_input(app), variant)

    def test_variants_byte_identical(self, run_checked, app, name):
        inp = small_input(app)
        results = [app.result_arrays(
            run_checked(app, inp, variant).handles)
            for variant in VARIANTS_PBBS]
        assert all(r == results[0] for r in results[1:])

    def test_specfor_deterministic_across_core_counts(self, run_checked,
                                                      app, name):
        inp = small_input(app)
        a = run_checked(app, inp, "specfor", n_cores=4)
        b = run_checked(app, inp, "specfor", n_cores=16)
        assert app.result_arrays(a.handles) == app.result_arrays(b.handles)

    def test_specfor_granularity_does_not_change_results(self, app, name):
        inp = small_input(app)
        coarse = run_app(app, inp, variant="specfor", n_cores=8,
                         audit=True, granularity=2)
        fine = run_app(app, inp, variant="specfor", n_cores=8,
                       audit=True, granularity=16)
        assert (app.result_arrays(coarse.handles)
                == app.result_arrays(fine.handles))


class TestSpecForTelemetry:
    def test_round_counters_fold_into_metrics(self, run_checked):
        inp = refine.make_input()
        run = run_checked(refine, inp, "specfor")
        m = run.metrics
        rounds = m.total("specfor_rounds", engine="refine")
        assert rounds >= 1
        want_success, _ = refine.reference_result(inp)
        assert m.total("specfor_commits", engine="refine") \
            == sum(want_success)

    def test_refine_exercises_reservation_failures(self, run_checked):
        # the default refine input has overlapping cavities, so some
        # iterations must lose a reservation and be carried
        run = run_checked(refine, refine.make_input(), "specfor")
        assert run.metrics.total("specfor_reserve_failures",
                                 engine="refine") > 0

    def test_round_events_on_the_bus_are_monotone(self):
        inp = contract.make_input(n=32)
        events = []
        bus = EventBus()
        bus.subscribe(lambda e: isinstance(e, SpecForRoundEvent)
                      and events.append(e))
        run_app(contract, inp, variant="specfor", n_cores=8,
                telemetry=bus)
        assert events
        dones = [e.done for e in events]
        assert dones == sorted(dones)
        assert dones[-1] == inp.n
        times = [e.t for e in events]
        assert times == sorted(times)


class TestSpanning:
    def test_flags_match_reference_exactly(self, run_checked):
        g = spanning.make_input(scale=5, edge_factor=3)
        run = run_checked(spanning, g, "specfor")
        assert (run.handles["in_forest"].snapshot()
                == spanning.reference_flags(g))

    def test_single_component_tree(self, run_checked):
        from repro.graphs import Graph
        g = Graph(6)
        for v in range(1, 6):
            g.add_edge(0, v)
        run = run_checked(spanning, g, "specfor")
        assert spanning.check(run.handles, g) == 5


class TestContract:
    def test_values_fold_along_the_chain(self, run_checked):
        inp = contract.make_input(n=24, seed=3)
        run = run_checked(contract, inp, "specfor")
        assert run.handles["alive"].snapshot() == [0] * inp.n

    def test_two_nodes(self, run_checked):
        inp = contract.make_input(n=2, seed=1)
        run_checked(contract, inp, "specfor")


class TestRefine:
    def test_claimed_cavities_are_disjoint(self, run_checked):
        inp = refine.make_input(width=8, n_ops=40, seed=2)
        run = run_checked(refine, inp, "specfor")
        n_ok = refine.check(run.handles, inp)
        want_success, _ = refine.reference_result(inp)
        assert n_ok == sum(want_success)
