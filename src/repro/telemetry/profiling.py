"""Hot-path profiling: frontier-scan and conflict-probe counters.

The simulator core keeps raw (non-registry) counters on its hot-path
structures — the GVT frontier and per-queue stripped indexes count heap
entries examined per minimum query, the speculative memory counts
candidate owners examined per conflict check, and the Bloom model counts
live tasks walked per false-positive sample. They are plain ints bumped
inline, deliberately **outside** the metrics registry so vanilla runs
export byte-identical metrics to older versions (the same discipline as
the resilience counters); ``repro profile`` gathers them after a run,
folds them into the registry, and renders the report below.

The counters double as the regression surface for CI's perf-smoke job:
scan/probe work per event is a deterministic property of the run, so a
pinned ceiling catches an accidental return to linear scanning even on a
noisy machine where wall-clock alone could not.
"""

from __future__ import annotations

from typing import Dict, Optional

#: JSON schema tag for exported profiles (v2 adds the memory-engine
#: fast-path counters and the Bloom bank counters; all fields additive)
PROFILE_SCHEMA = "repro.hot-path-profile/2"


def collect_profile(sim, wall_s: Optional[float] = None) -> Dict:
    """Gather hot-path counters from a finished simulator into one doc."""
    frontier = sim._frontier
    dyn = frontier._dyn
    queue_scans = 0
    queue_queries = 0
    for tile in sim.tiles:
        idx = tile.unit._stripped_idx
        queue_scans += idx.scan_steps
        queue_queries += idx.queries
    mem = sim.memory
    accesses = mem.n_loads + mem.n_stores
    gvt_queries = frontier.queries
    gvt_scans = frontier.scan_steps + dyn.scan_steps
    conflict_probes = getattr(sim.conflicts, "probe_steps", 0)
    doc = {
        "schema": PROFILE_SCHEMA,
        "name": sim.stats.name,
        "n_cores": sim.stats.n_cores,
        "makespan": sim.now,
        "events": sim._event_seq,
        "gvt": {
            "queries": gvt_queries,
            "scan_steps": gvt_scans,
            "mean_scan_len": gvt_scans / gvt_queries if gvt_queries else 0.0,
        },
        "queues": {
            "queries": queue_queries,
            "scan_steps": queue_scans,
            "mean_scan_len": (queue_scans / queue_queries
                              if queue_queries else 0.0),
        },
        "memory": {
            "engine": getattr(mem, "engine", "scalar"),
            "accesses": accesses,
            "probe_steps": mem.probe_steps,
            "mean_probe_len": mem.probe_steps / accesses if accesses else 0.0,
            "true_conflicts": mem.n_true_conflicts,
            "fast_hits": getattr(mem, "fast_hits", 0),
            "slow_probes": getattr(mem, "slow_probes", 0),
            "fast_hit_ratio": (getattr(mem, "fast_hits", 0) / accesses
                               if accesses else 0.0),
            "epoch_bumps": getattr(mem, "epoch_bumps", 0),
        },
        "conflict_model": {
            "model": getattr(sim.conflicts, "name", "?"),
            "probe_steps": conflict_probes,
            "false_positives": getattr(sim.conflicts, "false_positives", 0),
            "bank_probes": getattr(sim.conflicts, "bank_probes", 0),
            "bitmap_ops": sum(
                bank.bitmap_ops
                for bank in (getattr(sim.conflicts, "_bank_read", None),
                             getattr(sim.conflicts, "_bank_write", None))
                if bank is not None),
        },
        "tiebreaker_wraparounds": sim.alloc.wraparounds,
    }
    if wall_s is not None:
        doc["wall_s"] = wall_s
    return doc


def fold_into_registry(metrics, profile: Dict) -> None:
    """Export the profile counters through the metrics registry.

    Called only by ``repro profile`` — vanilla runs must not see these
    names, so metric exports stay byte-identical when profiling is off.
    """
    metrics.counter("profile_gvt_queries").value = \
        profile["gvt"]["queries"]
    metrics.counter("profile_gvt_scan_steps").value = \
        profile["gvt"]["scan_steps"]
    metrics.counter("profile_queue_scan_steps").value = \
        profile["queues"]["scan_steps"]
    metrics.counter("profile_mem_probe_steps").value = \
        profile["memory"]["probe_steps"]
    metrics.counter("profile_mem_fast_hits").value = \
        profile["memory"]["fast_hits"]
    metrics.counter("profile_mem_slow_probes").value = \
        profile["memory"]["slow_probes"]
    metrics.counter("profile_mem_epoch_bumps").value = \
        profile["memory"]["epoch_bumps"]
    metrics.counter("profile_conflict_probe_steps").value = \
        profile["conflict_model"]["probe_steps"]
    metrics.counter("profile_conflict_bank_probes").value = \
        profile["conflict_model"]["bank_probes"]
    metrics.counter("profile_conflict_bitmap_ops").value = \
        profile["conflict_model"]["bitmap_ops"]


def format_profile(profile: Dict) -> str:
    """Human-readable hot-path report."""
    g, q, m, c = (profile["gvt"], profile["queues"], profile["memory"],
                  profile["conflict_model"])
    lines = [
        f"hot-path profile: {profile['name']} "
        f"@ {profile['n_cores']} cores "
        f"({profile['makespan']:,} cycles, {profile['events']:,} events)",
        "",
        f"  GVT frontier     {g['queries']:>12,} queries   "
        f"{g['scan_steps']:>12,} heap entries examined   "
        f"(mean {g['mean_scan_len']:.2f}/query)",
        f"  queue indexes    {q['queries']:>12,} queries   "
        f"{q['scan_steps']:>12,} heap entries examined   "
        f"(mean {q['mean_scan_len']:.2f}/query)",
        f"  conflict checks  {m['accesses']:>12,} accesses  "
        f"{m['probe_steps']:>12,} candidate owners probed "
        f"(mean {m['mean_probe_len']:.2f}/access)",
        f"  {m.get('engine', 'scalar'):<6} engine     "
        f"{m.get('fast_hits', 0):>12,} memoized skips   "
        f"{m.get('slow_probes', 0):>12,} chain walks   "
        f"(hit ratio {m.get('fast_hit_ratio', 0.0):.1%}, "
        f"{m.get('epoch_bumps', 0):,} epoch bumps)",
        f"  {c['model']:<6} sampling   "
        f"{c['probe_steps']:>12,} live tasks walked   "
        f"{c['false_positives']:>12,} false positives",
        f"  true conflicts   {m['true_conflicts']:>12,}    "
        f"tiebreaker wraparounds {profile['tiebreaker_wraparounds']}",
    ]
    if "wall_s" in profile:
        lines.append(f"  wall clock       {profile['wall_s']:>12.3f} s")
    return "\n".join(lines)


def _metric_total(metrics: Dict, name: str, **labels) -> int:
    """Sum a snapshot counter's rows, optionally filtered by labels."""
    total = 0
    for row in metrics.get("counters", ()):
        if row.get("name") != name:
            continue
        r_labels = row.get("labels", {})
        if all(r_labels.get(k) == v for k, v in labels.items()):
            total += row.get("value", 0)
    return total


def format_serve_profile(doc: Dict) -> str:
    """Render a serve ``/metrics`` document (``repro profile --serve``).

    ``doc`` is the JSON body of ``GET /metrics``: a ``serve`` summary
    (tenants, jobs, cache) plus the manager's metrics snapshot with the
    ``serve.*`` counters.
    """
    serve = doc.get("serve", {})
    metrics = doc.get("metrics", {})
    jobs = serve.get("jobs", {})
    lines = [
        f"serve profile: up {serve.get('uptime_s', 0.0):,.1f}s, "
        f"{serve.get('workers', '?')} workers"
        + (", DRAINING" if serve.get("draining") else ""),
        "",
        f"  jobs             {jobs.get('total', 0):>8,} known   "
        f"{jobs.get('queued', 0):>6,} queued  "
        f"{jobs.get('running', 0):>6,} running  "
        f"{jobs.get('done', 0):>6,} done  "
        f"{jobs.get('failed', 0):>6,} failed",
        f"  submissions      {_metric_total(metrics, 'serve.submissions'):>8,} "
        f"accepted   "
        f"{_metric_total(metrics, 'serve.coalesced_submissions'):>6,} "
        f"coalesced  "
        f"{_metric_total(metrics, 'serve.warm_hits'):>6,} warm hits",
        f"  admission        "
        f"{_metric_total(metrics, 'serve.admission_reject', reason='rate'):>8,} "
        f"rate rejects   "
        f"{_metric_total(metrics, 'serve.admission_reject', reason='queue'):>6,} "
        f"queue rejects",
    ]
    cache = serve.get("cache")
    if cache:
        lookups = cache.get("hits", 0) + cache.get("misses", 0)
        ratio = cache.get("hits", 0) / lookups if lookups else 0.0
        lines.append(
            f"  result cache     {cache.get('entries', 0):>8,} entries   "
            f"{cache.get('hits', 0):>6,} hits  "
            f"{cache.get('misses', 0):>6,} misses  "
            f"{cache.get('stale', 0):>6,} stale  "
            f"(hit ratio {ratio:.1%})")
    tenants = serve.get("tenants", {})
    if tenants:
        lines.append("")
        lines.append(f"  {'tenant':<14} {'depth':>5} {'limit':>5} "
                     f"{'submitted':>9} {'coalesced':>9} {'warm':>6} "
                     f"{'rejected':>8} {'done':>6} {'failed':>6}")
        for name, ts in sorted(tenants.items()):
            rejected = (ts.get("rejected_rate", 0)
                        + ts.get("rejected_queue", 0))
            lines.append(
                f"  {name:<14} {ts.get('depth', 0):>5} "
                f"{ts.get('queue_limit', 0):>5} "
                f"{ts.get('submitted', 0):>9} {ts.get('coalesced', 0):>9} "
                f"{ts.get('warm_hits', 0):>6} {rejected:>8} "
                f"{ts.get('done', 0):>6} {ts.get('failed', 0):>6}")
    return "\n".join(lines)


def format_dist_profile(doc: Dict) -> str:
    """Render a coordinator ``/metrics`` document (``repro profile
    --dist``).

    ``doc`` is the JSON body of the coordinator's ``GET /metrics``: a
    ``dist`` summary (agents, sweeps, cache) plus the metrics snapshot
    with the ``dist.*`` counters — the chaos-visibility numbers: leases
    expired, fragments requeued, duplicates suppressed, and the
    result-mismatch count that must stay zero.
    """
    dist = doc.get("dist", {})
    metrics = doc.get("metrics", {})
    agents = dist.get("agents", {})
    sweeps = dist.get("sweeps", {})
    n_jobs = sum(s.get("n_jobs", 0) for s in sweeps.values())
    n_recorded = sum(s.get("recorded", 0) for s in sweeps.values())
    lines = [
        f"dist profile: up {dist.get('uptime_s', 0.0):,.1f}s, "
        f"{len(agents)} agents"
        + (", DRAINING" if dist.get("draining") else ""),
        "",
        f"  sweeps           {len(sweeps):>8,} known   "
        f"{n_recorded:>6,}/{n_jobs:,} jobs recorded",
        f"  agents           "
        f"{_metric_total(metrics, 'dist.agents_registered'):>8,} "
        f"registered   "
        f"{_metric_total(metrics, 'dist.agents_lost'):>6,} lost   "
        f"{_metric_total(metrics, 'dist.heartbeats'):>8,} heartbeats",
        f"  leases           "
        f"{_metric_total(metrics, 'dist.leases_granted'):>8,} granted   "
        f"{_metric_total(metrics, 'dist.leases_expired'):>6,} expired",
        f"  fragments        "
        f"{_metric_total(metrics, 'dist.fragments_done'):>8,} done   "
        f"{_metric_total(metrics, 'dist.fragments_requeued'):>6,} "
        f"requeued",
        f"  exactly-once     "
        f"{_metric_total(metrics, 'dist.results_recorded'):>8,} "
        f"recorded   "
        f"{_metric_total(metrics, 'dist.duplicates_suppressed'):>6,} "
        f"duplicates suppressed   "
        f"{_metric_total(metrics, 'dist.result_mismatch'):>6,} "
        f"MISMATCHED",
    ]
    auth_rejects = _metric_total(metrics, "dist.auth_reject")
    lines.append(
        f"  wire auth        "
        + (f"required   {auth_rejects:>6,} rejected (401)"
           if dist.get("auth_required") else "     off"))
    cache = dist.get("cache")
    if cache:
        lookups = cache.get("hits", 0) + cache.get("misses", 0)
        ratio = cache.get("hits", 0) / lookups if lookups else 0.0
        lines.append(
            f"  result cache     {cache.get('entries', 0):>8,} entries   "
            f"{cache.get('hits', 0):>6,} hits  "
            f"{cache.get('misses', 0):>6,} misses  "
            f"(hit ratio {ratio:.1%})")
    recovery = dist.get("recovery") or {}
    if recovery.get("recovered"):
        age = recovery.get("snapshot_age_s")
        lines.append("")
        lines.append(
            f"  recovery         "
            f"{recovery.get('replayed_records', 0):>8,} journal records "
            f"replayed   snapshot seq "
            f"{recovery.get('snapshot_seq', 0):,}"
            + (f" ({age:,.1f}s old)" if age is not None else "")
            + ("   TRUNCATED TAIL" if recovery.get("truncated_tail")
               else ""))
        lines.append(
            f"                   "
            f"{recovery.get('resumed_sweeps', 0):>8,} sweeps resumed   "
            f"{recovery.get('leases_restored', 0):>3,} leases restored  "
            f"{recovery.get('leases_discarded', 0):>3,} discarded  "
            f"{recovery.get('cache_refills', 0):>3,} cache refills")
    if agents:
        lines.append("")
        lines.append(f"  {'agent':<16} {'capacity':>8} {'heartbeats':>10} "
                     f"{'delivered':>9} {'leases':>6}")
        for name, a in sorted(agents.items()):
            lines.append(
                f"  {name:<16} {a.get('capacity', 0):>8} "
                f"{a.get('heartbeats', 0):>10} "
                f"{a.get('delivered', 0):>9} "
                f"{len(a.get('leases', ())):>6}")
    return "\n".join(lines)
