"""The low-level Fractal task interface (paper Sec. 3.1, Listing 1).

Task functions have the signature ``fn(ctx, *args)`` and receive a
:class:`TaskContext` exposing:

- ``load`` / ``store`` — speculative memory access (via the typed wrappers
  in :mod:`repro.mem.data`),
- ``compute(cycles)`` — explicit computation cost,
- ``enqueue`` / ``create_subdomain`` / ``enqueue_sub`` / ``enqueue_super``
  — the Fractal enqueue family, with optional timestamps (ordered domains)
  and spatial hints,
- ``timestamp`` — the running task's own timestamp.

Control-flow exceptions (:class:`TaskAborted`, the internal zoom requests)
unwind a task body when hardware kills or parks the attempt; application
code must let them propagate (never swallow exceptions inside task bodies
with a bare ``except``).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..errors import DomainError, FractalError
from ..vt import DomainVT, Ordering
from .domain import Domain
from .task import TaskDesc


class TaskAborted(FractalError):
    """The running attempt was aborted mid-execution (conflict); unwinds
    the task body back to the dispatch loop."""


class NeedZoomIn(FractalError):
    """Internal: the attempted subdomain enqueue does not fit the VT bit
    budget; the attempt rolls back and waits for a zoom-in."""

    def __init__(self, needed_bits: int):
        super().__init__(f"zoom-in needed for {needed_bits} extra VT bits")
        self.needed_bits = needed_bits


class NeedZoomOut(FractalError):
    """Internal: a base-domain task enqueued to its superdomain, which is
    currently zoomed out of the hardware VT window."""


class TaskContext:
    """Execution context of one task attempt on the speculative simulator."""

    __slots__ = ("sim", "task", "tile_id", "core_id", "cycles", "_children",
                 "_cache", "_memory", "_l1_hit", "_check_cost")

    def __init__(self, sim, task: TaskDesc, tile_id: int, core_id: int):
        self.sim = sim
        self.task = task
        self.tile_id = tile_id
        self.core_id = core_id
        self.cycles = 0
        self._children = 0
        # load/store run once per memory access: resolve the simulator's
        # fixed collaborators and latency constants up front
        self._cache = sim.cache
        self._memory = sim.memory
        self._l1_hit = sim.config.latency.l1_hit
        self._check_cost = sim.config.conflict_check_cost

    # ------------------------------------------------------------------
    # program-visible state
    # ------------------------------------------------------------------
    @property
    def timestamp(self) -> Optional[int]:
        """The running task's program timestamp (None in unordered domains)."""
        return self.task.timestamp

    @property
    def hint(self) -> Optional[int]:
        """The running task's spatial hint (None when unhinted)."""
        return self.task.hint

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------
    def load(self, addr: int) -> Any:
        """Speculative load (used via the typed wrappers)."""
        task = self.task
        if task.aborted:
            raise TaskAborted(repr(task))
        lat = self._cache.access_latency(task, self.tile_id, addr)
        if lat > self._l1_hit:
            # first touch of a line: the coherence request triggers a
            # distributed conflict check (Table 2: 5 cycles per tile check)
            lat += self._check_cost
        self.cycles += lat
        value = self._memory.load(task, addr)
        if task.aborted:
            raise TaskAborted(repr(task))
        return value

    def store(self, addr: int, value: Any) -> None:
        """Speculative store (used via the typed wrappers)."""
        task = self.task
        if task.aborted:
            raise TaskAborted(repr(task))
        lat = self._cache.access_latency(task, self.tile_id, addr)
        if lat > self._l1_hit:
            lat += self._check_cost
        self.cycles += lat
        self._memory.store(task, addr, value)
        if task.aborted:
            raise TaskAborted(repr(task))

    def compute(self, cycles: int) -> None:
        """Charge ``cycles`` of pure computation to this task."""
        if cycles < 0:
            raise FractalError("compute cycles must be >= 0")
        self.cycles += cycles

    def emit(self, event) -> None:
        """Defer a telemetry event to this task's *commit*.

        Task bodies re-execute after aborts, so emitting straight to the
        bus from inside one would double-count. Deferred events are held
        on the attempt (reset by :meth:`TaskDesc.begin_attempt`) and
        published exactly once, at commit time, stamped with the commit
        cycle; an event with a ``fold_metrics`` method also folds its
        counters into the run's :class:`~repro.telemetry.MetricsRegistry`
        there (metrics fold even with no bus subscribers).
        """
        task = self.task
        if task.emits is None:
            task.emits = [event]
        else:
            task.emits.append(event)

    # ------------------------------------------------------------------
    # enqueues (paper Listing 1)
    # ------------------------------------------------------------------
    def enqueue(self, fn: Callable, *args, ts: Optional[int] = None,
                hint: Optional[int] = None, label: Optional[str] = None) -> TaskDesc:
        """Enqueue a child into the caller's own domain."""
        domain = self.task.domain
        timestamp = domain.validate_child_timestamp(self.task.timestamp, ts)
        return self._spawn(fn, args, domain, timestamp if domain.ordering.is_ordered
                           else None, hint, label, kind="same")

    def create_subdomain(self, ordering: Ordering = Ordering.UNORDERED,
                         flattenable: bool = False) -> Domain:
        """Create this task's (single) subdomain (paper: exactly once).

        ``flattenable`` declares that the subdomain exists only to
        decompose work — its tasks do not rely on executing as one atomic
        unit. When ``config.flatten_nesting`` is on and this task is
        already nested past ``config.flatten_depth_threshold``, such a
        subdomain is elided and its tasks join the caller's domain (the
        paper's Sec. 6.3 future-work compiler pass, as a runtime policy).
        """
        if self.task.subdomain is not None:
            raise DomainError(
                f"{self.task} already created a subdomain; a task may call "
                f"create_subdomain exactly once")
        if not isinstance(ordering, Ordering):
            raise DomainError(f"expected an Ordering, got {ordering!r}")
        self.cycles += self.sim.config.create_subdomain_cost
        cfg = self.sim.config
        if (flattenable and cfg.flatten_nesting
                and ordering is Ordering.UNORDERED
                and self.task.domain.depth >= cfg.flatten_depth_threshold):
            # Elide the level: mark the caller's own domain as the
            # "subdomain" so enqueue_sub routes tasks to it.
            self.task.subdomain = self.task.domain
            self.sim.metrics.inc("domains_flattened")
            return self.task.domain
        sub = Domain(ordering, creator=self.task, parent=self.task.domain)
        self.task.subdomain = sub
        self.sim._note_subdomain(sub)
        return sub

    def enqueue_sub(self, fn: Callable, *args, ts: Optional[int] = None,
                    hint: Optional[int] = None,
                    label: Optional[str] = None) -> TaskDesc:
        """Enqueue a child into the subdomain created by this task."""
        sub = self.task.subdomain
        if sub is None:
            raise DomainError(
                "enqueue_sub before create_subdomain (call it exactly once "
                "before the first subdomain enqueue)")
        if sub is self.task.domain:
            # flattened level: the tasks join the caller's own domain at
            # the caller's timestamp (they were unordered siblings)
            return self.enqueue(fn, *args, ts=self.task.timestamp,
                                hint=hint, label=label)
        timestamp = sub.ordering.validate_timestamp(ts)
        # Budget check: the child VT appends one domain VT to ours.
        needed = DomainVT(sub.ordering, timestamp if sub.ordering.is_ordered
                          else 0).bits
        if self.task.vt.bits + needed > self.sim.vt_budget:
            if not self.sim.config.enable_zooming:
                self.task.vt.child_subdomain(
                    DomainVT(sub.ordering)).check_budget(self.sim.vt_budget)
            raise NeedZoomIn(needed)
        return self._spawn(fn, args, sub, timestamp if sub.ordering.is_ordered
                           else None, hint, label, kind="sub")

    def enqueue_super(self, fn: Callable, *args, ts: Optional[int] = None,
                      hint: Optional[int] = None,
                      label: Optional[str] = None) -> TaskDesc:
        """Enqueue a child into the caller's superdomain."""
        sup = self.task.domain.require_super()
        if self.task.vt.depth == 1:
            # Our domain is currently the hardware base domain: the
            # superdomain lives on the zoom stack. Park and restore it.
            raise NeedZoomOut(repr(self.task))
        # Causality: in an ordered superdomain the child cannot precede the
        # task that created our domain (its position in the superdomain).
        creator = self.task.domain.creator
        timestamp = sup.validate_child_timestamp(
            creator.timestamp if creator is not None else None, ts)
        return self._spawn(fn, args, sup, timestamp if sup.ordering.is_ordered
                           else None, hint, label, kind="super")

    # ------------------------------------------------------------------
    def _spawn(self, fn, args, domain, timestamp, hint, label, kind) -> TaskDesc:
        self.cycles += self.sim.config.enqueue_cost
        child = TaskDesc(fn, args, domain, timestamp=timestamp, hint=hint,
                         parent=self.task, label=label)
        self.task.children.append(child)
        self._children += 1
        self.sim._enqueue_child(self, child, kind)
        return child

    def __repr__(self) -> str:
        return f"TaskContext({self.task!r} on core {self.core_id})"
