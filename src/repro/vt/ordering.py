"""Domain ordering semantics (paper Sec. 3, Sec. 4.2 / Fig. 10)."""

from __future__ import annotations

import enum

from ..errors import TimestampError


class Ordering(enum.Enum):
    """Ordering semantics of a Fractal domain.

    ``UNORDERED`` domains have TM-like semantics: tasks are atomic and
    isolated, and the architecture picks an arbitrary order that respects
    parent-child dependences. ``ORDERED_32`` / ``ORDERED_64`` domains carry
    program-visible timestamps of the given width, and tasks appear to run
    in increasing timestamp order.
    """

    UNORDERED = "unordered"
    ORDERED_32 = "ordered-32b"
    ORDERED_64 = "ordered-64b"

    @property
    def is_ordered(self) -> bool:
        """True for timestamp-ordered domains."""
        return self is not Ordering.UNORDERED

    @property
    def timestamp_bits(self) -> int:
        """Bits the program timestamp contributes to a domain VT (Fig. 10)."""
        if self is Ordering.UNORDERED:
            return 0
        if self is Ordering.ORDERED_32:
            return 32
        return 64

    @property
    def max_timestamp(self) -> int:
        """Largest representable timestamp (0 for unordered domains)."""
        bits = self.timestamp_bits
        return (1 << bits) - 1 if bits else 0

    def validate_timestamp(self, timestamp) -> int:
        """Check a program timestamp against this ordering; return it.

        Unordered domains must not receive timestamps; ordered domains
        require an integer in ``[0, max_timestamp]``.
        """
        if self is Ordering.UNORDERED:
            if timestamp is not None:
                raise TimestampError(
                    f"unordered domain takes no timestamp, got {timestamp!r}")
            return 0
        if timestamp is None:
            raise TimestampError(f"{self.value} domain requires a timestamp")
        if not isinstance(timestamp, int) or isinstance(timestamp, bool):
            raise TimestampError(
                f"timestamp must be an int, got {type(timestamp).__name__}")
        if not (0 <= timestamp <= self.max_timestamp):
            raise TimestampError(
                f"timestamp {timestamp} out of range for {self.value}")
        return timestamp
