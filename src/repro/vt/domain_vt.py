"""Domain virtual times (paper Sec. 4.2, Fig. 10).

A domain VT orders all tasks within one domain. In an ordered domain it is
the concatenation of the program timestamp (32 or 64 bits) and a tiebreaker;
in an unordered domain it is just a tiebreaker. Tasks that have not been
dispatched yet carry a conservative *lower-bound* tiebreaker (the paper's
unset "--" tiebreaker of Fig. 12) so that GVT computations stay safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import VTError
from .ordering import Ordering
from .tiebreaker import Tiebreaker

# Per-member constants, precomputed once: DomainVT construction sits on
# the simulator's task-creation path, and enum property chains cost more
# than the validation they feed.
_MAX_TIMESTAMP = {o: o.max_timestamp for o in Ordering}
_VT_BITS = {o: o.timestamp_bits + 32 for o in Ordering}


@dataclass(frozen=True)
class DomainVT:
    """One domain's contribution to a fractal VT."""

    ordering: Ordering
    timestamp: int = 0          # always 0 for unordered domains
    tiebreaker: Optional[Tiebreaker] = None
    #: True while the owning task is still waiting to dispatch and the
    #: tiebreaker only bounds the eventual value from below.
    is_lower_bound: bool = False

    def __post_init__(self):
        if self.ordering is Ordering.UNORDERED and self.timestamp:
            raise VTError("unordered domain VT cannot carry a timestamp")
        if self.timestamp < 0 or self.timestamp > _MAX_TIMESTAMP[self.ordering]:
            if self.ordering.is_ordered:
                raise VTError(
                    f"timestamp {self.timestamp} out of range for "
                    f"{self.ordering.value}")

    # ------------------------------------------------------------------
    @property
    def bits(self) -> int:
        """Bits this domain VT occupies in the hardware format (Fig. 10)."""
        return _VT_BITS[self.ordering]

    def key(self) -> Tuple[int, int]:
        """Sort key: (timestamp, tiebreaker-raw). Unordered domains use a
        zero timestamp so that the key shape is uniform."""
        tb = self.tiebreaker.raw if self.tiebreaker is not None else 0
        return (self.timestamp, tb)

    # ------------------------------------------------------------------
    def with_tiebreaker(self, tb: Tiebreaker) -> "DomainVT":
        """Final domain VT produced at dispatch."""
        return DomainVT(self.ordering, self.timestamp, tb,
                        is_lower_bound=False)

    def with_lower_bound(self, tb: Tiebreaker) -> "DomainVT":
        """Conservative pre-dispatch domain VT."""
        return DomainVT(self.ordering, self.timestamp, tb,
                        is_lower_bound=True)

    def compacted(self, allocator) -> "DomainVT":
        """This VT after one tiebreaker compaction walk (paper Sec. 4.4)."""
        if self.tiebreaker is None:
            return self
        return DomainVT(self.ordering, self.timestamp,
                        allocator.compacted(self.tiebreaker),
                        is_lower_bound=self.is_lower_bound)

    def saturated(self) -> bool:
        """True when the tiebreaker has been compacted down to zero."""
        return self.tiebreaker is not None and self.tiebreaker.raw == 0

    def __repr__(self) -> str:
        tb = "--" if self.tiebreaker is None else repr(self.tiebreaker)
        if self.ordering.is_ordered:
            return f"{self.timestamp},{tb}"
        return tb
