"""Shared JobSpec JSON validation: one test per malformed-field case.

The validator is the single entry point for untrusted run descriptions
(serve 400 responses, ``--faults`` files), so each case asserts both the
rejection and the structured ``{"field", "error"}`` entry the API
returns.
"""

import pytest

from repro.errors import ConfigError
from repro.farm import (JobSpec, SpecValidationError, validate_fault_sections,
                        validate_jobspec)


def err_fields(exc: SpecValidationError):
    return [e["field"] for e in exc.errors]


def reject(doc):
    with pytest.raises(SpecValidationError) as ei:
        validate_jobspec(doc)
    return ei.value


class TestMalformedFields:
    def test_not_an_object(self):
        exc = reject(["mis"])
        assert exc.errors[0]["field"] == ""
        assert "JSON object" in exc.errors[0]["error"]

    def test_unknown_top_level_field(self):
        exc = reject({"app": "mis", "corse": 4})
        assert err_fields(exc) == ["corse"]
        assert "unknown job-spec field" in exc.errors[0]["error"]

    def test_app_missing(self):
        exc = reject({"n_cores": 4})
        assert "app" in err_fields(exc)
        assert "required" in exc.errors[0]["error"]

    def test_app_unknown_name_lists_registry(self):
        exc = reject({"app": "nope"})
        assert err_fields(exc) == ["app"]
        assert "mis" in exc.errors[0]["error"]   # the registry listing

    def test_variant_not_supported(self):
        exc = reject({"app": "zoomtree", "variant": "swarm"})
        assert err_fields(exc) == ["variant"]
        assert "zoomtree" in exc.errors[0]["error"]

    def test_variant_wrong_type(self):
        exc = reject({"app": "mis", "variant": 3})
        assert "variant" in err_fields(exc)

    def test_n_cores_not_an_integer(self):
        exc = reject({"app": "mis", "n_cores": "four"})
        assert err_fields(exc) == ["n_cores"]
        assert "integer" in exc.errors[0]["error"]

    def test_n_cores_below_minimum(self):
        exc = reject({"app": "mis", "n_cores": 0})
        assert err_fields(exc) == ["n_cores"]
        assert ">= 1" in exc.errors[0]["error"]

    def test_check_not_boolean(self):
        exc = reject({"app": "mis", "check": "yes"})
        assert err_fields(exc) == ["check"]

    def test_max_cycles_invalid(self):
        exc = reject({"app": "mis", "max_cycles": -5})
        assert err_fields(exc) == ["max_cycles"]

    def test_input_not_an_object(self):
        exc = reject({"app": "mis", "input": [7]})
        assert err_fields(exc) == ["input"]
        assert "object" in exc.errors[0]["error"]

    def test_config_unknown_field(self):
        exc = reject({"app": "mis", "config": {"meshdim": 2}})
        assert err_fields(exc) == ["config.meshdim"]
        assert "unknown SystemConfig field" in exc.errors[0]["error"]

    def test_config_latency_unknown_field(self):
        exc = reject({"app": "mis",
                      "config": {"latency": {"warp_speed": 1}}})
        assert err_fields(exc) == ["config.latency.warp_speed"]

    def test_config_semantic_error_surfaces(self):
        exc = reject({"app": "mis", "config": {"conflict_mode": "psychic"}})
        assert err_fields(exc) == ["config"]
        assert "conflict_mode" in exc.errors[0]["error"]

    def test_faults_unknown_field(self):
        exc = reject({"app": "mis", "faults": {"task_exceptions": 0.1}})
        assert err_fields(exc) == ["faults.task_exceptions"]
        assert "FaultPlan" in exc.errors[0]["error"]

    def test_resilience_unknown_field(self):
        exc = reject({"app": "mis", "resilience": {"attempts": 3}})
        assert err_fields(exc) == ["resilience.attempts"]
        assert "ResiliencePolicy" in exc.errors[0]["error"]

    def test_label_wrong_type(self):
        exc = reject({"app": "mis", "label": 7})
        assert "label" in err_fields(exc)

    def test_all_errors_collected_in_one_pass(self):
        exc = reject({"app": "nope", "n_cores": "x", "check": 1,
                      "bogus": True})
        assert set(err_fields(exc)) == {"app", "n_cores", "check", "bogus"}

    def test_unknown_app_message_has_no_keyerror_quoting(self):
        # UnknownAppError renders readably; a raw KeyError would wrap
        # the whole message in an extra layer of quotes
        exc = reject({"app": "nope"})
        msg = exc.errors[0]["error"]
        assert msg.startswith("unknown app 'nope'")
        assert not msg.startswith('"')

    def test_dotted_path_of_registered_app_checks_variants(self):
        # the registry resolves known dotted modules to their entry, so
        # a bogus variant is rejected just like with the short name
        exc = reject({"app": "repro.apps.pbbs.spanning",
                      "variant": "hwq"})
        assert err_fields(exc) == ["variant"]
        assert "specfor" in exc.errors[0]["error"]


class TestValidSpecs:
    def test_registry_name_resolves_to_module_path(self):
        spec = validate_jobspec({"app": "mis", "variant": "fractal",
                                 "n_cores": 4, "input": {"scale": 6}})
        assert spec.app == "repro.apps.mis"
        assert spec.input_kwargs == {"scale": 6}
        assert spec.check is True

    def test_dotted_module_path_accepted(self):
        spec = validate_jobspec({"app": "tests.farm._fakeapp",
                                 "n_cores": 2, "input": {"n_tasks": 4}})
        assert spec.app == "tests.farm._fakeapp"

    def test_digest_matches_directly_constructed_spec(self):
        doc = {"app": "mis", "variant": "fractal", "n_cores": 4,
               "input": {"scale": 6, "seed": 1}, "label": "x"}
        direct = JobSpec(app="repro.apps.mis", variant="fractal", n_cores=4,
                         input_kwargs={"scale": 6, "seed": 1}, label="x")
        assert validate_jobspec(doc).digest() == direct.digest()

    def test_faults_and_resilience_roundtrip(self):
        spec = validate_jobspec(
            {"app": "mis", "faults": {"task_exception_rate": 0.1,
                                      "seed": 3},
             "resilience": {"max_attempts": 5}})
        assert spec.fault_plan is not None
        assert spec.resilience.max_attempts == 5


class TestFaultSections:
    def test_non_object_keeps_legacy_message(self):
        with pytest.raises(ConfigError, match="JSON object"):
            validate_fault_sections([1, 2], source="f.json")

    def test_unknown_section_keeps_legacy_message(self):
        with pytest.raises(ConfigError, match="unknown fault-file sections"):
            validate_fault_sections({"fautls": {}})

    def test_top_level_seed_hoisted_into_plan(self):
        plan, policy = validate_fault_sections(
            {"seed": 7, "faults": {"task_exception_rate": 0.5}})
        assert plan.seed == 7
        assert policy is None

    def test_field_error_carries_structured_entry(self):
        with pytest.raises(SpecValidationError) as ei:
            validate_fault_sections(
                {"faults": {"task_exception_rate": 0.1},
                 "resilience": {"bogus": 1}})
        assert ei.value.errors == [{"field": "resilience.bogus",
                                    "error": "unknown ResiliencePolicy field"}]
