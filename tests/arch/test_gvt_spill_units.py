"""Unit tests for the GVT arbiter and spill data structures."""

import pytest

from repro.arch.gvt import GvtArbiter
from repro.arch.spill import CoalescerJob, SpillBuffer, SplitterJob
from repro.vt import Ordering


class _Task:
    """Minimal SpillBuffer occupant: a VT-shaped key + queue token."""

    def __init__(self, ts, tb=0):
        self._key = ((ts, tb),)
        self.queue_token = 0

    def order_key(self):
        return self._key


class TestGvtArbiter:
    def test_next_tick_period(self):
        arb = GvtArbiter(commit_interval=200)
        assert arb.next_tick(1000) == 1200

    def test_min_unfinished(self):
        assert GvtArbiter.min_unfinished_key([(3,), None, (1,), (2,)]) == (1,)

    def test_min_of_nothing_is_none(self):
        assert GvtArbiter.min_unfinished_key([None, None]) is None

    def test_base_stack_lifo(self):
        arb = GvtArbiter()
        arb.push_base(Ordering.ORDERED_32, 7)
        arb.push_base(Ordering.UNORDERED, 0)
        assert arb.zoom_depth == 2
        assert arb.pop_base() == (Ordering.UNORDERED, 0)
        assert arb.pop_base() == (Ordering.ORDERED_32, 7)
        assert arb.zoom_ins == 2 and arb.zoom_outs == 2

    def test_zoom_request_validation(self):
        arb = GvtArbiter()
        with pytest.raises(ValueError):
            arb.request_zoom("sideways", object())


class TestSpillBuffer:
    def test_min_key(self):
        buf = SpillBuffer([_Task(5), _Task(2), _Task(9)])
        assert buf.min_key() == ((2, 0),)

    def test_empty_min_is_none(self):
        assert SpillBuffer([]).min_key() is None

    def test_remove(self):
        a, b = _Task(1), _Task(2)
        buf = SpillBuffer([a, b])
        assert buf.remove(a)
        assert not buf.remove(a)
        assert len(buf) == 1

    def test_is_zoom_flag_defaults_false(self):
        assert not SpillBuffer([]).is_zoom


class TestJobs:
    def test_kinds(self):
        assert CoalescerJob(0, 10).kind == "coalescer"
        assert SplitterJob(0, SpillBuffer([]), 10).kind == "splitter"

    def test_repr_mentions_contents(self):
        buf = SpillBuffer([_Task(1)])
        assert "1 tasks" in repr(SplitterJob(2, buf, 10))
