"""repro.telemetry — structured observability for simulation runs.

Three layers (see README "Observability"):

- :class:`EventBus` + typed :mod:`events <repro.telemetry.events>` — every
  observable state transition (dispatch, finish, abort+cause, squash,
  conflict with addresses/VTs, commit, enqueue, spill, zoom, tiebreaker
  wraparound, GVT tick) as a timestamped event, zero-overhead when no
  subscriber is attached;
- :class:`MetricsRegistry` — labeled counters/gauges/histograms that are
  the single source of truth :class:`repro.core.stats.RunStats` is rebuilt
  from;
- exporters — JSONL event logs, Chrome/Perfetto ``trace_event`` JSON,
  metrics-JSON snapshots — plus derived analyses (abort cascades,
  conflict hot addresses, per-depth abort ratios) and the ASCII timeline
  rebuilt as a bus consumer.
"""

from .bus import EventBus, EventRecorder, EventRingBuffer
from .events import (
    EVENT_SCHEMA,
    EVENT_TYPES,
    AbortEvent,
    AdmissionRejectEvent,
    AgentLostEvent,
    AgentRegisteredEvent,
    CacheHitEvent,
    CommitEvent,
    ConflictEvent,
    DispatchEvent,
    DivertEvent,
    DuplicateResultEvent,
    EnqueueEvent,
    Event,
    FaultInjectedEvent,
    FinishEvent,
    FragmentDoneEvent,
    FragmentRequeuedEvent,
    GvtTickEvent,
    JobCoalescedEvent,
    JobDoneEvent,
    JobQueuedEvent,
    JobStartEvent,
    LeaseExpiredEvent,
    LeaseGrantedEvent,
    LivelockThrottleEvent,
    QueuePressureEvent,
    RetryBackoffEvent,
    SafeModeEnterEvent,
    SafeModeExitEvent,
    ServeDrainEvent,
    SpecForRoundEvent,
    SpillEvent,
    SquashEvent,
    WatchdogEvent,
    WorkerCrashEvent,
    WraparoundEvent,
    ZoomEvent,
    event_from_dict,
)
from .export import (
    JsonlExporter,
    metrics_snapshot,
    read_events_jsonl,
    write_events_jsonl,
    write_metrics_json,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .perfetto import to_perfetto, write_perfetto
from .profiling import (PROFILE_SCHEMA, collect_profile, fold_into_registry,
                        format_dist_profile, format_profile,
                        format_serve_profile)

_VALIDATE_NAMES = ("ValidationError", "validate_event_dict",
                   "validate_jsonl")


def __getattr__(name):
    # Lazy so ``python -m repro.telemetry.validate`` does not import the
    # module twice (once via the package, once as __main__).
    if name in _VALIDATE_NAMES:
        from . import validate
        return getattr(validate, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "EVENT_SCHEMA",
    "EVENT_TYPES",
    "PROFILE_SCHEMA",
    "AbortEvent",
    "AdmissionRejectEvent",
    "AgentLostEvent",
    "AgentRegisteredEvent",
    "CacheHitEvent",
    "CommitEvent",
    "ConflictEvent",
    "Counter",
    "DispatchEvent",
    "DivertEvent",
    "DuplicateResultEvent",
    "EnqueueEvent",
    "Event",
    "EventBus",
    "EventRecorder",
    "EventRingBuffer",
    "FaultInjectedEvent",
    "FinishEvent",
    "FragmentDoneEvent",
    "FragmentRequeuedEvent",
    "Gauge",
    "GvtTickEvent",
    "Histogram",
    "JobCoalescedEvent",
    "JobDoneEvent",
    "JobQueuedEvent",
    "JobStartEvent",
    "JsonlExporter",
    "LeaseExpiredEvent",
    "LeaseGrantedEvent",
    "LivelockThrottleEvent",
    "MetricsRegistry",
    "QueuePressureEvent",
    "RetryBackoffEvent",
    "SafeModeEnterEvent",
    "SafeModeExitEvent",
    "ServeDrainEvent",
    "SpecForRoundEvent",
    "SpillEvent",
    "SquashEvent",
    "ValidationError",
    "WatchdogEvent",
    "WorkerCrashEvent",
    "WraparoundEvent",
    "ZoomEvent",
    "collect_profile",
    "event_from_dict",
    "fold_into_registry",
    "format_dist_profile",
    "format_profile",
    "format_serve_profile",
    "metrics_snapshot",
    "read_events_jsonl",
    "to_perfetto",
    "validate_event_dict",
    "validate_jsonl",
    "write_events_jsonl",
    "write_metrics_json",
    "write_perfetto",
]
