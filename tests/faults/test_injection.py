"""Simulation-level injection tests: every site, retry/backoff, budgets."""

import pytest

from repro import Simulator, SystemConfig
from repro.errors import TaskExecutionError
from repro.faults import FaultInjector, FaultPlan, ResiliencePolicy

from .conftest import build_counter_sim, expected_counter


class TestTransientExceptions:
    def test_retries_preserve_correctness(self, event_log):
        plan = FaultPlan(seed=3, task_exception_rate=0.4)
        sim = build_counter_sim(
            40, 4, sim_kwargs=dict(faults=plan,
                                   resilience=ResiliencePolicy(
                                       max_attempts=10)))
        sim.bus.subscribe(event_log)
        stats = sim.run()
        assert stats.tasks_committed == 40
        assert sim.memory.peek(0) == expected_counter(40)
        assert stats.faults_injected > 0
        assert stats.exec_fault_retries > 0
        assert event_log.of("fault_injected")
        assert event_log.of("retry_backoff")
        sim.audit()

    def test_backoff_delays_grow(self, event_log):
        plan = FaultPlan(seed=0, task_exception_rate=1.0,
                         max_injections=3)
        policy = ResiliencePolicy(max_attempts=10, backoff_base=100,
                                  backoff_factor=2.0, backoff_cap=10_000)
        sim = build_counter_sim(1, 1, sim_kwargs=dict(faults=plan,
                                                      resilience=policy))
        sim.bus.subscribe(event_log)
        stats = sim.run()
        assert stats.tasks_committed == 1
        delays = [e.delay for e in event_log.of("retry_backoff")]
        assert len(delays) == 3           # one per injected failure
        assert delays == sorted(delays)   # exponential growth
        assert delays[1] >= 2 * delays[0] - sim.config.abort_penalty

    def test_without_policy_exception_is_fatal(self):
        plan = FaultPlan(seed=1, task_exception_rate=1.0)
        sim = build_counter_sim(4, 4, sim_kwargs=dict(faults=plan))
        with pytest.raises(TaskExecutionError) as exc_info:
            sim.run()
        err = exc_info.value
        assert err.tid >= 0
        assert err.attempt == 1
        assert err.vt
        assert "injected task_exception" in str(err.__cause__)
        sim.memory.assert_quiescent()  # rollback left memory clean

    def test_exhausted_budget_is_fatal_with_attempt_count(self):
        plan = FaultPlan(seed=1, task_exception_rate=1.0)
        policy = ResiliencePolicy(max_attempts=3, backoff_base=1)
        sim = build_counter_sim(2, 2, sim_kwargs=dict(faults=plan,
                                                      resilience=policy))
        with pytest.raises(TaskExecutionError) as exc_info:
            sim.run()
        assert exc_info.value.attempt == 3


class TestOtherSites:
    def test_forced_conflicts_preserve_correctness(self, event_log):
        plan = FaultPlan(seed=2, conflict_rate=0.3, max_injections=200)
        sim = build_counter_sim(
            40, 4, sim_kwargs=dict(faults=plan,
                                   resilience=ResiliencePolicy()))
        sim.bus.subscribe(event_log)
        stats = sim.run()
        assert stats.tasks_committed == 40
        assert sim.memory.peek(0) == expected_counter(40)
        assert sim.memory.n_injected_conflicts > 0
        injected = [e for e in event_log.of("conflict")
                    if e.cause == "injected"]
        assert injected
        sim.audit()

    def test_slow_tasks_stretch_the_makespan(self):
        def run(plan):
            sim = build_counter_sim(20, 4, sim_kwargs=dict(faults=plan))
            return sim.run().makespan

        base = run(None)
        slow = run(FaultPlan(seed=5, slow_task_rate=1.0,
                             slow_task_factor=50))
        assert slow > 5 * base

    def test_queue_squeeze_shrinks_capacities(self):
        plan = FaultPlan(seed=0, queue_capacity_factor=0.25)
        cfg = SystemConfig.with_cores(4, conflict_mode="precise")
        sim = Simulator(cfg, faults=plan, resilience=ResiliencePolicy())
        unit = sim.tiles[0].unit
        assert unit.task_queue_cap == max(2, cfg.task_queue_per_tile // 4)
        assert unit.commit_queue_cap == max(2, cfg.commit_queue_per_tile // 4)


class TestTargetingAndBudget:
    def test_labels_filter(self):
        plan = FaultPlan(seed=1, task_exception_rate=1.0,
                         labels=("victim",))
        injector = FaultInjector(plan)

        class Stub:
            def __init__(self, label):
                self.tid, self.attempt, self.label = 1, 1, label

        assert injector.fail_attempt(Stub("victim"))
        assert not injector.fail_attempt(Stub("bystander"))

    def test_max_injections_budget(self):
        plan = FaultPlan(seed=3, task_exception_rate=1.0, max_injections=5)
        sim = build_counter_sim(
            30, 4, sim_kwargs=dict(faults=plan,
                                   resilience=ResiliencePolicy(
                                       max_attempts=50)))
        stats = sim.run()
        assert stats.tasks_committed == 30
        assert stats.faults_injected == 5

    def test_vanilla_run_unaffected_by_wiring(self):
        # no faults, no resilience: the new hooks must all be inert
        sim = build_counter_sim(30, 4)
        stats = sim.run()
        assert stats.tasks_committed == 30
        assert stats.faults_injected == 0
        assert stats.safe_mode_entries == 0
        assert sim.memory.peek(0) == expected_counter(30)
        # no resilience/fault counters leak into vanilla metrics exports
        exported = str(sim.metrics.snapshot())
        for name in ("faults_injected", "exec_fault_retries",
                     "safe_mode_entries", "backoff_requeues"):
            assert name not in exported
        sim.audit()
