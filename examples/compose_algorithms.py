#!/usr/bin/env python
"""Composing speculative parallel algorithms (paper Secs. 2.2-2.3, 3.1).

Builds a small analytics pipeline out of *self-contained* parallel pieces
using the high-level interface (Table 1):

1. an unordered ``forall`` fans out over buckets of an event stream,
2. inside each bucket task, a nested ``forall_reduce`` counts the bucket's
   events into its total,
3. an ordered ``forall_ordered`` continuation then ranks buckets and
   records the leaderboard — all levels speculate concurrently, and every
   level was written without knowing anything about the others'
   timestamps.

That is the composition story: with Swarm alone, levels 2 and 3 would have
to carve up one global timestamp space (like silo-swarm in Fig. 5).

Run:  python examples/compose_algorithms.py
"""

from repro import Simulator, SystemConfig, forall, forall_ordered, forall_reduce
from repro.mem.data import SpecCell

N_KEYS = 8
N_EVENTS = 64


def main():
    sim = Simulator(SystemConfig.with_cores(16), name="compose")
    events = [(i * 7 + 3) % N_KEYS for i in range(N_EVENTS)]

    totals = [sim.cell(f"total.{k}", 0) for k in range(N_KEYS)]
    leaderboard = sim.array("leaderboard", N_KEYS)
    cursor = sim.cell("cursor", 0)

    # level 2: a self-contained parallel reduction over one bucket
    def sum_bucket(ctx, key):
        items = [e for e in events if e == key]
        if items:
            forall_reduce(ctx, items, lambda c, item: 1, totals[key])

    # level 3: rank buckets in deterministic key order
    def rank(ctx):
        def visit(c, key):
            if totals[key].get(c) > 0:
                pos = cursor.get(c)
                leaderboard.set(c, pos, key)
                cursor.set(c, pos + 1)

        forall_ordered(ctx, range(N_KEYS), visit)

    def pipeline(ctx):
        forall(ctx, range(N_KEYS), sum_bucket, then=rank)

    sim.enqueue_root(pipeline, label="pipeline")
    stats = sim.run()
    sim.audit()

    print(stats.summary())
    print("\nbucket totals:", {k: totals[k].peek() for k in range(N_KEYS)})
    ranked = [leaderboard.peek(i) for i in range(cursor.peek())]
    print("leaderboard (key order):", ranked)
    assert sum(totals[k].peek() for k in range(N_KEYS)) == N_EVENTS
    print(f"max nesting depth observed: {stats.max_depth}")


if __name__ == "__main__":
    main()
