"""Swarm astar: A* grid pathfinding with timestamp = f = g + h.

Tasks visit (cell, g) candidates in f-order (Manhattan-distance heuristic,
admissible and consistent on a 4-connected grid with unit step costs, so
the first settlement of each cell is optimal and the first settlement of
the goal yields the shortest path). Every settled cell records its g; the
checker compares the goal's g against networkx and verifies that settled
cells' f never exceeds the optimum (A* visits no node with f > f*).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ...errors import AppError
from ...vt import Ordering
from ..common import require_variant

UNSETTLED = -1


@dataclass
class AstarInput:
    width: int
    height: int
    walls: frozenset
    start: Tuple[int, int]
    goal: Tuple[int, int]

    def node(self, x: int, y: int) -> int:
        return y * self.width + x

    @property
    def n(self) -> int:
        return self.width * self.height


def make_input(width: int = 24, height: int = 24, wall_fraction: float = 0.2,
               seed: int = 23) -> AstarInput:
    rng = random.Random(seed)
    walls = set()
    for x in range(width):
        for y in range(height):
            if rng.random() < wall_fraction:
                walls.add((x, y))
    start, goal = (0, 0), (width - 1, height - 1)
    walls.discard(start)
    walls.discard(goal)
    return AstarInput(width, height, frozenset(walls), start, goal)


def _neighbors(inp: AstarInput, x: int, y: int):
    for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
        nx_, ny = x + dx, y + dy
        if (0 <= nx_ < inp.width and 0 <= ny < inp.height
                and (nx_, ny) not in inp.walls):
            yield nx_, ny


def _h(inp: AstarInput, x: int, y: int) -> int:
    return abs(inp.goal[0] - x) + abs(inp.goal[1] - y)


def build(host, inp: AstarInput, variant: str = "swarm") -> Dict:
    require_variant(variant, ("swarm",))
    gscore = host.array("astar.g", inp.n * 8, fill=UNSETTLED)
    adj = {(x, y): tuple(_neighbors(inp, x, y))
           for x in range(inp.width) for y in range(inp.height)
           if (x, y) not in inp.walls}

    goal_idx = inp.node(*inp.goal)

    def visit(ctx, x, y, g):
        idx = inp.node(x, y)
        if gscore.get(ctx, idx * 8) != UNSETTLED:
            return
        # prune: once the goal settles, later-f candidates are useless
        if idx != goal_idx and gscore.get(ctx, goal_idx * 8) != UNSETTLED:
            return
        gscore.set(ctx, idx * 8, g)
        ctx.compute(5)
        if (x, y) == inp.goal:
            return
        for (nx_, ny) in adj[(x, y)]:
            f = g + 1 + _h(inp, nx_, ny)
            ctx.enqueue(visit, nx_, ny, g + 1, ts=f, hint=inp.node(nx_, ny),
                        label="visit")

    sx, sy = inp.start
    host.enqueue_root(visit, sx, sy, 0, ts=_h(inp, sx, sy),
                      hint=inp.node(sx, sy), label="visit")
    return {"g": gscore, "input": inp}


def root_ordering(variant: str) -> Ordering:
    return Ordering.ORDERED_32


def reference(inp: AstarInput) -> Dict[Tuple[int, int], int]:
    """Plain BFS distances (unit costs) from the start."""
    from collections import deque

    dist = {inp.start: 0}
    q = deque([inp.start])
    while q:
        cell = q.popleft()
        for ngh in _neighbors(inp, *cell):
            if ngh not in dist:
                dist[ngh] = dist[cell] + 1
                q.append(ngh)
    return dist


def check(handles: Dict, inp: AstarInput) -> int:
    """The goal's g must be optimal, and every settled cell's g must equal
    its true distance (consistent heuristic -> f-ordered settlement ->
    per-cell optimality). Returns the goal distance."""
    want = reference(inp)
    if inp.goal not in want:
        raise AppError("fixture must have a reachable goal")
    best = want[inp.goal]
    goal_g = handles["g"].peek(inp.node(*inp.goal) * 8)
    if goal_g != best:
        raise AppError(f"goal distance {goal_g}, expected {best}")
    for (x, y), d in want.items():
        got = handles["g"].peek(inp.node(x, y) * 8)
        if got != UNSETTLED and got != d:
            raise AppError(f"g[{x},{y}] = {got}, true distance {d}")
    return best
