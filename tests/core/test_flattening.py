"""Tests for nesting flattening (paper Sec. 6.3 future work)."""

import pytest

from repro import Ordering, Simulator, SystemConfig


def make_sim(flatten=True, threshold=2, vt_bits=128, n_cores=4):
    cfg = SystemConfig.with_cores(
        n_cores, flatten_nesting=flatten,
        flatten_depth_threshold=threshold, vt_bits=vt_bits,
        conflict_mode="precise")
    return Simulator(cfg)


def deep_program(sim, depth, flattenable, counter):
    def node(ctx, level):
        counter.add(ctx, 1)
        if level + 1 < depth:
            ctx.create_subdomain(Ordering.UNORDERED,
                                 flattenable=flattenable)
            for _ in range(2):
                ctx.enqueue_sub(node, level + 1)

    sim.enqueue_root(node, 0)


class TestFlattening:
    def test_flattened_program_runs_all_tasks(self):
        sim = make_sim()
        counter = sim.cell("c", 0)
        deep_program(sim, depth=6, flattenable=True, counter=counter)
        stats = sim.run(max_cycles=10_000_000)
        assert counter.peek() == 2 ** 6 - 1
        assert stats.domains_flattened > 0
        assert stats.max_depth <= 3  # threshold 2 caps logical depth

    def test_non_flattenable_domains_untouched(self):
        sim = make_sim()
        counter = sim.cell("c", 0)
        deep_program(sim, depth=5, flattenable=False, counter=counter)
        stats = sim.run(max_cycles=10_000_000)
        assert counter.peek() == 2 ** 5 - 1
        assert stats.domains_flattened == 0
        assert stats.max_depth == 5

    def test_flattening_off_by_default(self):
        sim = Simulator(SystemConfig.with_cores(4, conflict_mode="precise"))
        counter = sim.cell("c", 0)
        deep_program(sim, depth=5, flattenable=True, counter=counter)
        stats = sim.run(max_cycles=10_000_000)
        assert stats.domains_flattened == 0

    def test_ordered_subdomains_never_flattened(self):
        """Flattening an ordered subdomain would lose its internal order;
        only unordered decomposition levels are elided."""
        sim = make_sim()
        log = sim.array("log", 8)
        pos = sim.cell("pos", 0)

        def leaf(ctx, i):
            p = pos.get(ctx)
            log.set(ctx, p, i)
            pos.set(ctx, p + 1)

        def nest(ctx, level):
            if level < 3:
                ctx.create_subdomain(Ordering.UNORDERED, flattenable=True)
                ctx.enqueue_sub(nest, level + 1)
            else:
                ctx.create_subdomain(Ordering.ORDERED_32, flattenable=True)
                for i in reversed(range(4)):
                    ctx.enqueue_sub(leaf, i, ts=i)

        sim.enqueue_root(nest, 0)
        stats = sim.run(max_cycles=10_000_000)
        assert log.snapshot()[:4] == [0, 1, 2, 3]

    def test_flattening_avoids_zooming(self):
        """The Sec. 6.3 motivation: over-nested flattenable code under a
        tight VT budget zooms constantly; flattening removes the zooms."""
        from repro.apps import zoomtree
        from repro.bench.harness import run_app

        inp = zoomtree.make_input(fanout=2, depth=6)
        cfg_plain = SystemConfig.with_cores(
            4, vt_bits=64, conflict_mode="precise")
        cfg_flat = cfg_plain.replace(flatten_nesting=True,
                                     flatten_depth_threshold=2)
        plain = run_app(zoomtree, inp, variant="fractal", n_cores=4,
                        config=cfg_plain, max_cycles=80_000_000)
        flat = run_app(zoomtree, inp, variant="fractal", n_cores=4,
                       config=cfg_flat, max_cycles=80_000_000,
                       flattenable=True)
        assert plain.stats.zoom_ins > 0
        assert flat.stats.zoom_ins == 0
        assert flat.makespan < plain.makespan
        assert flat.stats.domains_flattened > 0
