"""STAMP yada: Delaunay mesh refinement (Ruppert's algorithm).

The real yada repeatedly fixes "bad" (skinny) triangles by collecting the
*cavity* around each one, deleting it, and re-triangulating — cavities
that overlap must be fixed atomically, which is the speculation workload.

Per DESIGN.md, geometry is substituted by a conflict-equivalent kernel:
the initial mesh comes from ``scipy.spatial.Delaunay`` over random points
(its triangle-adjacency graph and a min-angle badness test are real); the
*retriangulation* is abstracted — a cavity (a bad triangle plus its alive
neighbours) is killed and replaced by the same number of fresh triangles
from a pool, wired into the cavity's frontier, with deterministic
hash-derived badness that decays with generation (guaranteeing
termination). Speculation behaviour depends on cavity overlap and pool
contention, both of which this kernel preserves.

TM mode consumes the bad-triangle worklist through a software queue
(STAMP's actual design; the Fig. 17 "+HWQueues" step is what makes yada
scale).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ...errors import AppError
from ...vt import Ordering
from .common import drive_workload, require_stamp_variant
from ..common import splitmix

MAX_GENERATION = 3
_BAD_ANGLE_DEG = 25.0


@dataclass
class YadaInput:
    n_triangles: int
    neighbors: List[Tuple[int, ...]]
    bad: List[int]                  # initially-bad triangle ids
    pool_capacity: int
    seed: int


def _min_angle(p0, p1, p2) -> float:
    def ang(a, b, c):
        v1 = (b[0] - a[0], b[1] - a[1])
        v2 = (c[0] - a[0], c[1] - a[1])
        dot = v1[0] * v2[0] + v1[1] * v2[1]
        n1 = math.hypot(*v1)
        n2 = math.hypot(*v2)
        if n1 == 0 or n2 == 0:
            return 0.0
        return math.degrees(math.acos(max(-1.0, min(1.0, dot / (n1 * n2)))))
    return min(ang(p0, p1, p2), ang(p1, p2, p0), ang(p2, p0, p1))


def make_input(n_points: int = 48, seed: int = 13) -> YadaInput:
    from scipy.spatial import Delaunay
    import numpy as np

    rng = np.random.default_rng(seed)
    pts = rng.random((n_points, 2))
    tri = Delaunay(pts)
    simplices = tri.simplices
    n = len(simplices)
    neighbors = [tuple(int(x) for x in row if x >= 0)
                 for row in tri.neighbors]
    bad = []
    for t in range(n):
        p = [tuple(pts[i]) for i in simplices[t]]
        if _min_angle(*p) < _BAD_ANGLE_DEG:
            bad.append(t)
    pool_capacity = n + 64 * max(len(bad), 1)
    return YadaInput(n, neighbors, bad, pool_capacity, seed)


def _new_is_bad(tid: int, gen: int, seed: int) -> bool:
    """Deterministic decaying badness for pool-allocated triangles."""
    if gen >= MAX_GENERATION:
        return False
    return splitmix(tid * 2654435761 + seed) % 100 < 30 // (gen + 1)


def build(host, inp: YadaInput, variant: str = "fractal") -> Dict:
    require_stamp_variant(variant)
    cap = inp.pool_capacity
    alive = host.array("yada.alive", cap, init=[1] * inp.n_triangles)
    # neighbour tuples live one-per-line (hot, mutated on every cavity)
    nbr = host.array("yada.nbr", cap * 8,
                     init=_spread([inp.neighbors[t]
                                   for t in range(inp.n_triangles)], cap))
    pool = host.array("yada.pool", 8 * 8)       # sharded next-id counters
    shard_size = (cap - inp.n_triangles) // 8
    # processed counters are sharded too — one global cell would serialize
    # every cavity through a single word
    processed = host.array("yada.processed", 8 * 8)

    def alloc_ids(ctx, shard, count) -> List[int]:
        base = pool.get(ctx, shard * 8)
        pool.set(ctx, shard * 8, base + count)
        start = inp.n_triangles + shard * shard_size + base
        if base + count > shard_size:
            raise AppError("yada pool shard exhausted; grow pool_capacity")
        return list(range(start, start + count))

    def refine(ctx, t, gen):
        if not alive.get(ctx, t):
            return
        # --- collect the cavity: t plus its alive neighbours ------------
        cavity = [t]
        frontier = []
        for ngh in nbr.get(ctx, t * 8) or ():
            if alive.get(ctx, ngh):
                cavity.append(ngh)
                for outer in nbr.get(ctx, ngh * 8) or ():
                    if outer not in cavity and alive.get(ctx, outer):
                        frontier.append(outer)
        ctx.compute(30 * len(cavity))
        # --- kill the cavity --------------------------------------------
        for c in cavity:
            alive.set(ctx, c, 0)
        # --- re-triangulate: same count of fresh triangles ---------------
        shard = splitmix(t) % 8
        fresh = alloc_ids(ctx, shard, len(cavity))
        ring = tuple(fresh)
        for idx, f in enumerate(fresh):
            others = tuple(x for x in ring if x != f)
            outer = tuple(frontier[idx::len(fresh)])
            alive.set(ctx, f, 1)
            nbr.set(ctx, f * 8, others + outer)
        # --- stitch the frontier back ------------------------------------
        for idx, outer in enumerate(frontier):
            old = nbr.get(ctx, outer * 8) or ()
            patched = tuple(x for x in old if x not in cavity)
            patched += (fresh[idx % len(fresh)],)
            nbr.set(ctx, outer * 8, patched)
        processed.add(ctx, shard * 8, 1)
        for f in fresh:
            if _new_is_bad(f, gen + 1, inp.seed):
                ctx.enqueue(refine, f, gen + 1, hint=f, label="refine")

    def unit(ctx, k):
        refine(ctx, inp.bad[k], 0)

    drive_workload(host, len(inp.bad), unit, variant,
                   hint_fn=lambda k: inp.bad[k], label="refine")
    return {"alive": alive, "nbr": nbr, "processed": processed,
            "pool": pool, "input": inp}


def root_ordering(variant: str) -> Ordering:
    return Ordering.UNORDERED


def _spread(tuples, cap, scale: int = 8):
    out = []
    for t in tuples:
        out.append(tuple(t))
        out.extend([0] * (scale - 1))
    return out


def check(handles: Dict, inp: YadaInput) -> int:
    alive = handles["alive"]
    nbr = handles["nbr"]
    # every initially-bad triangle was refined away
    for t in inp.bad:
        if alive.peek(t):
            raise AppError(f"initially-bad triangle {t} still alive")
    # alive triangles never reference dead cavity members as neighbours
    # that are themselves... (weak symmetric consistency: all alive
    # neighbours of an alive triangle must be alive ids within the pool)
    alive_ids = [t for t in range(inp.pool_capacity) if alive.peek(t)]
    alive_set = set(alive_ids)
    dangling = 0
    for t in alive_ids:
        for ngh in (nbr.peek(t * 8) or ()):
            if ngh >= inp.pool_capacity:
                raise AppError(f"triangle {t} references out-of-pool {ngh}")
            if ngh not in alive_set:
                dangling += 1
    # dead references may remain on triangles the stitching never saw;
    # they must be a small minority of total references
    total_refs = sum(len(nbr.peek(t * 8) or ()) for t in alive_ids) or 1
    if dangling > total_refs // 2:
        raise AppError(
            f"{dangling}/{total_refs} dangling neighbour references")
    # Some initially-bad triangles die as members of another cavity before
    # their own refine runs, so processed <= |bad| + pool-born cavities —
    # but at least one cavity must have been fixed when any existed.
    total = sum(handles["processed"].peek(s * 8) for s in range(8))
    if inp.bad and total < 1:
        raise AppError("no cavity was ever processed")
    return total
