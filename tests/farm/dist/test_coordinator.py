"""Coordinator unit tests: leases, heartbeats, reaping, exactly-once.

All timing goes through an injected fake clock, so lease expiry and
agent loss are tested without sleeping; the reaper thread is never
started — ``coord.reap()`` is called explicitly.
"""

import pytest

from repro.core.stats import RunStats
from repro.farm import ResultCache, validate_jobspec
from repro.farm.dist import wire
from repro.farm.dist.coordinator import (DONE, LEASED, PENDING, Coordinator,
                                         CoordinatorConfig,
                                         UnknownAgentError,
                                         UnknownSweepError)
from repro.telemetry import EventRecorder

FAKEAPP = "tests.farm._fakeapp"


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, s):
        self.now += s


def job_docs(n=6):
    return [{"app": FAKEAPP, "n_cores": 1,
             "input": {"n_tasks": 2 + i}} for i in range(n)]


def make_coord(ttl=10.0, fragments=3, cache=None, clock=None):
    cfg = CoordinatorConfig(lease_ttl_s=ttl, heartbeat_interval_s=ttl / 4,
                            fragments=fragments, cache_dir=None)
    return Coordinator(cfg, cache=cache, clock=clock or FakeClock())


def fake_stats(i=0):
    return RunStats(name=f"job{i}", makespan=100 + i).to_dict()


def deliver_doc(coord, sweep_id, fragment, agent="w1", epoch=0,
                stats_for=None):
    sweep = coord.sweep(sweep_id)
    frag = sweep.fragments[fragment]
    return {"agent": agent, "sweep": sweep_id, "fragment": fragment,
            "epoch": epoch,
            "results": [{"index": i,
                         "digest": sweep.specs[i].digest(),
                         "stats": (stats_for(i) if stats_for
                                   else fake_stats(i))}
                        for i in frag.indices]}


class TestSubmit:
    def test_fragments_partition_all_jobs(self):
        coord = make_coord()
        doc = coord.submit_sweep({"jobs": job_docs()})
        sweep = coord.sweep(doc["id"])
        seen = sorted(i for f in sweep.fragments.values()
                      for i in f.indices)
        assert seen == list(range(6))

    def test_submission_is_idempotent(self):
        coord = make_coord()
        first = coord.submit_sweep({"jobs": job_docs()})
        again = coord.submit_sweep({"jobs": job_docs()})
        assert first["id"] == again["id"]
        assert first["outcome"] == "queued"
        assert again["outcome"] == "known"
        assert coord.metrics_snapshot()  # only one sweep counted
        assert len(coord._sweeps) == 1

    def test_different_fragment_count_is_a_different_sweep(self):
        coord = make_coord()
        a = coord.submit_sweep({"jobs": job_docs(), "fragments": 2})
        b = coord.submit_sweep({"jobs": job_docs(), "fragments": 3})
        assert a["id"] != b["id"]

    def test_bad_job_doc_rejected(self):
        from repro.farm import SpecValidationError
        coord = make_coord()
        with pytest.raises(SpecValidationError):
            coord.submit_sweep({"jobs": [{"app": "no-such-app"}]})

    def test_unknown_sweep_raises(self):
        with pytest.raises(UnknownSweepError):
            make_coord().sweep_status("f" * 64)


class TestLeases:
    def test_acquire_leases_pending_fragments_only_once(self):
        coord = make_coord(fragments=3)
        sweep_id = coord.submit_sweep({"jobs": job_docs()})["id"]
        a = coord.register_agent({"agent": "w1"})["agent"]
        b = coord.register_agent({"agent": "w2"})["agent"]
        got_a = coord.acquire(a, {"max_fragments": 8})["leases"]
        got_b = coord.acquire(b, {"max_fragments": 8})["leases"]
        frags_a = {l["fragment"] for l in got_a}
        frags_b = {l["fragment"] for l in got_b}
        assert frags_a and not frags_b          # w1 took everything
        sweep = coord.sweep(sweep_id)
        assert all(f.state == LEASED for f in sweep.fragments.values())

    def test_unknown_agent_is_410(self):
        coord = make_coord()
        coord.submit_sweep({"jobs": job_docs()})
        with pytest.raises(UnknownAgentError):
            coord.acquire("ghost", {"max_fragments": 1})

    def test_heartbeat_renews_leases_past_ttl(self):
        clock = FakeClock()
        coord = make_coord(ttl=10.0, clock=clock)
        coord.submit_sweep({"jobs": job_docs()})
        agent = coord.register_agent({})["agent"]
        leases = [l["lease"] for l in
                  coord.acquire(agent, {"max_fragments": 8})["leases"]]
        for _ in range(5):
            clock.advance(8.0)              # would expire without renewal
            doc = coord.heartbeat(agent, {"leases": leases})
            assert doc["expired"] == []
            assert coord.reap() == 0
        assert len(coord._leases) == len(leases)

    def test_heartbeat_reports_unknown_leases_as_expired(self):
        coord = make_coord()
        agent = coord.register_agent({})["agent"]
        doc = coord.heartbeat(agent, {"leases": ["lease-999"]})
        assert doc["expired"] == ["lease-999"]

    def test_expired_lease_requeues_fragment_with_bumped_epoch(self):
        clock = FakeClock()
        coord = make_coord(ttl=10.0, fragments=2, clock=clock)
        rec = EventRecorder()
        coord.bus.subscribe(rec)
        sweep_id = coord.submit_sweep({"jobs": job_docs()})["id"]
        agent = coord.register_agent({})["agent"]
        granted = coord.acquire(agent, {"max_fragments": 8})["leases"]
        clock.advance(11.0)                 # past the lease TTL
        n = coord.reap()
        assert n == len(granted)
        sweep = coord.sweep(sweep_id)
        for lease in granted:
            frag = sweep.fragments[lease["fragment"]]
            assert frag.state == PENDING
            assert frag.epoch == lease["epoch"] + 1
            assert frag.lease is None
        kinds = [e.KIND for e in rec.events]
        assert "lease_expired" in kinds and "fragment_requeued" in kinds
        snap = coord.metrics_snapshot()
        requeued = sum(c["value"] for c in snap["counters"]
                       if c["name"] == "dist.fragments_requeued")
        assert requeued == len(granted)

    def test_lost_agent_expires_all_its_leases(self):
        clock = FakeClock()
        coord = make_coord(ttl=10.0, clock=clock)  # agent ttl = 20
        coord.submit_sweep({"jobs": job_docs()})
        agent = coord.register_agent({"agent": "victim"})["agent"]
        coord.acquire(agent, {"max_fragments": 8})
        clock.advance(21.0)
        coord.reap()
        assert agent not in coord._agents
        assert not coord._leases
        with pytest.raises(UnknownAgentError):
            coord.heartbeat(agent, {"leases": []})


class TestExactlyOnce:
    def setup_method(self):
        self.clock = FakeClock()
        self.coord = make_coord(fragments=2, clock=self.clock)
        self.sweep_id = self.coord.submit_sweep(
            {"jobs": job_docs(4)})["id"]
        self.agent = self.coord.register_agent({"agent": "w1"})["agent"]
        self.leases = self.coord.acquire(
            self.agent, {"max_fragments": 8})["leases"]

    def test_first_delivery_is_recorded(self):
        lease = self.leases[0]
        doc = self.coord.deliver(lease["lease"], deliver_doc(
            self.coord, self.sweep_id, lease["fragment"]))
        assert doc["accepted"] == len(lease["jobs"])
        assert doc["duplicates"] == 0
        assert doc["fragment_done"] is True

    def test_redelivery_is_suppressed_never_double_counted(self):
        lease = self.leases[0]
        payload = deliver_doc(self.coord, self.sweep_id,
                              lease["fragment"])
        self.coord.deliver(lease["lease"], payload)
        before = self.coord.sweep_results(self.sweep_id)["results"]
        again = self.coord.deliver(lease["lease"], payload)
        assert again["accepted"] == 0
        assert again["duplicates"] == len(lease["jobs"])
        after = self.coord.sweep_results(self.sweep_id)["results"]
        assert before == after              # records untouched
        snap = self.coord.metrics_snapshot()
        dupes = sum(c["value"] for c in snap["counters"]
                    if c["name"] == "dist.duplicates_suppressed")
        mismatches = sum(c["value"] for c in snap["counters"]
                         if c["name"] == "dist.result_mismatch")
        assert dupes == len(lease["jobs"])
        assert mismatches == 0              # identical stats matched

    def test_mismatched_duplicate_is_counted(self):
        lease = self.leases[0]
        self.coord.deliver(lease["lease"], deliver_doc(
            self.coord, self.sweep_id, lease["fragment"]))
        evil = deliver_doc(self.coord, self.sweep_id, lease["fragment"],
                           stats_for=lambda i: fake_stats(i + 100))
        self.coord.deliver(lease["lease"], evil)
        snap = self.coord.metrics_snapshot()
        mismatches = sum(c["value"] for c in snap["counters"]
                         if c["name"] == "dist.result_mismatch")
        assert mismatches == len(lease["jobs"])

    def test_zombie_delivery_after_requeue_is_still_exactly_once(self):
        # the SIGKILL-recovery scenario in miniature: the lease expires,
        # the fragment re-runs elsewhere, then the zombie delivers late
        lease = self.leases[0]
        payload = deliver_doc(self.coord, self.sweep_id,
                              lease["fragment"])
        self.clock.advance(11.0)
        self.coord.reap()                   # zombie's lease is gone
        fresh = self.coord.acquire(
            self.agent, {"max_fragments": 8})["leases"]
        refreshed = [l for l in fresh
                     if l["fragment"] == lease["fragment"]][0]
        self.coord.deliver(refreshed["lease"], deliver_doc(
            self.coord, self.sweep_id, lease["fragment"],
            epoch=refreshed["epoch"]))
        late = self.coord.deliver(lease["lease"], payload)  # zombie
        assert late["accepted"] == 0
        assert late["duplicates"] == len(lease["jobs"])

    def test_digest_mismatch_is_rejected(self):
        lease = self.leases[0]
        bad = deliver_doc(self.coord, self.sweep_id, lease["fragment"])
        bad["results"][0]["digest"] = "0" * 64
        with pytest.raises(wire.WireError):
            self.coord.deliver(lease["lease"], bad)

    def test_sweep_completes_after_all_fragments(self):
        for lease in self.leases:
            self.coord.deliver(lease["lease"], deliver_doc(
                self.coord, self.sweep_id, lease["fragment"]))
        doc = self.coord.sweep_results(self.sweep_id)
        assert doc["complete"] is True
        assert all(r is not None for r in doc["results"])
        assert self.coord.wait_complete(self.sweep_id, timeout=0.1)


class TestCachePrefill:
    def test_cached_jobs_never_get_leased(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        docs = job_docs(4)
        for i, doc in enumerate(docs):
            spec = validate_jobspec(doc)
            cache.put(spec, RunStats(name=f"warm{i}", makespan=50 + i))
        coord = make_coord(cache=cache)
        sub = coord.submit_sweep({"jobs": docs})
        sweep = coord.sweep(sub["id"])
        assert sweep.complete
        assert all(f.state == DONE for f in sweep.fragments.values())
        agent = coord.register_agent({})["agent"]
        assert coord.acquire(agent, {"max_fragments": 8})["leases"] == []
        results = coord.sweep_results(sub["id"])["results"]
        assert all(r["cached"] and r["agent"] == "cache"
                   for r in results)
