"""Structured validation of JobSpec / fault-plan JSON documents.

Every surface that accepts an untrusted JSON description of a run — the
``repro.serve`` submission endpoint, ``repro run --faults`` / sweeps, and
any future config loader — funnels through this module instead of calling
dataclass constructors directly, so malformed input produces a
:class:`SpecValidationError` carrying *field-level* messages (one
``{"field", "error"}`` entry per offending field) rather than a raw
traceback. The serve API renders the entries as a 400 body; the CLI
prints them one per line.

``validate_jobspec`` accepts the wire form of one run::

    {
      "app": "mis",                  # registry name or dotted module path
      "variant": "fractal",
      "n_cores": 16,
      "config": {"conflict_mode": "precise", "seed": 3},
      "input": {"scale": 7},         # kwargs for the app's make_input
      "check": true,
      "max_cycles": null,
      "faults": {"task_exception_rate": 0.05},
      "resilience": {"max_attempts": 5},
      "build": {},
      "label": "mis-precise"
    }

and returns a canonical :class:`~repro.farm.job.JobSpec` whose digest is
the job's content address.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Tuple

from ..config import LatencyModel, SystemConfig
from ..errors import ConfigError
from .job import JobSpec

#: top-level keys a JobSpec document may carry
SPEC_KEYS = ("app", "variant", "n_cores", "config", "input", "input_key",
             "check", "max_cycles", "faults", "resilience", "build",
             "label")

#: sections a fault-plan file may carry
FAULT_FILE_KEYS = ("seed", "faults", "resilience")


class SpecValidationError(ConfigError):
    """A JSON document failed validation; ``errors`` lists every field.

    Each entry is ``{"field": "<dotted.path>", "error": "<message>"}`` —
    the exact structure the serve API returns in its 400 response body.
    """

    def __init__(self, errors: List[Dict[str, str]], *,
                 what: str = "job spec", source: Optional[str] = None):
        self.errors = list(errors)
        self.what = what
        self.source = source
        where = f"{what} ({source})" if source else what
        detail = "; ".join(f"{e['field']}: {e['error']}" for e in self.errors)
        super().__init__(f"invalid {where}: {detail}")

    def lines(self) -> List[str]:
        """One human-readable line per field error (CLI rendering)."""
        return [f"{e['field']}: {e['error']}" for e in self.errors]


class _Collector:
    """Accumulates field errors so one pass reports every problem."""

    def __init__(self):
        self.errors: List[Dict[str, str]] = []

    def add(self, field: str, message: str) -> None:
        self.errors.append({"field": field, "error": message})

    def raise_if_any(self, *, what: str, source: Optional[str]) -> None:
        if self.errors:
            raise SpecValidationError(self.errors, what=what, source=source)


def _type_name(v: Any) -> str:
    return type(v).__name__


def _want_str(errs, doc, key, default=None):
    v = doc.get(key, default)
    if v is not None and not isinstance(v, str):
        errs.add(key, f"must be a string, got {_type_name(v)}")
        return default
    return v


def _want_bool(errs, doc, key, default):
    v = doc.get(key, default)
    if not isinstance(v, bool):
        errs.add(key, f"must be a boolean, got {_type_name(v)}")
        return default
    return v


def _want_int(errs, doc, key, default, *, minimum=None, optional=False):
    v = doc.get(key, default)
    if v is None and optional:
        return None
    if isinstance(v, bool) or not isinstance(v, int):
        errs.add(key, f"must be an integer, got {_type_name(v)}")
        return default
    if minimum is not None and v < minimum:
        errs.add(key, f"must be >= {minimum}, got {v}")
        return default
    return v


def _want_dict(errs, doc, key):
    v = doc.get(key)
    if v is None:
        return None
    if not isinstance(v, dict):
        errs.add(key, f"must be an object, got {_type_name(v)}")
        return None
    return v


# ----------------------------------------------------------------------
def _validate_config(errs, overrides: dict,
                     n_cores: int) -> Optional[SystemConfig]:
    """Build a SystemConfig from ``with_cores`` overrides, per-key checked."""
    known = {f.name for f in dataclasses.fields(SystemConfig)}
    known.discard("mesh_dim")           # derived from n_cores
    clean = {}
    for key, value in overrides.items():
        if key not in known:
            errs.add(f"config.{key}", "unknown SystemConfig field")
            continue
        clean[key] = value
    latency = clean.get("latency")
    if latency is not None:
        if not isinstance(latency, dict):
            errs.add("config.latency",
                     f"must be an object, got {_type_name(latency)}")
            clean.pop("latency")
        else:
            lat_known = {f.name for f in dataclasses.fields(LatencyModel)}
            bad = sorted(set(latency) - lat_known)
            for key in bad:
                errs.add(f"config.latency.{key}",
                         "unknown LatencyModel field")
            if bad:
                clean.pop("latency")
            else:
                clean["latency"] = LatencyModel(**latency)
    if errs.errors:
        return None
    try:
        return SystemConfig.with_cores(n_cores, **clean)
    except (ConfigError, TypeError, ValueError) as exc:
        errs.add("config", str(exc))
        return None


def _validate_plan_dict(errs, doc: dict, prefix: str):
    """A FaultPlan from its JSON form, unknown keys reported per key."""
    from ..faults.plan import FaultPlan
    known = {f.name for f in dataclasses.fields(FaultPlan)}
    bad = sorted(set(doc) - known)
    for key in bad:
        errs.add(f"{prefix}.{key}", "unknown FaultPlan field")
    if bad:
        return None
    try:
        return FaultPlan.from_dict(doc)
    except (ConfigError, TypeError) as exc:
        errs.add(prefix, str(exc))
        return None


def _validate_resilience_dict(errs, doc: dict, prefix: str):
    """A ResiliencePolicy from its JSON form, unknown keys per key."""
    from ..faults.resilience import ResiliencePolicy
    known = {f.name for f in dataclasses.fields(ResiliencePolicy)}
    bad = sorted(set(doc) - known)
    for key in bad:
        errs.add(f"{prefix}.{key}", "unknown ResiliencePolicy field")
    if bad:
        return None
    try:
        return ResiliencePolicy.from_dict(doc)
    except (ConfigError, TypeError) as exc:
        errs.add(prefix, str(exc))
        return None


# ----------------------------------------------------------------------
def validate_jobspec(doc: Any, *,
                     source: Optional[str] = None) -> JobSpec:
    """Validate one JobSpec JSON document; returns the canonical spec.

    Raises :class:`SpecValidationError` with **every** field problem
    collected, not just the first.
    """
    if not isinstance(doc, dict):
        raise SpecValidationError(
            [{"field": "", "error": f"job spec must be a JSON object, "
                                    f"got {_type_name(doc)}"}],
            source=source)
    errs = _Collector()
    for key in sorted(set(doc) - set(SPEC_KEYS)):
        errs.add(key, "unknown job-spec field")

    app = doc.get("app")
    variants = None
    module_path = None
    if not isinstance(app, str) or not app:
        errs.add("app", "required and must be a non-empty string")
    else:
        from ..apps.registry import UnknownAppError, resolve_app
        try:
            module_path, variants = resolve_app(app)
        except UnknownAppError as exc:
            errs.add("app", str(exc))

    variant = _want_str(errs, doc, "variant", "fractal")
    if (variant is not None and variants is not None
            and variant not in variants):
        errs.add("variant",
                 f"app {app!r} supports variants {list(variants)}, "
                 f"got {variant!r}")

    n_cores = _want_int(errs, doc, "n_cores", 4, minimum=1)
    check = _want_bool(errs, doc, "check", True)
    max_cycles = _want_int(errs, doc, "max_cycles", None, minimum=1,
                           optional=True)
    label = _want_str(errs, doc, "label", "") or ""
    input_kwargs = _want_dict(errs, doc, "input")
    input_key = _want_str(errs, doc, "input_key")
    build = _want_dict(errs, doc, "build") or {}

    config = None
    cfg_doc = _want_dict(errs, doc, "config")
    if cfg_doc:
        config = _validate_config(errs, cfg_doc, n_cores or 4)

    plan = policy = None
    faults_doc = _want_dict(errs, doc, "faults")
    if faults_doc is not None:
        plan = _validate_plan_dict(errs, faults_doc, "faults")
    res_doc = _want_dict(errs, doc, "resilience")
    if res_doc is not None:
        policy = _validate_resilience_dict(errs, res_doc, "resilience")

    errs.raise_if_any(what="job spec", source=source)
    return JobSpec(app=module_path or app, variant=variant,
                   n_cores=n_cores, config=config,
                   input_kwargs=dict(input_kwargs or {}),
                   input_key=input_key, check=check, max_cycles=max_cycles,
                   fault_plan=plan, resilience=policy,
                   build_options=dict(build), label=label)


def validate_fault_sections(doc: Any, *, source: Optional[str] = None
                            ) -> Tuple[Optional[object], Optional[object]]:
    """Validate a fault-plan file document; returns ``(plan, resilience)``.

    The document holds ``{"seed", "faults", "resilience"}`` (all
    optional; ``seed`` may also live inside ``faults``). Field problems
    raise :class:`SpecValidationError`; the legacy messages the fault
    tests pin ("JSON object", "unknown fault-file sections") are kept.
    """
    if not isinstance(doc, dict):
        raise ConfigError(
            f"fault file {source or '<doc>'} must hold a JSON object")
    unknown = set(doc) - set(FAULT_FILE_KEYS)
    if unknown:
        raise ConfigError(
            f"unknown fault-file sections: {sorted(unknown)}")
    errs = _Collector()
    faults = _want_dict(errs, doc, "faults") or {}
    faults = dict(faults)
    if "seed" in doc:
        seed = _want_int(errs, doc, "seed", 0)
        faults.setdefault("seed", seed)
    plan = _validate_plan_dict(errs, faults, "faults")
    policy = None
    res_doc = _want_dict(errs, doc, "resilience")
    if res_doc is not None:
        policy = _validate_resilience_dict(errs, res_doc, "resilience")
    errs.raise_if_any(what="fault plan", source=source)
    return plan, policy
