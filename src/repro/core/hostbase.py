"""Shared allocation API of execution hosts.

Both the speculative :class:`repro.core.simulator.Simulator` and the
non-speculative :class:`repro.core.serial.SerialExecutor` mix this in, so
applications can build their data structures once and run on either host
(differential testing, serial baselines).

Allocation must happen at build time, **never inside task bodies**: an
aborted attempt would re-allocate on re-execution. Applications that need
dynamic structures pre-allocate pools and manage speculative free indices.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from ..mem.data import SpecArray, SpecCell, SpecDict, SpecQueue


class AllocAPI:
    """Typed-wrapper allocation helpers; hosts provide .space and .memory."""

    def cell(self, name: str, init: Any = 0) -> SpecCell:
        """Allocate a one-word cell initialized to ``init``."""
        region = self.space.alloc(name, 1)
        cell = SpecCell(self.memory, region)
        cell.poke(init)
        return cell

    def array(self, name: str, n: int,
              init: Optional[Iterable[Any]] = None,
              fill: Any = 0) -> SpecArray:
        region = self.space.alloc(name, n)
        arr = SpecArray(self.memory, region, n)
        if init is not None:
            arr.fill(init)
        elif fill != 0:
            arr.fill([fill] * n)
        else:
            # Word default is already 0; nothing to write.
            pass
        return arr

    def dict(self, name: str, capacity: int, stride: int = 1) -> SpecDict:
        region = self.space.alloc(name, capacity * stride)
        return SpecDict(self.memory, region, capacity, stride=stride)

    def queue(self, name: str, capacity: int) -> SpecQueue:
        """Allocate a bounded speculative FIFO."""
        region = self.space.alloc(name, capacity + 2)
        return SpecQueue(self.memory, region, capacity)
