"""Sec. 6.4's negative result: the five remaining Swarm benchmarks (bfs,
sssp, astar, des, nocsim) "already use fine-grain tasks and scale well" —
the paper found no nested parallelism to add.

This bench runs all five on 1..N cores and checks that each speeds up
without any Fractal features (single-level ordered domains only).
"""

from _common import core_counts, emit, once, run_once
from repro.apps import astar, bfs, des, nocsim, sssp
from repro.bench.report import format_table

SUITE = [
    ("bfs", bfs, dict(scale=8, edge_factor=4)),
    ("sssp", sssp, dict(scale=8, edge_factor=4)),
    ("astar", astar, dict(width=28, height=28)),
    ("des", des, dict(n_gates=64, n_toggles=48)),
    ("nocsim", nocsim, dict(mesh=5, n_packets=48)),
]


def sweep(cores, suite=SUITE, tag=""):
    rows = []
    results = {}
    for name, app, params in suite:
        inp = app.make_input(**params)
        base = None
        row = [name]
        for n in cores:
            run = run_once(app, inp, "swarm", n)
            results[(name, n)] = run
            if base is None:
                base = run.makespan
            row.append(f"{base / run.makespan:.2f}x")
        rows.append(row)
    emit(f"swarm_suite_scaling{tag}",
         format_table(["app"] + [f"{n}c" for n in cores], rows))
    return results


def bench_swarm_suite_graph_kernels(benchmark):
    cores = core_counts(quick=True)
    results = once(benchmark, lambda: sweep(cores, SUITE[:3], tag="_graph"))
    top = max(cores)
    for name in ("bfs", "sssp"):
        assert (results[(name, top)].makespan
                < results[(name, 1)].makespan), name


def bench_swarm_suite_simulators(benchmark):
    cores = core_counts(quick=True)
    results = once(benchmark, lambda: sweep(cores, SUITE[3:], tag="_sims"))
    top = max(cores)
    for name in ("des", "nocsim"):
        assert results[(name, top)].stats.tasks_committed > 0


if __name__ == "__main__":
    sweep(core_counts())
