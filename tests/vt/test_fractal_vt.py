"""Tests for fractal VT construction and comparison (paper Sec. 4.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import VTBudgetExceeded, VTError
from repro.vt import DomainVT, FractalVT, Ordering, Tiebreaker, TiebreakerAllocator


def tb(cycle, tile=0):
    alloc = TiebreakerAllocator(width=32, tile_bits=8)
    return alloc.alloc(cycle, tile)


def dvt(ordering=Ordering.UNORDERED, ts=0, cycle=1, tile=0):
    return DomainVT(ordering, ts if ordering.is_ordered else 0,
                    tb(cycle, tile))


class TestDomainVT:
    def test_bits_match_figure_10(self):
        assert dvt(Ordering.UNORDERED).bits == 32
        assert dvt(Ordering.ORDERED_32, ts=5).bits == 64
        assert dvt(Ordering.ORDERED_64, ts=5).bits == 96

    def test_unordered_cannot_carry_timestamp(self):
        with pytest.raises(VTError):
            DomainVT(Ordering.UNORDERED, 3, tb(1))

    def test_key_orders_timestamp_before_tiebreaker(self):
        early = DomainVT(Ordering.ORDERED_32, 1, tb(100))
        late = DomainVT(Ordering.ORDERED_32, 2, tb(1))
        assert early.key() < late.key()


class TestFractalVTOrdering:
    def test_paper_figure_12_order(self):
        """B (45:2) < F (45:2 | 1,51:4) < G (45:2 | 2,71:5) < M (78:6 | ...)."""
        b = FractalVT([dvt(cycle=45, tile=2)])
        f = FractalVT([dvt(cycle=45, tile=2),
                       DomainVT(Ordering.ORDERED_64, 1, tb(51, 4))])
        g = FractalVT([dvt(cycle=45, tile=2),
                       DomainVT(Ordering.ORDERED_64, 2, tb(71, 5))])
        m = FractalVT([dvt(cycle=78, tile=6), dvt(cycle=80, tile=0)])
        assert b < f < g < m

    def test_creator_precedes_its_subdomain(self):
        creator = FractalVT([dvt(cycle=10)])
        child = creator.child_subdomain(dvt(cycle=11))
        assert creator < child
        assert creator.is_prefix_of(child)

    def test_whole_subdomain_precedes_later_outside_task(self):
        creator = FractalVT([dvt(cycle=10)])
        later = FractalVT([dvt(cycle=20)])
        deep = creator.child_subdomain(dvt(cycle=999))
        deeper = deep.child_subdomain(dvt(cycle=10**6))
        assert creator < deep < deeper < later

    def test_same_domain_child_replaces_last(self):
        parent = FractalVT([dvt(cycle=5), dvt(cycle=6)])
        child = parent.child_same_domain(dvt(cycle=9))
        assert child.depth == parent.depth
        assert parent < child

    def test_superdomain_child_drops_two(self):
        vt = FractalVT([dvt(cycle=1), dvt(cycle=2), dvt(cycle=3)])
        child = vt.child_superdomain(dvt(cycle=9))
        assert child.depth == 2

    def test_superdomain_from_root_fails(self):
        with pytest.raises(VTError):
            FractalVT([dvt(cycle=1)]).child_superdomain(dvt(cycle=2))

    def test_shares_domain_with(self):
        a = FractalVT([dvt(cycle=1), dvt(cycle=2)])
        b = a.child_same_domain(dvt(cycle=3))
        c = a.child_subdomain(dvt(cycle=4))
        assert a.shares_domain_with(b)
        assert not a.shares_domain_with(c)


class TestBudget:
    def test_bits_accumulate(self):
        vt = FractalVT([dvt(Ordering.ORDERED_64, ts=1),
                        dvt(Ordering.UNORDERED)])
        assert vt.bits == 96 + 32

    def test_budget_enforced(self):
        vt = FractalVT([dvt() for _ in range(4)])  # 128 bits
        assert vt.fits(128)
        with pytest.raises(VTBudgetExceeded):
            vt.child_subdomain(dvt()).check_budget(128)

    def test_empty_vt_rejected(self):
        with pytest.raises(VTError):
            FractalVT([])


class TestZoomShifts:
    def test_drop_base_preserves_relative_order(self):
        base = dvt(cycle=7)
        a = FractalVT([base, dvt(cycle=10), dvt(cycle=1)])
        b = FractalVT([base, dvt(cycle=10), dvt(cycle=2)])
        c = FractalVT([base, dvt(cycle=11)])
        assert (a < b) == (a.drop_base() < b.drop_base())
        assert (a < c) == (a.drop_base() < c.drop_base())

    def test_with_base_inverts_drop_base(self):
        base = dvt(cycle=7)
        vt = FractalVT([base, dvt(cycle=10)])
        assert vt.drop_base().with_base(base) == vt

    def test_restored_zero_tiebreaker_sorts_before_real(self):
        restored = DomainVT(Ordering.UNORDERED, 0, Tiebreaker(raw=0))
        spilled = dvt(cycle=78, tile=6)
        inner = FractalVT([restored, dvt(cycle=50)])
        outer = FractalVT([spilled])
        assert inner < outer

    def test_cannot_drop_only_domain(self):
        with pytest.raises(VTError):
            FractalVT([dvt()]).drop_base()


# --- property-based: lexicographic order is a strict total order ---------

_dvt_strategy = st.tuples(
    st.sampled_from([Ordering.UNORDERED, Ordering.ORDERED_32]),
    st.integers(min_value=0, max_value=7),
    st.integers(min_value=1, max_value=200),
    st.integers(min_value=0, max_value=3),
).map(lambda t: DomainVT(t[0], t[1] if t[0].is_ordered else 0,
                         Tiebreaker(raw=(t[2] << 8) | t[3],
                                    cycle=t[2], tile=t[3])))

_vt_strategy = st.lists(_dvt_strategy, min_size=1, max_size=4).map(FractalVT)


@given(_vt_strategy, _vt_strategy, _vt_strategy)
def test_total_order_properties(a, b, c):
    assert (a < b) or (b < a) or (a.key() == b.key())
    if a < b and b < c:
        assert a < c
    assert not (a < a)


@given(_vt_strategy, _dvt_strategy)
def test_children_sort_after_parent(parent, child_dvt):
    assert parent < parent.child_subdomain(child_dvt)


@given(_vt_strategy, _vt_strategy, _dvt_strategy)
def test_drop_base_monotone(a, b, extra):
    """Dropping a shared base preserves strict order."""
    base = extra
    wa, wb = a.with_base(base), b.with_base(base)
    assert (wa < wb) == (a < b)
