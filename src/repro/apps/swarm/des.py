"""Swarm des: discrete-event digital logic simulation.

The classic ordered-speculation workload (and the original motivation for
timestamped task models): gate evaluation events carry virtual times, and
each event task reads its gate's input wires, computes the output, and —
when the output changes — writes the output wire and enqueues evaluation
events for the fanout gates after the gate's propagation delay.

The circuit is a random DAG of NAND gates driven by a schedule of input
toggles; the checker replays the same schedule on a plain-Python
event-driven simulator and compares every wire.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ...errors import AppError
from ...vt import Ordering
from ..common import require_variant


@dataclass
class Circuit:
    n_inputs: int
    n_gates: int
    gate_inputs: List[Tuple[int, int]]   # wire ids feeding each gate
    gate_delay: List[int]
    fanout: List[List[int]]              # wire id -> gate ids it feeds
    toggles: List[Tuple[int, int]]       # (time, input wire)
    horizon: int

    @property
    def n_wires(self) -> int:
        return self.n_inputs + self.n_gates

    def gate_wire(self, g: int) -> int:
        return self.n_inputs + g


def make_input(n_inputs: int = 6, n_gates: int = 40, n_toggles: int = 24,
               seed: int = 24) -> Circuit:
    rng = random.Random(seed)
    gate_inputs = []
    gate_delay = []
    for g in range(n_gates):
        avail = n_inputs + g  # DAG: only earlier wires can feed gate g
        a = rng.randrange(avail)
        b = rng.randrange(avail)
        gate_inputs.append((a, b))
        gate_delay.append(rng.randint(1, 4))
    fanout: List[List[int]] = [[] for _ in range(n_inputs + n_gates)]
    for g, (a, b) in enumerate(gate_inputs):
        fanout[a].append(g)
        if b != a:
            fanout[b].append(g)
    horizon = 200
    toggles = sorted((rng.randrange(1, horizon // 2), rng.randrange(n_inputs))
                     for _ in range(n_toggles))
    return Circuit(n_inputs, n_gates, gate_inputs, gate_delay, fanout,
                   toggles, horizon)


def _ts(t: int, gate: int = -1) -> int:
    """Deterministic event timestamps: toggles at slot 0 of each time
    step, gate evaluations tie-broken by gate id (gate ids respect the
    DAG, so same-time evaluations order consistently)."""
    return t * 64 + gate + 1


def reference(circuit: Circuit) -> List[int]:
    """Plain event-driven replay with the same timestamps; returns final
    wire values."""
    import heapq

    wires = [0] * circuit.n_wires
    events = [(_ts(t), "toggle", w) for (t, w) in circuit.toggles]
    heapq.heapify(events)
    while events:
        ts, kind, x = heapq.heappop(events)
        t = ts // 64
        if kind == "toggle":
            wires[x] ^= 1
            targets = circuit.fanout[x]
        else:
            a, b = circuit.gate_inputs[x]
            out = 1 - (wires[a] & wires[b])
            wire = circuit.gate_wire(x)
            if wires[wire] == out:
                continue
            wires[wire] = out
            targets = circuit.fanout[wire]
        for g in targets:
            heapq.heappush(events,
                           (_ts(t + circuit.gate_delay[g], g), "eval", g))
    return wires


def build(host, circuit: Circuit, variant: str = "swarm") -> Dict:
    require_variant(variant, ("swarm",))
    wires = host.array("des.wires", circuit.n_wires * 8)

    def evaluate(ctx, g, t):
        a, b = circuit.gate_inputs[g]
        va = wires.get(ctx, a * 8)
        vb = wires.get(ctx, b * 8)
        out = 1 - (va & vb)
        wire = circuit.gate_wire(g)
        if wires.get(ctx, wire * 8) == out:
            return
        wires.set(ctx, wire * 8, out)
        ctx.compute(8)
        for tg in circuit.fanout[wire]:
            t2 = t + circuit.gate_delay[tg]
            ctx.enqueue(evaluate, tg, t2, ts=_ts(t2, tg), hint=tg,
                        label="eval")

    def toggle(ctx, w, t):
        wires.set(ctx, w * 8, 1 - wires.get(ctx, w * 8))
        for tg in circuit.fanout[w]:
            t2 = t + circuit.gate_delay[tg]
            ctx.enqueue(evaluate, tg, t2, ts=_ts(t2, tg), hint=tg,
                        label="eval")

    for (t, w) in circuit.toggles:
        host.enqueue_root(toggle, w, t, ts=_ts(t), hint=w, label="toggle")
    return {"wires": wires, "circuit": circuit}


def root_ordering(variant: str) -> Ordering:
    return Ordering.ORDERED_32


def check(handles: Dict, circuit: Circuit) -> None:
    want = reference(circuit)
    for w in range(circuit.n_wires):
        got = handles["wires"].peek(w * 8)
        if got != want[w]:
            raise AppError(f"wire {w}: {got}, reference {want[w]}")
