"""Validation and error-path tests for the task-facing API."""

import pytest

from repro import Ordering, Simulator, SystemConfig
from repro.errors import (DomainError, FractalError, TaskExecutionError,
                          TimestampError)


def collect_error(sim, body):
    """Run `body(ctx)` in a root task, returning the exception it raised."""
    box = []

    def t(ctx):
        try:
            body(ctx)
        except FractalError as e:
            box.append(e)

    sim.enqueue_root(t)
    sim.run()
    return box[0] if box else None


@pytest.fixture
def sim(make_sim):
    return make_sim(4)


class TestComputeAndAccess:
    def test_negative_compute_rejected(self, sim):
        err = collect_error(sim, lambda ctx: ctx.compute(-1))
        assert err is not None

    def test_zero_compute_ok(self, sim):
        assert collect_error(sim, lambda ctx: ctx.compute(0)) is None

    def test_timestamp_none_in_unordered(self, sim):
        seen = []
        sim.enqueue_root(lambda ctx: seen.append(ctx.timestamp))
        sim.run()
        assert seen == [None]

    def test_hint_visible(self, make_sim):
        sim = make_sim(4)
        seen = []
        sim.enqueue_root(lambda ctx: seen.append(ctx.hint), hint=99)
        sim.run()
        assert seen == [99]


class TestEnqueueValidation:
    def test_unordered_enqueue_rejects_ts(self, sim):
        err = collect_error(
            sim, lambda ctx: ctx.enqueue(lambda c: None, ts=3))
        assert isinstance(err, TimestampError)

    def test_subdomain_ordering_type_checked(self, sim):
        err = collect_error(
            sim, lambda ctx: ctx.create_subdomain("ordered"))
        assert isinstance(err, DomainError)

    def test_ordered_sub_requires_ts(self, sim):
        def body(ctx):
            ctx.create_subdomain(Ordering.ORDERED_32)
            ctx.enqueue_sub(lambda c: None)

        assert isinstance(collect_error(sim, body), TimestampError)

    def test_unordered_sub_rejects_ts(self, sim):
        def body(ctx):
            ctx.create_subdomain(Ordering.UNORDERED)
            ctx.enqueue_sub(lambda c: None, ts=1)

        assert isinstance(collect_error(sim, body), TimestampError)

    def test_ts_out_of_32bit_range(self, make_sim):
        sim = make_sim(4, root_ordering=Ordering.ORDERED_32)
        with pytest.raises(TimestampError):
            sim.enqueue_root(lambda ctx: None, ts=2 ** 32)

    def test_64bit_root_accepts_wide_ts(self, make_sim):
        sim = make_sim(4, root_ordering=Ordering.ORDERED_64)
        sim.enqueue_root(lambda ctx: None, ts=2 ** 40)
        stats = sim.run()
        assert stats.tasks_committed == 1

    def test_super_ts_before_creator_rejected(self, make_sim):
        sim = make_sim(4, root_ordering=Ordering.ORDERED_32)
        errors = []

        def inner(ctx):
            try:
                ctx.enqueue_super(lambda c: None, ts=1)
            except DomainError as e:
                errors.append(e)

        def outer(ctx):
            ctx.create_subdomain(Ordering.UNORDERED)
            ctx.enqueue_sub(inner)

        sim.enqueue_root(outer, ts=5)
        sim.run()
        assert errors  # ts 1 precedes the creator's ts 5


class TestExceptionHygiene:
    def test_app_exceptions_propagate(self, sim):
        # App-code exceptions surface as TaskExecutionError with the
        # original exception chained, after a clean speculative rollback.
        class Boom(Exception):
            pass

        def t(ctx):
            raise Boom("app bug")

        task = sim.enqueue_root(t)
        with pytest.raises(TaskExecutionError) as exc_info:
            sim.run()
        assert isinstance(exc_info.value.__cause__, Boom)
        assert exc_info.value.tid == task.tid
        assert exc_info.value.attempt == 1
        # the failed attempt was rolled back, not left mid-flight
        sim.memory.assert_quiescent()

    def test_labels_default_to_function_name(self, sim):
        def my_named_task(ctx):
            pass

        task = sim.enqueue_root(my_named_task)
        assert task.label == "my_named_task"
        sim.run()
