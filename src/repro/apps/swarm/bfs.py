"""Swarm bfs: breadth-first search with timestamp = BFS level.

The canonical Swarm kernel: one tiny task per (node, level) candidate;
the task claims its node's distance word and blindly enqueues its
neighbours at the next level (duplicates detect themselves on their own
node — the same discipline maxflow's nested global relabel uses).
"""

from __future__ import annotations

from typing import Dict

from ...errors import AppError
from ...graphs import Graph, rmat
from ...vt import Ordering
from ..common import require_variant

UNREACHED = -1


def make_input(scale: int = 7, edge_factor: int = 4, seed: int = 21) -> Graph:
    return rmat(scale, edge_factor, seed=seed)


def build(host, g: Graph, variant: str = "swarm", source: int = 0) -> Dict:
    require_variant(variant, ("swarm",))
    dist = host.array("bfs.dist", g.n * 8, fill=UNREACHED)
    adj = [tuple(g.neighbors(v)) for v in range(g.n)]

    def visit(ctx, v, level):
        if dist.get(ctx, v * 8) != UNREACHED:
            return
        dist.set(ctx, v * 8, level)
        ctx.compute(4)
        for ngh in adj[v]:
            ctx.enqueue(visit, ngh, level + 1, ts=level + 1, hint=ngh,
                        label="visit")

    host.enqueue_root(visit, source, 0, ts=0, hint=source, label="visit")
    return {"dist": dist, "graph": g, "source": source}


def root_ordering(variant: str) -> Ordering:
    return Ordering.ORDERED_32


def check(handles: Dict, g: Graph) -> int:
    """Distances must equal networkx's BFS levels; returns reached count."""
    import networkx as nx

    source = handles["source"]
    want = nx.single_source_shortest_path_length(g.to_networkx(), source)
    reached = 0
    for v in range(g.n):
        got = handles["dist"].peek(v * 8)
        if v in want:
            reached += 1
            if got != want[v]:
                raise AppError(f"dist[{v}] = {got}, expected {want[v]}")
        elif got != UNREACHED:
            raise AppError(f"unreachable node {v} got distance {got}")
    return reached
