"""JSONL event-log validation against :data:`EVENT_SCHEMA`.

Run as a module (the CI smoke job does)::

    python -m repro.telemetry.validate trace.jsonl

Exit code 0 = every line is a well-formed event of a known kind with all
required fields and a non-negative integer timestamp; 1 = first violation
is printed to stderr.
"""

from __future__ import annotations

import json
import sys
from typing import List, Optional

from .events import EVENT_SCHEMA


class ValidationError(ValueError):
    """A JSONL line that is not a schema-conforming event."""


def validate_event_dict(d: dict) -> None:
    """Raise :class:`ValidationError` unless ``d`` is a valid event."""
    kind = d.get("kind")
    if kind not in EVENT_SCHEMA:
        raise ValidationError(f"unknown event kind {kind!r}")
    missing = [f for f in EVENT_SCHEMA[kind] if f not in d]
    if missing:
        raise ValidationError(f"{kind} event missing fields {missing}")
    t = d.get("t")
    if not isinstance(t, int) or isinstance(t, bool) or t < 0:
        raise ValidationError(f"{kind} event has bad timestamp t={t!r}")


def validate_jsonl(path) -> int:
    """Validate a JSONL event log; returns the number of valid events."""
    n = 0
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                d = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValidationError(f"line {lineno}: not JSON ({exc})")
            if not isinstance(d, dict):
                raise ValidationError(f"line {lineno}: not an object")
            try:
                validate_event_dict(d)
            except ValidationError as exc:
                raise ValidationError(f"line {lineno}: {exc}")
            n += 1
    if n == 0:
        raise ValidationError(f"{path}: no events")
    return n


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.telemetry.validate <trace.jsonl>",
              file=sys.stderr)
        return 2
    try:
        n = validate_jsonl(argv[0])
    except (OSError, ValidationError) as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    print(f"OK: {n} events conform to the schema")
    return 0


if __name__ == "__main__":
    sys.exit(main())
