"""Fault plans: seeded, deterministic descriptions of what to inject.

A :class:`FaultPlan` names injection *sites* and per-site rates. Decisions
are not drawn from a shared RNG stream — each one is a pure hash of
``(seed, site, tid, attempt, draw)``, so the same plan produces the same
injections on the same workload regardless of how unrelated code perturbs
any global RNG, and two identical runs are byte-identical (the
determinism contract the fault tests assert).

Plans are JSON round-trippable; :func:`load_fault_file` reads the on-disk
form, which may carry a sibling ``resilience`` section (see
:class:`repro.faults.resilience.ResiliencePolicy`)::

    {
      "seed": 7,
      "faults": {"task_exception_rate": 0.05, "conflict_rate": 0.01},
      "resilience": {"max_attempts": 5}
    }
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import ConfigError

#: injection sites a plan can target
SITES = ("task_exception", "conflict", "slow_task", "queue_squeeze")


class InjectedFault(Exception):
    """A transient, injected task failure.

    Deliberately *not* a :class:`repro.errors.FractalError`: it takes the
    same path through the simulator as any exception raised by application
    code inside a task body, which is exactly the path it exists to test.
    """

    def __init__(self, site: str, tid: int, attempt: int):
        super().__init__(f"injected {site} fault (task {tid}, "
                         f"attempt {attempt})")
        self.site = site
        self.tid = tid
        self.attempt = attempt


def _mix64(x: int) -> int:
    """SplitMix64 finalizer (same mixer the hint scheduler uses)."""
    x &= 0xFFFFFFFFFFFFFFFF
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
    x = (x ^ (x >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


def hash01(seed: int, site: int, a: int, b: int, c: int = 0) -> float:
    """Deterministic uniform draw in [0, 1) for one injection decision."""
    h = _mix64(seed * 0x9E3779B97F4A7C15 + site)
    h = _mix64(h ^ _mix64(a + 0xD1B54A32D192ED03))
    h = _mix64(h ^ _mix64(b + 0x8CB92BA72F3D8DD7))
    if c:
        h = _mix64(h ^ _mix64(c))
    return (h >> 11) / float(1 << 53)


@dataclass(frozen=True)
class FaultPlan:
    """What to inject, where, and how often (all rates in [0, 1])."""

    seed: int = 0
    #: probability a task attempt raises a transient InjectedFault
    task_exception_rate: float = 0.0
    #: probability a speculative access is treated as a forced conflict
    #: (aborts the accessor, exercising the retry path)
    conflict_rate: float = 0.0
    #: probability a finished attempt's duration is stretched
    slow_task_rate: float = 0.0
    #: multiplier applied to a stretched attempt's duration
    slow_task_factor: int = 20
    #: scale factor applied to task/commit queue capacities (< 1 squeezes)
    queue_capacity_factor: float = 1.0
    #: total injection budget across all sites (0 = unlimited)
    max_injections: int = 0
    #: restrict injection to tasks with these labels (None = all tasks)
    labels: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        for name in ("task_exception_rate", "conflict_rate",
                     "slow_task_rate"):
            rate = getattr(self, name)
            if not (0.0 <= rate <= 1.0):
                raise ConfigError(f"{name} must be in [0, 1], got {rate}")
        if self.slow_task_factor < 1:
            raise ConfigError("slow_task_factor must be >= 1")
        if not (0.0 < self.queue_capacity_factor <= 1.0):
            raise ConfigError(
                "queue_capacity_factor must be in (0, 1], got "
                f"{self.queue_capacity_factor}")
        if self.max_injections < 0:
            raise ConfigError("max_injections must be >= 0")
        if self.labels is not None and not isinstance(self.labels, tuple):
            object.__setattr__(self, "labels", tuple(self.labels))

    @property
    def injects_anything(self) -> bool:
        """True when any injection site is active."""
        return bool(self.task_exception_rate or self.conflict_rate
                    or self.slow_task_rate
                    or self.queue_capacity_factor < 1.0)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe form (``labels`` as a list)."""
        d = dataclasses.asdict(self)
        if d["labels"] is not None:
            d["labels"] = list(d["labels"])
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict`; unknown keys are an error."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ConfigError(f"unknown FaultPlan keys: {sorted(unknown)}")
        kwargs = dict(d)
        if kwargs.get("labels") is not None:
            kwargs["labels"] = tuple(kwargs["labels"])
        return cls(**kwargs)


def load_fault_file(path) -> Tuple[FaultPlan, Optional["ResiliencePolicy"]]:
    """Read a fault-plan JSON file; returns ``(plan, resilience-or-None)``.

    The file holds ``{"seed": ..., "faults": {...}, "resilience": {...}}``;
    ``seed`` may also live inside ``faults``, and both sections are
    optional (an empty file is a no-op plan). Malformed documents raise
    the shared validator's field-level
    :class:`~repro.farm.validate.SpecValidationError` (a
    :class:`~repro.errors.ConfigError`), never a raw traceback.
    """
    from ..farm.validate import validate_fault_sections
    with open(path) as fh:
        try:
            doc = json.load(fh)
        except ValueError as exc:
            raise ConfigError(f"fault file {path}: invalid JSON: {exc}")
    return validate_fault_sections(doc, source=str(path))
