"""Coordinator crash recovery: journal replay, lease restoration,
exactly-once across restarts, cache refill, compaction.

Every test "crashes" a coordinator by abandoning it without ``stop()``
— exactly what SIGKILL leaves behind: whatever the journal's synced
batches put on disk, and nothing else. A second coordinator is then
built on the same journal directory and must carry on as if the crash
never happened. All timing goes through the injected fake clock; the
reaper thread is never started.
"""

import json
import os

import pytest

from repro.core.stats import RunStats
from repro.farm import ResultCache
from repro.farm.dist.coordinator import (DONE, LEASED, PENDING, Coordinator,
                                         CoordinatorConfig)
from repro.farm.dist.journal import WAL_NAME, read_journal, resume

FAKEAPP = "tests.farm._fakeapp"


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, s):
        self.now += s


def job_docs(n=6):
    return [{"app": FAKEAPP, "n_cores": 1,
             "input": {"n_tasks": 2 + i}} for i in range(n)]


def make_coord(journal_dir, *, ttl=10.0, fragments=3, cache=None,
               clock=None, snapshot_every=2048):
    cfg = CoordinatorConfig(lease_ttl_s=ttl, heartbeat_interval_s=ttl / 4,
                            fragments=fragments, cache_dir=None,
                            journal_dir=str(journal_dir),
                            journal_fsync=False,
                            journal_snapshot_every=snapshot_every)
    return Coordinator(cfg, cache=cache, clock=clock or FakeClock())


def fake_stats(i=0):
    return RunStats(name=f"job{i}", makespan=100 + i).to_dict()


def deliver_doc(coord, sweep_id, fragment, agent="w1", epoch=0):
    sweep = coord.sweep(sweep_id)
    frag = sweep.fragments[fragment]
    return {"agent": agent, "sweep": sweep_id, "fragment": fragment,
            "epoch": epoch,
            "results": [{"index": i,
                         "digest": sweep.specs[i].digest(),
                         "stats": fake_stats(i)}
                        for i in frag.indices]}


def run_to_partial(journal_dir, *, clock=None):
    """Submit, register, lease everything, deliver ONE fragment, crash.
    Returns (sweep_id, delivered_fragment_id, leases)."""
    coord = make_coord(journal_dir, clock=clock)
    sweep_id = coord.submit_sweep({"jobs": job_docs()})["id"]
    agent = coord.register_agent({"agent": "w1"})["agent"]
    leases = coord.acquire(agent, {"max_fragments": 8})["leases"]
    first = leases[0]
    coord.deliver(first["lease"],
                  deliver_doc(coord, sweep_id, first["fragment"]))
    return sweep_id, first["fragment"], leases


class TestReplay:
    def test_fresh_journal_dir_is_not_a_recovery(self, tmp_path):
        coord = make_coord(tmp_path)
        assert coord.recovery["recovered"] is False
        assert coord.summary()["journal"]["dir"] == str(tmp_path)

    def test_records_and_sweeps_survive_restart(self, tmp_path):
        sweep_id, done_frag, _ = run_to_partial(tmp_path)
        coord2 = make_coord(tmp_path)
        rec = coord2.recovery
        assert rec["recovered"] is True
        assert rec["resumed_sweeps"] == 1
        assert rec["replayed_records"] > 0
        sweep = coord2.sweep(sweep_id)
        for i in sweep.fragments[done_frag].indices:
            assert sweep.records[i]["stats"] == fake_stats(i)
        assert sweep.fragments[done_frag].state == DONE
        assert not sweep.complete

    def test_restart_of_a_restart_is_stable(self, tmp_path):
        sweep_id, _, _ = run_to_partial(tmp_path)
        make_coord(tmp_path)                 # first recovery, abandoned
        coord3 = make_coord(tmp_path)        # second recovery
        assert coord3.recovery["recovered"] is True
        assert coord3.sweep(sweep_id).n_recorded \
            == len(coord3.sweep(sweep_id).records) \
            - sum(1 for r in coord3.sweep(sweep_id).records if r is None)

    def test_live_leases_restored_with_fresh_ttl(self, tmp_path):
        sweep_id, done_frag, leases = run_to_partial(tmp_path)
        clock = FakeClock()
        coord2 = make_coord(tmp_path, clock=clock)
        assert coord2.recovery["leases_restored"] == len(leases) - 1
        sweep = coord2.sweep(sweep_id)
        live = [f for f in sweep.fragments.values() if f.id != done_frag]
        assert all(f.state == LEASED for f in live)
        # fresh deadline: the reconnect grace window spans a full TTL
        clock.advance(9.0)
        assert coord2.reap() == 0
        clock.advance(2.0)
        assert coord2.reap() == len(live)
        assert all(f.state == PENDING and f.epoch == 1 for f in live)

    def test_restored_lease_accepts_the_agents_delivery(self, tmp_path):
        sweep_id, done_frag, leases = run_to_partial(tmp_path)
        coord2 = make_coord(tmp_path)
        # the agent never noticed the restart: it delivers on the lease
        # it was granted pre-crash
        for lease in leases[1:]:
            doc = coord2.deliver(
                lease["lease"],
                deliver_doc(coord2, sweep_id, lease["fragment"]))
            assert doc["accepted"] > 0
        assert coord2.sweep(sweep_id).complete

    def test_duplicate_delivery_suppressed_across_restart(self, tmp_path):
        sweep_id, done_frag, leases = run_to_partial(tmp_path)
        coord2 = make_coord(tmp_path)
        # exactly-once survived the crash: re-delivering the recorded
        # fragment only counts duplicates
        doc = coord2.deliver(leases[0]["lease"],
                             deliver_doc(coord2, sweep_id, done_frag))
        assert doc["accepted"] == 0
        assert doc["duplicates"] > 0
        snap = coord2.metrics_snapshot()
        assert sum(c["value"] for c in snap["counters"]
                   if c["name"] == "dist.duplicates_suppressed") > 0
        assert sum(c["value"] for c in snap["counters"]
                   if c["name"] == "dist.result_mismatch") == 0

    def test_recovered_completion_matches_uninterrupted_run(
            self, tmp_path):
        # uninterrupted reference
        ref = make_coord(tmp_path / "ref")
        ref_id = ref.submit_sweep({"jobs": job_docs()})["id"]
        agent = ref.register_agent({"agent": "w1"})["agent"]
        for lease in ref.acquire(agent, {"max_fragments": 8})["leases"]:
            ref.deliver(lease["lease"],
                        deliver_doc(ref, ref_id, lease["fragment"]))
        ref_results = ref.sweep_results(ref_id)
        # crashed-and-recovered run of the same sweep
        sweep_id, _, leases = run_to_partial(tmp_path / "crash")
        coord2 = make_coord(tmp_path / "crash")
        for lease in leases[1:]:
            coord2.deliver(lease["lease"],
                           deliver_doc(coord2, sweep_id, lease["fragment"]))
        got = coord2.sweep_results(sweep_id)
        assert got["complete"] and ref_results["complete"]
        strip = ("agent", "epoch")      # provenance may legally differ
        assert json.dumps(
            [{k: v for k, v in r.items() if k not in strip}
             for r in got["results"]], sort_keys=True) \
            == json.dumps(
            [{k: v for k, v in r.items() if k not in strip}
             for r in ref_results["results"]], sort_keys=True)


class TestLostAgents:
    def test_lease_of_a_lost_agent_is_requeued_on_replay(self, tmp_path):
        sweep_id, done_frag, leases = run_to_partial(tmp_path)
        # the crash window ate the expire batch but the agent_lost
        # record survived: append one by hand and replay the prefix
        writer, replay = resume(str(tmp_path), fsync=False)
        writer.append("agent_lost", {"agent": "w1"})
        writer.close()
        coord2 = make_coord(tmp_path)
        sweep = coord2.sweep(sweep_id)
        for lease in leases[1:]:
            frag = sweep.fragments[lease["fragment"]]
            assert frag.state == PENDING
            assert frag.epoch == 1          # distinguishable from zombie
            assert frag.lease is None
        assert not coord2._leases

    def test_expire_records_replay_the_requeue(self, tmp_path):
        clock = FakeClock()
        sweep_id, done_frag, leases = run_to_partial(tmp_path,
                                                     clock=clock)
        # ... the first coordinator reaped before dying
        coord1_wal = read_journal(str(tmp_path))
        n_before = len(coord1_wal.records)
        clock.advance(11.0)
        # rebuild a handle on the abandoned coordinator's journal via a
        # fresh instance, expire there, and check a third replayer
        coord2 = make_coord(tmp_path, clock=clock)
        clock.advance(11.0)
        assert coord2.reap() > 0
        coord3 = make_coord(tmp_path, clock=FakeClock())
        sweep = coord3.sweep(sweep_id)
        for lease in leases[1:]:
            frag = sweep.fragments[lease["fragment"]]
            assert frag.state == PENDING and frag.epoch >= 1


class TestCacheRefill:
    def test_unrecorded_jobs_found_in_cache_are_refilled(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        coord1 = make_coord(tmp_path / "j1", cache=cache)
        sweep_id = coord1.submit_sweep({"jobs": job_docs()})["id"]
        agent = coord1.register_agent({"agent": "w1"})["agent"]
        for lease in coord1.acquire(agent, {"max_fragments": 8})["leases"]:
            coord1.deliver(lease["lease"],
                           deliver_doc(coord1, sweep_id, lease["fragment"]))
        sweep1 = coord1.sweep(sweep_id)
        # a second cluster sharing the cache lost everything but the
        # sweep submission record
        writer = resume(str(tmp_path / "j2"), fsync=False)[0]
        writer.append("sweep", {"id": sweep_id, "jobs": job_docs(),
                                "n_fragments": sweep1.n_fragments,
                                "label": ""})
        writer.close()
        coord2 = make_coord(tmp_path / "j2", cache=cache)
        assert coord2.recovery["cache_refills"] == len(job_docs())
        sweep2 = coord2.sweep(sweep_id)
        assert sweep2.complete
        assert all(f.state == DONE for f in sweep2.fragments.values())
        assert all(r["agent"] == "cache" and r["cached"]
                   for r in sweep2.records)
        # and the refills were themselves journaled: a third restart
        # recovers them even with the cache gone
        coord3 = make_coord(tmp_path / "j2", cache=None)
        assert coord3.sweep(sweep_id).complete


class TestCompaction:
    def test_snapshot_every_append_still_recovers(self, tmp_path):
        coord1 = make_coord(tmp_path, snapshot_every=1)
        sweep_id = coord1.submit_sweep({"jobs": job_docs()})["id"]
        agent = coord1.register_agent({"agent": "w1"})["agent"]
        leases = coord1.acquire(agent, {"max_fragments": 8})["leases"]
        coord1.deliver(leases[0]["lease"],
                       deliver_doc(coord1, sweep_id, leases[0]["fragment"]))
        assert coord1._journal.n_snapshots >= 1
        coord2 = make_coord(tmp_path, snapshot_every=1)
        assert coord2.recovery["recovered"] is True
        assert coord2.recovery["snapshot_seq"] > 0
        sweep = coord2.sweep(sweep_id)
        frag0 = sweep.fragments[leases[0]["fragment"]]
        assert frag0.state == DONE
        for lease in leases[1:]:
            coord2.deliver(lease["lease"],
                           deliver_doc(coord2, sweep_id, lease["fragment"]))
        assert coord2.sweep(sweep_id).complete


class TestTornTail:
    def test_garbage_tail_is_flagged_and_survived(self, tmp_path):
        sweep_id, done_frag, _ = run_to_partial(tmp_path)
        with open(os.path.join(str(tmp_path), WAL_NAME), "ab") as fh:
            fh.write(b"\x00\x01 torn mid-append")
        coord2 = make_coord(tmp_path)
        assert coord2.recovery["recovered"] is True
        assert coord2.recovery["truncated_tail"] is True
        sweep = coord2.sweep(sweep_id)
        assert sweep.fragments[done_frag].state == DONE
        # the torn bytes were truncated: a further restart is clean
        coord3 = make_coord(tmp_path)
        assert coord3.recovery["truncated_tail"] is False
