"""Tests for versioned speculative memory: forwarding, conflicts, rollback,
commit (paper Sec. 4.1)."""

import pytest

from repro.errors import MemoryError_, SimulationError
from repro.mem import AddressSpace, SpecMemory
from repro.mem.conflicts import PreciseConflictModel


class TestBasicVersioning:
    def test_store_then_load_same_owner(self, mem, owner_factory):
        t = owner_factory(1)
        mem.store(t, 100, "v")
        assert mem.load(t, 100) == "v"

    def test_commit_makes_writes_permanent(self, mem, owner_factory):
        t = owner_factory(1)
        mem.store(t, 100, 7)
        mem.commit(t)
        assert mem.peek(100) == 7
        mem.assert_quiescent()

    def test_rollback_restores_preimage(self, mem, owner_factory):
        mem.poke(100, "old")
        t = owner_factory(1)
        mem.store(t, 100, "new")
        mem.rollback(t)
        assert mem.peek(100) == "old"
        mem.assert_quiescent()

    def test_rollback_restores_multiple_in_reverse(self, mem, owner_factory):
        for a in (1, 2, 3):
            mem.poke(a * 100, a)
        t = owner_factory(1)
        mem.store(t, 100, "x")
        mem.store(t, 200, "y")
        mem.store(t, 100, "z")  # second write to the same word
        mem.rollback(t)
        assert mem.peek(100) == 1 and mem.peek(200) == 2

    def test_default_value_for_untouched(self, mem, owner_factory):
        t = owner_factory(1)
        assert mem.load(t, 9999) == 0

    def test_poke_guards_speculative_words(self, mem, owner_factory):
        t = owner_factory(1)
        mem.store(t, 50, 1)
        with pytest.raises(MemoryError_):
            mem.poke(50, 2)


class TestForwardingAndDependences:
    def test_later_reads_earlier_speculative_write(self, mem, owner_factory):
        early, late = owner_factory(1), owner_factory(2)
        mem.store(early, 100, "spec")
        assert mem.load(late, 100) == "spec"
        assert early in late.deps
        assert late in early.dependents

    def test_abort_of_writer_cascades_to_reader(self, mem, owner_factory):
        early, late = owner_factory(1), owner_factory(2)
        mem.store(early, 100, "spec")
        mem.load(late, 100)
        mem.abort_cascade([early], "test")
        assert late.aborted
        assert mem.peek(100) == 0

    def test_waw_dependence_recorded(self, mem, owner_factory):
        early, late = owner_factory(1), owner_factory(2)
        mem.store(early, 100, 1)
        mem.store(late, 100, 2)
        assert early in late.deps

    def test_waw_rollback_chain(self, mem, owner_factory):
        mem.poke(100, "base")
        early, late = owner_factory(1), owner_factory(2)
        mem.store(early, 100, "e")
        mem.store(late, 100, "l")
        mem.abort_cascade([early], "test")  # cascades to late first
        assert mem.peek(100) == "base"


class TestEagerConflicts:
    def test_earlier_write_aborts_later_reader(self, mem, owner_factory):
        late = owner_factory(2)
        mem.load(late, 100)
        early = owner_factory(1)
        mem.store(early, 100, "w")
        assert late.aborted
        assert not early.aborted

    def test_earlier_write_aborts_later_writer(self, mem, owner_factory):
        late = owner_factory(2)
        mem.store(late, 100, "l")
        early = owner_factory(1)
        mem.store(early, 100, "e")
        assert late.aborted
        assert mem.peek(100) == "e"

    def test_earlier_read_aborts_later_writer(self, mem, owner_factory):
        """An earlier task must not see a later task's speculative write."""
        mem.poke(100, "base")
        late = owner_factory(2)
        mem.store(late, 100, "doomed")
        early = owner_factory(1)
        assert mem.load(early, 100) == "base"
        assert late.aborted

    def test_reads_never_conflict_with_reads(self, mem, owner_factory):
        a, b = owner_factory(1), owner_factory(2)
        mem.load(a, 100)
        mem.load(b, 100)
        assert not a.aborted and not b.aborted

    def test_line_granularity_false_sharing(self, mem, owner_factory):
        """Distinct words on one 8-word line still conflict (real HW)."""
        late = owner_factory(2)
        mem.load(late, 1601)  # line 200
        early = owner_factory(1)
        mem.store(early, 1606, "w")  # same line, different word
        assert late.aborted

    def test_different_lines_no_conflict(self, mem, owner_factory):
        late = owner_factory(2)
        mem.load(late, 1601)
        early = owner_factory(1)
        mem.store(early, 1609, "w")  # next line
        assert not late.aborted

    def test_own_accesses_never_self_conflict(self, mem, owner_factory):
        t = owner_factory(1)
        mem.store(t, 100, 1)
        mem.load(t, 100)
        mem.store(t, 100, 2)
        assert not t.aborted


class TestCommitOrderInvariants:
    def test_commit_requires_chain_head(self, mem, owner_factory):
        early, late = owner_factory(1), owner_factory(2)
        mem.store(early, 100, 1)
        mem.store(late, 100, 2)
        with pytest.raises(SimulationError):
            mem.commit(late)

    def test_commits_in_order_keep_final_value(self, mem, owner_factory):
        early, late = owner_factory(1), owner_factory(2)
        mem.store(early, 100, 1)
        mem.store(late, 100, 2)
        mem.commit(early)
        mem.commit(late)
        assert mem.peek(100) == 2
        mem.assert_quiescent()

    def test_committed_snapshot_hides_speculative(self, mem, owner_factory):
        mem.poke(100, "committed")
        t = owner_factory(1)
        mem.store(t, 100, "spec")
        snap = mem.committed_snapshot()
        assert snap[100] == "committed"
        assert mem.peek(100) == "spec"

    def test_quiescence_check_detects_leftovers(self, mem, owner_factory):
        t = owner_factory(1)
        mem.store(t, 100, 1)
        with pytest.raises(SimulationError):
            mem.assert_quiescent()


class TestAuditRecords:
    def test_reads_record_first_value_only(self, mem, owner_factory):
        mem.poke(100, "first")
        t = owner_factory(1)
        mem.load(t, 100)
        mem.store(t, 100, "mine")
        mem.load(t, 100)
        assert t.reads == {100: "first"}
        assert t.writes == {100: "mine"}

    def test_read_after_own_write_not_recorded(self, mem, owner_factory):
        t = owner_factory(1)
        mem.store(t, 100, "mine")
        mem.load(t, 100)
        assert 100 not in t.reads
