"""Paper-style report tables for benchmark output."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from .harness import AppRun


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Plain fixed-width table (benchmarks print these)."""
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row):
        return "  ".join(str(c).rjust(w) for c, w in zip(row, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def speedup_table(runs: List[AppRun], *, baseline_variant: str,
                  baseline_cores: int = 1) -> str:
    """Speedups over the 1-core baseline variant (paper Figs. 3/4/6/15/17)."""
    base = next(r for r in runs
                if r.variant == baseline_variant
                and r.n_cores == baseline_cores)
    variants = sorted({r.variant for r in runs})
    cores = sorted({r.n_cores for r in runs})
    rows = []
    for n in cores:
        row = [f"{n}c"]
        for v in variants:
            run = next((r for r in runs if r.variant == v and r.n_cores == n),
                       None)
            row.append("-" if run is None
                       else f"{base.makespan / run.makespan:.2f}x")
        rows.append(row)
    return format_table(["cores"] + variants, rows)


def breakdown_table(runs: List[AppRun]) -> str:
    """Core-cycle breakdowns (paper Figs. 14b/15b)."""
    headers = ["run", "cores", "commit", "abort", "spill", "stall", "empty",
               "speedup-vs-row1"]
    base: Optional[AppRun] = None
    rows = []
    for r in runs:
        if base is None:
            base = r
        f = r.stats.breakdown.fractions()
        rows.append([
            f"{r.app.rsplit('.', 1)[-1]}-{r.variant}", r.n_cores,
            f"{f['committed']:.1%}", f"{f['aborted']:.1%}",
            f"{f['spill']:.1%}", f"{f['stall']:.1%}", f"{f['empty']:.1%}",
            f"{base.makespan / r.makespan:.2f}x",
        ])
    return format_table(headers, rows)
