"""Engine selection, satellite bug regressions, and the scalar/fast
lockstep property test for the vectorized memory layer (ISSUE 10).

Each regression test here fails on the pre-fix code:

- victim enumeration order over a line's reader population (was a set:
  abort order depended on object addresses),
- H3 ``indices()`` memo poisoning (was the cached list itself) and the
  unbounded key memo,
- ``poke()`` accepting lines under live readers / other-word writers,
- ``_scrub()`` swallowing corruption (``ValueError`` → silent pass).
"""

import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MemoryError_, SimulationError
from repro.mem import AddressSpace, SpecMemory
from repro.mem.bloom import H3HashFamily
from repro.mem import bloom as bloom_mod
from repro.mem.conflicts import PreciseConflictModel

from .conftest import AbortRecorder, FakeOwner


def make_mem(engine):
    space = AddressSpace(line_bytes=64, n_tiles=4)
    m = SpecMemory(space, PreciseConflictModel(), engine=engine)
    m.abort_cascade = AbortRecorder(m)
    return m


def attach(mem, key):
    o = FakeOwner(key if isinstance(key, tuple) else (key,))
    mem.attach_owner(o)
    return o


# ---------------------------------------------------------------------------
# engine selection
# ---------------------------------------------------------------------------
class TestEngineSelection:
    def test_constructor_param(self):
        for engine in ("fast", "scalar", "audit"):
            assert make_mem(engine).engine == engine

    def test_unknown_engine_rejected(self):
        space = AddressSpace(line_bytes=64, n_tiles=4)
        with pytest.raises(MemoryError_):
            SpecMemory(space, engine="turbo")

    def test_default_is_fast(self, monkeypatch):
        monkeypatch.delenv("REPRO_MEM_AUDIT", raising=False)
        monkeypatch.delenv("REPRO_MEM_ENGINE", raising=False)
        space = AddressSpace(line_bytes=64, n_tiles=4)
        assert SpecMemory(space).engine == "fast"

    def test_env_engine_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_MEM_AUDIT", raising=False)
        monkeypatch.setenv("REPRO_MEM_ENGINE", "scalar")
        space = AddressSpace(line_bytes=64, n_tiles=4)
        assert SpecMemory(space).engine == "scalar"

    def test_env_audit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEM_AUDIT", "1")
        monkeypatch.setenv("REPRO_MEM_ENGINE", "scalar")
        space = AddressSpace(line_bytes=64, n_tiles=4)
        assert SpecMemory(space).engine == "audit"

    def test_constructor_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEM_AUDIT", "1")
        space = AddressSpace(line_bytes=64, n_tiles=4)
        assert SpecMemory(space, engine="scalar").engine == "scalar"


# ---------------------------------------------------------------------------
# satellite 1: victim enumeration order over the reader population
# ---------------------------------------------------------------------------
class TestVictimOrder:
    @pytest.mark.parametrize("engine", ["fast", "scalar"])
    def test_store_victims_follow_registration_order(self, engine):
        """A store that kills several readers of its line must list the
        victims in reader-registration order — with the old set-backed
        reader index the order depended on object addresses (ConflictEvent
        victim lists differed between runs of the same seed)."""
        mem = make_mem(engine)
        seen = []
        inner = mem.abort_cascade

        def record(victims, reason):
            seen.append(list(victims))
            inner(victims, reason)

        mem.abort_cascade = record
        # register readers in an order distinct from VT order
        keys = [5, 3, 9, 7, 4]
        readers = [attach(mem, k) for k in keys]
        for r in readers:
            mem.load(r, 0)
        writer = attach(mem, 1)
        mem.store(writer, 0, 42)
        assert len(seen) == 1
        assert seen[0] == readers  # registration order, not key/id order
        assert all(r.aborted for r in readers)

    @pytest.mark.parametrize("engine", ["fast", "scalar"])
    def test_store_victims_dedupe_reader_writers(self, engine):
        """An owner that both read and wrote the line is one victim, with
        its reader-position rank."""
        mem = make_mem(engine)
        seen = []
        inner = mem.abort_cascade

        def record(victims, reason):
            seen.append(list(victims))
            inner(victims, reason)

        mem.abort_cascade = record
        both = attach(mem, 6)
        mem.load(both, 0)
        mem.store(both, 1, 7)    # same line (64B line = 8 words)
        late = attach(mem, 8)
        mem.load(late, 0)
        writer = attach(mem, 2)
        mem.store(writer, 2, 9)
        assert seen and seen[-1] == [both, late]


# ---------------------------------------------------------------------------
# satellite 2: H3 memo immutability and boundedness
# ---------------------------------------------------------------------------
class TestH3Memo:
    def test_indices_returns_immutable_tuple(self):
        fam = H3HashFamily(k=8, m_bits=2048, seed=3)
        idx = fam.indices(1234)
        assert isinstance(idx, tuple)
        with pytest.raises(TypeError):
            idx[0] = 0  # the old list return could be corrupted in place

    def test_mutated_return_cannot_poison_probes(self):
        fam = H3HashFamily(k=8, m_bits=2048, seed=3)
        first = list(fam.indices(77))
        # even a caller copying-and-mutating shares nothing with the memo
        got = fam.indices(77)
        assert list(got) == first
        assert fam.indices(77) is got  # memoized

    def test_key_memo_is_bounded(self, monkeypatch):
        monkeypatch.setattr(bloom_mod, "_MAX_CACHED_KEYS", 8)
        fam = H3HashFamily(k=4, m_bits=512, seed=0)
        expect = {k: fam.indices(k) for k in range(20)}
        assert len(fam._key_cache) <= 8
        # resets never change answers
        for k, v in expect.items():
            assert fam.indices(k) == v
        assert len(fam._key_cache) <= 8


# ---------------------------------------------------------------------------
# satellite 3: poke() line-granular rejection + poke_fresh slot birth
# ---------------------------------------------------------------------------
class TestPokeGuards:
    def test_poke_rejects_line_readers(self):
        mem = make_mem("fast")
        r = attach(mem, 1)
        mem.load(r, 0)
        with pytest.raises(MemoryError_, match="live speculative readers"):
            mem.poke(1, 5)  # different word, same line as the read

    def test_poke_rejects_line_writers_on_other_words(self):
        mem = make_mem("fast")
        w = attach(mem, 1)
        mem.store(w, 0, 9)
        with pytest.raises(MemoryError_, match="other words"):
            mem.poke(1, 5)  # word 1 is clean but line 0 has a live writer

    def test_poke_rejects_word_writers(self):
        mem = make_mem("fast")
        w = attach(mem, 1)
        mem.store(w, 0, 9)
        with pytest.raises(MemoryError_, match="speculative writers"):
            mem.poke(0, 5)

    def test_poke_fresh_allows_birth_on_live_line(self):
        mem = make_mem("fast")
        w = attach(mem, 1)
        mem.store(w, 0, 9)
        mem.poke_fresh(1, 5)  # same line, never-touched word: legal
        assert mem.peek(1) == 5

    def test_poke_fresh_rejects_existing_values(self):
        mem = make_mem("fast")
        mem.poke(3, 1)
        with pytest.raises(MemoryError_, match="already holds a value"):
            mem.poke_fresh(3, 2)


# ---------------------------------------------------------------------------
# satellite 4: strict scrub
# ---------------------------------------------------------------------------
class TestStrictScrub:
    @pytest.mark.parametrize("engine", ["fast", "scalar"])
    def test_corrupted_reader_index_raises(self, engine):
        mem = make_mem(engine)
        o = attach(mem, 1)
        mem.load(o, 0)
        del mem._line_readers[0][o]  # simulate corrupted bookkeeping
        with pytest.raises(SimulationError, match="reader index"):
            mem.commit(o)

    @pytest.mark.parametrize("engine", ["fast", "scalar"])
    def test_corrupted_writer_chain_raises(self, engine):
        mem = make_mem(engine)
        o = attach(mem, 1)
        mem.store(o, 0, 1)
        mem._line_writers[0].remove(o)
        with pytest.raises(SimulationError, match="writer chain"):
            mem.commit(o)


# ---------------------------------------------------------------------------
# the audit engine actually audits
# ---------------------------------------------------------------------------
class TestAuditEngine:
    def test_audit_catches_planted_epoch_divergence(self):
        """Plant a later writer in a line's chain without bumping the
        epoch — exactly the corruption the memo relies on never happening
        — and the next memoized skip must raise."""
        mem = make_mem("audit")
        o = attach(mem, 1)
        mem.load(o, 0)
        intruder = attach(mem, 9)
        intruder.write_lines.add(0)
        mem._line_writers.setdefault(0, []).append(intruder)  # no _bump
        with pytest.raises(SimulationError, match="skipped a probe"):
            mem.load(o, 0)

    def test_audit_catches_stale_order_key(self):
        mem = make_mem("audit")
        o = attach(mem, 5)
        mem.load(o, 0)
        o._key = (2,)  # VT rewrite without refresh_order_keys()
        with pytest.raises(SimulationError, match="stale cached order key"):
            mem.load(o, 0)

    def test_audit_clean_run_is_silent(self):
        mem = make_mem("audit")
        o = attach(mem, 1)
        for _ in range(4):
            mem.load(o, 0)
            mem.store(o, 0, 1)
        mem.commit(o)
        mem.assert_quiescent()

    def test_refresh_order_keys_satisfies_audit(self):
        mem = make_mem("audit")
        o = attach(mem, 5)
        mem.load(o, 0)
        o._key = (2,)
        mem.refresh_order_keys()
        mem.load(o, 0)  # no raise
        mem.commit(o)


# ---------------------------------------------------------------------------
# satellite 5: scalar/fast lockstep property test
# ---------------------------------------------------------------------------
OPS = st.lists(
    st.tuples(st.integers(0, 5),            # owner slot
              st.booleans(),                # is_write
              st.integers(0, 39),           # word address (5 lines of 8)
              st.integers(0, 7)),           # value
    min_size=1, max_size=60)


class _Driver:
    """Drives one SpecMemory instance and records everything observable."""

    def __init__(self, engine, n_owners):
        self.mem = make_mem(engine)
        self.trace = []
        inner = self.mem.abort_cascade

        def record(victims, reason):
            self.trace.append(("abort", [v._key for v in victims], reason))
            inner(victims, reason)

        self.mem.abort_cascade = record
        # interleaved VTs so later slots are later tasks
        self.owners = [attach(self.mem, i) for i in range(n_owners)]

    def apply(self, ops):
        for slot, is_write, addr, value in ops:
            o = self.owners[slot]
            if o.aborted:
                self.trace.append(("skip", slot))
                continue
            if is_write:
                self.mem.store(o, addr, value)
                self.trace.append(("store", slot, addr, value, o.aborted))
            else:
                got = self.mem.load(o, addr)
                self.trace.append(("load", slot, addr, got, o.aborted))
        for o in self.owners:                # commit survivors in VT order
            if not o.aborted:
                self.mem.commit(o)
        self.mem.assert_quiescent()

    def observable(self):
        m = self.mem
        return (self.trace, dict(m._values),
                [(o._key, o.aborted, sorted(o.reads.items()),
                  sorted(o.writes.items())) for o in self.owners],
                (m.n_loads, m.n_stores, m.n_true_conflicts,
                 m.n_injected_conflicts))


class TestLockstepProperty:
    @settings(max_examples=120, deadline=None)
    @given(ops=OPS)
    def test_scalar_fast_audit_agree(self, ops):
        """Identical op sequences through all three engines produce
        identical values, victim cascades (order included), final memory,
        read/write records, and RunStats-grade counters. The audit engine
        additionally cross-checks every memoized skip inline."""
        drivers = [_Driver(e, 6) for e in ("scalar", "fast", "audit")]
        for d in drivers:
            d.apply(ops)
        ref = drivers[0].observable()
        assert drivers[1].observable() == ref
        assert drivers[2].observable() == ref


# ---------------------------------------------------------------------------
# cross-process: the env knob reaches a real run
# ---------------------------------------------------------------------------
class TestEndToEndEnv:
    def test_audit_env_run_matches_scalar(self, tmp_path):
        import json
        digests = {}
        for name, env_over in [("scalar", {"REPRO_MEM_ENGINE": "scalar"}),
                               ("audit", {"REPRO_MEM_AUDIT": "1"})]:
            out = tmp_path / f"{name}.json"
            env = dict(os.environ)
            env.pop("REPRO_MEM_AUDIT", None)
            env.pop("REPRO_MEM_ENGINE", None)
            env.update(env_over)
            r = subprocess.run(
                [sys.executable, "-m", "repro", "run", "mis", "--cores", "8",
                 "--metrics-out", str(out)],
                env=env, capture_output=True, text=True)
            assert r.returncode == 0, r.stderr
            digests[name] = json.dumps(
                json.load(out.open())["stats"], sort_keys=True)
        assert digests["scalar"] == digests["audit"]
