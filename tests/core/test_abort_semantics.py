"""Directed tests for selective aborts (paper Sec. 4.1): descendants and
data-dependent tasks die; independent tasks survive."""

import pytest

from repro import Ordering, Simulator, SystemConfig


def make_sim(n_cores=8):
    return Simulator(SystemConfig.with_cores(n_cores, conflict_mode="precise"))


class TestSelectiveAborts:
    def test_independent_tasks_survive_conflicts(self):
        """A conflict between two tasks must not disturb a third."""
        sim = make_sim()
        hot = sim.cell("hot", 0)
        cold = sim.array("cold", 32 * 8)

        def fighter(ctx):
            hot.add(ctx, 1)
            ctx.compute(60)

        def bystander(ctx, i):
            cold.set(ctx, i * 8, 1)
            ctx.compute(60)

        for i in range(16):
            sim.enqueue_root(fighter)
            sim.enqueue_root(bystander, i)
        stats = sim.run(max_cycles=10_000_000)
        sim.audit()
        bystander_attempts = [t for t in sim.commit_log
                              if t.label == "bystander"]
        assert all(t.n_aborts == 0 for t in bystander_attempts)
        assert hot.peek() == 16

    def test_dependent_reader_dies_with_writer(self):
        """A task that consumed a doomed speculative value must abort when
        the value's writer aborts (forwarding + cascade)."""
        sim = make_sim()
        a = sim.cell("a", 0)
        b = sim.cell("b", 0)
        order = sim.cell("order", 0)

        def early(ctx):
            # dispatched late (long queue delay modeled via compute chain)
            a.set(ctx, 1)

        def middle(ctx):
            a.set(ctx, 2)       # conflicts with early's write when early runs
            ctx.compute(200)

        def late(ctx):
            b.set(ctx, a.get(ctx))  # consumes middle's speculative value

        # enqueue in reverse order so 'early' dispatches after the others
        sim.enqueue_root(late)
        sim.enqueue_root(middle)
        sim.enqueue_root(early)
        sim.run(max_cycles=10_000_000)
        sim.audit()
        # final state must be a serialization; b observed the final a-chain
        assert b.peek() in (0, 1, 2)

    def test_children_squashed_not_reexecuted_twice(self):
        """When a parent aborts, its children vanish; the re-execution
        recreates them exactly once (counted via a side-effect cell)."""
        sim = make_sim()
        cell = sim.cell("c", 0)
        child_runs = sim.cell("runs", 0)
        interferer = sim.cell("i", 0)

        def child(ctx):
            child_runs.add(ctx, 1)

        def parent(ctx):
            cell.get(ctx)
            ctx.enqueue(child)
            ctx.compute(150)

        def attacker(ctx):
            cell.set(ctx, 1)  # aborts 'parent' when ordered earlier
            ctx.compute(10)

        sim.enqueue_root(parent)
        sim.enqueue_root(attacker)
        stats = sim.run(max_cycles=10_000_000)
        sim.audit()
        assert child_runs.peek() == 1

    def test_squash_counts_recorded(self):
        sim = make_sim(16)
        hot = sim.cell("hot", 0)

        def child(ctx):
            ctx.compute(5)

        def parent(ctx):
            # children first, so an abort on the hot access squashes them
            for _ in range(3):
                ctx.enqueue(child)
            hot.add(ctx, 1)
            ctx.compute(100)

        for _ in range(12):
            sim.enqueue_root(parent)
        stats = sim.run(max_cycles=10_000_000)
        assert hot.peek() == 12
        # contention on `hot` must have squashed some children
        assert stats.tasks_squashed > 0
        assert stats.tasks_committed == 12 * 4


class TestSubdomainAbortUnit:
    def test_whole_subdomain_dies_with_creator(self):
        """Aborting a subdomain creator kills the subdomain (Fig. 13b
        analog at the conflict level)."""
        sim = make_sim()
        cell = sim.cell("c", 0)
        leaf_runs = sim.cell("leafs", 0)

        def leaf(ctx):
            leaf_runs.add(ctx, 1)

        def creator(ctx):
            cell.get(ctx)
            ctx.create_subdomain(Ordering.UNORDERED)
            for _ in range(4):
                ctx.enqueue_sub(leaf)
            ctx.compute(200)

        def attacker(ctx):
            cell.set(ctx, 1)

        sim.enqueue_root(creator)
        sim.enqueue_root(attacker)
        sim.run(max_cycles=10_000_000)
        sim.audit()
        assert leaf_runs.peek() == 4  # exactly one surviving execution
