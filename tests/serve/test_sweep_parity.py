"""Acceptance: a sweep through the service is byte-identical to `repro
sweep` — same RunStats JSON and the same rendered speedup table."""

import json

import pytest

from repro.apps import zoomtree
from repro.bench.harness import AppRun, sweep_cores
from repro.bench.report import speedup_table
from repro.core.stats import RunStats
from repro.farm import Farm
from repro.serve import ServeConfig, start_in_thread
from repro.serve.client import ServeClient

CORES = (1, 2)
VARIANTS = ("fractal",)


def service_sweep(client):
    """The same (variant, cores) grid submitted one job at a time."""
    runs = []
    for variant in VARIANTS:
        for n in CORES:
            doc = client.submit(
                {"app": "zoomtree", "variant": variant, "n_cores": n,
                 "input": {"fanout": 2, "depth": 3}})
            res = client.result(doc["id"], timeout=120)
            runs.append(AppRun(app="repro.apps.zoomtree", variant=variant,
                               n_cores=n,
                               stats=RunStats.from_dict(res["stats"]),
                               handles={}, cached=True))
    return runs


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    cfg = ServeConfig(host="127.0.0.1", port=0, workers=2, warmup=False,
                      cache_dir=str(tmp_path_factory.mktemp("p") / "cache"))
    handle = start_in_thread(cfg)
    yield handle
    handle.stop(drain=True, timeout=60)


def test_service_sweep_byte_identical_to_cli_sweep(server):
    inp = zoomtree.make_input(fanout=2, depth=3)
    direct = sweep_cores(zoomtree, inp, VARIANTS, CORES, farm=Farm(jobs=1))
    with ServeClient(server.url, timeout=60.0) as client:
        served = service_sweep(client)

    direct_json = [json.dumps(r.stats.to_dict(), sort_keys=True)
                   for r in direct]
    served_json = [json.dumps(r.stats.to_dict(), sort_keys=True)
                   for r in served]
    assert served_json == direct_json          # byte-identical stats

    table_direct = speedup_table(direct, baseline_variant=VARIANTS[0],
                                 baseline_cores=CORES[0])
    table_served = speedup_table(served, baseline_variant=VARIANTS[0],
                                 baseline_cores=CORES[0])
    assert table_served == table_direct        # byte-identical table


def test_repeat_service_sweep_is_all_warm(server):
    with ServeClient(server.url, timeout=60.0) as client:
        service_sweep(client)                  # may be warm already
        before = client.metrics()["serve"]["tenants"]["anonymous"]
        service_sweep(client)
        after = client.metrics()["serve"]["tenants"]["anonymous"]
    grid = len(VARIANTS) * len(CORES)
    assert after["warm_hits"] - before["warm_hits"] == grid
