"""The event-driven Fractal/Swarm simulator (paper Secs. 4-5).

One :class:`Simulator` models one tiled multicore (Fig. 8) executing a
Fractal program:

- cores dispatch the lowest-VT pending task from their tile's task unit and
  run it speculatively; the task body (a Python callable) executes at
  dispatch, its memory accesses flowing through :class:`repro.mem.memory.SpecMemory`
  (eager versioning + eager conflict detection) and the cache/NoC latency
  model, which determine the task's duration in cycles;
- conflicts abort the later task plus its descendants and data-dependent
  tasks (selective aborts); aborted tasks re-execute, squashed children are
  recreated by the re-execution;
- a GVT arbiter commits finished tasks behind the earliest unfinished VT
  every ``commit_interval`` cycles;
- task queues spill through coalescers/splitters when they fill;
- nesting beyond the VT bit budget triggers zooming (Sec. 4.3) and
  tiebreakers wrap around and compact (Sec. 4.4).

Fidelity note (see DESIGN.md): a task's body runs atomically at its
dispatch instant; its memory effects are visible to tasks dispatched later
in simulated time, and conflict checks happen at those later dispatch
instants. This task-granular approximation preserves conflict structure,
queue dynamics and ordering exactly, and timing to first order.
"""

from __future__ import annotations

import heapq
import os
import time
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..arch.cache import CacheModel
from ..arch.gvt import GvtArbiter, GvtFrontier
from ..arch.noc import MeshNoC
from ..arch.scheduler import HintScheduler
from ..arch.spill import (CoalescerJob, SpillBuffer, SplitterJob,
                          select_spill_victims)
from ..arch.tile import Core, Tile
from ..config import SystemConfig
from ..errors import (DomainError, FractalError, QueueError,
                      SerializabilityViolation, SimulationError,
                      TaskExecutionError)
from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan, InjectedFault
from ..faults.resilience import (LivelockDetector, ResiliencePolicy,
                                 backoff_delay)
from ..mem.address import AddressSpace
from ..mem.conflicts import make_conflict_model
from ..mem.memory import SpecMemory
from ..telemetry import events as tev
from ..telemetry.bus import EventBus, EventRingBuffer
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.timeline import TraceBuilder
from ..vt import DomainVT, FractalVT, Ordering, TiebreakerAllocator
from ..vt.tiebreaker import WrapAround
from .api import NeedZoomIn, NeedZoomOut, TaskAborted, TaskContext
from .domain import Domain
from .hostbase import AllocAPI
from .stats import CycleBreakdown, RunStats
from .task import TaskDesc, TaskState, tid_watermark
from .trace import Trace
from .zoom import ZoomController

_FINISH = 0
_TICK = 1
_CORE_FREE = 2
_FINISH_SPECIAL = 3
_REQUEUE = 4


class _WatchdogFire(Exception):
    """Internal control flow: a resilience watchdog limit was hit.

    Raised from the tick handler to unwind the event loop without a
    per-event flag check; run() catches it and returns partial stats.
    """

    def __init__(self, kind: str, limit: float):
        super().__init__(kind)
        self.kind = kind
        self.limit = limit


class Simulator(AllocAPI):
    """A Fractal chip executing one program."""

    def __init__(self, config: Optional[SystemConfig] = None, *,
                 root_ordering: Ordering = Ordering.UNORDERED,
                 name: str = "sim", enable_trace: bool = False,
                 enable_audit: bool = True,
                 bus: Optional[EventBus] = None,
                 faults: Optional[Union[FaultPlan, FaultInjector]] = None,
                 resilience: Optional[ResiliencePolicy] = None,
                 crash_dump_dir: Optional[str] = None):
        self.config = config or SystemConfig.with_cores(4)
        self.name = name
        cfg = self.config

        # Fault injection & resilience (repro.faults). Both default off;
        # every hook below guards on ``is not None`` so the vanilla path
        # costs one None check per site (same discipline as telemetry).
        if isinstance(faults, FaultPlan):
            faults = FaultInjector(faults)
        self._faults: Optional[FaultInjector] = faults
        if faults is not None:
            faults.clock = lambda: self.now
            faults.tid_base = tid_watermark()
        self._resil: Optional[ResiliencePolicy] = resilience
        self._livelock: Optional[LivelockDetector] = (
            LivelockDetector(resilience) if resilience is not None else None)
        self.crash_dump_dir = crash_dump_dir
        #: path of the bundle written by the last crash/watchdog, if any
        self.crash_bundle_path: Optional[str] = None
        self._crash_ring: Optional[EventRingBuffer] = None
        self._safe_mode = False
        self._throttled = False
        self._aborts_total = 0
        self._wall_start = 0.0

        # Telemetry: every run owns a metrics registry (the single source
        # of truth RunStats is rebuilt from) and an event bus. Emission
        # sites guard on ``self._ebus`` — the bus when it has subscribers,
        # else None — so a disabled run pays one None check per site (a
        # truthiness test on the bus itself would call Python-level
        # ``__bool__`` tens of thousands of times). Subscribers must
        # attach before run(); _refresh_ebus() re-checks there.
        self.metrics = MetricsRegistry()
        self.bus = bus if bus is not None else EventBus()
        self._ebus: Optional[EventBus] = None

        self.space = AddressSpace(cfg.line_bytes, cfg.n_tiles)
        self.conflicts = make_conflict_model(
            cfg.conflict_mode, bits=cfg.bloom_bits, ways=cfg.bloom_ways,
            seed=cfg.seed)
        self.conflicts._live_gauge = self.metrics.gauge(
            "live_speculative_tasks")
        self.memory = SpecMemory(self.space, self.conflicts)
        self.memory.abort_cascade = self._abort_cascade
        self.memory.clock = lambda: self.now
        if faults is not None and faults.plan.conflict_rate > 0.0:
            self.memory.fault_hook = faults.force_conflict
        self.noc = MeshNoC(cfg.mesh_dim, cfg.latency.hop_straight,
                           cfg.latency.hop_turn)
        self.cache = CacheModel(self.space, self.noc, cfg.latency,
                                seed=cfg.seed)
        self.scheduler = HintScheduler(cfg.n_tiles, cfg.use_hints,
                                       cfg.load_balance_threshold, cfg.seed)
        self.scheduler.clock = lambda: self.now
        self.arbiter = GvtArbiter(cfg.commit_interval)
        core_bits = max(4, (max(cfg.n_cores - 1, 1)).bit_length())
        self.alloc = TiebreakerAllocator(cfg.tiebreaker_bits, core_bits)
        self.vt_budget = cfg.vt_bits

        tq_cap = cfg.task_queue_per_tile
        cq_cap = cfg.commit_queue_per_tile
        if faults is not None:
            # queue-squeeze site: shrunken physical capacities
            tq_cap = faults.squeeze_capacity(tq_cap)
            cq_cap = faults.squeeze_capacity(cq_cap)
        self.tiles: List[Tile] = []
        self.cores: List[Core] = []
        for t in range(cfg.n_tiles):
            tile = Tile(t, cfg.cores_per_tile, tq_cap, cq_cap)
            for _ in range(cfg.cores_per_tile):
                core = Core(len(self.cores), t)
                tile.cores.append(core)
                self.cores.append(core)
            self.tiles.append(tile)
        self._special_jobs: List[List] = [[] for _ in range(cfg.n_tiles)]
        self._coalescer_queued = [False] * cfg.n_tiles
        self._spill_buffers: List[SpillBuffer] = []

        self.root_domain = Domain(root_ordering)
        self.zoom = ZoomController(self)

        self.now = 0
        self._events: List[Tuple[int, int, int, Any]] = []
        self._event_seq = 0
        self._tick_scheduled = False
        # live tasks as an insertion-ordered dict for determinism
        self._live: Dict[TaskDesc, None] = {}
        # aborted tasks waiting out the rollback latency before re-queueing
        self._limbo: Dict[TaskDesc, None] = {}
        # incrementally-maintained GVT bound over the live set; with
        # REPRO_GVT_AUDIT=1 every query is cross-checked against the
        # reference linear scan (_compute_gvt_linear)
        self._frontier = GvtFrontier()
        self._gvt_audit = os.environ.get("REPRO_GVT_AUDIT", "") == "1"
        self._finished: List[TaskDesc] = []
        self._executing: Optional[TaskDesc] = None
        self._executing_ctx: Optional[TaskContext] = None
        self._commit_seq = 0

        # Commit-order invariant: within one zoom epoch, commits must be
        # VT-monotone (the audit alone cannot see blind-write misorderings).
        self._last_commit_key: Optional[tuple] = None
        self._commit_epoch = 0

        self.enable_audit = enable_audit
        self.commit_log: List[TaskDesc] = []
        self._initial_snapshot: Optional[Dict[int, Any]] = None
        # The ASCII timeline is now just one bus consumer.
        self.trace: Optional[Trace] = None
        if enable_trace:
            self.trace = Trace()
            self.bus.subscribe(TraceBuilder(self.trace))
        if crash_dump_dir is not None:
            # last-N event ring feeding crash bundles (repro.faults.crashdump)
            self._crash_ring = EventRingBuffer()
            self.bus.subscribe(self._crash_ring)
        self._refresh_ebus()

        self.stats = RunStats(name=name, n_cores=cfg.n_cores)
        self._ran = False
        self._cascade_seq = 0

        # Cached metric handles for the hot accounting paths. Cycle
        # categories carry a per-core label; task outcomes a per-depth
        # label; enqueues a per-tile label.
        m = self.metrics
        self._m_cycles = {
            cat: [m.counter("cycles", category=cat, core=c)
                  for c in range(cfg.n_cores)]
            for cat in ("committed", "aborted", "spill", "stall")}
        self._m_enqueues = [m.counter("enqueues", tile=t)
                            for t in range(cfg.n_tiles)]
        self._m_tasks: Dict[Tuple[str, int], Any] = {}
        self._m_spilled = m.counter("tasks_spilled")
        self._m_domains = m.counter("domains_created")
        self._m_wraps = m.counter("tiebreaker_wraparounds")
        self._m_depth = m.gauge("max_depth")
        self._m_depth.set(1)
        self._m_task_len = m.histogram("committed_task_cycles")
        # resilience counters exist only when a policy is active, so
        # vanilla runs export byte-identical metrics to older versions
        if resilience is not None:
            self._m_exec_retries = m.counter("exec_fault_retries")
            self._m_backoffs = m.counter("backoff_requeues")
            self._m_safe_entries = m.counter("safe_mode_entries")
        else:
            self._m_exec_retries = None
            self._m_backoffs = None
            self._m_safe_entries = None

    def _refresh_ebus(self) -> None:
        """Sync the cached emission handle with the bus's subscriber state.

        Called at construction and again when run() starts, so subscribers
        attached between the two still see the run-time event stream
        (build-phase enqueues are only observable to subscribers attached
        before the enqueue happens).
        """
        self._ebus = self.bus if self.bus._subs else None
        self.memory.bus = self._ebus
        self.scheduler.bus = self._ebus
        self.arbiter.bus = self._ebus
        if self._faults is not None:
            self._faults.bus = self._ebus

    # ==================================================================
    # program construction
    # ==================================================================
    def enqueue_root(self, fn: Callable, *args, ts: Optional[int] = None,
                     hint: Optional[int] = None,
                     label: Optional[str] = None) -> TaskDesc:
        """Enqueue an initial task into the root domain (before run())."""
        if self._ran:
            raise SimulationError("enqueue_root after run()")
        timestamp = self.root_domain.ordering.validate_timestamp(ts)
        task = TaskDesc(fn, args, self.root_domain,
                        timestamp=timestamp if
                        self.root_domain.ordering.is_ordered else None,
                        hint=hint, label=label)
        dvt = DomainVT(self.root_domain.ordering,
                       timestamp if self.root_domain.ordering.is_ordered else 0
                       ).with_lower_bound(self.alloc.lower_bound(0))
        task.vt = FractalVT([dvt])
        task.enqueue_time = 0
        self._admit(task)
        return task

    # ==================================================================
    # main loop
    # ==================================================================
    def run(self, max_cycles: Optional[int] = None) -> RunStats:
        """Execute until all tasks commit; return the run's statistics.

        ``max_cycles`` keeps its original hard-failure semantics (raise
        :class:`SimulationError` on overrun). The graceful alternative is
        :attr:`ResiliencePolicy.max_cycles` / ``max_wall_seconds``, which
        stop the run and return partial stats with ``stats.failure`` set.
        """
        if self._ran:
            raise SimulationError("a Simulator instance runs exactly once")
        self._ran = True
        self._refresh_ebus()
        self._wall_start = time.monotonic()
        if self.enable_audit:
            self._initial_snapshot = dict(self.memory._values)

            def fold_poke(addr, value, snap=self._initial_snapshot):
                # a mid-run poke initializes a fresh address (SpecDict slot
                # birth); it "always existed" for replay purposes
                snap.setdefault(addr, value)

            self.memory.on_poke = fold_poke
        events = self._events
        try:
            # initial dispatch runs task bodies too — keep it inside the
            # crash-dump / watchdog envelope
            for tile in self.tiles:
                self._dispatch_tile(tile.tid)
            self._ensure_tick()
            while events:
                when, _, kind, payload = heapq.heappop(events)
                if when < self.now:
                    raise SimulationError("time went backwards")
                self.now = when
                if max_cycles is not None and self.now > max_cycles:
                    raise SimulationError(
                        f"exceeded max_cycles={max_cycles} with "
                        f"{len(self._live)} live tasks")
                if kind == _FINISH:
                    self._on_finish(*payload)
                elif kind == _TICK:
                    self._tick_scheduled = False
                    self._on_tick()
                elif kind == _CORE_FREE:
                    self._dispatch_tile(payload)
                elif kind == _FINISH_SPECIAL:
                    self._on_finish_special(*payload)
                elif kind == _REQUEUE:
                    self._on_requeue(payload)
        except _WatchdogFire as fire:
            return self._watchdog_wrapup(fire)
        except FractalError as exc:
            self._dump_crash(type(exc).__name__, exc)
            raise

        if self._live:
            stuck = list(self._live)[:5]
            exc = SimulationError(
                f"simulation drained events with {len(self._live)} live "
                f"tasks, e.g. {stuck}")
            self._dump_crash("SimulationError", exc)
            raise exc
        self.memory.assert_quiescent()
        self._finalize_stats()
        return self.stats

    # ------------------------------------------------------------------
    def _schedule(self, when: int, kind: int, payload: Any) -> None:
        self._event_seq += 1
        heapq.heappush(self._events, (when, self._event_seq, kind, payload))

    def _ensure_tick(self) -> None:
        if not self._tick_scheduled and self._live:
            self._tick_scheduled = True
            self._schedule(self.arbiter.next_tick(self.now), _TICK, None)

    def _wake_tile(self, tile_id: int) -> None:
        self._schedule(self.now, _CORE_FREE, tile_id)

    # ==================================================================
    # enqueue / admit
    # ==================================================================
    def _task_counter(self, outcome: str, depth: int):
        """Cached ``tasks{outcome=,depth=}`` counter handle."""
        key = (outcome, depth)
        ctr = self._m_tasks.get(key)
        if ctr is None:
            ctr = self._m_tasks[key] = self.metrics.counter(
                "tasks", outcome=outcome, depth=depth)
        return ctr

    def _admit(self, task: TaskDesc) -> None:
        """Place a new or re-enqueued pending task into a task unit."""
        units = [t.unit for t in self.tiles]
        tile_id = self.scheduler.tile_for(task.hint, units,
                                          hard_cap=self._resil is not None)
        self._live[task] = None
        self._frontier.add_dyn(task)
        self.tiles[tile_id].unit.enqueue(task)
        self._m_enqueues[tile_id].value += 1
        task.domain.tasks_created += 1
        depth = task.domain.depth
        if depth > self._m_depth.value:
            self._m_depth.value = depth
        if self._ebus is not None:
            self._ebus.emit(tev.EnqueueEvent(
                self.now, task.tid, task.label, tile_id, depth,
                task.parent.tid if task.parent is not None else None))
        self._maybe_spill(tile_id)
        if self._ran:
            self._wake_tile(tile_id)

    def _requeue(self, task: TaskDesc) -> None:
        """Re-enqueue an aborted / zoom-released / restored task."""
        dvt = task.vt.last
        lb = DomainVT(dvt.ordering, dvt.timestamp).with_lower_bound(
            self.alloc.lower_bound(self.now))
        task.vt = task.vt.child_same_domain(lb)
        task.enqueue_time = self.now
        tile_id = task.queue_tile if task.queue_tile >= 0 else 0
        self.tiles[tile_id].unit.enqueue(task)
        self._maybe_spill(tile_id)
        self._wake_tile(tile_id)

    def _enqueue_child(self, ctx: TaskContext, child: TaskDesc,
                       kind: str) -> None:
        """Called by TaskContext._spawn for every child enqueue."""
        parent = ctx.task
        dvt = DomainVT(child.domain.ordering,
                       child.timestamp if child.domain.ordering.is_ordered
                       else 0).with_lower_bound(
                           self.alloc.lower_bound(self.now))
        if kind == "same":
            child.vt = parent.vt.child_same_domain(dvt)
        elif kind == "sub":
            child.vt = parent.vt.child_subdomain(dvt).check_budget(
                self.vt_budget)
        else:
            child.vt = parent.vt.child_superdomain(dvt)
        child.enqueue_time = self.now
        self._admit(child)
        # enqueue messages to a remote tile traverse the mesh
        if child.queue_tile != ctx.tile_id:
            ctx.cycles += self.noc.latency(ctx.tile_id, child.queue_tile)

    # ==================================================================
    # dispatch & execution
    # ==================================================================
    def _dispatch_tile(self, tile_id: int) -> None:
        tile = self.tiles[tile_id]
        for core in tile.cores:
            if not core.is_free:
                continue
            allow_tasks = True
            if self._safe_mode:
                allow_tasks = self._safe_slot(tile)
            elif self._throttled:
                # throttled: at most one task in flight per tile, which
                # shrinks the conflict window without stopping the chip
                allow_tasks = not any(isinstance(c.job, TaskDesc)
                                      for c in tile.cores)
            job = self._pick_job(tile, allow_tasks)
            if job is None:
                core.idle_since = self.now
                continue
            if isinstance(job, TaskDesc):
                parent = job.parent
                if (parent is not None and parent.dispatch_time >= self.now
                        and parent.is_speculative):
                    # A child may not dispatch in its parent's dispatch
                    # cycle: its tiebreaker must be strictly larger than
                    # the parent's (children order after parents). Only
                    # freshly-spawned children qualify — requeued tasks
                    # whose parents ran earlier (or committed) dispatch
                    # immediately.
                    tile.unit.enqueue(job)
                    self._schedule(self.now + 1, _CORE_FREE, tile.tid)
                    continue
                self._dispatch_task(core, job)
            else:
                core.job = job
                self._schedule(self.now + job.duration, _FINISH_SPECIAL,
                               (core, job))

    def _stripped(self, key: tuple) -> tuple:
        """A pending task's VT key with its final (lower-bound) tiebreaker
        tightened to the present — the same transform the GVT uses.

        Frozen lower bounds only record *enqueue* cycles; comparing them
        between queued and spilled tasks compares bookkeeping, not
        priority (both dispatch at >= now). Only program order —
        timestamps and real ancestor tiebreakers — may drive scheduling
        preemption, else splitters chase stale bounds in circles.
        """
        return key[:-1] + ((key[-1][0],
                            self.alloc.lower_bound(self.now).raw),)

    def _pick_job(self, tile: Tile, allow_tasks: bool = True):
        specials = self._special_jobs[tile.tid]
        # Coalescers run ahead of everything. Splitters are deprioritized
        # behind regular tasks — but a splitter holding work in *program
        # order earlier* than everything pending must run, or the GVT
        # (and with it every commit) would wedge behind its spilled tasks.
        for i, job in enumerate(specials):
            if job.kind == "coalescer":
                return specials.pop(i)
        best_i = None
        best_key = None
        now_lb = None
        for i, job in enumerate(specials):
            if job.kind == "splitter":
                if not job.buffer.tasks:
                    return specials.pop(i)  # empty: retire it for free
                # min over *stripped* keys — frozen-key minima mix depths
                # incomparably (same pitfall as the GVT computation)
                if now_lb is None:
                    now_lb = self.alloc.lower_bound(self.now).raw
                key = job.buffer.min_stripped(now_lb)
                if best_key is None or key < best_key:
                    best_i, best_key = i, key
        if best_i is not None:
            if not allow_tasks:
                # cores gated off tasks may still drain spilled work
                return specials.pop(best_i)
            pending_key = tile.unit.peek_min_stripped(now_lb)
            if pending_key is None or best_key < pending_key:
                return specials.pop(best_i)
        if not allow_tasks:
            return None
        return tile.unit.pop_best()

    def _dispatch_task(self, core: Core, task: TaskDesc) -> None:
        if task.state is not TaskState.PENDING:
            raise SimulationError(f"dispatching non-pending {task}")
        try:
            tb = self.alloc.alloc(self.now, core.cid)
        except WrapAround:
            self._compact_tiebreakers()
            tb = self.alloc.alloc(self.now, core.cid)
        task.vt = task.vt.finalized(tb)
        task.state = TaskState.RUNNING
        self._frontier.add_run(task)
        task.core = core
        task.dispatch_time = self.now
        core.job = task
        task.begin_attempt()
        self.memory.attach_owner(task)
        if self._ebus is not None:
            self._ebus.emit(tev.DispatchEvent(
                self.now, task.tid, task.label, core.cid, core.tile_id,
                task.attempt))

        ctx = TaskContext(self, task, core.tile_id, core.cid)
        ctx.cycles = self.config.dequeue_cost
        self._executing, self._executing_ctx = task, ctx
        try:
            if (self._faults is not None
                    and self._faults.fail_attempt(task)):
                raise InjectedFault("task_exception", task.tid, task.attempt)
            task.fn(ctx, *task.args)
        except TaskAborted:
            # the cascade already rolled us back and re-queued / squashed us
            core.job = None
            self._schedule(self.now + self.config.abort_penalty,
                           _CORE_FREE, core.tile_id)
            return
        except NeedZoomIn as need:
            self._zoom_park(task, ctx, "in", need.needed_bits)
            core.job = None
            self._wake_tile(core.tile_id)
            return
        except NeedZoomOut:
            self._zoom_park(task, ctx, "out", 0)
            core.job = None
            self._wake_tile(core.tile_id)
            return
        except FractalError:
            raise  # library invariants and typed API misuse stay fatal
        except Exception as exc:  # app-code / injected task failure
            self._on_task_exception(core, task, ctx, exc)
            return
        finally:
            self._executing, self._executing_ctx = None, None

        task.duration = max(1, ctx.cycles + self.config.finish_cost)
        if self._faults is not None:
            task.duration = self._faults.stretch_duration(task, task.duration)
        self._schedule(self.now + task.duration, _FINISH,
                       (core, task, task.attempt))
        self._ensure_tick()

    def _on_task_exception(self, core: Core, task: TaskDesc,
                           ctx: TaskContext, exc: Exception) -> None:
        """An attempt died on an exception (injected fault or app bug).

        With a resilience policy and retry budget left, the attempt rolls
        back exactly like a conflict abort — ``retry_after`` (set before
        the cascade) pushes the requeue out by the exponential backoff.
        Out of budget (or with no policy at all), the speculative state is
        still rolled back cleanly, then the failure surfaces as a
        :class:`TaskExecutionError` chained to the original exception.
        """
        policy = self._resil
        task.n_exec_faults += 1
        attempt = task.attempt
        if policy is not None and task.n_exec_faults < policy.max_attempts:
            delay = backoff_delay(policy, task.n_exec_faults)
            task.retry_after = self.now + delay
            # the cascade's requeue path emits the retry_backoff event
            self._abort_cascade([task], "task exception")
            self._m_exec_retries.inc()
            core.job = None
            self._schedule(self.now + self.config.abort_penalty,
                           _CORE_FREE, core.tile_id)
            return
        vt_repr = repr(task.vt)
        self._abort_cascade([task], "task exception (fatal)")
        core.job = None
        raise TaskExecutionError(
            f"task {task.label}#{task.tid} failed on attempt {attempt}: "
            f"{exc!r}", tid=task.tid, label=task.label, vt=vt_repr,
            depth=task.domain.depth, attempt=attempt) from exc

    def _safe_slot(self, tile: Tile) -> bool:
        """Safe mode: may ``tile`` dispatch a task right now?

        Serialized forward progress (Swarm-style, paper Sec. 2): at most
        one task attempt runs chip-wide, and only the tile holding the
        earliest pending task may dispatch it. Running alone, the earliest
        live attempt cannot lose a conflict to a concurrent speculation,
        so every safe-mode slot moves the commit frontier and the abort
        storm drains instead of spinning.
        """
        for c in self.cores:
            if isinstance(c.job, TaskDesc):
                return False
        best_tile = -1
        best_key: Optional[tuple] = None
        for t in self.tiles:
            key = t.unit.peek_min_key()
            if key is None:
                continue
            key = self._stripped(key)
            if best_key is None or key < best_key:
                best_key, best_tile = key, t.tid
        if best_tile < 0:
            return False
        if best_tile != tile.tid:
            self._wake_tile(best_tile)
            return False
        return True

    def _on_finish(self, core: Core, task: TaskDesc, attempt: int) -> None:
        if (task.attempt != attempt or task.state is not TaskState.RUNNING
                or core.job is not task):
            return  # stale: the attempt was aborted while "running"
        unit = self.tiles[core.tile_id].unit
        task.finish_time = self.now
        self._frontier.discard(task)  # finished work no longer bounds GVT
        if self._ebus is not None:
            self._ebus.emit(tev.FinishEvent(self.now, task.tid, core.cid,
                                          task.duration))
        if unit.acquire_commit_entry():
            task.state = TaskState.FINISHED
            self._finished.append(task)
            core.job = None
            self._dispatch_tile(core.tile_id)
        else:
            # Core stalls holding the finished task until an entry frees.
            task.state = TaskState.FINISH_STALLED
            unit.finish_stalled.append(task)
            self._finished.append(task)
        self._ensure_tick()

    # ==================================================================
    # GVT: commits, zooming
    # ==================================================================
    def _on_tick(self) -> None:
        if not self._live:
            return
        self.arbiter.note_tick(self.now, len(self._live),
                               len(self._finished))
        if self._resil is not None:
            self._resilience_tick()
        gvt = self._compute_gvt()
        if self._finished:
            self._finished.sort(key=TaskDesc.order_key)
            frontier = []
            for t in self._finished:
                # <= is safe: the GVT can only *equal* a finished task's key
                # through a pending task's lower-bound tiebreaker (real
                # tiebreakers are unique), and any future dispatch of that
                # pending task strictly exceeds the bound — so the finished
                # task still precedes every unfinished one.
                if gvt is None or t.order_key() <= gvt:
                    frontier.append(t)
                else:
                    break
            for t in frontier:
                self._commit_one(t)
            if frontier:
                del self._finished[:len(frontier)]
            elif gvt is not None:
                # Commit queues are wedged behind an earlier unfinished
                # task: free space by aborting higher-VT finished tasks
                # (paper Sec. 4.1: "aborting higher-timestamp tasks").
                # This must happen on EVERY stalled tile — the GVT-blocking
                # pending task may be queued on a tile whose cores are all
                # stalled, and only an entry freed *there* lets it dispatch.
                victims = []
                for tile in self.tiles:
                    if not tile.unit.finish_stalled:
                        continue
                    in_queue = [t for t in self._finished
                                if t.state is TaskState.FINISHED
                                and t.core.tile_id == tile.tid]
                    if not in_queue:
                        continue
                    victim = max(in_queue, key=TaskDesc.order_key)
                    if victim.order_key() > gvt:
                        victims.append(victim)
                if victims:
                    self._abort_cascade(victims, "commit queue pressure")
        if self.zoom.requests or self.zoom.frames:
            self.zoom.process()
        self._ensure_tick()

    def _compute_gvt(self) -> Optional[tuple]:
        """Earliest-unfinished VT bound (the GVT), from the incremental
        frontier index (see :class:`~repro.arch.gvt.GvtFrontier`).

        With ``REPRO_GVT_AUDIT=1`` every query is cross-checked against
        the reference linear scan and any divergence raises.
        """
        now_lb = self.alloc.lower_bound(self.now).raw
        best = self._frontier.min_key(now_lb)
        if self._gvt_audit:
            ref = self._compute_gvt_linear(now_lb)
            if ref != best:
                raise SimulationError(
                    f"GVT frontier divergence at cycle {self.now}: "
                    f"indexed={best!r} linear={ref!r}")
        return best

    def _compute_gvt_linear(self, now_lb: int) -> Optional[tuple]:
        """Reference GVT: linear scan over the live set (audit mode only).

        The dynamic bound must be applied *per task*: tasks at different
        nesting depths splice the fresh tiebreaker at different key
        positions, so min(dynamic) is not dynamic(min(frozen)) — a pending
        subdomain task whose (real) ancestor prefix is old can be earlier
        than every dynamically-bounded shallow task. Computing the min any
        other way commits tasks out of VT order.
        """
        best: Optional[tuple] = None
        for task in self._live:
            state = task.state
            if state is TaskState.RUNNING:
                key = task.order_key()
            elif state in (TaskState.PENDING, TaskState.WAIT_ZOOM):
                key = task.order_key()
                key = key[:-1] + ((key[-1][0], now_lb),)
            elif state is TaskState.SPILLED:
                if getattr(task.spill_buffer, "is_zoom", False):
                    continue  # parked outer domains are later than all live
                key = task.order_key()
                key = key[:-1] + ((key[-1][0], now_lb),)
            else:
                continue  # FINISHED / FINISH_STALLED do not bound the GVT
            if best is None or key < best:
                best = key
        return best

    def _note_subdomain(self, domain) -> None:
        self._m_domains.inc()

    def _commit_one(self, task: TaskDesc) -> None:
        key = task.order_key()
        if self._last_commit_key is not None and key < self._last_commit_key:
            raise SimulationError(
                f"commit order violates VT order: {task} (key {key}) after "
                f"key {self._last_commit_key}")
        self._last_commit_key = key
        self.memory.commit(task)
        core = task.core
        if task.state is TaskState.FINISHED:
            cunit = self.tiles[core.tile_id].unit
            cunit.release_commit_entry()
            self._promote_stalled(core.tile_id)
        elif task.state is TaskState.FINISH_STALLED:
            cunit = self.tiles[core.tile_id].unit
            cunit.finish_stalled.remove(task)
            self._m_cycles["stall"][core.cid].value += (
                self.now - task.finish_time)
            core.job = None
            self._wake_tile(core.tile_id)
        else:
            raise SimulationError(f"committing non-finished {task}")
        task.state = TaskState.COMMITTED
        task.commit_seq = self._commit_seq
        self._commit_seq += 1
        task.commit_time = self.now
        self._live.pop(task, None)
        depth = task.domain.depth
        self._m_cycles["committed"][core.cid].value += task.duration
        self._task_counter("committed", depth).value += 1
        self._m_task_len.observe(task.duration)
        task.domain.tasks_committed += 1
        self.arbiter.commits_total += 1
        if self.enable_audit:
            self.commit_log.append(task)
        if self._ebus is not None:
            self._ebus.emit(tev.CommitEvent(
                self.now, task.tid, task.label, core.cid,
                task.dispatch_time, task.duration, depth))
        if task.emits:
            # deferred app events (TaskContext.emit): published exactly
            # once, at the commit that makes the attempt's work real
            for ev in task.emits:
                ev.t = self.now
                fold = getattr(ev, "fold_metrics", None)
                if fold is not None:
                    fold(self.metrics)
                if self._ebus is not None:
                    self._ebus.emit(ev)
            task.emits = None

    def _promote_stalled(self, tile_id: int) -> None:
        unit = self.tiles[tile_id].unit
        while unit.finish_stalled and not unit.commit_queue_full():
            stalled = min(unit.finish_stalled, key=TaskDesc.order_key)
            unit.finish_stalled.remove(stalled)
            unit.acquire_commit_entry()
            stalled.state = TaskState.FINISHED
            self._m_cycles["stall"][stalled.core.cid].value += (
                self.now - stalled.finish_time)
            stalled.finish_time = self.now
            stalled.core.job = None
            self._wake_tile(tile_id)

    # ==================================================================
    # aborts
    # ==================================================================
    def _abort_cascade(self, victims: List[TaskDesc], reason: str,
                       squash_extra: Optional[set] = None) -> None:
        """Abort ``victims`` plus their descendants and dependents.

        Direct victims re-execute; tasks whose parent is in the cascade
        (or listed in ``squash_extra``) are squashed — the re-executing
        parent will recreate them.
        """
        self._cascade_seq += 1
        cascade_id = self._cascade_seq
        # One pass over the child/dependent adjacency. Each victim's hop
        # distance from the seed set feeds the abort-chain-depth telemetry
        # (how far one conflict propagated); with events disabled the hops
        # are simply never read, so a single traversal serves both modes.
        cascade: Dict[TaskDesc, int] = {}
        stack = [(v, 0) for v in victims]
        while stack:
            t, hop = stack.pop()
            if t in cascade or not t.is_live:
                continue
            cascade[t] = hop
            stack.extend((c, hop + 1) for c in t.children)
            stack.extend((d, hop + 1) for d in t.dependents)
        for t in sorted(cascade, key=TaskDesc.order_key, reverse=True):
            squash = (t.parent is not None and t.parent in cascade) or (
                squash_extra is not None and t in squash_extra)
            self._undo_one(t, squash, reason, cascade_id, cascade[t])

    def _undo_one(self, task: TaskDesc, squash: bool, reason: str,
                  cascade_id: int = -1, hop: int = 0) -> None:
        state = task.state
        if state in (TaskState.RUNNING, TaskState.FINISH_STALLED,
                     TaskState.FINISHED):
            self.memory.rollback(task)
            if task is self._executing:
                executed = self._executing_ctx.cycles
            elif state is TaskState.RUNNING:
                executed = min(self.now - task.dispatch_time, task.duration)
            else:
                executed = task.duration
            # Only a still-running victim's core pays the rollback delay;
            # finished victims roll back inside the task unit.
            if state is TaskState.RUNNING:
                executed += self.config.abort_penalty
            self._m_cycles["aborted"][task.core.cid].value += executed
            self._aborts_total += 1
            key = ("aborted", task.domain.depth)
            ctr = self._m_tasks.get(key)
            if ctr is None:
                ctr = self._m_tasks[key] = self.metrics.counter(
                    "tasks", outcome="aborted", depth=key[1])
            ctr.value += 1
            if self._ebus is not None:
                self._ebus.emit(tev.AbortEvent(
                    self.now, task.tid, task.label, task.core.cid,
                    task.dispatch_time, executed, reason, False,
                    cascade_id, hop))
            if task is not self._executing:
                core = task.core
                unit = self.tiles[core.tile_id].unit
                if state is TaskState.RUNNING:
                    core.job = None
                    self._schedule(self.now + self.config.abort_penalty,
                                   _CORE_FREE, core.tile_id)
                elif state is TaskState.FINISH_STALLED:
                    unit.finish_stalled.remove(task)
                    self._finished.remove(task)
                    self._m_cycles["stall"][core.cid].value += (
                        self.now - task.finish_time)
                    core.job = None
                    self._wake_tile(core.tile_id)
                else:
                    self._finished.remove(task)
                    unit.release_commit_entry()
                    self._promote_stalled(core.tile_id)
            else:
                task.aborted = True
                if state is not TaskState.RUNNING:
                    raise SimulationError("executing task not RUNNING")
        elif state is TaskState.PENDING:
            if task in self._limbo:
                pass  # not in any queue; the stale _REQUEUE event is ignored
            else:
                self.tiles[task.queue_tile].unit.remove(task)
        elif state is TaskState.SPILLED:
            task.spill_buffer.remove(task)
            task.spill_buffer = None
        elif state is TaskState.WAIT_ZOOM:
            self.zoom.drop_request(task)
        else:
            raise SimulationError(f"cannot abort {task} in state {state}")

        task.aborted = True
        if squash:
            task.state = TaskState.SQUASHED
            self._frontier.discard(task)
            self._live.pop(task, None)
            self._limbo.pop(task, None)
            key = ("squashed", task.domain.depth)
            ctr = self._m_tasks.get(key)
            if ctr is None:
                ctr = self._m_tasks[key] = self.metrics.counter(
                    "tasks", outcome="squashed", depth=key[1])
            ctr.value += 1
            if self._ebus is not None:
                self._ebus.emit(tev.SquashEvent(self.now, task.tid, task.label,
                                              reason, cascade_id, hop))
        else:
            # Hold the task in limbo for the rollback latency so it cannot
            # re-dispatch (and re-conflict) within the same cycle.
            task.n_aborts += 1
            task.state = TaskState.PENDING
            # Limbo tasks still bound the GVT through their stripped key
            # (the final real tiebreaker of the aborted attempt is dropped;
            # the later _requeue keeps the same prefix).
            self._frontier.add_dyn(task)
            self._limbo[task] = None
            when = max(self.now + self.config.abort_penalty, task.retry_after)
            if self._resil is not None:
                # exponential backoff on every requeue; retry_after may
                # already carry a (larger) exception-retry delay
                when = max(when, self.now + backoff_delay(self._resil,
                                                          task.n_aborts))
                extra = when - self.now - self.config.abort_penalty
                if extra > 0:
                    self._m_backoffs.inc()
                    if self._ebus is not None:
                        self._ebus.emit(tev.RetryBackoffEvent(
                            self.now, task.tid, task.label, task.attempt,
                            extra, reason))
            self._schedule(when, _REQUEUE, task)

    # ==================================================================
    # zooming hooks
    # ==================================================================
    def _zoom_park(self, task: TaskDesc, ctx: TaskContext, direction: str,
                   needed_bits: int) -> None:
        """Roll back the attempt and park it until the zoom completes."""
        if task.children or task.dependents:
            self._abort_cascade(list(task.children) + list(task.dependents),
                                f"zoom-{direction} park",
                                squash_extra=set(task.children))
        self.memory.rollback(task)
        self._m_cycles["aborted"][task.core.cid].value += ctx.cycles
        if self._ebus is not None:
            self._ebus.emit(tev.AbortEvent(
                self.now, task.tid, task.label, task.core.cid,
                task.dispatch_time, ctx.cycles, f"zoom-{direction} park",
                True, -1, 0))
        task.state = TaskState.WAIT_ZOOM
        self._frontier.add_dyn(task)
        self.zoom.park(task, direction, needed_bits)
        self._ensure_tick()

    def _on_requeue(self, task: TaskDesc) -> None:
        if task not in self._limbo or task.state is not TaskState.PENDING:
            return  # squashed or spilled away meanwhile
        del self._limbo[task]
        self._requeue(task)

    def _zoom_release(self, task: TaskDesc) -> None:
        task.state = TaskState.PENDING
        self._requeue(task)

    def _active_live(self) -> List[TaskDesc]:
        """Live tasks excluding those parked on the zoom stack."""
        return [t for t in self._live
                if not (t.state is TaskState.SPILLED
                        and getattr(t.spill_buffer, "is_zoom", False))]

    def _extract_pending(self, task: TaskDesc) -> None:
        """Pull a non-speculative task out of wherever it waits (zoom-in)."""
        if task.state is TaskState.PENDING:
            if task in self._limbo:
                del self._limbo[task]
            else:
                self.tiles[task.queue_tile].unit.remove(task)
        elif task.state is TaskState.SPILLED:
            task.spill_buffer.remove(task)
            task.spill_buffer = None
        elif task.state is TaskState.WAIT_ZOOM:
            self.zoom.drop_request(task)
        else:
            raise SimulationError(
                f"zoom-in spill of speculative task {task}")

    def _rebuild_queues(self) -> None:
        """Re-key queues after a global VT rewrite (zoom / compaction);
        also resets the commit-monotonicity watermark, whose old keys are
        no longer comparable."""
        self._last_commit_key = None
        self._commit_epoch += 1
        for tile in self.tiles:
            tile.unit.rebuild()
        for buf in self._spill_buffers:
            buf.reindex()
        self._frontier.rebuild(self._live)
        # cached owner sort keys went stale with the rewrite
        self.memory.refresh_order_keys()

    # ==================================================================
    # spills
    # ==================================================================
    def _maybe_spill(self, tile_id: int) -> None:
        unit = self.tiles[tile_id].unit
        if (unit.fill_fraction >= self.config.spill_threshold
                and not self._coalescer_queued[tile_id]):
            self._coalescer_queued[tile_id] = True
            duration = max(1, self.config.coalescer_cost_per_task
                           * self.config.spill_batch)
            self._special_jobs[tile_id].append(
                CoalescerJob(tile_id, duration))
            if self._ran:
                self._wake_tile(tile_id)
        if (self._resil is not None
                and unit.pending_count > unit.task_queue_cap):
            self._queue_overload(tile_id, unit)

    def _spill_out(self, tile_id: int, unit, victims: List[TaskDesc]) -> None:
        """Move ``victims`` from the task queue into a splitter buffer."""
        # Remove from the queue *before* building the buffer: SpillBuffer
        # indexes its tasks against queue_token, and unit.remove bumps it.
        for t in victims:
            unit.remove(t)
        buf = SpillBuffer(victims)
        buf.is_zoom = False
        for t in victims:
            t.state = TaskState.SPILLED
            t.spill_buffer = buf
        self._spill_buffers.append(buf)
        self._m_spilled.value += len(victims)
        duration = max(1, self.config.splitter_cost_per_task * len(victims))
        self._special_jobs[tile_id].append(
            SplitterJob(tile_id, buf, duration))

    def _on_finish_special(self, core: Core, job) -> None:
        core.job = None
        tile_id = core.tile_id
        unit = self.tiles[tile_id].unit
        self._m_cycles["spill"][core.cid].value += job.duration
        if job.kind == "coalescer":
            self._coalescer_queued[tile_id] = False
            victims = select_spill_victims(unit.live_pending(),
                                           self._stripped,
                                           self.config.spill_batch)
            if victims:
                self._spill_out(tile_id, unit, victims)
            if self._ebus is not None:
                self._ebus.emit(job.finish_event(self.now, len(victims)))
        else:  # splitter
            buf = job.buffer
            if buf in self._spill_buffers:
                self._spill_buffers.remove(buf)
            restored = list(buf.tasks)
            for t in restored:
                buf.remove(t)
                t.state = TaskState.PENDING
                t.spill_buffer = None
                self._requeue(t)
            if self._ebus is not None:
                self._ebus.emit(job.finish_event(self.now, len(restored)))
        self._dispatch_tile(tile_id)

    # ==================================================================
    # resilience: overload ladder, livelock escalation, watchdog
    # ==================================================================
    def _queue_overload(self, tile_id: int, unit) -> None:
        """Degradation ladder for a task queue past its physical capacity.

        (1) spill harder: a synchronous emergency coalesce (no coalescer
        latency — the queue has no room to wait); (2) enter safe mode,
        which stops speculative fan-out at its source; (3) past
        ``queue_fail_factor`` x capacity, raise :class:`QueueError`.
        """
        overflow = unit.pending_count - unit.task_queue_cap
        victims = select_spill_victims(
            unit.live_pending(), self._stripped,
            max(self.config.spill_batch, overflow))
        if victims:
            if self._ebus is not None:
                self._ebus.emit(tev.QueuePressureEvent(
                    self.now, tile_id, unit.pending_count,
                    unit.task_queue_cap, "emergency_spill"))
            self._spill_out(tile_id, unit, victims)
            if self._ran:
                self._wake_tile(tile_id)
        if unit.pending_count <= unit.task_queue_cap:
            return
        if not self._safe_mode:
            if self._ebus is not None:
                self._ebus.emit(tev.QueuePressureEvent(
                    self.now, tile_id, unit.pending_count,
                    unit.task_queue_cap, "safe_mode"))
            self._enter_safe_mode("queue_overflow")
        if (unit.pending_count
                > unit.task_queue_cap * self._resil.queue_fail_factor):
            if self._ebus is not None:
                self._ebus.emit(tev.QueuePressureEvent(
                    self.now, tile_id, unit.pending_count,
                    unit.task_queue_cap, "fail"))
            raise QueueError(
                f"tile {tile_id} task queue at {unit.pending_count} "
                f"(> {self._resil.queue_fail_factor:g}x capacity "
                f"{unit.task_queue_cap}) despite emergency spills and "
                f"safe mode")

    def _resilience_tick(self) -> None:
        """Per-GVT-tick resilience work: watchdog limits, livelock FSM."""
        policy = self._resil
        if policy.max_cycles and self.now > policy.max_cycles:
            raise _WatchdogFire("max_cycles", policy.max_cycles)
        if (policy.max_wall_seconds
                and time.monotonic() - self._wall_start
                > policy.max_wall_seconds):
            raise _WatchdogFire("max_wall_seconds", policy.max_wall_seconds)
        det = self._livelock
        if det is None:
            return
        action = det.note_tick(self._aborts_total,
                               self.arbiter.commits_total)
        if action is None:
            return
        if action == "safe_enter":
            self._enter_safe_mode("livelock")
            return
        if action == "safe_exit":
            self._exit_safe_mode()
            return
        if action == "throttle":
            self._throttled = True
        elif action == "release":
            self._throttled = False
            for tile in self.tiles:
                self._wake_tile(tile.tid)
        if self._ebus is not None:
            aborts, commits = det.window_totals
            self._ebus.emit(tev.LivelockThrottleEvent(
                self.now, action, det.abort_rate, aborts, commits))

    def _enter_safe_mode(self, cause: str) -> None:
        if self._safe_mode:
            return
        self._safe_mode = True
        self._throttled = False
        det = self._livelock
        if det is not None:
            det.force_safe()
            det.safe_since = self.now
        if self._m_safe_entries is not None:
            self._m_safe_entries.inc()
        if self._ebus is not None:
            rate = det.abort_rate if det is not None else 1.0
            self._ebus.emit(tev.SafeModeEnterEvent(
                self.now, rate, len(self._live), cause))

    def _exit_safe_mode(self) -> None:
        if not self._safe_mode:
            return
        self._safe_mode = False
        det = self._livelock
        if self._ebus is not None:
            commits = det.safe_commits if det is not None else 0
            since = det.safe_since if det is not None else self.now
            self._ebus.emit(tev.SafeModeExitEvent(
                self.now, commits, self.now - since))
        for tile in self.tiles:
            self._wake_tile(tile.tid)

    def _watchdog_wrapup(self, fire: _WatchdogFire) -> RunStats:
        """Graceful watchdog: report the failure instead of raising."""
        self.metrics.counter("watchdog_fires", kind=fire.kind).inc()
        if self._ebus is not None:
            self._ebus.emit(tev.WatchdogEvent(
                self.now, fire.kind, float(fire.limit), len(self._live)))
        self.stats.failure = {
            "reason": f"watchdog:{fire.kind}",
            "limit_kind": fire.kind,
            "limit": fire.limit,
            "cycle": self.now,
            "n_live": len(self._live),
            "live_sample": [
                {"tid": t.tid, "label": t.label, "state": t.state.name,
                 "vt": repr(t.vt)}
                for t in list(self._live)[:8]],
        }
        self._dump_crash("watchdog", None)
        self._finalize_stats()
        return self.stats

    def _dump_crash(self, reason: str, exc: Optional[BaseException]) -> None:
        """Write a crash bundle if a dump directory was configured.

        Dump trouble must never mask the original failure, so everything
        is swallowed (the path attribute stays None on a failed write).
        """
        if self.crash_dump_dir is None:
            return
        from ..faults.crashdump import write_crash_bundle
        try:
            self.crash_bundle_path = write_crash_bundle(
                self, self.crash_dump_dir, reason, exc)
        except Exception:
            pass

    # ==================================================================
    # tiebreaker wrap-around (paper Sec. 4.4)
    # ==================================================================
    def _compact_tiebreakers(self) -> None:
        self._m_wraps.inc()
        if self._ebus is not None:
            self._ebus.emit(tev.WraparoundEvent(self.now, len(self._live)))
        for t in self._live:
            t.vt = t.vt.compacted(self.alloc)
        self.alloc.compact(self.now)
        self._rebuild_queues()
        saturated = [t for t in self._live
                     if t.is_speculative and t.vt.final_tiebreaker_saturated()]
        if saturated:
            keys = [t.order_key() for t in self._live]
            earliest = min(keys)
            victims = [t for t in saturated if t.order_key() != earliest]
            if victims:
                self._abort_cascade(victims, "tiebreaker wraparound")

    # ==================================================================
    # wrap-up
    # ==================================================================
    def _finalize_stats(self) -> None:
        """Fold module-owned counters into the registry, then rebuild
        :class:`RunStats` from it — the registry is the only set of books."""
        m = self.metrics
        s = self.stats
        s.makespan = self.now

        m.counter("conflicts", kind="true").value = \
            self.memory.n_true_conflicts
        m.counter("conflicts", kind="false_positive").value = getattr(
            self.conflicts, "false_positives", 0)
        m.counter("zooms", direction="in").value = self.arbiter.zoom_ins
        m.counter("zooms", direction="out").value = self.arbiter.zoom_outs
        m.counter("gvt_ticks").value = self.arbiter.ticks
        m.counter("mem_accesses", op="load").value = self.memory.n_loads
        m.counter("mem_accesses", op="store").value = self.memory.n_stores
        for key, value in self.cache.snapshot().items():
            m.counter("cache", event=key).value = value

        bd = s.breakdown
        bd.committed = m.total("cycles", category="committed")
        bd.aborted = m.total("cycles", category="aborted")
        bd.spill = m.total("cycles", category="spill")
        bd.stall = m.total("cycles", category="stall")
        used = bd.committed + bd.aborted + bd.spill + bd.stall
        bd.empty = max(s.n_cores * s.makespan - used, 0)
        m.counter("cycles", category="empty").value = bd.empty

        s.tasks_committed = m.total("tasks", outcome="committed")
        s.tasks_aborted = m.total("tasks", outcome="aborted")
        s.tasks_squashed = m.total("tasks", outcome="squashed")
        s.tasks_spilled = self._m_spilled.value
        s.enqueues = m.total("enqueues")
        s.domains_created = self._m_domains.value
        s.domains_flattened = m.counter("domains_flattened").value
        s.max_depth = self._m_depth.value
        s.tiebreaker_wraparounds = self._m_wraps.value
        s.true_conflicts = m.counter("conflicts", kind="true").value
        s.false_positive_conflicts = m.counter(
            "conflicts", kind="false_positive").value
        s.zoom_ins = m.counter("zooms", direction="in").value
        s.zoom_outs = m.counter("zooms", direction="out").value
        s.gvt_ticks = m.counter("gvt_ticks").value
        s.cache = {labels["event"]: c.value
                   for labels, c in m.counters_named("cache")}

        if self._faults is not None:
            for site, n in self._faults.injected.items():
                if n:
                    m.counter("faults_injected", site=site).value = n
            if self.memory.n_injected_conflicts:
                m.counter("conflicts", kind="injected").value = \
                    self.memory.n_injected_conflicts
            s.faults_injected = self._faults.total_injected
        if self._resil is not None:
            s.exec_fault_retries = self._m_exec_retries.value
            s.backoff_requeues = self._m_backoffs.value
            s.safe_mode_entries = self._m_safe_entries.value

    # ------------------------------------------------------------------
    def audit(self) -> None:
        """Re-check this run for serializability (raises on violation)."""
        from .audit import audit_serializability
        if not self.enable_audit:
            raise SimulationError("run was executed with enable_audit=False")
        try:
            audit_serializability(self._initial_snapshot, self.commit_log,
                                  self.memory._values,
                                  default=self.memory.default)
        except SerializabilityViolation as exc:
            self._dump_crash("SerializabilityViolation", exc)
            raise
