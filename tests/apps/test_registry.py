"""Regression tests for app-registry name resolution."""

import pytest

from repro.apps.registry import (APPS, MODULE_TO_NAME, UnknownAppError,
                                 resolve_app)


class TestResolveApp:
    def test_short_name_returns_registry_entry(self):
        module, variants = resolve_app("mis")
        assert module == "repro.apps.mis"
        assert variants == ("flat", "swarm", "fractal")

    def test_dotted_path_of_registered_module_returns_its_variants(self):
        # regression: this used to round-trip through a convoluted
        # APPS.get(MODULE_TO_NAME.get(...)) chain; the variants of a
        # known dotted module must come back exactly as registered
        for name, (module, variants) in APPS.items():
            assert resolve_app(module) == (module, variants)

    def test_unregistered_dotted_path_has_unknown_variants(self):
        module, variants = resolve_app("tests.farm._fakeapp")
        assert module == "tests.farm._fakeapp"
        assert variants is None

    def test_unknown_plain_name_raises_unknown_app_error(self):
        with pytest.raises(UnknownAppError) as ei:
            resolve_app("nope")
        # KeyError subclass for old callers, readable message for new ones
        assert isinstance(ei.value, KeyError)
        assert str(ei.value).startswith("unknown app 'nope'")
        assert "mis" in str(ei.value)

    def test_module_to_name_covers_every_entry(self):
        assert set(MODULE_TO_NAME.values()) == set(APPS)

    def test_pbbs_family_is_registered(self):
        for name in ("spanning", "contract", "refine"):
            module, variants = resolve_app(name)
            assert module == f"repro.apps.pbbs.{name}"
            assert variants == ("flat", "swarm", "fractal", "specfor")
