"""Priority-reservation cells over versioned memory (PBBS ``reservation``).

A :class:`ReservationTable` is an array of priority cells living in
speculative memory (:class:`~repro.mem.data.SpecArray`). Iteration ``i``
stakes a claim on location ``loc`` with :meth:`write_min` — the cell keeps
the *minimum* priority written, so the lowest-index iteration contending
for a location always ends up holding it no matter what order the writes
land in. ``write_min`` is commutative; that order-independence is what
makes round-based execution equal the sequential loop (deterministic
reservations, see :mod:`repro.specfor.engine`).

Protocol discipline for steps built on this table:

- **reserve phase**: only ``write_min``. A reserve step must *not* make
  its keep/filter decision from the cells' current contents (they are
  mid-round, order-dependent); filter only on state committed by earlier
  phases.
- **commit phase**: ``holds`` to check ownership, then mutate app state;
  ``reset`` cells the committer holds, or ``check_release`` stale holds
  from an iteration bowing out. Both write only cells valued ``i``, so
  concurrent same-phase committers (which hold disjoint cells) commute.
"""

from __future__ import annotations

from ..mem.data import SpecArray

#: empty-cell sentinel — larger than any real iteration priority
UNRESERVED = 1 << 62


class ReservationTable:
    """A fixed-size table of priority-writeMin reservation cells."""

    __slots__ = ("cells",)

    def __init__(self, cells: SpecArray):
        self.cells = cells

    @classmethod
    def alloc(cls, host, name: str, n: int) -> "ReservationTable":
        """Allocate ``n`` cells on ``host`` (build time only), all empty."""
        return cls(host.array(name, max(n, 1), fill=UNRESERVED))

    def __len__(self) -> int:
        return len(self.cells)

    # --- reserve phase -------------------------------------------------
    def write_min(self, ctx, loc: int, i: int) -> None:
        """Stake priority ``i`` on ``loc`` (keeps the minimum)."""
        if i < self.cells.get(ctx, loc):
            self.cells.set(ctx, loc, i)

    # --- commit phase --------------------------------------------------
    def holds(self, ctx, loc: int, i: int) -> bool:
        """True when iteration ``i`` won location ``loc`` this round."""
        return self.cells.get(ctx, loc) == i

    def reset(self, ctx, loc: int) -> None:
        """Empty ``loc`` (committer releasing a cell it holds)."""
        self.cells.set(ctx, loc, UNRESERVED)

    def check_release(self, ctx, loc: int, i: int) -> bool:
        """Empty ``loc`` only if ``i`` holds it; True when released.

        For iterations that leave the contest without committing (a
        reserve-step filter fired after earlier rounds reserved): a stale
        winning priority would block every higher-index contender forever.
        """
        if self.cells.get(ctx, loc) == i:
            self.cells.set(ctx, loc, UNRESERVED)
            return True
        return False

    # --- inspection ----------------------------------------------------
    def snapshot(self):
        """Non-speculative copy of the cell values (tests/debug)."""
        return self.cells.snapshot()
