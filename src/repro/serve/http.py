"""The serve HTTP layer: a small asyncio HTTP/1.1 server (stdlib only).

Routes (all JSON unless noted)::

    POST /v1/jobs           submit a JobSpec; 202 queued / 200 warm or
                            coalesced / 400 field errors / 429 quota
    GET  /v1/jobs           list known jobs
    GET  /v1/jobs/{id}      job state document
    GET  /v1/jobs/{id}/result   RunStats JSON (409 while pending,
                                500 + error when failed)
    GET  /v1/jobs/{id}/events   Server-Sent Events progress stream
    GET  /healthz           liveness + drain state
    GET  /metrics           serve/farm/sim metrics snapshot + summary

The server is deliberately HTTP/1.1-minimal: no TLS, no chunked request
bodies, JSON in / JSON out, SSE for streaming. It exists so the farm can
be driven by many tenants without importing repro — everything deeper
lives in :class:`~repro.serve.manager.JobManager`.
"""

from __future__ import annotations

import asyncio
import json
import math
import signal
import sys
import threading
import time
from typing import Optional, Tuple
from urllib.parse import urlsplit

from ..errors import ConfigError
from ..farm import SpecValidationError
from .config import SERVE_SCHEMA, ServeConfig
from .manager import DONE, FAILED, JobManager, ServeError

#: largest accepted request body (a JobSpec is tiny; this is generous)
MAX_BODY = 8 * 1024 * 1024

#: seconds between SSE keepalive comments on an idle stream
SSE_KEEPALIVE_S = 15.0

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            401: "Unauthorized", 404: "Not Found",
            405: "Method Not Allowed", 409: "Conflict",
            413: "Payload Too Large", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable"}


class _Request:
    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(self, method: str, path: str, query: str, headers: dict,
                 body: bytes) -> None:
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body

    @property
    def api_key(self) -> str:
        return self.headers.get("x-api-key", "")

    def json(self) -> dict:
        if not self.body:
            raise ValueError("empty request body")
        doc = json.loads(self.body.decode("utf-8"))
        if not isinstance(doc, dict):
            raise ValueError("request body must be a JSON object")
        return doc


class ServeServer:
    """One listening server bound to a :class:`JobManager`."""

    def __init__(self, manager: JobManager, config: ServeConfig) -> None:
        self.manager = manager
        self.config = config
        self.port: Optional[int] = None
        self._server: Optional[asyncio.base_events.Server] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._client, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self.manager.start()

    async def close(self) -> None:
        """Stop accepting new connections (drain happens in the manager)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling -------------------------------------------
    async def _client(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                req = await self._read_request(reader, writer)
                if req is None:
                    break
                keep = await self._route(req, writer)
                if not keep:
                    break
        except (asyncio.IncompleteReadError, ConnectionError,
                asyncio.TimeoutError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader, writer) -> Optional[_Request]:
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            return None
        try:
            method, target, _version = line.decode("latin-1").split()
        except ValueError:
            self._send(writer, 400, {"error": "malformed request line"})
            return None
        headers = {}
        while True:
            h = await reader.readline()
            if h in (b"\r\n", b"\n", b""):
                break
            name, _, value = h.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length") or 0)
        if length > MAX_BODY:
            self._send(writer, 413, {"error": "request body too large"})
            return None
        body = await reader.readexactly(length) if length else b""
        parts = urlsplit(target)
        return _Request(method.upper(), parts.path, parts.query, headers,
                        body)

    # -- responses -----------------------------------------------------
    def _send(self, writer, status: int, doc: dict, *,
              headers: Optional[dict] = None, keep_alive: bool = True) -> None:
        doc = {"schema": SERVE_SCHEMA, **doc}
        body = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
        head = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                "Content-Type: application/json",
                f"Content-Length: {len(body)}",
                f"Connection: {'keep-alive' if keep_alive else 'close'}"]
        for k, v in (headers or {}).items():
            head.append(f"{k}: {v}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
                     + body)

    # -- routing -------------------------------------------------------
    async def _route(self, req: _Request, writer) -> bool:
        try:
            return await self._dispatch(req, writer)
        except SpecValidationError as exc:
            self._send(writer, 400, {"error": str(exc.what),
                                     "source": "spec",
                                     "errors": exc.errors})
        except ServeError as exc:
            doc = {"error": str(exc)}
            headers = {}
            if getattr(exc, "retry_after", None) is not None:
                headers["Retry-After"] = str(
                    max(1, math.ceil(exc.retry_after)))
                doc["retry_after"] = round(exc.retry_after, 3)
                doc["reason"] = exc.reason
            self._send(writer, exc.status, doc, headers=headers)
        except (ValueError, json.JSONDecodeError) as exc:
            self._send(writer, 400, {"error": f"bad request: {exc}"})
        except (ConnectionError, asyncio.IncompleteReadError):
            raise
        except Exception as exc:                     # pragma: no cover
            self._send(writer, 500,
                       {"error": f"{type(exc).__name__}: {exc}"})
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            return False
        return True

    async def _dispatch(self, req: _Request, writer) -> bool:
        m, path = req.method, req.path.rstrip("/") or "/"
        if path == "/healthz" and m == "GET":
            self._send(writer, 200, self.manager.healthy())
        elif path == "/metrics" and m == "GET":
            self._send(writer, 200, {
                "schema": "repro.serve-metrics/1",
                "serve": self.manager.summary(),
                "metrics": self.manager.metrics_snapshot()})
        elif path == "/v1/jobs" and m == "POST":
            doc = req.json()
            loop = asyncio.get_running_loop()
            job, outcome = await loop.run_in_executor(
                None, self.manager.submit, doc, req.api_key)
            status = 202 if outcome == "queued" else 200
            self._send(writer, status,
                       {**job.to_doc(), "outcome": outcome})
        elif path == "/v1/jobs" and m == "GET":
            self._send(writer, 200, {"jobs": self.manager.jobs()})
        elif path.startswith("/v1/jobs/"):
            return await self._job_route(req, writer, path)
        else:
            self._send(writer, 404, {"error": f"no route {m} {req.path}"},
                       keep_alive=False)
            await writer.drain()
            return False
        await writer.drain()
        return True

    async def _job_route(self, req: _Request, writer, path: str) -> bool:
        rest = path[len("/v1/jobs/"):]
        job_id, _, sub = rest.partition("/")
        if req.method != "GET" or sub not in ("", "result", "events"):
            self._send(writer, 405, {"error": "method not allowed"})
            return True
        job = self.manager.job(job_id)     # raises UnknownJobError -> 404
        if sub == "":
            self._send(writer, 200, job.to_doc())
        elif sub == "result":
            if job.state == DONE:
                self._send(writer, 200,
                           {"id": job.digest, "state": job.state,
                            "cached": job.cached, "wall_s": job.wall_s,
                            "stats": job.stats.to_dict()})
            elif job.state == FAILED:
                self._send(writer, 500,
                           {"id": job.digest, "state": job.state,
                            "error": job.error})
            else:
                self._send(writer, 409,
                           {"id": job.digest, "state": job.state,
                            "error": "job not finished"})
        else:
            await self._sse(req, writer, job_id)
            return False
        await writer.drain()
        return True

    # -- SSE -----------------------------------------------------------
    async def _sse(self, req: _Request, writer, job_id: str) -> None:
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()

        def push(event: dict) -> None:
            loop.call_soon_threadsafe(queue.put_nowait, event)

        replay = self.manager.subscribe(job_id, push)
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: text/event-stream\r\n"
                     b"Cache-Control: no-cache\r\n"
                     b"Connection: close\r\n\r\n")
        try:
            final = False
            for event in replay:
                writer.write(_sse_frame(event))
                final = final or bool(event.get("final"))
            await writer.drain()
            while not final:
                try:
                    event = await asyncio.wait_for(queue.get(),
                                                   timeout=SSE_KEEPALIVE_S)
                except asyncio.TimeoutError:
                    writer.write(b": keepalive\n\n")
                    await writer.drain()
                    continue
                writer.write(_sse_frame(event))
                await writer.drain()
                final = bool(event.get("final"))
        finally:
            self.manager.unsubscribe(job_id, push)


def _sse_frame(event: dict) -> bytes:
    kind = event.get("kind", "event")
    data = json.dumps(event, sort_keys=True)
    return (f"event: {kind}\nid: {event.get('seq', 0)}\n"
            f"data: {data}\n\n").encode("utf-8")


# -- entry points ------------------------------------------------------
async def _amain(config: ServeConfig,
                 manager: Optional[JobManager] = None) -> int:
    manager = manager or JobManager(config)
    server = ServeServer(manager, config)
    await server.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:      # pragma: no cover (non-unix)
            pass
    print(f"[serve] listening on http://{config.host}:{server.port} "
          f"({config.workers} workers, cache="
          f"{config.cache_dir or 'off'})", file=sys.stderr, flush=True)
    await stop.wait()
    print("[serve] signal received; draining", file=sys.stderr, flush=True)
    await server.close()
    clean = await loop.run_in_executor(None, manager.drain,
                                       config.drain_timeout_s)
    print(f"[serve] drain {'complete' if clean else 'TIMED OUT'}",
          file=sys.stderr, flush=True)
    return 0 if clean else 3


def serve_forever(config: ServeConfig) -> int:
    """Run until SIGTERM/SIGINT; returns the process exit code
    (0 clean drain, 3 drain timeout)."""
    try:
        return asyncio.run(_amain(config))
    except KeyboardInterrupt:            # pragma: no cover
        return 0


class ServerHandle:
    """A server running on a background thread (tests and benchmarks)."""

    def __init__(self, manager: JobManager, server: ServeServer,
                 loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread) -> None:
        self.manager = manager
        self.server = server
        self.loop = loop
        self.thread = thread

    @property
    def url(self) -> str:
        return f"http://{self.server.config.host}:{self.server.port}"

    def stop(self, drain: bool = True,
             timeout: Optional[float] = None) -> bool:
        """Close the listener, drain the manager, stop the loop."""
        fut = asyncio.run_coroutine_threadsafe(self.server.close(),
                                               self.loop)
        fut.result(timeout=10)
        clean = self.manager.drain(
            timeout if timeout is not None
            else (self.manager.config.drain_timeout_s if drain else 0.0))
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        return clean


def start_in_thread(config: ServeConfig, *,
                    manager: Optional[JobManager] = None) -> ServerHandle:
    """Start a server on a daemon thread; returns once it is listening.

    ``config.port`` may be 0 to pick a free port (see ``handle.url``).
    """
    mgr = manager or JobManager(config)
    holder: dict = {}
    started = threading.Event()

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        server = ServeServer(mgr, config)
        try:
            loop.run_until_complete(server.start())
        except OSError as exc:
            holder["error"] = ConfigError(
                f"cannot bind {config.host}:{config.port}: {exc}")
            started.set()
            loop.close()
            return
        holder["server"] = server
        holder["loop"] = loop
        started.set()
        try:
            loop.run_forever()
        finally:
            for task in asyncio.all_tasks(loop):
                task.cancel()
            loop.run_until_complete(asyncio.sleep(0))
            loop.close()

    thread = threading.Thread(target=run, name="serve-http", daemon=True)
    thread.start()
    if not started.wait(timeout=10):
        raise ConfigError("server failed to start within 10s")
    if "error" in holder:
        raise holder["error"]
    return ServerHandle(mgr, holder["server"], holder["loop"], thread)
