"""STAMP genome: gene sequencing by segment deduplication and overlap
matching.

A genome string is sampled into overlapping fixed-length segments (with
duplicates). Phase 1 transactions deduplicate segments into a shared hash
set and index each unique segment by its (length-1)-prefix; phase 2
transactions link each unique segment to its successor (the segment whose
prefix equals this one's suffix), rebuilding the chain. The checker
traverses the chain and must recover the original genome exactly.

Phases are sequenced with root-domain timestamps (STAMP uses barriers).
Conflicts: hash-set insertions (phase 1) and next-pointer writes (phase 2)
— all short transactions, so genome scales once hints localize the hash
buckets (Fig. 17, +Hints helps genome).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Dict, List

from ...errors import AppError
from ...vt import Ordering
from .common import require_stamp_variant
from ..common import splitmix


@dataclass
class GenomeInput:
    genome: str
    segment_len: int
    segments: List[str]          # occurrences, shuffled, with duplicates

    @property
    def unique_count(self) -> int:
        return len(set(self.segments))


def make_input(genome_len: int = 160, segment_len: int = 12,
               duplication: float = 1.5, seed: int = 9) -> GenomeInput:
    rng = random.Random(seed)
    genome = "".join(rng.choice("ACGT") for _ in range(genome_len))
    positions = list(range(genome_len - segment_len + 1))
    segments = [genome[p:p + segment_len] for p in positions]
    # Regenerate until all (L-1)-grams are unique so the chain is exact.
    while len({s[:-1] for s in segments}) != len(segments) or \
            len({s[1:] for s in segments}) != len(segments):
        genome = "".join(rng.choice("ACGT") for _ in range(genome_len))
        segments = [genome[p:p + segment_len] for p in positions]
    occurrences = list(segments)
    extra = int(len(segments) * (duplication - 1.0))
    occurrences += [rng.choice(segments) for _ in range(extra)]
    rng.shuffle(occurrences)
    return GenomeInput(genome, segment_len, occurrences)


def build(host, inp: GenomeInput, variant: str = "fractal") -> Dict:
    require_stamp_variant(variant)
    n_occ = len(inp.segments)
    uniq = host.dict("gen.uniq", capacity=n_occ + 1)
    by_prefix = host.dict("gen.by_prefix", capacity=n_occ + 1)
    nxt = host.dict("gen.next", capacity=n_occ + 1)

    def dedup(ctx, i):
        seg = inp.segments[i]
        if uniq.put_if_absent(ctx, seg, 1):
            by_prefix.put(ctx, seg[:-1], seg)
        ctx.compute(15)

    def link(ctx, i):
        seg = inp.segments[i]
        succ = by_prefix.get(ctx, seg[1:])
        if succ is not None:
            nxt.put(ctx, seg, succ)
        ctx.compute(10)

    if variant == "tm":
        # software work queue per phase: a cursor cell serializes claims
        cursor = host.array("gen.cursor", 16)

        def worker(ctx, phase):
            slot = phase * 8
            i = cursor.get(ctx, slot)
            if i >= n_occ:
                return
            cursor.set(ctx, slot, i + 1)
            (dedup if phase == 0 else link)(ctx, i)
            ctx.enqueue(worker, phase, ts=ctx.timestamp, label="worker")

        for w in range(16):
            host.enqueue_root(worker, 0, ts=0, label="worker")
            host.enqueue_root(worker, 1, ts=1, label="worker")
    else:
        for i in range(n_occ):
            # crc32, not hash(): str hashing is salted per process
            # (PYTHONHASHSEED), which would re-randomize the hint-to-tile
            # mapping — and with it makespans — on every run
            hint = splitmix(zlib.crc32(inp.segments[i].encode())) & 0xFFFF
            host.enqueue_root(dedup, i, ts=0, hint=hint, label="dedup")
            host.enqueue_root(link, i, ts=1, hint=hint, label="link")
    return {"uniq": uniq, "next": nxt, "input": inp}


def root_ordering(variant: str) -> Ordering:
    return Ordering.ORDERED_32


def check(handles: Dict, inp: GenomeInput) -> None:
    uniq = {k for k, v in handles["uniq"].items_nonspec()}
    if uniq != set(inp.segments):
        raise AppError("deduplicated set mismatch")
    nxt = dict(handles["next"].items_nonspec())
    # traverse from the unique head (the segment nobody points to)
    pointed = set(nxt.values())
    heads = [s for s in uniq if s not in pointed]
    if len(heads) != 1:
        raise AppError(f"expected 1 chain head, found {len(heads)}")
    s = heads[0]
    out = [s]
    seen = {s}
    while s in nxt:
        s = nxt[s]
        if s in seen:
            raise AppError("cycle in segment chain")
        seen.add(s)
        out.append(s)
    rebuilt = out[0] + "".join(seg[-1] for seg in out[1:])
    if rebuilt != inp.genome:
        raise AppError("reconstructed genome differs from the original")
