"""Integration tests: SpecDict/SpecQueue under real speculation."""

import pytest

from repro import Simulator, SystemConfig


def make_sim(n_cores=16, **overrides):
    overrides.setdefault("conflict_mode", "precise")
    return Simulator(SystemConfig.with_cores(n_cores, **overrides))


class TestConcurrentDict:
    def test_put_if_absent_unique_winner(self):
        """Many tasks race to claim the same key; exactly one must win."""
        sim = make_sim()
        d = sim.dict("d", capacity=4)
        wins = sim.cell("wins", 0)

        def claim(ctx, who):
            if d.put_if_absent(ctx, "key", who):
                wins.add(ctx, 1)

        for i in range(24):
            sim.enqueue_root(claim, i)
        sim.run(max_cycles=10_000_000)
        sim.audit()
        assert wins.peek() == 1
        assert d.peek("key") is not None

    def test_disjoint_keys_parallel(self):
        sim = make_sim()
        d = sim.dict("d", capacity=64, stride=8)

        def put(ctx, k):
            d.put(ctx, k, k * 10)

        for k in range(40):
            sim.enqueue_root(put, k, hint=k)
        stats = sim.run(max_cycles=10_000_000)
        assert dict(d.items_nonspec()) == {k: k * 10 for k in range(40)}

    def test_delete_and_reinsert_race(self):
        sim = make_sim()
        d = sim.dict("d", capacity=4)
        d.poke("k", 1)

        def deleter(ctx):
            d.delete(ctx, "k")

        def inserter(ctx):
            d.put_if_absent(ctx, "k", 2)

        for _ in range(6):
            sim.enqueue_root(deleter)
            sim.enqueue_root(inserter)
        sim.run(max_cycles=10_000_000)
        sim.audit()
        assert d.peek("k") in (None, 1, 2)


class TestConcurrentQueue:
    def test_producers_consumers_conserve_items(self):
        sim = make_sim()
        q = sim.queue("q", capacity=64)
        consumed = sim.cell("consumed", 0)
        drained = sim.cell("drained", 0)

        def produce(ctx, v):
            q.push(ctx, v)

        def consume(ctx):
            v = q.pop(ctx, default=None)
            if v is None:
                drained.add(ctx, 1)
            else:
                consumed.add(ctx, 1)

        for v in range(20):
            sim.enqueue_root(produce, v)
        for _ in range(30):
            sim.enqueue_root(consume)
        sim.run(max_cycles=20_000_000)
        sim.audit()
        assert consumed.peek() + q.size_nonspec() == 20
        assert consumed.peek() + drained.peek() == 30

    def test_fifo_order_preserved_with_single_consumer_chain(self):
        sim = make_sim()
        q = sim.queue("q", capacity=16)
        log = sim.array("log", 8)
        pos = sim.cell("pos", 0)
        for v in (3, 1, 4, 1, 5):
            q.mem.poke(q.region.addr(q._BUF + pos.peek()), v)
            pos.poke(pos.peek() + 1)
        q.mem.poke(q.region.addr(q._TAIL), 5)
        pos.poke(0)

        def drain(ctx):
            v = q.pop(ctx, default=None)
            if v is not None:
                p = pos.get(ctx)
                log.set(ctx, p, v)
                pos.set(ctx, p + 1)
                ctx.enqueue(drain)

        sim.enqueue_root(drain)
        sim.run(max_cycles=10_000_000)
        assert log.snapshot()[:5] == [3, 1, 4, 1, 5]
