"""Wire auth (X-Repro-Token) and agent resilience to coordinator 5xx.

The token gate lives in the shared HTTP scaffold, so one coordinator
server exercises every route; the agent-side tests use a stub client to
script coordinator failures without a network.
"""

import threading

import pytest

from repro.farm.dist import (AgentConfig, CoordinatorConfig, DistAgent,
                             DistClient, TOKEN_ENV,
                             start_coordinator_in_thread)
from repro.serve.client import ServeAPIError

FAKEAPP = "tests.farm._fakeapp"
TOKEN = "sekrit-token"


def job_docs():
    return [{"app": FAKEAPP, "n_cores": 1, "input": {"n_tasks": 3}}]


@pytest.fixture
def coordinator():
    cfg = CoordinatorConfig(port=0, lease_ttl_s=5.0,
                            heartbeat_interval_s=0.5, fragments=1,
                            cache_dir=None, auth_token=TOKEN)
    handle = start_coordinator_in_thread(cfg)
    yield handle
    handle.stop()


def counters(coord, name):
    snap = coord.metrics_snapshot()
    return sum(c["value"] for c in snap["counters"]
               if c["name"] == name)


class TestTokenGate:
    def test_every_endpoint_401s_without_a_token(self, coordinator):
        anon = DistClient(coordinator.url, token="")
        calls = [
            lambda: anon.healthz(),
            lambda: anon.metrics(),
            lambda: anon.submit_sweep(job_docs()),
            lambda: anon.sweep_status("f" * 8),
            lambda: anon.sweep_results("f" * 8),
            lambda: anon.fragment_status("f" * 8, 0),
            lambda: anon.register(agent="nope"),
            lambda: anon.heartbeat("nope", []),
            lambda: anon.acquire("nope", max_fragments=1),
            lambda: anon.deliver("lease-1", {"agent": "nope",
                                             "sweep": "f" * 8,
                                             "fragment": 0, "epoch": 0,
                                             "results": []}),
        ]
        for call in calls:
            with pytest.raises(ServeAPIError) as err:
                call()
            assert err.value.status == 401
        assert counters(coordinator.coordinator,
                        "dist.auth_reject") == len(calls)

    def test_wrong_token_is_also_rejected(self, coordinator):
        with pytest.raises(ServeAPIError) as err:
            DistClient(coordinator.url, token="not-it").healthz()
        assert err.value.status == 401

    def test_wait_ready_fails_fast_on_401(self, coordinator):
        anon = DistClient(coordinator.url, token="")
        with pytest.raises(ServeAPIError) as err:
            anon.wait_ready(timeout=30.0)   # must NOT sit out 30s
        assert err.value.status == 401

    def test_valid_token_serves_a_sweep_end_to_end(self, coordinator):
        client = DistClient(coordinator.url, token=TOKEN)
        assert client.healthz()["ok"]
        agent = DistAgent(AgentConfig(coordinator_url=coordinator.url,
                                      agent_id="w1", jobs=1,
                                      max_fragments=8,
                                      poll_interval_s=0.05,
                                      token=TOKEN,
                                      exit_when_idle=True),
                          log=lambda msg: None)
        thread = threading.Thread(target=agent.run, daemon=True)
        sweep_id = client.submit_sweep(job_docs())["id"]
        thread.start()
        try:
            deadline_doc = None
            import time
            t0 = time.monotonic()
            while time.monotonic() - t0 < 60:
                deadline_doc = client.sweep_results(sweep_id)
                if deadline_doc["complete"]:
                    break
                time.sleep(0.05)
            assert deadline_doc["complete"]
        finally:
            agent.request_stop()
            thread.join(timeout=10)
        assert coordinator.coordinator.summary()["auth_required"]

    def test_env_var_is_the_default_token(self, coordinator, monkeypatch):
        monkeypatch.setenv(TOKEN_ENV, TOKEN)
        assert DistClient(coordinator.url).healthz()["ok"]
        monkeypatch.setenv(TOKEN_ENV, "wrong")
        with pytest.raises(ServeAPIError) as err:
            DistClient(coordinator.url).healthz()
        assert err.value.status == 401

    def test_agent_with_bad_token_exits_2(self, coordinator):
        agent = DistAgent(AgentConfig(coordinator_url=coordinator.url,
                                      agent_id="w1", token="wrong"),
                          log=lambda msg: None)
        assert agent.run() == 2


class _FlakyCoordinatorClient:
    """Scripted stand-in for DistClient: healthy registration, then a
    run of 5xx acquires (a coordinator mid-restart), then idle."""

    transport_fault = None

    def __init__(self, n_errors=2):
        self.n_errors = n_errors
        self.n_acquires = 0

    def wait_ready(self, timeout=10.0):
        return {"ok": True}

    def close(self):
        pass

    def register(self, **kwargs):
        return {"agent": "w1", "lease_ttl_s": 5.0,
                "heartbeat_interval_s": 60.0}

    def heartbeat(self, agent_id, leases):
        return {"ok": True, "expired": []}

    def acquire(self, agent_id, *, max_fragments=1):
        self.n_acquires += 1
        if self.n_acquires <= self.n_errors:
            raise ServeAPIError(503, {"error": "restarting"})
        return {"leases": [], "idle": True, "draining": False}


class TestAgentRidesOut5xx:
    def test_acquire_5xx_is_retried_not_raised(self):
        client = _FlakyCoordinatorClient(n_errors=2)
        agent = DistAgent(AgentConfig(coordinator_url="http://stub",
                                      agent_id="w1",
                                      poll_interval_s=0.01,
                                      exit_when_idle=True),
                          client=client, log=lambda msg: None)
        assert agent.run() == 0
        assert client.n_acquires == 3
        assert agent.n_coordinator_errors >= 2

    def test_register_5xx_is_retried_not_raised(self):
        client = _FlakyCoordinatorClient(n_errors=0)
        fails = {"n": 2}
        real_register = client.register

        def flaky_register(**kwargs):
            if fails["n"] > 0:
                fails["n"] -= 1
                raise ServeAPIError(500, {"error": "booting"})
            return real_register(**kwargs)

        client.register = flaky_register
        agent = DistAgent(AgentConfig(coordinator_url="http://stub",
                                      agent_id="w1",
                                      poll_interval_s=0.01,
                                      exit_when_idle=True),
                          client=client, log=lambda msg: None)
        assert agent.run() == 0
        assert fails["n"] == 0
        assert agent.n_coordinator_errors >= 2
