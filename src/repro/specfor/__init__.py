"""repro.specfor — deterministic-reservation ``speculative_for``.

The PBBS reservation pattern (reserve → check → commit rounds with
priority-writeMin cells and keep/pack carry-over) as a reusable engine:

- :mod:`reservation <repro.specfor.reservation>` — priority cells over
  versioned memory;
- :mod:`engine <repro.specfor.engine>` — the standalone round scheduler,
  its policy/livelock ladder, and the sequential reference loop;
- :mod:`adapter <repro.specfor.adapter>` — the same protocol hosted as
  VT-ordered tasks inside a fractal domain.

The :mod:`repro.apps.pbbs` family builds on all three.
"""

from .adapter import DomainSpecFor
from .engine import (RoundRecord, SpecForLivelock, SpecForOutcome,
                     SpecForPolicy, sequential_for, speculative_for)
from .reservation import UNRESERVED, ReservationTable

__all__ = [
    "UNRESERVED",
    "DomainSpecFor",
    "ReservationTable",
    "RoundRecord",
    "SpecForLivelock",
    "SpecForOutcome",
    "SpecForPolicy",
    "sequential_for",
    "speculative_for",
]
