"""Typed speculative data structures for applications.

These wrappers are the only way benchmarks touch memory. Each operation
takes the executing task's context ``ctx`` (a :class:`repro.core.api.TaskContext`
or the serial executor's context), which routes the access through
speculative memory and the latency model.

Values stored must be treated as immutable (ints, floats, strings, tuples):
undo logs hold references, so mutating a stored object in place would leak
through rollbacks.

- :class:`SpecCell` — a single word.
- :class:`SpecArray` — a fixed-size array of words.
- :class:`SpecDict` — a key-value map with a deterministic key→slot oracle
  (stands in for a hash table / B-tree index; conflicts are detected on the
  value slots, like leaf-level conflict detection in an index).
- :class:`SpecQueue` — a bounded FIFO in speculative memory. Used by the
  STAMP "TM" variants to model *software* task queues, whose head/tail
  contention is what Fractal's hardware task queues eliminate (Fig. 17).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from ..errors import AppError, MemoryError_
from .address import Region
from .memory import SpecMemory


class _Absent:
    """Sentinel for empty SpecDict slots."""

    __slots__ = ()

    def __repr__(self):
        return "<absent>"


ABSENT = _Absent()


class SpecCell:
    """One speculative word."""

    __slots__ = ("mem", "region", "addr")

    def __init__(self, mem: SpecMemory, region: Region):
        self.mem = mem
        self.region = region
        self.addr = region.base

    def get(self, ctx) -> Any:
        return ctx.load(self.addr)

    def set(self, ctx, value: Any) -> None:
        ctx.store(self.addr, value)

    def add(self, ctx, delta) -> Any:
        """Read-modify-write increment; returns the new value."""
        value = ctx.load(self.addr) + delta
        ctx.store(self.addr, value)
        return value

    # non-speculative access for setup / inspection
    def peek(self) -> Any:
        return self.mem.peek(self.addr)

    def poke(self, value: Any) -> None:
        self.mem.poke(self.addr, value)


class SpecArray:
    """A fixed-size speculative array of words."""

    __slots__ = ("mem", "region", "n")

    def __init__(self, mem: SpecMemory, region: Region, n: int):
        self.mem = mem
        self.region = region
        self.n = n

    def __len__(self) -> int:
        return self.n

    def addr(self, i: int) -> int:
        return self.region.addr(i)

    def get(self, ctx, i: int) -> Any:
        return ctx.load(self.region.addr(i))

    def set(self, ctx, i: int, value: Any) -> None:
        ctx.store(self.region.addr(i), value)

    def add(self, ctx, i: int, delta) -> Any:
        addr = self.region.addr(i)
        value = ctx.load(addr) + delta
        ctx.store(addr, value)
        return value

    # non-speculative access for setup / inspection
    def peek(self, i: int) -> Any:
        return self.mem.peek(self.region.addr(i))

    def poke(self, i: int, value: Any) -> None:
        self.mem.poke(self.region.addr(i), value)

    def fill(self, values: Iterable[Any]) -> None:
        for i, v in enumerate(values):
            self.poke(i, v)

    def snapshot(self) -> List[Any]:
        return [self.peek(i) for i in range(self.n)]


class SpecDict:
    """Speculative key-value map with fixed capacity.

    The key→slot mapping is a deterministic append-only oracle (a "perfect
    hash"): the structural metadata of a real hash table is abstracted
    away, while presence/value conflicts are fully detected on the value
    slots (an empty slot holds :data:`ABSENT`). ``stride`` spaces slots
    that many words apart; use the line size to give each key a private
    cache line, or 1 to model densely packed buckets with false sharing.
    """

    __slots__ = ("mem", "region", "capacity", "stride", "_slots")

    def __init__(self, mem: SpecMemory, region: Region, capacity: int,
                 stride: int = 1):
        if stride < 1:
            raise MemoryError_("stride must be >= 1")
        if capacity * stride > region.size:
            raise MemoryError_(
                f"region {region.name!r} too small for capacity {capacity} "
                f"x stride {stride}")
        self.mem = mem
        self.region = region
        self.capacity = capacity
        self.stride = stride
        self._slots: Dict[Any, int] = {}

    def _slot_addr(self, key) -> int:
        slot = self._slots.get(key)
        if slot is None:
            slot = len(self._slots)
            if slot >= self.capacity:
                raise AppError(
                    f"SpecDict {self.region.name!r} capacity {self.capacity} "
                    f"exhausted")
            self._slots[key] = slot
            # Fresh slots are born ABSENT, non-speculatively: allocating a
            # slot is not a memory mutation, holding a value is. poke_fresh
            # (not poke) because with stride < line_words the new slot can
            # share a line with slots under live speculation.
            self.mem.poke_fresh(self.region.addr(slot * self.stride), ABSENT)
        return self.region.addr(slot * self.stride)

    def get(self, ctx, key, default=None) -> Any:
        value = ctx.load(self._slot_addr(key))
        return default if value is ABSENT else value

    def contains(self, ctx, key) -> bool:
        return ctx.load(self._slot_addr(key)) is not ABSENT

    def put(self, ctx, key, value: Any) -> None:
        if value is ABSENT:
            raise MemoryError_("cannot store the ABSENT sentinel")
        ctx.store(self._slot_addr(key), value)

    def put_if_absent(self, ctx, key, value: Any) -> bool:
        """Insert unless present; True when inserted."""
        addr = self._slot_addr(key)
        if ctx.load(addr) is not ABSENT:
            return False
        ctx.store(addr, value)
        return True

    def delete(self, ctx, key) -> bool:
        """Remove the key; True when it was present."""
        addr = self._slot_addr(key)
        if ctx.load(addr) is ABSENT:
            return False
        ctx.store(addr, ABSENT)
        return True

    # non-speculative inspection (post-run)
    def items_nonspec(self) -> Iterable:
        for key, slot in self._slots.items():
            value = self.mem.peek(self.region.addr(slot * self.stride))
            if value is not ABSENT:
                yield key, value

    def len_nonspec(self) -> int:
        return sum(1 for _ in self.items_nonspec())

    def peek(self, key, default=None) -> Any:
        slot = self._slots.get(key)
        if slot is None:
            return default
        value = self.mem.peek(self.region.addr(slot * self.stride))
        return default if value is ABSENT else value

    def poke(self, key, value: Any) -> None:
        addr = self._slot_addr(key)
        self.mem.poke(addr, value)


class SpecQueue:
    """A bounded FIFO queue held entirely in speculative memory.

    Layout: word 0 = head index, word 1 = tail index, words 2.. = ring
    buffer. Every push/pop reads and writes the index words, so concurrent
    tasks using the queue serialize through conflicts — deliberately: this
    is the software-task-queue bottleneck of STAMP's TM versions.
    """

    __slots__ = ("mem", "region", "capacity")

    _HEAD = 0
    _TAIL = 1
    _BUF = 2

    def __init__(self, mem: SpecMemory, region: Region, capacity: int):
        if region.size < capacity + self._BUF:
            raise MemoryError_("region too small for queue capacity")
        self.mem = mem
        self.region = region
        self.capacity = capacity

    def push(self, ctx, value: Any) -> None:
        tail = ctx.load(self.region.addr(self._TAIL))
        head = ctx.load(self.region.addr(self._HEAD))
        if tail - head >= self.capacity:
            raise AppError(f"SpecQueue {self.region.name!r} overflow")
        ctx.store(self.region.addr(self._BUF + tail % self.capacity), value)
        ctx.store(self.region.addr(self._TAIL), tail + 1)

    def pop(self, ctx, default=None) -> Any:
        head = ctx.load(self.region.addr(self._HEAD))
        tail = ctx.load(self.region.addr(self._TAIL))
        if head >= tail:
            return default
        value = ctx.load(self.region.addr(self._BUF + head % self.capacity))
        ctx.store(self.region.addr(self._HEAD), head + 1)
        return value

    def size(self, ctx) -> int:
        return (ctx.load(self.region.addr(self._TAIL))
                - ctx.load(self.region.addr(self._HEAD)))

    def size_nonspec(self) -> int:
        return (self.mem.peek(self.region.addr(self._TAIL))
                - self.mem.peek(self.region.addr(self._HEAD)))
