"""Tests for the NoC and cache latency models."""

import pytest

from repro.arch.cache import CacheModel
from repro.arch.noc import MeshNoC
from repro.config import LatencyModel
from repro.mem.address import AddressSpace


class TestMeshNoC:
    def test_self_latency_zero(self):
        noc = MeshNoC(4)
        for t in range(16):
            assert noc.latency(t, t) == 0

    def test_straight_line(self):
        noc = MeshNoC(4, hop_straight=1, hop_turn=2)
        # tiles 0 and 3 are on the same row: 3 straight hops
        assert noc.latency(0, 3) == 3

    def test_turn_penalty(self):
        noc = MeshNoC(4, hop_straight=1, hop_turn=2)
        # tile 0 -> tile 5 is 1 right + 1 down: 2 hops + 1 turn extra
        assert noc.latency(0, 5) == 3

    def test_symmetry(self):
        noc = MeshNoC(8)
        for a, b in [(0, 63), (7, 56), (12, 33)]:
            assert noc.latency(a, b) == noc.latency(b, a)

    def test_round_trip(self):
        noc = MeshNoC(4)
        assert noc.round_trip(0, 3) == 2 * noc.latency(0, 3)

    def test_worst_case_corner_to_corner(self):
        noc = MeshNoC(8, hop_straight=1, hop_turn=2)
        assert noc.latency(0, 63) == 14 + 1  # 14 hops, one turn


class _Owner:
    def __init__(self):
        self.read_lines = set()
        self.write_lines = set()


class TestCacheModel:
    def make(self, n_tiles=4, mem_miss_rate=0.0):
        space = AddressSpace(64, n_tiles)
        noc = MeshNoC(2)
        lat = LatencyModel(mem_miss_rate=mem_miss_rate)
        return space, CacheModel(space, noc, lat, seed=1)

    def test_repeat_touch_hits_l1(self):
        space, cache = self.make()
        owner = _Owner()
        addr = 100
        owner.read_lines.add(space.line_of(addr))
        assert cache.access_latency(owner, 0, addr) == 2

    def test_local_first_touch_hits_l2(self):
        space, cache = self.make()
        owner = _Owner()
        # find an address homed at tile 0
        addr = next(a for a in range(0, 800, 8) if space.home_tile(a) == 0)
        assert cache.access_latency(owner, 0, addr) == 7

    def test_remote_first_touch_pays_noc(self):
        space, cache = self.make()
        owner = _Owner()
        addr = next(a for a in range(0, 800, 8) if space.home_tile(a) == 3)
        lat = cache.access_latency(owner, 0, addr)
        assert lat == 9 + cache.noc.round_trip(0, 3)

    def test_memory_misses_sampled(self):
        space, cache = self.make(mem_miss_rate=1.0)
        owner = _Owner()
        assert cache.access_latency(owner, 0, 64) == 120
        assert cache.mem_misses == 1

    def test_counters(self):
        space, cache = self.make()
        owner = _Owner()
        cache.access_latency(owner, 0, 64)
        owner.read_lines.add(space.line_of(64))
        cache.access_latency(owner, 0, 64)
        snap = cache.snapshot()
        assert snap["l1_hits"] == 1
        assert snap["l2_hits"] + snap["l3_hits"] == 1
