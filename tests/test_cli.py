"""Tests for the command-line interface."""

import json
import pathlib
import subprocess
import sys

import pytest

from repro.cli import APPS, main


def run_cli(*argv):
    proc = subprocess.run([sys.executable, "-m", "repro", *argv],
                          capture_output=True, text=True, timeout=300)
    return proc


class TestCli:
    def test_apps_lists_everything(self):
        proc = run_cli("apps")
        assert proc.returncode == 0
        for name in APPS:
            assert name in proc.stdout

    def test_config_prints_table2(self):
        proc = run_cli("config")
        assert proc.returncode == 0
        assert "256 cores" in proc.stdout

    def test_run_mis(self):
        proc = run_cli("run", "mis", "--cores", "4", "--audit")
        assert proc.returncode == 0
        assert "result check: OK" in proc.stdout

    def test_run_with_serial(self):
        proc = run_cli("run", "silo", "--cores", "4", "--serial")
        assert proc.returncode == 0
        assert "serial reference" in proc.stdout

    def test_unknown_app_fails(self):
        proc = run_cli("run", "nope")
        assert proc.returncode != 0
        assert "unknown app" in proc.stderr

    def test_bad_variant_fails(self):
        proc = run_cli("run", "bfs", "--variant", "fractal")
        assert proc.returncode != 0

    def test_sweep_prints_chart(self):
        proc = run_cli("sweep", "mis", "--variants", "flat,fractal",
                       "--cores", "1,4")
        assert proc.returncode == 0
        assert "speedup vs cores" in proc.stdout
        assert "1.00x" in proc.stdout

    def test_main_callable_in_process(self, capsys):
        assert main(["config"]) == 0
        assert "GVT" in capsys.readouterr().out

    def test_every_app_importable(self):
        import importlib
        for name, (module, variants) in APPS.items():
            mod = importlib.import_module(module)
            assert hasattr(mod, "make_input")
            assert hasattr(mod, "build")
            assert hasattr(mod, "check")


class TestTelemetryFlags:
    def test_trace_out_writes_valid_jsonl(self, tmp_path):
        from repro.telemetry import read_events_jsonl
        from repro.telemetry.validate import validate_jsonl
        path = tmp_path / "t.jsonl"
        assert main(["run", "mis", "--cores", "4",
                     "--trace-out", str(path)]) == 0
        n = validate_jsonl(path)
        assert n > 0
        events = read_events_jsonl(path)
        assert {e.KIND for e in events} >= {"enqueue", "dispatch", "commit"}

    def test_perfetto_and_metrics_out(self, tmp_path, capsys):
        import json
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "m.json"
        assert main(["run", "mis", "--cores", "4", "--perfetto", str(trace),
                     "--metrics-out", str(metrics)]) == 0
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])
        m = json.loads(metrics.read_text())
        assert m["schema"] == "repro.metrics/1"
        # acceptance: registry cycle totals == the reported breakdown
        totals = {}
        for c in m["metrics"]["counters"]:
            if c["name"] == "cycles":
                cat = c["labels"]["category"]
                totals[cat] = totals.get(cat, 0) + c["value"]
        assert totals == m["stats"]["breakdown"]

    def test_metrics_out_without_event_flags(self, tmp_path):
        import json
        metrics = tmp_path / "m.json"
        assert main(["run", "silo", "--cores", "4",
                     "--metrics-out", str(metrics)]) == 0
        m = json.loads(metrics.read_text())
        assert m["stats"]["tasks_committed"] > 0


class TestExitCodes:
    def test_check_failure_exits_1(self, monkeypatch, capsys):
        from repro.apps import mis
        from repro.errors import AppError

        def bad_check(handles, inp):
            raise AppError("forced failure")

        monkeypatch.setattr(mis, "check", bad_check)
        assert main(["run", "mis", "--cores", "4"]) == 1
        assert "FAILED" in capsys.readouterr().err

    def test_simulation_error_exits_2(self, monkeypatch, capsys):
        from repro.apps import mis
        from repro.errors import SimulationError

        def bad_build(sim, inp, variant, **kw):
            raise SimulationError("forced invariant violation")

        monkeypatch.setattr(mis, "build", bad_build)
        assert main(["run", "mis", "--cores", "4"]) == 2
        assert "simulation error" in capsys.readouterr().err

    def test_serial_check_failure_exits_1(self, monkeypatch, capsys):
        from repro.apps import mis
        from repro.errors import AppError

        calls = {"n": 0}
        real_check = mis.check

        def second_check_fails(handles, inp):
            calls["n"] += 1
            if calls["n"] > 1:
                raise AppError("serial mismatch")
            return real_check(handles, inp)

        monkeypatch.setattr(mis, "check", second_check_fails)
        assert main(["run", "mis", "--cores", "4", "--serial"]) == 1
        assert "serial reference check: FAILED" in capsys.readouterr().err


class TestFaultFlags:
    plans = pathlib.Path(__file__).parent.parent / "benchmarks" / "faultplans"

    def test_run_help_documents_exit_codes_and_flags(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--help"])
        out = capsys.readouterr().out
        assert "--faults" in out
        assert "--max-attempts" in out
        assert "--crash-dump-dir" in out
        for code in ("0 ", "1 ", "2 ", "3 ", "4 "):
            assert code in out
        assert "QueueError" in out
        assert "watchdog" in out

    def test_transient_plan_still_succeeds(self, capsys):
        assert main(["run", "mis", "--cores", "4", "--audit",
                     "--faults", str(self.plans / "transient.json")]) == 0
        out = capsys.readouterr().out
        assert "result check: OK" in out
        assert "resilience:" in out
        assert "faults injected" in out

    def test_invalid_plan_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"fautls": {}}')
        assert main(["run", "mis", "--faults", str(bad)]) == 2
        assert "cannot load --faults plan" in capsys.readouterr().err
        missing = tmp_path / "nope.json"
        assert main(["run", "mis", "--faults", str(missing)]) == 2

    def test_watchdog_partial_run_exits_4(self, tmp_path, capsys):
        plan = tmp_path / "wd.json"
        plan.write_text('{"resilience": {"max_cycles": 200}}')
        dump = tmp_path / "bundles"
        assert main(["run", "mis", "--cores", "4",
                     "--faults", str(plan),
                     "--crash-dump-dir", str(dump)]) == 4
        err = capsys.readouterr().err
        assert "watchdog fired" in err
        assert "crash bundle" in err
        bundles = list(dump.glob("crash-*.json"))
        assert len(bundles) == 1
        from repro.faults.crashdump import validate_crash_bundle
        validate_crash_bundle(json.loads(bundles[0].read_text()))

    def test_queue_error_exits_3(self, monkeypatch, capsys):
        import repro.cli as cli
        from repro.errors import QueueError

        def overflow(*a, **kw):
            raise QueueError("task queue wedged beyond recovery")

        monkeypatch.setattr(cli, "run_app", overflow)
        assert main(["run", "mis", "--cores", "4"]) == 3
        assert "queue" in capsys.readouterr().err.lower()

    def test_max_attempts_overrides_plan(self, capsys):
        # exhausting retries turns an injected transient into a fatal
        # AppError -> exit 1; the same plan with its own budget passes
        plan = self.plans / "transient.json"
        assert main(["run", "mis", "--cores", "4", "--faults", str(plan),
                     "--max-attempts", "1"]) == 1
        assert main(["run", "mis", "--cores", "4", "--faults", str(plan),
                     "--max-attempts", "8"]) == 0
