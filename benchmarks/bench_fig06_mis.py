"""Fig. 6: speedup of mis versions on 1..N cores.

Paper at 256 cores: mis-fractal 145x, mis-swarm 117x (24% slower from
over-serialization), mis-flat 98x. Expected shape: all three scale;
fractal on top, swarm penalized by its fixed order, flat lowest.
"""

from _common import core_counts, emit, once, run_once
from repro.apps import mis
from repro.bench.report import format_table

VARIANTS = ("flat", "swarm", "fractal")


def _input():
    return mis.make_input(scale=7, edge_factor=5)


def sweep(cores):
    inp = _input()
    runs = {(v, n): run_once(mis, inp, v, n)
            for v in VARIANTS for n in cores}
    base = runs[("flat", 1)].makespan
    rows = [[f"{n}c"] + [f"{base / runs[(v, n)].makespan:.2f}x"
                         for v in VARIANTS]
            for n in cores]
    emit("fig06_mis_speedup", format_table(["cores"] + list(VARIANTS), rows),
         runs=runs.values())
    return runs


def bench_fig06_mis_fractal(benchmark):
    inp = _input()
    run = once(benchmark, lambda: run_once(mis, inp, "fractal", 16))
    assert run.stats.tasks_committed > 0


def bench_fig06_sweep(benchmark):
    cores = core_counts(quick=True)
    runs = once(benchmark, lambda: sweep(cores))
    top = max(cores)
    # swarm's extra order constraints cause more aborted work than fractal
    assert (runs[("swarm", top)].stats.tasks_aborted
            >= runs[("fractal", top)].stats.tasks_aborted * 0.5)


if __name__ == "__main__":
    sweep(core_counts())
