"""Exception hierarchy for the Fractal reproduction.

Every error raised by the library derives from :class:`FractalError` so
callers can catch library failures with a single ``except`` clause while
letting genuine programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class FractalError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(FractalError):
    """An invalid or inconsistent :class:`repro.config.SystemConfig`."""


class VTError(FractalError):
    """An invalid virtual-time operation (bad format, budget overflow...)."""


class VTBudgetExceeded(VTError):
    """A fractal VT would not fit in the hardware bit budget.

    The simulator catches this internally and triggers a zoom-in; user code
    only sees it when zooming is disabled.
    """


class DomainError(FractalError):
    """A violation of Fractal's domain rules.

    Examples: creating two subdomains from one task, enqueueing with a
    timestamp smaller than the parent's, enqueueing to a domain the task
    cannot reach, or passing a timestamp to an unordered domain.
    """


class TimestampError(DomainError):
    """A missing, extra, or out-of-range task timestamp."""


class MemoryError_(FractalError):
    """An invalid speculative-memory operation (unknown address, access
    outside a task context, double-free...).

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class QueueError(FractalError):
    """Task-queue/commit-queue resource exhaustion that cannot be resolved
    by spilling or stalling (indicates a configuration too small for the
    workload's mandatory working set)."""


class SimulationError(FractalError):
    """An internal simulator invariant was violated. Always a bug."""


class SerializabilityViolation(SimulationError):
    """The post-run audit found a committed execution that is not
    equivalent to any serial order. Always a bug in the simulator."""


class FarmError(FractalError):
    """A parallel-execution failure in :mod:`repro.farm` that survived the
    farm's retry budget (worker crashes, jobs that keep raising).

    The per-job errors are in ``failures``: a list of
    ``(job label, error string)`` pairs."""

    def __init__(self, message: str, failures=None):
        super().__init__(message)
        self.failures = list(failures or [])


class AppError(FractalError):
    """An application-level failure (invalid input graph, workload...)."""


class TaskExecutionError(AppError):
    """An exception escaped a task body and exhausted its retry budget.

    The simulator rolls the attempt's speculative state back cleanly
    before raising, so memory is consistent and a crash bundle can be
    written. The original exception is chained as ``__cause__``; the
    attributes identify the offending attempt for diagnostics.
    """

    def __init__(self, message: str, *, tid: int = -1, label: str = "task",
                 vt: str = "", depth: int = 0, attempt: int = 0):
        super().__init__(message)
        self.tid = tid
        self.label = label
        self.vt = vt
        self.depth = depth
        self.attempt = attempt
