"""Ablation: spatial hints on/off (paper Sec. 3.1; hints rescue genome and
kmeans in Fig. 17).

Hints route tasks to their data's home tile: accesses get cheaper (cache
model) and likely-conflicting tasks queue behind each other instead of
speculating against each other.
"""

from _common import core_counts, emit, once, run_once
from repro.apps import genome, kmeans, mis
from repro.bench.report import format_table

APPS = [("genome", genome, {}, "hwq"),
        ("kmeans", kmeans, {}, "hwq"),
        ("mis", mis, {}, "fractal")]


def sweep(n_cores):
    rows = []
    results = {}
    for name, app, params, variant in APPS:
        inp = app.make_input(**params)
        off = run_once(app, inp, variant, n_cores, use_hints=False)
        on = run_once(app, inp, variant, n_cores, use_hints=True)
        results[name] = (off, on)
        rows.append([name, f"{off.makespan:,}", f"{on.makespan:,}",
                     f"{off.makespan / on.makespan:.2f}x",
                     off.stats.tasks_aborted, on.stats.tasks_aborted])
    emit(f"ablation_hints_{n_cores}c", format_table(
        ["app", "hints off (cyc)", "hints on (cyc)", "gain",
         "aborts off", "aborts on"], rows))
    return results


def bench_ablation_hints(benchmark):
    n = max(core_counts(quick=True))
    results = once(benchmark, lambda: sweep(n))
    assert all(on.stats.tasks_committed > 0 for _, on in results.values())


if __name__ == "__main__":
    sweep(max(core_counts()))
