"""Registry of runnable applications.

One place maps the short app names users type (CLI, JobSpec JSON, the
serve API) to ``repro.apps`` module paths and their supported variants.
Dotted module paths are also accepted everywhere a registry name is, so
out-of-tree app modules (e.g. the farm test fixtures) stay runnable; for
those the variant set is unknown and not checked.
"""

from __future__ import annotations

from typing import Optional, Tuple

#: app name -> (module path, variants)
APPS = {
    "mis": ("repro.apps.mis", ("flat", "swarm", "fractal")),
    "color": ("repro.apps.color", ("flat", "swarm", "fractal")),
    "msf": ("repro.apps.msf", ("flat", "swarm", "fractal")),
    "maxflow": ("repro.apps.maxflow", ("flat", "fractal")),
    "silo": ("repro.apps.silo", ("flat", "swarm", "fractal")),
    "zoomtree": ("repro.apps.zoomtree", ("fractal",)),
    "ssca2": ("repro.apps.stamp.ssca2", ("tm", "hwq", "fractal")),
    "vacation": ("repro.apps.stamp.vacation", ("tm", "hwq", "fractal")),
    "kmeans": ("repro.apps.stamp.kmeans", ("tm", "hwq", "fractal")),
    "genome": ("repro.apps.stamp.genome", ("tm", "hwq", "fractal")),
    "intruder": ("repro.apps.stamp.intruder", ("tm", "hwq", "fractal")),
    "labyrinth": ("repro.apps.stamp.labyrinth", ("tm", "hwq", "fractal")),
    "bayes": ("repro.apps.stamp.bayes", ("tm", "hwq", "fractal")),
    "yada": ("repro.apps.stamp.yada", ("tm", "hwq", "fractal")),
    "bfs": ("repro.apps.swarm.bfs", ("swarm",)),
    "sssp": ("repro.apps.swarm.sssp", ("swarm",)),
    "astar": ("repro.apps.swarm.astar", ("swarm",)),
    "des": ("repro.apps.swarm.des", ("swarm",)),
    "nocsim": ("repro.apps.swarm.nocsim", ("swarm",)),
    "spanning": ("repro.apps.pbbs.spanning",
                 ("flat", "swarm", "fractal", "specfor")),
    "contract": ("repro.apps.pbbs.contract",
                 ("flat", "swarm", "fractal", "specfor")),
    "refine": ("repro.apps.pbbs.refine",
               ("flat", "swarm", "fractal", "specfor")),
}

#: module path -> short registry name (for display)
MODULE_TO_NAME = {module: name for name, (module, _) in APPS.items()}


class UnknownAppError(KeyError):
    """App name not in the registry.

    Subclasses ``KeyError`` so existing ``except KeyError`` callers keep
    working, but renders a readable message (a raw ``KeyError`` turns
    ``str(exc)`` into the repr of its argument, quotes and all).
    """

    def __init__(self, name: str):
        super().__init__(name)
        self.name = name

    def __str__(self) -> str:
        return (f"unknown app {self.name!r}; choose one of {sorted(APPS)} "
                f"or give a dotted module path")


def resolve_app(name: str) -> Tuple[str, Optional[Tuple[str, ...]]]:
    """Resolve ``name`` to ``(module_path, variants-or-None)``.

    ``name`` is either a registry key (``"mis"``) or a dotted module path
    (``"repro.apps.mis"``, ``"tests.farm._fakeapp"``). Dotted paths of
    registered modules resolve to that entry's variants so they are
    validated the same as the short name; other dotted paths return
    ``None`` (variants unknown, not checked). Unknown plain names raise
    :class:`UnknownAppError`.
    """
    entry = APPS.get(name)
    if entry is not None:
        return entry
    if "." in name:
        short = MODULE_TO_NAME.get(name)
        if short is not None:
            return name, APPS[short][1]
        return name, None
    raise UnknownAppError(name)
