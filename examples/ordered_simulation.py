#!/usr/bin/env python
"""Timestamp-ordered speculation on classic simulators (paper Sec. 6.4).

The Swarm execution model (which Fractal subsumes: a Fractal program with
a single ordered root domain *is* a Swarm program) was built for exactly
this workload class: discrete-event simulation, where events must appear
to run in virtual-time order but are speculated wildly out of order.

This example runs two self-hosted simulators on the architecture:

- ``des``    — a gate-level digital logic simulator,
- ``nocsim`` — a cycle-by-cycle mesh network-on-chip simulator,

shows their speculative executions match bit-exact event-driven replays,
and reports how much reordering speculation got away with.

Run:  python examples/ordered_simulation.py
"""

from repro.apps import des, nocsim
from repro.bench.harness import run_app

N_CORES = 16


def main():
    circuit = des.make_input(n_inputs=8, n_gates=64, n_toggles=32)
    run = run_app(des, circuit, variant="swarm", n_cores=N_CORES, audit=True)
    des.check(run.handles, circuit)
    print("des: gate-level logic simulation")
    print(run.stats.summary())
    flips = sum(1 for g in range(circuit.n_gates)
                if run.handles["wires"].peek(circuit.gate_wire(g) * 8))
    print(f"  {circuit.n_gates} gates, {len(circuit.toggles)} input "
          f"toggles, {flips} gates end high — matches the serial replay\n")

    noc = nocsim.make_input(mesh=5, n_packets=40)
    run = run_app(nocsim, noc, variant="swarm", n_cores=N_CORES, audit=True)
    last = nocsim.check(run.handles, noc)
    print("nocsim: mesh NoC simulation (a simulator inside the simulator)")
    print(run.stats.summary())
    print(f"  {len(noc.packets)} packets over a {noc.mesh}x{noc.mesh} mesh, "
          f"last delivery at NoC cycle {last} — matches the replay")


if __name__ == "__main__":
    main()
