"""Benchmark applications (paper Table 3).

Every application follows one convention so benchmarks, tests, and the
serial oracle can drive any of them generically:

- ``make_input(**params)`` — build a deterministic input description.
- ``build(host, inp, variant=..., **options)`` — allocate speculative state
  on ``host`` (a :class:`repro.Simulator` or
  :class:`repro.SerialExecutor`), enqueue the root tasks, and return a
  ``handles`` dict for post-run inspection.
- ``check(handles, inp)`` — verify the result (raises
  :class:`repro.errors.AppError` on a wrong answer), usually against a
  plain-Python or networkx oracle.
- ``root_ordering(variant)`` (optional) — the root-domain ordering the
  variant needs (e.g. swarm-fg variants need an ordered root).

Variants reproduce the paper's comparisons:

- ``flat`` — coarse atomic tasks (the HTM/TM port),
- ``fractal`` — nested domains (the paper's contribution),
- ``swarm`` — manually timestamped fine-grain tasks (swarm-fg),

plus per-app feature switches (``use_sw_queue`` for STAMP's TM mode,
``use_hints`` at the config level) used by the Fig. 17 feature ladder.

Modules are imported lazily so that e.g. ``repro.apps.mis`` works without
paying for scipy-backed apps.
"""

import importlib

_APPS = ("color", "maxflow", "mis", "msf", "silo", "zoomtree")
_STAMP = ("bayes", "genome", "intruder", "kmeans", "labyrinth", "ssca2",
          "vacation", "yada")
_SWARM = ("astar", "bfs", "des", "nocsim", "sssp")

__all__ = list(_APPS) + list(_STAMP) + list(_SWARM)


def __getattr__(name):
    if name in _APPS:
        return importlib.import_module(f".{name}", __name__)
    if name in _STAMP:
        return importlib.import_module(f".stamp.{name}", __name__)
    if name in _SWARM:
        return importlib.import_module(f".swarm.{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
