"""Shared fixtures for fault-injection / resilience tests."""

import pytest

from repro import Simulator, SystemConfig


def counter_task(ctx, i):
    """Increment a shared counter — conflict-heavy by construction."""
    v = ctx.load(0)
    ctx.store(0, v + i)


def build_counter_sim(n_tasks=40, n_cores=4, *, sim_kwargs=None,
                      config_overrides=None, spread=True):
    """A simulator whose tasks sum ``range(n_tasks)`` into address 0.

    The expected final value is ``sum(range(n_tasks))`` — any lost or
    doubled increment (e.g. a retry replaying a half-applied attempt)
    breaks it, which makes this the canonical correctness probe for the
    injection tests.
    """
    overrides = dict(config_overrides or {})
    overrides.setdefault("conflict_mode", "precise")
    cfg = SystemConfig.with_cores(n_cores, **overrides)
    sim = Simulator(cfg, name="counter", **(sim_kwargs or {}))
    for i in range(n_tasks):
        sim.enqueue_root(counter_task, i,
                         hint=(i % cfg.n_tiles) if spread else 0)
    sim.memory.poke(0, 0)
    return sim


def expected_counter(n_tasks):
    return sum(range(n_tasks))


@pytest.fixture
def event_log():
    """Subscribe-able list capturing every event's KIND."""
    class Log(list):
        def __call__(self, event):
            self.append(event)

        def kinds(self):
            return [e.KIND for e in self]

        def of(self, kind):
            return [e for e in self if e.KIND == kind]

    return Log()
