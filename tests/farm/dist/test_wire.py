"""Wire-protocol validators: both sides must reject malformed docs."""

import pytest

from repro.farm.dist import wire


class TestRegister:
    def test_defaults(self):
        msg = wire.check_register({})
        assert msg == {"agent": "", "capacity": 1, "pid": 0, "host": ""}

    def test_rejects_non_object(self):
        with pytest.raises(wire.WireError):
            wire.check_register([1, 2])

    def test_rejects_wrong_type(self):
        with pytest.raises(wire.WireError):
            wire.check_register({"capacity": "lots"})


class TestAcquire:
    def test_default_one_fragment(self):
        assert wire.check_acquire({}) == {"max_fragments": 1}

    def test_rejects_zero(self):
        with pytest.raises(wire.WireError):
            wire.check_acquire({"max_fragments": 0})


class TestHeartbeat:
    def test_lease_ids(self):
        assert wire.check_heartbeat({"leases": ["a", "b"]}) \
            == {"leases": ["a", "b"]}

    def test_rejects_non_string_lease(self):
        with pytest.raises(wire.WireError):
            wire.check_heartbeat({"leases": [7]})


class TestDeliver:
    BASE = {"agent": "w1", "sweep": "s" * 64, "fragment": 0, "epoch": 1}

    def test_accepts_stats_result(self):
        msg = wire.check_deliver({
            **self.BASE,
            "results": [{"index": 3, "digest": "d" * 64,
                         "stats": {"makespan": 10}}]})
        r = msg["results"][0]
        assert r["index"] == 3 and r["error"] is None
        assert r["attempts"] == 1          # default

    def test_accepts_error_result(self):
        msg = wire.check_deliver({
            **self.BASE,
            "results": [{"index": 0, "digest": "d" * 64,
                         "error": "RuntimeError: boom"}]})
        assert msg["results"][0]["stats"] is None

    def test_rejects_result_with_neither(self):
        with pytest.raises(wire.WireError):
            wire.check_deliver({
                **self.BASE,
                "results": [{"index": 0, "digest": "d" * 64}]})

    def test_rejects_missing_envelope_field(self):
        doc = dict(self.BASE, results=[])
        del doc["epoch"]
        with pytest.raises(wire.WireError):
            wire.check_deliver(doc)


class TestSweepAndLease:
    def test_sweep_rejects_empty_jobs(self):
        with pytest.raises(wire.WireError):
            wire.check_submit_sweep({"jobs": []})

    def test_sweep_rejects_negative_fragments(self):
        with pytest.raises(wire.WireError):
            wire.check_submit_sweep({"jobs": [{}], "fragments": -1})

    def test_lease_roundtrip(self):
        doc = wire.lease_doc("lease-1", "s" * 64, 2, 1,
                             [{"index": 0, "spec": {"app": "mis"}}])
        msg = wire.check_lease(doc)
        assert msg["lease"] == "lease-1" and msg["epoch"] == 1
        assert msg["jobs"][0]["spec"] == {"app": "mis"}

    def test_lease_rejects_empty_jobs(self):
        with pytest.raises(wire.WireError):
            wire.check_lease(wire.lease_doc("l", "s", 0, 0, []))
