"""Tests for the STAMP driver machinery (software work queues vs HW)."""

import pytest

from repro import Simulator, SystemConfig
from repro.apps.stamp.common import drive_workload, require_stamp_variant
from repro.errors import AppError


def make_sim(n_cores=8):
    return Simulator(SystemConfig.with_cores(n_cores,
                                             conflict_mode="precise"))


class TestDriveWorkload:
    @pytest.mark.parametrize("variant", ["tm", "hwq"])
    def test_all_units_processed_once(self, variant):
        sim = make_sim()
        done = sim.array("done", 40 * 8)

        def unit(ctx, uid):
            done.add(ctx, uid * 8, 1)

        drive_workload(sim, 40, unit, variant)
        sim.run(max_cycles=10_000_000)
        assert all(done.peek(u * 8) == 1 for u in range(40))

    def test_tm_serializes_through_queue(self):
        """The software queue pop makes every TM worker conflict."""
        def run(variant):
            sim = make_sim(16)
            done = sim.array("done", 32 * 8)

            def unit(ctx, uid):
                done.add(ctx, uid * 8, 1)
                ctx.compute(100)

            drive_workload(sim, 32, unit, variant)
            return sim.run(max_cycles=10_000_000)

        tm = run("tm")
        hwq = run("hwq")
        assert tm.makespan > hwq.makespan
        assert tm.tasks_aborted > hwq.tasks_aborted

    def test_hint_fn_used(self):
        sim = make_sim()
        seen = []

        def unit(ctx, uid):
            ctx.compute(1)

        drive_workload(sim, 8, unit, "hwq", hint_fn=lambda uid: uid * 10)
        # hints recorded on root tasks
        hints = {t.hint for t in sim._live}
        assert hints == {u * 10 for u in range(8)}
        sim.run()

    def test_bad_variant_rejected(self):
        with pytest.raises(AppError):
            require_stamp_variant("nope")

    def test_zero_units(self):
        sim = make_sim()
        drive_workload(sim, 0, lambda ctx, uid: None, "hwq")
        stats = sim.run()
        assert stats.tasks_committed == 0
