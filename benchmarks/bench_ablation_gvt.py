"""Ablation: GVT commit interval (paper Table 2: tiles update the arbiter
every 200 cycles).

A longer interval delays commits: commit queues stay full longer, stalls
grow, and makespan inflates; a very short interval approaches continuous
commit. The paper's 200-cycle choice sits on the flat part of this curve.
"""

from _common import core_counts, emit, once
from repro.apps import silo
from repro.bench.harness import run_app
from repro.bench.report import format_table
from repro.config import SystemConfig

INTERVALS = (50, 200, 1000, 4000)


def sweep(n_cores):
    inp = silo.make_input(n_txns=96)
    rows = []
    results = {}
    for interval in INTERVALS:
        cfg = SystemConfig.with_cores(n_cores, commit_interval=interval)
        run = run_app(silo, inp, variant="fractal", n_cores=n_cores,
                      config=cfg)
        results[interval] = run
        rows.append([f"{interval}", f"{run.makespan:,}",
                     run.stats.gvt_ticks,
                     f"{run.stats.breakdown.fractions()['stall']:.1%}"])
    emit(f"ablation_gvt_{n_cores}c", format_table(
        ["commit interval", "makespan", "gvt ticks", "stall"], rows))
    return results


def bench_ablation_gvt(benchmark):
    n = max(core_counts(quick=True))
    results = once(benchmark, lambda: sweep(n))
    # a pathologically long interval must not beat the paper setting
    assert results[4000].makespan >= results[200].makespan


if __name__ == "__main__":
    sweep(max(core_counts()))
