"""ASCII charts for benchmark reports.

The paper's scaling results are line charts (speedup vs. cores); these
helpers render them as fixed-width ASCII so bench output and
EXPERIMENTS.md stay self-contained (no plotting dependencies).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


def ascii_chart(series: Dict[str, List[Tuple[float, float]]], *,
                width: int = 60, height: int = 16,
                x_label: str = "cores", y_label: str = "speedup",
                logx: bool = False) -> str:
    """Render (x, y) series as an ASCII scatter/line chart.

    Each series gets the first letter of its name as the plot glyph (or
    ``a``, ``b``, ... on collisions); overlapping points render ``*``.
    """
    import math

    points = [(x, y) for pts in series.values() for (x, y) in pts]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]

    def tx(x: float) -> float:
        return math.log2(x) if logx else x

    x_lo, x_hi = min(map(tx, xs)), max(map(tx, xs))
    y_lo, y_hi = min(0.0, min(ys)), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    glyphs = {}
    used = set()
    for i, name in enumerate(series):
        g = name[:1] or "?"
        if g in used:
            g = "abcdefghijklmnopqrstuvwxyz"[i % 26]
        used.add(g)
        glyphs[name] = g

    for name, pts in series.items():
        for (x, y) in pts:
            col = int((tx(x) - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            cur = grid[row][col]
            grid[row][col] = glyphs[name] if cur in (" ", glyphs[name]) else "*"

    lines = [f"{y_hi:8.1f} |" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 8 + " |" + "".join(row))
    lines.append(f"{y_lo:8.1f} |" + "".join(grid[-1]))
    lines.append(" " * 10 + "-" * width)
    x_axis = (f"{(2 ** x_lo if logx else x_lo):.0f}".ljust(width - 8)
              + f"{(2 ** x_hi if logx else x_hi):.0f}")
    lines.append(" " * 10 + x_axis)
    legend = "   ".join(f"{glyphs[name]} = {name}" for name in series)
    lines.append(f"{y_label} vs {x_label}   [{legend}]")
    return "\n".join(lines)


def speedup_chart(runs, *, baseline_variant: str, baseline_cores: int = 1,
                  **chart_kwargs) -> str:
    """Build a Fig. 3/4/6-style chart from AppRun results."""
    base = next(r for r in runs if r.variant == baseline_variant
                and r.n_cores == baseline_cores)
    series: Dict[str, List[Tuple[float, float]]] = {}
    for r in sorted(runs, key=lambda r: r.n_cores):
        series.setdefault(r.variant, []).append(
            (r.n_cores, base.makespan / r.makespan))
    chart_kwargs.setdefault("logx", True)
    return ascii_chart(series, **chart_kwargs)
