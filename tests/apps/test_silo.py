"""Tests for the silo transactional database (paper Secs. 2.2, 6.2)."""

import pytest

from repro.apps import silo


@pytest.mark.parametrize("variant", ["flat", "swarm", "fractal"])
class TestVariants:
    def test_invariants_hold(self, run_checked, variant):
        inp = silo.make_input(n_txns=32)
        run_checked(silo, inp, variant)

    def test_serial(self, run_serial_checked, variant):
        inp = silo.make_input(n_txns=24)
        run_serial_checked(silo, inp, variant)


class TestWorkloads:
    def test_payment_only(self, run_checked):
        inp = silo.make_input(n_txns=24, payment_fraction=1.0)
        run = run_checked(silo, inp, "fractal")
        total = sum(t.amount for t in inp.txns)
        W = inp.n_warehouses
        got = sum(run.handles["wh_ytd"].peek(w * 8) for w in range(W))
        assert got == total

    def test_new_order_only(self, run_checked):
        inp = silo.make_input(n_txns=24, payment_fraction=0.0)
        run = run_checked(silo, inp, "fractal")
        assert run.handles["orders"].len_nonspec() == 24

    def test_order_lines_complete(self, run_checked):
        inp = silo.make_input(n_txns=24, payment_fraction=0.0,
                              items_per_order=3)
        run = run_checked(silo, inp, "fractal")
        assert run.handles["order_lines"].len_nonspec() == 72

    def test_single_warehouse_contention(self, run_checked):
        """All transactions on one warehouse: heavy conflicts, still
        correct."""
        inp = silo.make_input(n_warehouses=1, n_districts=1, n_txns=24)
        run = run_checked(silo, inp, "fractal", n_cores=16)
        assert run.stats.tasks_aborted > 0

    def test_oids_dense_under_contention(self, run_checked):
        inp = silo.make_input(n_warehouses=1, n_districts=1, n_txns=20,
                              payment_fraction=0.0)
        run = run_checked(silo, inp, "flat", n_cores=16)
        assert run.handles["dist_next_oid"].peek(0) == 20


class TestPaperShape:
    def test_fractal_beats_flat_under_contention(self, run_checked):
        """Fig. 4's shape at miniature scale: intra-transaction
        parallelism pays off."""
        inp = silo.make_input(n_txns=48)
        flat = run_checked(silo, inp, "flat", n_cores=16)
        frac = run_checked(silo, inp, "fractal", n_cores=16)
        assert frac.makespan < flat.makespan

    def test_swarm_close_to_fractal(self, run_checked):
        """silo-swarm performs close to silo-fractal (paper: 4.5% slower;
        we allow a loose factor at toy scale)."""
        inp = silo.make_input(n_txns=48)
        swarm = run_checked(silo, inp, "swarm", n_cores=16)
        frac = run_checked(silo, inp, "fractal", n_cores=16)
        assert swarm.makespan < 2.0 * frac.makespan
