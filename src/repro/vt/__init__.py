"""Fractal virtual times (paper Sec. 4.2).

A task's *fractal VT* is the concatenation of one *domain VT* per enclosing
domain. Domain VTs combine an optional program timestamp (32 or 64 bits)
with a dispatch-time *tiebreaker*; comparing fractal VTs lexicographically
yields a total order that enforces Fractal's cross-domain atomicity.

Public API:

- :class:`Ordering` — domain ordering semantics (unordered / 32b / 64b).
- :class:`Tiebreaker` / :class:`TiebreakerAllocator` — (cycle, tile)
  tiebreakers with wrap-around compaction (paper Sec. 4.4).
- :class:`DomainVT` — a single domain's virtual time.
- :class:`FractalVT` — the concatenated, budget-checked fractal VT.
"""

from .ordering import Ordering
from .tiebreaker import Tiebreaker, TiebreakerAllocator
from .domain_vt import DomainVT
from .fractal_vt import FractalVT

__all__ = [
    "Ordering",
    "Tiebreaker",
    "TiebreakerAllocator",
    "DomainVT",
    "FractalVT",
]
