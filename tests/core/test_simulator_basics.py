"""Basic simulator behaviour: execution, commits, stats, determinism."""

import pytest

from repro import Ordering, Simulator, SystemConfig, TaskState
from repro.errors import SimulationError


class TestExecution:
    def test_single_task(self, make_sim):
        sim = make_sim()
        cell = sim.cell("c", 0)

        def t(ctx):
            cell.set(ctx, 42)

        sim.enqueue_root(t)
        stats = sim.run()
        assert cell.peek() == 42
        assert stats.tasks_committed == 1
        sim.audit()

    def test_task_args(self, make_sim):
        sim = make_sim()
        arr = sim.array("a", 4)

        def t(ctx, i, v):
            arr.set(ctx, i, v)

        for i in range(4):
            sim.enqueue_root(t, i, i * 10)
        sim.run()
        assert arr.snapshot() == [0, 10, 20, 30]

    def test_children_run(self, make_sim):
        sim = make_sim()
        cell = sim.cell("c", 0)

        def child(ctx):
            cell.add(ctx, 1)

        def parent(ctx):
            for _ in range(3):
                ctx.enqueue(child)

        sim.enqueue_root(parent)
        stats = sim.run()
        assert cell.peek() == 3
        assert stats.tasks_committed == 4

    def test_compute_lengthens_task(self, make_sim):
        sim = make_sim(1)

        def t(ctx):
            ctx.compute(5000)

        sim.enqueue_root(t)
        stats = sim.run()
        assert stats.avg_task_length >= 5000

    def test_empty_program(self, make_sim):
        sim = make_sim()
        stats = sim.run()
        assert stats.tasks_committed == 0
        assert stats.makespan == 0

    def test_run_twice_rejected(self, make_sim):
        sim = make_sim()
        sim.run()
        with pytest.raises(SimulationError):
            sim.run()

    def test_enqueue_after_run_rejected(self, make_sim):
        sim = make_sim()
        sim.run()
        with pytest.raises(SimulationError):
            sim.enqueue_root(lambda ctx: None)


class TestCommitsAndStats:
    def test_cycle_breakdown_sums_to_total(self, make_sim):
        sim = make_sim(4)
        cell = sim.cell("c", 0)

        def t(ctx):
            cell.add(ctx, 1)
            ctx.compute(100)

        for _ in range(20):
            sim.enqueue_root(t)
        stats = sim.run()
        bd = stats.breakdown
        assert bd.total == stats.n_cores * stats.makespan
        assert bd.committed > 0

    def test_conflicting_tasks_all_commit(self, make_sim):
        sim = make_sim(16)
        cell = sim.cell("c", 0)

        def t(ctx):
            cell.add(ctx, 1)

        for _ in range(50):
            sim.enqueue_root(t)
        stats = sim.run()
        assert cell.peek() == 50
        assert stats.tasks_committed == 50
        assert stats.tasks_aborted > 0  # heavy contention on one cell
        sim.audit()

    def test_independent_tasks_never_abort(self, make_sim):
        sim = make_sim(16)
        arr = sim.array("a", 64 * 8)  # one line each

        def t(ctx, i):
            arr.set(ctx, i * 8, i)

        for i in range(64):
            sim.enqueue_root(t, i)
        stats = sim.run()
        assert stats.tasks_aborted == 0
        assert stats.true_conflicts == 0

    def test_deterministic_given_seed(self):
        def build():
            sim = Simulator(SystemConfig.with_cores(16, seed=3))
            cell = sim.cell("c", 0)

            def t(ctx, i):
                cell.add(ctx, i)
                ctx.compute(i * 7 % 50)

            for i in range(40):
                sim.enqueue_root(t, i)
            return sim.run()

        a, b = build(), build()
        assert a.makespan == b.makespan
        assert a.tasks_aborted == b.tasks_aborted
        assert a.breakdown.committed == b.breakdown.committed


class TestParallelismScaling:
    def test_more_cores_faster_on_parallel_work(self, make_sim):
        def run(n_cores):
            sim = make_sim(n_cores)
            arr = sim.array("a", 256 * 8)

            def t(ctx, i):
                arr.set(ctx, i * 8, 1)
                ctx.compute(500)

            for i in range(256):
                sim.enqueue_root(t, i)
            return sim.run().makespan

        t1, t16 = run(1), run(16)
        assert t16 * 4 < t1  # at least 4x speedup at 16 cores

    def test_serialized_work_does_not_scale(self, make_sim):
        def run(n_cores):
            sim = make_sim(n_cores)
            cell = sim.cell("c", 0)

            def t(ctx):
                cell.add(ctx, 1)
                ctx.compute(300)

            for _ in range(64):
                sim.enqueue_root(t)
            return sim.run().makespan

        t1, t16 = run(1), run(16)
        assert t16 > t1 / 8  # contention bounds the speedup


class TestTaskStates:
    def test_final_states(self, make_sim):
        sim = make_sim()
        roots = [sim.enqueue_root(lambda ctx: None) for _ in range(3)]
        sim.run()
        assert all(r.state is TaskState.COMMITTED for r in roots)
