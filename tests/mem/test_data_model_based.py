"""Model-based property tests: SpecDict and SpecQueue against plain
Python dict/deque models (serial, no speculation)."""

from collections import deque

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem import AddressSpace, SpecDict, SpecMemory, SpecQueue
from repro.mem.conflicts import PreciseConflictModel

from .conftest import FakeCtx, FakeOwner

_keys = st.sampled_from(["a", "b", "c", "d", "e"])
_dict_ops = st.lists(st.one_of(
    st.tuples(st.just("put"), _keys, st.integers(0, 99)),
    st.tuples(st.just("get"), _keys, st.none()),
    st.tuples(st.just("delete"), _keys, st.none()),
    st.tuples(st.just("put_if_absent"), _keys, st.integers(0, 99)),
), max_size=40)


def fresh_ctx():
    space = AddressSpace(64, 1)
    mem = SpecMemory(space, PreciseConflictModel())
    owner = FakeOwner((1,))
    mem.attach_owner(owner)
    return mem, FakeCtx(mem, owner), space


@given(ops=_dict_ops)
@settings(max_examples=60, deadline=None)
def test_spec_dict_matches_dict(ops):
    mem, ctx, space = fresh_ctx()
    d = SpecDict(mem, space.alloc("d", 8), capacity=8)
    model = {}
    for op, key, value in ops:
        if op == "put":
            d.put(ctx, key, value)
            model[key] = value
        elif op == "get":
            assert d.get(ctx, key) == model.get(key)
        elif op == "delete":
            assert d.delete(ctx, key) == (key in model)
            model.pop(key, None)
        else:
            inserted = d.put_if_absent(ctx, key, value)
            assert inserted == (key not in model)
            if inserted:
                model[key] = value
    assert dict(d.items_nonspec()) == model


_queue_ops = st.lists(st.one_of(
    st.tuples(st.just("push"), st.integers(0, 99)),
    st.tuples(st.just("pop"), st.none()),
), max_size=40)


@given(ops=_queue_ops)
@settings(max_examples=60, deadline=None)
def test_spec_queue_matches_deque(ops):
    mem, ctx, space = fresh_ctx()
    q = SpecQueue(mem, space.alloc("q", 66), capacity=64)
    model = deque()
    for op, value in ops:
        if op == "push":
            q.push(ctx, value)
            model.append(value)
        else:
            got = q.pop(ctx, default=None)
            want = model.popleft() if model else None
            assert got == want
    assert q.size(ctx) == len(model)
